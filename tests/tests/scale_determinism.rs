//! Property-based determinism for the PR-10 sharded scale engine: for any
//! small configuration, the sharded epoch runner must reproduce the serial
//! reference **bit-for-bit** — same digest, same per-boot JSONL — at every
//! shard count, and every completed fill must account for exactly one
//! image's worth of bytes no matter how transfers degrade or truncate
//! mid-flight.

use proptest::prelude::*;
use vmi_cluster::{run_scale, FillSource, ScaleConfig, Topology};
use vmi_sim::SEC;

#[derive(Debug, Clone, Copy)]
enum Shape {
    Flat,
    Tiered,
    TieredP2p,
}

#[derive(Debug, Clone)]
struct Arb {
    shape: Shape,
    nodes: usize,
    nodes_per_rack: usize,
    waves: usize,
    images: usize,
    seed: u64,
    degrade_ppm: u32,
}

fn arb_config() -> impl Strategy<Value = Arb> {
    (
        (
            prop_oneof![
                Just(Shape::Flat),
                Just(Shape::Tiered),
                Just(Shape::TieredP2p)
            ],
            8usize..64,
            2usize..12,
        ),
        (
            1usize..6,
            1usize..8,
            any::<u64>(),
            prop_oneof![Just(0u32), Just(50_000), Just(400_000), Just(1_000_000)],
        ),
    )
        .prop_map(
            |((shape, nodes, nodes_per_rack), (waves, images, seed, degrade_ppm))| Arb {
                shape,
                nodes,
                nodes_per_rack,
                waves,
                images,
                seed,
                degrade_ppm,
            },
        )
}

fn build(a: &Arb) -> ScaleConfig {
    let topo = match a.shape {
        Shape::Flat => Topology::flat(a.nodes),
        Shape::Tiered => Topology::tiered(a.nodes, 64 << 20, 256 << 20),
        Shape::TieredP2p => Topology::tiered_p2p(a.nodes, 64 << 20, 256 << 20),
    }
    .with_fanout(a.nodes_per_rack, 4);
    let mut cfg = ScaleConfig::new(topo, a.images);
    cfg.image_bytes = 8 << 20;
    cfg.node_cache_bytes = 16 << 20; // two images: evictions happen
    cfg.waves = a.waves;
    cfg.wave_gap_ns = 5 * SEC;
    cfg.seed = a.seed;
    cfg.degrade_ppm = a.degrade_ppm;
    cfg.keep_records = true;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serial and sharded engines agree bit-for-bit on arbitrary small
    /// configurations: identical digests and identical per-boot JSONL at
    /// 1, 2, and 8 shards.
    #[test]
    fn sharded_matches_serial_bit_for_bit(a in arb_config()) {
        let serial_cfg = build(&a);
        let serial = run_scale(&serial_cfg);
        let reference = serial.jsonl(&serial_cfg.catalog);
        for shards in [1usize, 2, 8] {
            let mut cfg = build(&a);
            cfg.shards = shards;
            let sharded = run_scale(&cfg);
            prop_assert_eq!(
                serial.digest, sharded.digest,
                "digest diverged at {} shards (cfg {:?})", shards, a
            );
            prop_assert_eq!(
                &reference, &sharded.jsonl(&cfg.catalog),
                "jsonl diverged at {} shards (cfg {:?})", shards, a
            );
            prop_assert_eq!(serial.storage_link, sharded.storage_link);
            prop_assert_eq!(serial.makespan_ns, sharded.makespan_ns);
        }
    }

    /// Every boot that filled (rather than hitting warm cache or joining)
    /// accounts for exactly one image of bytes, and the per-tier byte
    /// totals sum to the fill total — truncated peer transfers re-source
    /// the remainder without double counting.
    #[test]
    fn fills_conserve_image_bytes(a in arb_config()) {
        let cfg = build(&a);
        let rep = run_scale(&cfg);
        for r in &rep.records {
            match r.src {
                FillSource::Warm | FillSource::Join => {
                    prop_assert_eq!(r.fill_bytes, 0, "non-fill boot moved bytes: {:?}", r)
                }
                _ => prop_assert_eq!(
                    r.fill_bytes, cfg.image_bytes,
                    "fill bytes off for boot {:?}", r
                ),
            }
        }
        let tier_total: u64 = rep.tier_bytes.iter().sum();
        prop_assert_eq!(tier_total, rep.fill_bytes);
        prop_assert_eq!(rep.boots, cfg.boots());
    }
}
