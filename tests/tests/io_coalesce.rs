//! PR-5 acceptance: the extent-coalesced read path must issue ≥ 8× fewer
//! device calls than the scalar path on a cold sequential 1 MiB read over a
//! 512-byte-cluster cache, with bit-identical guest data — and the
//! parallel experiment runner must agree with the serial one where their
//! semantics coincide.

use vmi_bench::io_coalesce::run_io_coalesce;
use vmi_cluster::{run_experiment, run_experiment_parallel, ExperimentConfig, Mode, Placement};
use vmi_obs::RecorderHandle;
use vmi_sim::NetSpec;
use vmi_trace::VmiProfile;

#[test]
fn coalesced_cold_sequential_read_is_8x_fewer_calls() {
    let rep = run_io_coalesce().unwrap();
    let cold = rep
        .scenarios
        .iter()
        .find(|s| s.name == "cold_seq")
        .expect("cold_seq scenario present");
    assert!(
        cold.call_ratio >= 8.0,
        "cold sequential: {} scalar vs {} coalesced calls = {:.1}x < 8x",
        cold.scalar.total_calls,
        cold.coalesced.total_calls,
        cold.call_ratio
    );
    assert!(
        cold.data_identical,
        "guest data must not depend on the mode"
    );
    // The warm pass (fully mapped clusters) coalesces even harder: one run
    // read per physically contiguous extent.
    let warm = rep.scenarios.iter().find(|s| s.name == "warm_seq").unwrap();
    assert!(warm.call_ratio >= 8.0, "warm ratio {:.1}x", warm.call_ratio);
}

#[test]
fn parallel_runner_jsonl_is_deterministic_per_seed() {
    let mode = Mode::ColdCache {
        placement: Placement::ComputeMem,
        quota: 16 << 20,
        cluster_bits: 9,
    };
    let run = |seed: u64| {
        let (rec, sink) = RecorderHandle::jsonl();
        let cfg = ExperimentConfig {
            nodes: 4,
            vmis: 2,
            profile: VmiProfile::tiny_test(),
            net: NetSpec::gbe_1(),
            mode,
            seed,
            warm_store: None,
            recorder: rec,
        };
        let out = run_experiment_parallel(&cfg).unwrap();
        (out, sink.lines())
    };
    let (a, la) = run(11);
    let (b, lb) = run(11);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.telemetry, b.telemetry);
    assert_eq!(la, lb, "same seed, bit-identical JSONL");
    let (c, lc) = run(12);
    assert!(
        la != lc || a.outcomes != c.outcomes,
        "different seed must perturb the run"
    );
}

#[test]
fn parallel_and_serial_agree_on_fill_totals() {
    // Copy-on-read byte totals are per-node quantities: summing the
    // contention-free replicas must equal the serial shared-world run.
    let mode = Mode::ColdCache {
        placement: Placement::ComputeMem,
        quota: 16 << 20,
        cluster_bits: 9,
    };
    let cfg = ExperimentConfig {
        nodes: 3,
        vmis: 1,
        profile: VmiProfile::tiny_test(),
        net: NetSpec::gbe_1(),
        mode,
        seed: 5,
        warm_store: None,
        recorder: RecorderHandle::none(),
    };
    let serial = run_experiment(&cfg).unwrap();
    let parallel = run_experiment_parallel(&cfg).unwrap();
    assert_eq!(serial.telemetry.fill_bytes, parallel.telemetry.fill_bytes);
    assert_eq!(serial.telemetry.per_cache, parallel.telemetry.per_cache);
    assert_eq!(serial.cache_file_sizes, parallel.cache_file_sizes);
}
