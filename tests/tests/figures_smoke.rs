//! Smoke-scale runs of every figure/table builder: the full reproduction
//! pipeline must execute end to end and produce paper-shaped output.

use vmi_bench::{fig10, fig11, fig12, fig14, fig2, fig3, fig8, fig9, sec6, table1, table2, Scale};

const S: Scale = Scale::Smoke;

fn ys(series: &vmi_bench::Series) -> Vec<f64> {
    series.points.iter().map(|p| p.y).collect()
}

#[test]
fn fig2_network_ordering() {
    let f = fig2(S).unwrap();
    // At the largest node count, IB beats 1 GbE.
    let ib = f.series.iter().find(|s| s.label.contains("IB")).unwrap();
    let ge = f.series.iter().find(|s| s.label.contains("1GbE")).unwrap();
    assert!(ib.points.last().unwrap().y <= ge.points.last().unwrap().y);
}

#[test]
fn fig3_rises_with_vmis() {
    let f = fig3(S).unwrap();
    for s in &f.series {
        let y = ys(s);
        assert!(
            y.last().unwrap() > y.first().unwrap(),
            "{}: more VMIs must be slower: {y:?}",
            s.label
        );
    }
}

#[test]
fn fig8_cold_on_disk_is_worst() {
    let f = fig8(S).unwrap();
    let at_max = |label: &str| {
        f.series
            .iter()
            .find(|s| s.label == label)
            .unwrap()
            .points
            .last()
            .unwrap()
            .y
    };
    assert!(at_max("Cold cache - on disk") > at_max("Cold cache - on mem"));
    assert!(at_max("Cold cache - on disk") > at_max("QCOW2"));
}

#[test]
fn fig9_amplification_and_warm_decline() {
    let f = fig9(S).unwrap();
    let get = |label: &str| f.series.iter().find(|s| s.label == label).unwrap();
    let qcow = get("QCOW2").points.last().unwrap().y;
    let cold64 = get("Cold cache - cluster = 64KB").points.last().unwrap().y;
    let cold512 = get("Cold cache - cluster = 512B").points.last().unwrap().y;
    assert!(
        cold64 > qcow,
        "64 KiB cold cache must amplify: {cold64} vs {qcow}"
    );
    assert!(
        cold512 <= qcow * 1.05,
        "512 B cold cache must not: {cold512} vs {qcow}"
    );
    let warm = ys(get("Warm cache - cluster = 512B"));
    assert!(
        warm.last().unwrap() < warm.first().unwrap(),
        "warm declines with quota"
    );
}

#[test]
fn fig10_warm_at_full_quota_beats_qcow2() {
    let (boot, tx) = fig10(S).unwrap();
    let warm_boot = boot
        .series
        .iter()
        .find(|s| s.label.starts_with("Warm"))
        .unwrap()
        .points
        .last()
        .unwrap()
        .y;
    let qcow_boot = boot
        .series
        .iter()
        .find(|s| s.label.starts_with("QCOW2"))
        .unwrap()
        .points
        .last()
        .unwrap()
        .y;
    assert!(warm_boot <= qcow_boot);
    let warm_tx = tx
        .series
        .iter()
        .find(|s| s.label.starts_with("Warm"))
        .unwrap()
        .points
        .last()
        .unwrap()
        .y;
    assert!(
        warm_tx < 0.2,
        "full warm cache ~eliminates traffic: {warm_tx}"
    );
}

#[test]
fn fig11_warm_is_flat() {
    let f = fig11(S).unwrap();
    let warm = ys(f.series.iter().find(|s| s.label == "Warm cache").unwrap());
    let spread = warm.iter().cloned().fold(f64::MIN, f64::max)
        / warm.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 1.05, "warm line must be flat: {warm:?}");
}

#[test]
fn fig12_warm_flat_qcow_rises() {
    let (gbe, ib) = fig12(S).unwrap();
    for f in [gbe, ib] {
        let warm = ys(f.series.iter().find(|s| s.label == "Warm cache").unwrap());
        let qcow = ys(f.series.iter().find(|s| s.label == "QCOW2").unwrap());
        assert!(warm.last().unwrap() < qcow.last().unwrap(), "{}", f.id);
    }
}

#[test]
fn fig14_warm_avoids_disk_bottleneck() {
    let (_gbe, ib) = fig14(S).unwrap();
    let warm = ys(ib.series.iter().find(|s| s.label == "Warm cache").unwrap());
    let qcow = ys(ib.series.iter().find(|s| s.label == "QCOW2").unwrap());
    // Over IB the only bottleneck is the storage disk; warm caches in
    // storage memory remove it.
    assert!(warm.last().unwrap() < qcow.last().unwrap());
    let spread = warm.iter().cloned().fold(f64::MIN, f64::max)
        / warm.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        spread < 1.1,
        "warm storage-mem line ~flat over IB: {warm:?}"
    );
}

#[test]
fn tables_render() {
    let t1 = table1(S);
    assert!(!t1.rows.is_empty());
    let t2 = table2(S).unwrap();
    assert_eq!(t1.rows.len(), t2.rows.len());
    let s6 = sec6(S).unwrap();
    assert!(s6.render().contains('%'));
}

#[test]
fn figures_save_artifacts() {
    let dir = std::env::temp_dir().join(format!("vmi-figsmoke-{}", std::process::id()));
    let f = fig2(S).unwrap();
    f.save(&dir).unwrap();
    assert!(dir.join("fig2.json").exists());
    assert!(dir.join("fig2.csv").exists());
    std::fs::remove_dir_all(dir).unwrap();
}
