//! The robustness acceptance run: a VM boots through a full chain while the
//! base medium throws transient read faults (ridden out by retry/backoff)
//! and the cache medium dies mid-boot (latching degraded mode). Every guest
//! read must return correct data, the cache must degrade exactly once, the
//! telemetry must show the retries and the degradation, and the whole thing
//! must be bit-for-bit deterministic under the sim clock.

use std::sync::Arc;

use vmi_blockdev::{
    BlockDev, BlockErrorKind, FaultDev, FaultPlan, FaultSite, MemDev, RetryDev, RetryPolicy,
    SharedDev,
};
use vmi_obs::{met, ManualClock, RecorderHandle};
use vmi_qcow::{create_cached_chain_with_obs, MapResolver, QcowImage};

const VSIZE: u64 = 4 << 20;

struct RunResult {
    lines: Vec<String>,
    retry_attempts: u64,
    caches_degraded: u64,
    base_retries: u64,
}

/// One full boot-under-faults run, everything seeded from `seed`.
fn run_once(seed: u64) -> RunResult {
    let content: Vec<u8> = (0..VSIZE as usize).map(|i| (i % 249) as u8).collect();
    let (rec, sink) = RecorderHandle::jsonl();
    let obs = rec.attach(Arc::new(ManualClock::new(0)));

    // Base: flaky NFS-ish medium — every 5th read dies transiently — behind
    // a retry decorator with deterministic backoff.
    let base_faults = Arc::new(FaultDev::new(Arc::new(MemDev::from_vec(content.clone()))));
    base_faults.inject(FaultPlan::EveryNth {
        site: FaultSite::Read,
        n: 5,
        kind: BlockErrorKind::Io,
    });
    let base = Arc::new(RetryDev::with_obs(
        base_faults as SharedDev,
        RetryPolicy::attempts(4).with_seed(seed).with_jitter(0.25),
        obs.clone(),
    ));

    let ns = MapResolver::new();
    ns.insert("base", base.clone() as SharedDev);
    let container = Arc::new(FaultDev::new(Arc::new(MemDev::new())));
    ns.insert("cache", container.clone() as SharedDev);
    let cow = create_cached_chain_with_obs(
        &ns,
        "base",
        "cache",
        container.clone() as SharedDev,
        Arc::new(MemDev::new()),
        VSIZE,
        VSIZE,
        9,
        &obs,
    )
    .unwrap();

    // Mid-boot cache death: the 41st container write after arming fails,
    // i.e. well after the first fills landed.
    container.inject(FaultPlan::NthOp {
        site: FaultSite::Write,
        n: 40,
        kind: BlockErrorKind::Io,
    });

    // "Boot": a deterministic pseudo-random working set through the chain.
    let mut buf = vec![0u8; 4096];
    for i in 0..200u64 {
        let off = (i * 7919 * 512) % (VSIZE - 4096);
        cow.read_at(&mut buf, off).unwrap();
        assert_eq!(
            &buf[..],
            &content[off as usize..off as usize + 4096],
            "guest data wrong at offset {off}"
        );
    }

    let cache = cow.backing().unwrap();
    let cache_img = cache
        .as_any()
        .and_then(|a| a.downcast_ref::<QcowImage>())
        .expect("cache layer");
    assert!(cache_img.is_degraded(), "mid-boot fill failure must latch");
    RunResult {
        lines: sink.lines(),
        retry_attempts: obs.counter_value(met::RETRY_ATTEMPTS),
        caches_degraded: obs.counter_value(met::CACHE_DEGRADED),
        base_retries: base.retries(),
    }
}

#[test]
fn boot_survives_transient_base_faults_and_cache_death() {
    let r = run_once(42);
    assert!(
        r.retry_attempts > 0,
        "transient faults must trigger retries"
    );
    assert_eq!(
        r.base_retries, r.retry_attempts,
        "device and registry agree"
    );
    assert_eq!(r.caches_degraded, 1, "cache degrades exactly once");
    let degraded: Vec<_> = r
        .lines
        .iter()
        .filter(|l| l.contains("\"cache_degraded\""))
        .collect();
    assert_eq!(degraded.len(), 1, "{degraded:?}");
    assert!(
        r.lines.iter().any(|l| l.contains("\"retry_attempt\"")),
        "retry events recorded"
    );
}

#[test]
fn same_seed_gives_identical_event_streams() {
    let a = run_once(7);
    let b = run_once(7);
    assert_eq!(a.lines, b.lines, "JSONL streams must match bit for bit");
    assert_eq!(a.retry_attempts, b.retry_attempts);

    // A different retry seed reorders jittered delays but not correctness.
    let c = run_once(8);
    assert_eq!(c.caches_degraded, 1);
    assert_eq!(
        a.retry_attempts, c.retry_attempts,
        "attempt count is seed-free"
    );
}
