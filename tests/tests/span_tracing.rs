//! Span-tracing acceptance: the PR-6 causal trace layer must produce
//! bit-identical JSONL for a fixed seed (serial and parallel), perfectly
//! nested span trees even under fault injection, and span events that
//! survive the wire format round trip for arbitrary attribute strings.

use std::sync::Arc;

use proptest::prelude::*;
use vmi_bench::obs_report::replay_lines_strict;
use vmi_bench::trace_report::TraceForest;
use vmi_blockdev::{
    BlockDev, BlockErrorKind, FaultDev, FaultPlan, FaultSite, MemDev, RetryDev, RetryPolicy,
    SharedDev,
};
use vmi_cluster::{
    run_experiment, run_experiment_parallel, ExperimentConfig, Mode, Placement, WarmStore,
};
use vmi_obs::{Event, JsonlSink, ManualClock, RecorderHandle};
use vmi_qcow::{create_cached_chain_with_obs, MapResolver};
use vmi_sim::NetSpec;

const QUOTA: u64 = 16 << 20;

fn cfg(nodes: usize, seed: u64, recorder: RecorderHandle) -> ExperimentConfig {
    ExperimentConfig {
        nodes,
        vmis: 1,
        profile: vmi_trace::VmiProfile::tiny_test(),
        net: NetSpec::gbe_1(),
        mode: Mode::ColdCache {
            placement: Placement::ComputeDisk,
            quota: QUOTA,
            cluster_bits: 9,
        },
        seed,
        warm_store: Some(WarmStore::new()),
        recorder,
    }
}

fn record_serial(nodes: usize, seed: u64) -> Vec<String> {
    let (rec, sink) = RecorderHandle::jsonl();
    run_experiment(&cfg(nodes, seed, rec)).unwrap();
    sink.lines()
}

fn record_parallel(nodes: usize, seed: u64) -> Vec<String> {
    let (rec, sink) = RecorderHandle::jsonl();
    run_experiment_parallel(&cfg(nodes, seed, rec)).unwrap();
    sink.lines()
}

fn span_lines(lines: &[String]) -> Vec<&String> {
    lines
        .iter()
        .filter(|l| l.contains("\"span_start\"") || l.contains("\"span_end\""))
        .collect()
}

fn forest_of(lines: &[String]) -> TraceForest {
    let events: Vec<(u64, Event)> = lines
        .iter()
        .map(|l| Event::parse_line(l).unwrap())
        .collect();
    TraceForest::from_events(&events)
}

#[test]
fn serial_trace_jsonl_is_bit_identical_per_seed() {
    let a = record_serial(2, 42);
    let b = record_serial(2, 42);
    assert_eq!(a, b, "serial JSONL must match bit for bit");
    assert!(!span_lines(&a).is_empty(), "stream contains span events");

    let c = record_serial(2, 43);
    assert_ne!(a, c, "a different seed perturbs the stream");
}

#[test]
fn parallel_trace_jsonl_is_bit_identical_per_seed() {
    let a = record_parallel(3, 42);
    let b = record_parallel(3, 42);
    assert_eq!(a, b, "parallel JSONL must match bit for bit");
    assert!(!span_lines(&a).is_empty(), "stream contains span events");
}

#[test]
fn one_node_parallel_trace_matches_serial() {
    // With one node the parallel runner's span base is 0 << 48 = 0, so the
    // two runners must produce the very same trace, span ids included.
    let serial = record_serial(1, 42);
    let parallel = record_parallel(1, 42);
    assert_eq!(serial, parallel);
}

#[test]
fn experiment_traces_reconstruct_with_zero_unbalanced_spans() {
    for lines in [record_serial(2, 42), record_parallel(3, 42)] {
        let (summary, bad) = replay_lines_strict(&lines);
        assert!(bad.is_empty(), "stream is parseable: {bad:?}");
        assert!(summary.spans_balanced(), "start/end counts match");
        let f = forest_of(&lines);
        assert_eq!(f.unbalanced(), 0, "every span start has its end");
        assert!(!f.roots.is_empty(), "boots form root spans");
        assert!(
            f.roots
                .iter()
                .any(|r| f.spans[r].kind == "boot.vm" || f.spans[r].kind == "chain.build"),
            "cluster-level roots present"
        );
    }
}

/// The fault-injection rig from `boot_under_faults`, recording spans: base
/// reads fail transiently behind retry/backoff and the cache container dies
/// mid-boot. The trace must stay perfectly nested through both.
#[test]
fn fault_injected_boot_keeps_spans_balanced() {
    const VSIZE: u64 = 4 << 20;
    let content: Vec<u8> = (0..VSIZE as usize).map(|i| (i % 249) as u8).collect();
    let sink = JsonlSink::new();
    let obs = vmi_obs::Obs::new(Arc::new(ManualClock::new(0)), sink.clone());

    let base_faults = Arc::new(FaultDev::new(Arc::new(MemDev::from_vec(content.clone()))));
    base_faults.inject(FaultPlan::EveryNth {
        site: FaultSite::Read,
        n: 5,
        kind: BlockErrorKind::Io,
    });
    let base = Arc::new(RetryDev::with_obs(
        base_faults as SharedDev,
        RetryPolicy::attempts(4).with_seed(7).with_jitter(0.25),
        obs.clone(),
    ));

    let ns = MapResolver::new();
    ns.insert("base", base as SharedDev);
    let container = Arc::new(FaultDev::new(Arc::new(MemDev::new())));
    ns.insert("cache", container.clone() as SharedDev);
    let cow = create_cached_chain_with_obs(
        &ns,
        "base",
        "cache",
        container.clone() as SharedDev,
        Arc::new(MemDev::new()),
        VSIZE,
        VSIZE,
        9,
        &obs,
    )
    .unwrap();
    container.inject(FaultPlan::NthOp {
        site: FaultSite::Write,
        n: 40,
        kind: BlockErrorKind::Io,
    });

    let mut buf = vec![0u8; 4096];
    for i in 0..200u64 {
        let off = (i * 7919 * 512) % (VSIZE - 4096);
        cow.read_at(&mut buf, off).unwrap();
    }

    let lines = sink.lines();
    let f = forest_of(&lines);
    assert_eq!(
        f.unbalanced(),
        0,
        "faults and retries must not leak open spans"
    );
    assert!(
        f.spans.values().any(|s| s.kind == "retry.backoff"),
        "backoff spans recorded under injected faults"
    );
    assert!(
        f.spans.values().any(|s| s.kind == "qcow.read"),
        "guest reads traced"
    );
}

/// Arbitrary span-kind strings: dot-namespaced lowercase words.
fn kind_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..26, 1..12)
        .prop_map(|v| v.iter().map(|b| (b'a' + b) as char).collect())
}

/// Arbitrary attribute strings over a palette that stresses the JSONL
/// escaper: quotes, backslashes, control characters, and unicode.
fn detail_strategy() -> impl Strategy<Value = String> {
    const PALETTE: [char; 12] = [
        'a',
        'Z',
        '9',
        ' ',
        '=',
        '"',
        '\\',
        '\n',
        '\t',
        '\u{1}',
        'é',
        '\u{1F600}',
    ];
    proptest::collection::vec(0usize..PALETTE.len(), 0..24)
        .prop_map(|v| v.iter().map(|&i| PALETTE[i]).collect())
}

proptest! {
    /// Span events survive the JSONL wire format for arbitrary ids and
    /// attribute strings (quotes, backslashes, control chars, unicode).
    #[test]
    fn span_event_wire_roundtrip(
        t in any::<u64>(),
        id in 1..u64::MAX,
        parent in any::<u64>(),
        kind in kind_strategy(),
        detail in detail_strategy(),
    ) {
        let ev = Event::SpanStart {
            id,
            parent,
            kind: kind.clone(),
            detail: detail.clone(),
        };
        let line = ev.to_json_line(t);
        let (t2, ev2) = Event::parse_line(&line).unwrap();
        prop_assert_eq!(t2, t);
        prop_assert_eq!(ev2, ev);

        let end = Event::SpanEnd { id };
        let (t3, end2) = Event::parse_line(&end.to_json_line(t)).unwrap();
        prop_assert_eq!(t3, t);
        prop_assert_eq!(end2, end);
    }
}
