//! Observability end-to-end: the JSONL event stream and the telemetry
//! section of experiment outcomes must tell the same story as the
//! simulation itself.

use std::sync::Arc;

use vmi_bench::obs_report::{replay, ReplaySummary};
use vmi_blockdev::{BlockDev, MemDev, SharedDev};
use vmi_cluster::{run_experiment, ExperimentConfig, Mode, Placement, Telemetry, WarmStore};
use vmi_obs::{met, Event, JsonlSink, ManualClock, Obs, RecorderHandle};
use vmi_qcow::{create_cached_chain_with_obs, MapResolver, QcowImage};
use vmi_sim::NetSpec;

const QUOTA: u64 = 16 << 20;

fn cfg(mode: Mode, store: &Arc<WarmStore>, recorder: RecorderHandle) -> ExperimentConfig {
    ExperimentConfig {
        nodes: 2,
        vmis: 1,
        profile: vmi_trace::VmiProfile::tiny_test(),
        net: NetSpec::gbe_1(),
        mode,
        seed: 11,
        warm_store: Some(store.clone()),
        recorder,
    }
}

#[test]
fn warm_cache_run_is_all_hits_with_no_miss_events() {
    let store = WarmStore::new();
    let (recorder, sink) = RecorderHandle::jsonl();
    let out = run_experiment(&cfg(
        Mode::WarmCache {
            placement: Placement::ComputeDisk,
            quota: QUOTA,
            cluster_bits: 9,
        },
        &store,
        recorder,
    ))
    .unwrap();

    assert_eq!(out.telemetry.hit_ratio, 1.0, "warm boots never miss");
    assert!(!out.telemetry.per_cache.is_empty(), "cache layers reported");
    let events = sink.events();
    assert!(
        events
            .iter()
            .all(|(_, e)| !matches!(e, Event::CacheMiss { .. })),
        "no cache_miss events in a warm run"
    );
    assert!(
        events
            .iter()
            .any(|(_, e)| matches!(e, Event::CacheHit { .. })),
        "warm reads are recorded as hits"
    );
    // The stream and the registry-backed telemetry agree.
    assert!(replay(&events).consistent_with(&out.telemetry));
}

#[test]
fn cold_then_warm_replay_matches_telemetry() {
    // The acceptance flow: one shared JSONL stream across a cold boot and
    // a warm boot of the same VMI. The stream must contain chain_open,
    // cache_miss and cor_fill (cold phase) followed by cache_hit (warm
    // phase), and replaying it must reproduce the telemetry counters.
    let store = WarmStore::new();
    let sink = JsonlSink::new();
    let recorder = RecorderHandle::of(sink.clone());

    let cold = run_experiment(&cfg(
        Mode::ColdCache {
            placement: Placement::ComputeDisk,
            quota: QUOTA,
            cluster_bits: 9,
        },
        &store,
        recorder.clone(),
    ))
    .unwrap();
    let cold_events = sink.events();

    let warm = run_experiment(&cfg(
        Mode::WarmCache {
            placement: Placement::ComputeDisk,
            quota: QUOTA,
            cluster_bits: 9,
        },
        &store,
        recorder,
    ))
    .unwrap();
    let all_events = sink.events();
    let warm_events = &all_events[cold_events.len()..];

    // Cold phase: the chain is opened, reads miss and fill.
    let pos =
        |evs: &[(u64, Event)], pred: fn(&Event) -> bool| evs.iter().position(|(_, e)| pred(e));
    let open = pos(&cold_events, |e| matches!(e, Event::ChainOpen { .. })).expect("chain_open");
    let miss = pos(&cold_events, |e| matches!(e, Event::CacheMiss { .. })).expect("cache_miss");
    let fill = pos(&cold_events, |e| matches!(e, Event::CorFill { .. })).expect("cor_fill");
    assert!(
        open < miss && miss < fill,
        "open={open} miss={miss} fill={fill}"
    );

    // Warm phase: hits, no fills.
    assert!(warm_events
        .iter()
        .any(|(_, e)| matches!(e, Event::CacheHit { .. })));
    assert!(warm_events
        .iter()
        .all(|(_, e)| !matches!(e, Event::CorFill { .. })));

    // Each phase's stream replays to exactly that phase's telemetry.
    assert!(
        replay(&cold_events).consistent_with(&cold.telemetry),
        "cold replay drifted"
    );
    assert!(
        replay(warm_events).consistent_with(&warm.telemetry),
        "warm replay drifted"
    );
    assert_eq!(warm.telemetry.hit_ratio, 1.0);
    assert!(cold.telemetry.fill_bytes > 0, "cold boots fill the cache");
}

#[test]
fn quota_exhaustion_latches_once_and_reads_continue() {
    const VSIZE: u64 = 4 << 20;
    let content: Vec<u8> = (0..VSIZE as usize).map(|i| (i % 251) as u8).collect();
    let base: SharedDev = Arc::new(MemDev::from_vec(content.clone()));
    let ns = MapResolver::new();
    ns.insert("base", base);
    let cache_dev = ns.create_mem("cache");
    let g = vmi_qcow::Geometry::new(9, VSIZE).unwrap();
    let quota = g.cluster_size() + g.l1_table_bytes() + 20 * 512;

    let sink = JsonlSink::new();
    let obs = Obs::new(Arc::new(ManualClock::new(0)), sink.clone());
    let cow = create_cached_chain_with_obs(
        &ns,
        "base",
        "cache",
        cache_dev,
        Arc::new(MemDev::new()),
        VSIZE,
        quota,
        9,
        &obs,
    )
    .unwrap();

    let mut buf = vec![0u8; 8192];
    for i in 0..128u64 {
        cow.read_at(&mut buf, i * 8192).unwrap();
        assert_eq!(
            &buf[..],
            &content[(i * 8192) as usize..(i * 8192 + 8192) as usize],
            "reads keep serving correct data after exhaustion"
        );
    }

    let latches = sink
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, Event::SpaceErrorLatched { .. }))
        .count();
    assert_eq!(latches, 1, "the space error latches exactly once");
    assert_eq!(obs.counter_value(met::SPACE_ERRORS), 1);

    // Fills stopped at the latch: the fill counter is frozen while reads go on.
    let fills_at_latch = obs.counter_value(met::COR_FILL_BYTES);
    for i in 0..128u64 {
        cow.read_at(&mut buf, i * 8192).unwrap();
    }
    assert_eq!(
        obs.counter_value(met::COR_FILL_BYTES),
        fills_at_latch,
        "no fill bytes after the latch"
    );

    let cache = cow.backing().unwrap();
    let cache_img = cache
        .as_any()
        .and_then(|a| a.downcast_ref::<QcowImage>())
        .expect("cache layer");
    assert!(
        cache_img.cor_stats().fill_rejects > 0,
        "rejected fills are counted"
    );
}

#[test]
fn replay_summary_matches_registry_counters() {
    // Registry counters and stream replay are two independent code paths;
    // drive both through one cold run and diff them field by field.
    let store = WarmStore::new();
    let (recorder, sink) = RecorderHandle::jsonl();
    let out = run_experiment(&cfg(
        Mode::ColdCache {
            placement: Placement::ComputeDisk,
            quota: QUOTA,
            cluster_bits: 9,
        },
        &store,
        recorder,
    ))
    .unwrap();
    let s: ReplaySummary = replay(&sink.events());
    let t: &Telemetry = &out.telemetry;
    assert_eq!(s.fill_bytes, t.fill_bytes);
    assert_eq!(s.space_errors, t.space_errors);
    assert_eq!(s.evictions, t.evictions);
    assert!(s.chain_opens > 0);
    assert!((s.hit_ratio() - t.hit_ratio).abs() < 1e-12);
}
