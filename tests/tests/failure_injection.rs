//! Failure injection across the chain: transient I/O errors, corrupt
//! metadata, and quota exhaustion must degrade exactly as designed.

use std::sync::Arc;

use vmi_blockdev::{
    BlockDev, BlockErrorKind, ByteRange, FaultDev, FaultPlan, FaultSite, MemDev, SharedDev,
};
use vmi_qcow::{create_cached_chain, CreateOpts, Header, MapResolver, QcowImage};

const VSIZE: u64 = 4 << 20;

fn base_with_content() -> (SharedDev, Vec<u8>) {
    let content: Vec<u8> = (0..VSIZE as usize).map(|i| (i % 253) as u8).collect();
    (Arc::new(MemDev::from_vec(content.clone())), content)
}

#[test]
fn base_read_error_propagates_without_corrupting_cache() {
    let (base, _) = base_with_content();
    let faulty = Arc::new(FaultDev::new(base));
    faulty.inject(FaultPlan::Range {
        site: FaultSite::Read,
        range: ByteRange::at(1 << 20, 4096),
        kind: BlockErrorKind::Io,
    });
    let ns = MapResolver::new();
    ns.insert("base", faulty.clone() as SharedDev);
    let cache_dev = ns.create_mem("cache");
    let cow = create_cached_chain(
        &ns,
        "base",
        "cache",
        cache_dev,
        Arc::new(MemDev::new()),
        VSIZE,
        2 << 20,
        9,
    )
    .unwrap();

    let mut buf = [0u8; 4096];
    // Reads outside the faulted range work and warm the cache.
    cow.read_at(&mut buf, 0).unwrap();
    // The faulted range errors out to the guest.
    let err = cow.read_at(&mut buf, 1 << 20).unwrap_err();
    assert_eq!(err.kind(), BlockErrorKind::Io);
    // The chain stays usable afterwards, and the cache stays clean.
    faulty.clear();
    cow.read_at(&mut buf, 1 << 20).unwrap();
    let cache = cow.backing().unwrap();
    let cache_img = cache
        .as_any()
        .and_then(|a| a.downcast_ref::<QcowImage>())
        .expect("cache layer");
    let rep = vmi_qcow::check(cache_img).unwrap();
    assert!(rep.is_clean(), "{:?}", rep.errors);
}

#[test]
fn cache_container_write_error_degrades_instead_of_failing() {
    // A failing cache medium is not a guest error: the read is served from
    // the base and the cache latches degraded (fills stop for good).
    let (base, content) = base_with_content();
    let ns = MapResolver::new();
    ns.insert("base", base);
    let container = Arc::new(FaultDev::new(Arc::new(MemDev::new())));
    ns.insert("cache", container.clone() as SharedDev);
    let cow = create_cached_chain(
        &ns,
        "base",
        "cache",
        container.clone() as SharedDev,
        Arc::new(MemDev::new()),
        VSIZE,
        2 << 20,
        9,
    )
    .unwrap();
    // Arm after creation so header/L1 writes succeed.
    container.inject(FaultPlan::NthOp {
        site: FaultSite::Write,
        n: 0,
        kind: BlockErrorKind::Io,
    });
    let mut buf = [0u8; 512];
    cow.read_at(&mut buf, 0).unwrap();
    assert_eq!(
        &buf[..],
        &content[..512],
        "served from base despite fill loss"
    );
    let cache = cow.backing().unwrap();
    let cache_img = cache
        .as_any()
        .and_then(|a| a.downcast_ref::<QcowImage>())
        .expect("cache layer");
    assert!(cache_img.is_degraded(), "fill failure latches degraded");
    // The one-shot fault is gone, but the latch is permanent: further cold
    // reads stay correct without growing the cache.
    let used = cache_img.cache_used();
    cow.read_at(&mut buf, 8192).unwrap();
    assert_eq!(&buf[..], &content[8192..8192 + 512]);
    assert_eq!(cache_img.cache_used(), used, "degraded cache must not fill");
}

#[test]
fn truncated_header_is_rejected() {
    let dev = Arc::new(MemDev::new());
    QcowImage::create(dev.clone(), CreateOpts::plain(VSIZE), None)
        .unwrap()
        .close()
        .unwrap();
    let mut head = vec![0u8; 32];
    dev.read_at(&mut head, 0).unwrap();
    let truncated: SharedDev = Arc::new(MemDev::from_vec(head));
    let err = QcowImage::open(truncated, None, true).unwrap_err();
    assert_eq!(err.kind(), BlockErrorKind::Corrupt);
}

#[test]
fn corrupted_l1_entry_is_rejected_at_open() {
    let dev = Arc::new(MemDev::new());
    {
        let img = QcowImage::create(dev.clone(), CreateOpts::plain(VSIZE), None).unwrap();
        img.write_at(&[1; 512], 0).unwrap();
        img.close().unwrap();
    }
    let header = Header::decode(dev.as_ref() as &dyn BlockDev).unwrap();
    // Smash the first L1 entry with a non-cluster-aligned offset.
    dev.write_at(&0xdead_beefu64.to_be_bytes(), header.l1_table_offset)
        .unwrap();
    let err = QcowImage::open(dev, None, true).unwrap_err();
    assert_eq!(err.kind(), BlockErrorKind::Corrupt);
}

#[test]
fn flipped_magic_is_rejected() {
    let dev = Arc::new(MemDev::new());
    QcowImage::create(dev.clone(), CreateOpts::plain(VSIZE), None)
        .unwrap()
        .close()
        .unwrap();
    dev.write_at(&[0u8; 4], 0).unwrap();
    assert!(QcowImage::open(dev, None, true).is_err());
}

#[test]
fn quota_exhaustion_is_graceful_not_an_error() {
    // The designed degradation: reads succeed forever; only fills stop.
    let (base, content) = base_with_content();
    let ns = MapResolver::new();
    ns.insert("base", base);
    let cache_dev = ns.create_mem("cache");
    let g = vmi_qcow::Geometry::new(9, VSIZE).unwrap();
    let quota = g.cluster_size() + g.l1_table_bytes() + 20 * 512;
    let cow = create_cached_chain(
        &ns,
        "base",
        "cache",
        cache_dev,
        Arc::new(MemDev::new()),
        VSIZE,
        quota,
        9,
    )
    .unwrap();
    let mut buf = vec![0u8; 8192];
    for i in 0..128u64 {
        cow.read_at(&mut buf, i * 8192).unwrap();
        assert_eq!(
            &buf[..],
            &content[(i * 8192) as usize..(i * 8192 + 8192) as usize],
            "data correct after quota exhaustion"
        );
    }
}

#[test]
fn reread_after_partial_fill_failure_is_consistent() {
    // A fill that dies halfway through a multi-cluster read must not leave
    // a view where re-reads return different data.
    let (base, content) = base_with_content();
    let ns = MapResolver::new();
    ns.insert("base", base);
    let container = Arc::new(FaultDev::new(Arc::new(MemDev::new())));
    ns.insert("cache", container.clone() as SharedDev);
    let cow = create_cached_chain(
        &ns,
        "base",
        "cache",
        container.clone() as SharedDev,
        Arc::new(MemDev::new()),
        VSIZE,
        2 << 20,
        9,
    )
    .unwrap();
    // Fail the 5th container write: some clusters of the request fill, then
    // the fill dies halfway (the read itself succeeds, degraded-mode).
    container.inject(FaultPlan::NthOp {
        site: FaultSite::Write,
        n: 4,
        kind: BlockErrorKind::Io,
    });
    let mut buf = vec![0u8; 16384];
    cow.read_at(&mut buf, 0).unwrap();
    assert_eq!(&buf[..], &content[..16384]);
    // After the fault clears, every byte must still be correct: mapped
    // clusters serve from the cache, the rest from the base.
    container.clear();
    buf.fill(0);
    cow.read_at(&mut buf, 0).unwrap();
    assert_eq!(&buf[..], &content[..16384]);
}
