//! End-to-end boot flows across crates: trace → chain → simulated cluster.

use std::sync::Arc;

use vmi_blockdev::{BlockDev, CountingDev, SparseDev};
use vmi_cluster::{run_experiment, ExperimentConfig, Mode, Placement, WarmStore};
use vmi_qcow::{create_cached_chain, create_cow_over_cache, MapResolver};
use vmi_sim::NetSpec;
use vmi_trace::{OpKind, VmiProfile};

fn tiny_cfg(nodes: usize, vmis: usize, mode: Mode, net: NetSpec) -> ExperimentConfig {
    ExperimentConfig {
        nodes,
        vmis,
        profile: VmiProfile::tiny_test(),
        net,
        mode,
        seed: 11,
        warm_store: Some(WarmStore::new()),
        recorder: Default::default(),
    }
}

const QUOTA: u64 = 16 << 20;

#[test]
fn cold_boot_then_warm_boot_through_shared_namespace() {
    // The operational flow of §4.4 across two "boots" of the same node.
    let profile = VmiProfile::tiny_test();
    let trace = vmi_trace::generate(&profile, 3);
    let ns = MapResolver::new();
    let base = Arc::new(CountingDev::new(Arc::new(SparseDev::with_len(
        profile.virtual_size,
    ))));
    ns.insert("base", base.clone());
    let cache_dev = ns.create_mem("cache");

    // Boot 1: cold.
    {
        let cow = create_cached_chain(
            &ns,
            "base",
            "cache",
            cache_dev,
            Arc::new(SparseDev::new()),
            profile.virtual_size,
            QUOTA,
            9,
        )
        .unwrap();
        replay(&trace, cow.as_ref());
    }
    let after_cold = base.stats().snapshot().read_bytes;
    assert!(after_cold > 0);

    // Boot 2: warm — a new CoW over the persisted cache; base untouched.
    {
        let cow = create_cow_over_cache(
            &ns,
            "cache",
            Arc::new(SparseDev::new()),
            profile.virtual_size,
        )
        .unwrap();
        replay(&trace, cow.as_ref());
    }
    // Opening the chain probes the base's header (48 B) to detect its
    // format; beyond that, the warm boot must not read the base at all.
    let after_warm = base.stats().snapshot().read_bytes;
    assert!(
        after_warm <= after_cold + 64,
        "warm boot must not read base data: {after_warm} vs {after_cold}"
    );
}

#[test]
fn storage_traffic_ordering_across_modes() {
    // warm ≤ qcow2 ≤ cold(64 KiB clusters): the Fig. 9 ordering.
    let net = NetSpec::gbe_1();
    let warm = run_experiment(&tiny_cfg(
        2,
        1,
        Mode::WarmCache {
            placement: Placement::ComputeDisk,
            quota: QUOTA,
            cluster_bits: 9,
        },
        net,
    ))
    .unwrap();
    let qcow = run_experiment(&tiny_cfg(2, 1, Mode::Qcow2, net)).unwrap();
    let cold64 = run_experiment(&tiny_cfg(
        2,
        1,
        Mode::ColdCache {
            placement: Placement::ComputeMem,
            quota: QUOTA,
            cluster_bits: 16,
        },
        net,
    ))
    .unwrap();
    assert!(warm.storage_nic.bytes < qcow.storage_nic.bytes);
    assert!(qcow.storage_nic.bytes < cold64.storage_nic.bytes);
}

#[test]
fn single_vmi_scaling_is_flat_with_warm_caches() {
    // The headline claim: warm-cached simultaneous startups cost what one
    // costs. Mean boot time at N nodes within 2 % of 1 node.
    let mode = Mode::WarmCache {
        placement: Placement::ComputeDisk,
        quota: QUOTA,
        cluster_bits: 9,
    };
    let one = run_experiment(&tiny_cfg(1, 1, mode, NetSpec::gbe_1())).unwrap();
    let many = run_experiment(&tiny_cfg(4, 1, mode, NetSpec::gbe_1())).unwrap();
    let ratio = many.stats.mean_secs() / one.stats.mean_secs();
    assert!((0.98..1.02).contains(&ratio), "ratio {ratio}");
}

#[test]
fn many_vmis_hurt_qcow2_but_not_warm_caches() {
    // Fig. 12's point, at smoke scale over IB (disk-bound).
    let net = NetSpec::ib_32g();
    let q1 = run_experiment(&tiny_cfg(4, 1, Mode::Qcow2, net)).unwrap();
    let q4 = run_experiment(&tiny_cfg(4, 4, Mode::Qcow2, net)).unwrap();
    assert!(
        q4.stats.mean_secs() > 1.2 * q1.stats.mean_secs(),
        "distinct VMIs must defeat the storage page cache: {} vs {}",
        q4.stats.mean_secs(),
        q1.stats.mean_secs()
    );
    let mode = Mode::WarmCache {
        placement: Placement::ComputeDisk,
        quota: QUOTA,
        cluster_bits: 9,
    };
    let w4 = run_experiment(&tiny_cfg(4, 4, mode, net)).unwrap();
    let w1 = run_experiment(&tiny_cfg(4, 1, mode, net)).unwrap();
    let ratio = w4.stats.mean_secs() / w1.stats.mean_secs();
    assert!(
        (0.9..1.1).contains(&ratio),
        "warm boots must not care about #VMIs: {ratio}"
    );
}

#[test]
fn storage_mem_cold_flow_charges_transfer_to_creator() {
    let mode = Mode::ColdCache {
        placement: Placement::StorageMem,
        quota: QUOTA,
        cluster_bits: 9,
    };
    let out = run_experiment(&tiny_cfg(4, 1, mode, NetSpec::ib_32g())).unwrap();
    // Node 0 creates + transfers; its boot is the longest.
    let creator = out.outcomes[0];
    let others_max = out.outcomes[1..].iter().map(|o| o.boot_ns).max().unwrap();
    assert!(
        creator.boot_ns > others_max,
        "creator {} must pay the transfer beyond followers {}",
        creator.boot_ns,
        others_max
    );
}

#[test]
fn page_cache_effect_first_booter_pulls_for_everyone() {
    // Same VMI on several nodes over IB: the storage disk sees roughly one
    // working set regardless of node count (Fig. 2's flat IB line).
    let a = run_experiment(&tiny_cfg(1, 1, Mode::Qcow2, NetSpec::ib_32g())).unwrap();
    let b = run_experiment(&tiny_cfg(4, 1, Mode::Qcow2, NetSpec::ib_32g())).unwrap();
    let per_node_growth =
        b.storage_disk.read_bytes as f64 / a.storage_disk.read_bytes.max(1) as f64;
    assert!(
        per_node_growth < 1.3,
        "disk reads must not scale with nodes on a shared VMI: {per_node_growth}"
    );
}

#[test]
fn experiments_are_reproducible_across_processes_shape() {
    // Not just in-process determinism: the canonical seed produces stable
    // known-good aggregates (guards against accidental model drift).
    let out = run_experiment(&tiny_cfg(2, 1, Mode::Qcow2, NetSpec::gbe_1())).unwrap();
    let again = run_experiment(&tiny_cfg(2, 1, Mode::Qcow2, NetSpec::gbe_1())).unwrap();
    assert_eq!(out.outcomes, again.outcomes);
    assert_eq!(out.storage_nic.bytes, again.storage_nic.bytes);
}

fn replay(trace: &vmi_trace::BootTrace, dev: &dyn BlockDev) {
    let mut buf = vec![0u8; 1 << 20];
    for op in &trace.ops {
        let n = op.len as usize;
        match op.kind {
            OpKind::Read => dev.read_at(&mut buf[..n], op.offset).unwrap(),
            OpKind::Write => dev.write_at(&buf[..n], op.offset).unwrap(),
        }
    }
}
