//! End-to-end audit coverage.
//!
//! Three claims from the audit work, verified against the real driver:
//!
//! 1. **Zero false positives** — images produced by every mutating flow the
//!    driver supports (plain writes, copy-on-read warming, CoW chains,
//!    snapshots, discard, resize) audit clean after close.
//! 2. **Corruption is reported, never a panic** — random bit flips and
//!    garbage splats over a valid container always come back as typed
//!    violations (or, for benign flips in data payload, nothing), and
//!    targeted metadata flips are always detected.
//! 3. **The golden fixture set behaves** — `vmi-img make-fixtures` produces
//!    `ok-*` images that fsck clean and `bad-*` images that violate, the
//!    same contract the CI audit job enforces with the CLI.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use vmi_audit::{audit_chain, audit_image, ViolationKind};
use vmi_blockdev::{be_u32, be_u64, BlockDev, MemDev, SharedDev};
use vmi_qcow::{CreateOpts, QcowImage};

const MB: u64 = 1 << 20;

fn mem(len: u64) -> SharedDev {
    Arc::new(MemDev::with_len(len))
}

/// A raw base filled with a repeating non-zero pattern.
fn patterned_base(len: u64) -> SharedDev {
    let mut data = vec![0u8; len as usize];
    for (i, b) in data.iter_mut().enumerate() {
        *b = (i % 249) as u8 + 1;
    }
    Arc::new(MemDev::from_vec(data))
}

// ---------------------------------------------------------------------------
// 1. Zero false positives on every driver flow.
// ---------------------------------------------------------------------------

#[test]
fn plain_image_flows_audit_clean() {
    let dev = mem(0);
    let img = QcowImage::create(dev.clone(), CreateOpts::plain(4 * MB), None).unwrap();
    img.write_at(&[0xA5; 4096], 0).unwrap();
    img.write_at(&[0x5A; 4096], 2 * MB).unwrap();
    img.write_at(&[1; 100], 4 * MB - 100).unwrap();
    img.close().unwrap();
    let rep = audit_image(dev.as_ref());
    assert!(rep.is_clean(), "plain flow: {:?}", rep.violations);
}

#[test]
fn resize_and_discard_audit_clean() {
    let dev = mem(0);
    let img = QcowImage::create(dev.clone(), CreateOpts::plain(2 * MB), None).unwrap();
    img.write_at(&[7; 8192], MB).unwrap();
    let img = img.resize(4 * MB).unwrap();
    img.write_at(&[8; 8192], 3 * MB).unwrap();
    img.discard(MB, 8192).unwrap();
    img.close().unwrap();
    let rep = audit_image(dev.as_ref());
    assert!(rep.is_clean(), "resize+discard flow: {:?}", rep.violations);
}

#[test]
fn snapshot_flows_audit_clean() {
    let dev = mem(0);
    let img = QcowImage::create(dev.clone(), CreateOpts::plain(2 * MB), None).unwrap();
    img.write_at(&[1; 4096], 0).unwrap();
    let id = img.create_snapshot("s1".to_string()).unwrap();
    img.write_at(&[2; 4096], 0).unwrap();
    img.create_snapshot("s2".to_string()).unwrap();
    img.apply_snapshot(id).unwrap();
    img.delete_snapshot(id).unwrap();
    img.close().unwrap();
    let rep = audit_image(dev.as_ref());
    assert!(rep.is_clean(), "snapshot flow: {:?}", rep.violations);
}

#[test]
fn warmed_cache_chain_audits_clean_deep() {
    let base = patterned_base(2 * MB);
    let cache_dev = mem(0);
    let cache = QcowImage::create(
        cache_dev.clone(),
        CreateOpts::cache(2 * MB, "base", MB),
        Some(base.clone()),
    )
    .unwrap();
    let mut buf = vec![0u8; 4096];
    for off in (0..(256u64 << 10)).step_by(4096) {
        cache.read_at(&mut buf, off).unwrap();
    }
    cache.close().unwrap();

    let rep = audit_image(cache_dev.as_ref());
    assert!(rep.is_clean(), "warm cache: {:?}", rep.violations);
    assert!(rep.is_cache);
    assert_eq!(rep.recomputed_used, rep.recorded_used);

    let chain = audit_chain(&[cache_dev, base], true);
    assert!(chain.is_clean(), "deep chain: {:?}", chain.all_violations());
}

#[test]
fn full_cow_chain_audits_clean_deep() {
    let base = patterned_base(2 * MB);
    let cache_dev = mem(0);
    let cow_dev = mem(0);
    let cache = QcowImage::create(
        cache_dev.clone(),
        CreateOpts::cache(2 * MB, "base", MB),
        Some(base.clone()),
    )
    .unwrap();
    let cow = QcowImage::create(
        cow_dev.clone(),
        CreateOpts::cow(2 * MB, "cache"),
        Some(cache.clone() as SharedDev),
    )
    .unwrap();
    let mut buf = vec![0u8; 4096];
    for off in (0..(128u64 << 10)).step_by(4096) {
        cow.read_at(&mut buf, off).unwrap();
    }
    // CoW divergence is legal; only the cache layer must stay immutable.
    cow.write_at(&[0xEE; 4096], 64 << 10).unwrap();
    cow.close().unwrap();
    cache.close().unwrap();

    let chain = audit_chain(&[cow_dev, cache_dev, base], true);
    assert!(chain.is_clean(), "cow chain: {:?}", chain.all_violations());
}

// ---------------------------------------------------------------------------
// 2. Corruption never panics the auditor; metadata damage is detected.
// ---------------------------------------------------------------------------

/// Serialized bytes of a freshly warmed cache image (built once; each case
/// clones and corrupts its own copy).
fn warm_cache_bytes() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let base = patterned_base(256 << 10);
        let dev = Arc::new(MemDev::new());
        let cache = QcowImage::create(
            dev.clone() as SharedDev,
            CreateOpts::cache(256 << 10, "base", 128 << 10),
            Some(base),
        )
        .unwrap();
        let mut buf = vec![0u8; 4096];
        for off in (0..(64u64 << 10)).step_by(4096) {
            cache.read_at(&mut buf, off).unwrap();
        }
        cache.close().unwrap();
        dev.to_vec()
    })
}

/// Offset of the cache extension's `used` field, found by walking the
/// extension frames the same way the auditor does.
fn used_field_offset(raw: &[u8]) -> usize {
    const EXT_CACHE: u32 = 0xCAC8_E001;
    let mut off = 48usize;
    loop {
        let ty = be_u32(&raw[off..]);
        let len = be_u32(&raw[off + 4..]) as usize;
        assert_ne!(ty, 0, "cache extension must exist");
        if ty == EXT_CACHE {
            return off + 16;
        }
        off += 8 + len.next_multiple_of(8);
    }
}

/// Offset of the first allocated L1 entry.
fn first_l1_entry_offset(raw: &[u8]) -> usize {
    let l1_off = be_u64(&raw[32..]) as usize;
    let l1_size = be_u32(&raw[40..]) as usize;
    for i in 0..l1_size {
        if be_u64(&raw[l1_off + i * 8..]) != 0 {
            return l1_off + i * 8;
        }
    }
    panic!("warmed cache must have an allocated L1 entry");
}

proptest! {
    /// Any single bit flip anywhere in the container: the audit completes
    /// without panicking. (Flips in data payload are legitimately silent.)
    #[test]
    fn proptest_bit_flip_never_panics(pos in 0usize..200_000, bit in 0u8..8) {
        let mut raw = warm_cache_bytes().clone();
        let pos = pos % raw.len();
        raw[pos] ^= 1 << bit;
        let dev = MemDev::from_vec(raw);
        let _ = audit_image(&dev);
    }

    /// Garbage splats over random ranges never panic either.
    #[test]
    fn proptest_garbage_splat_never_panics(
        start in 0usize..200_000,
        len in 1usize..4096,
        fill in any::<u8>(),
    ) {
        let mut raw = warm_cache_bytes().clone();
        let start = start % raw.len();
        let end = (start + len).min(raw.len());
        raw[start..end].fill(fill);
        let dev = MemDev::from_vec(raw);
        let _ = audit_image(&dev);
    }

    /// Flipping any bit of the recorded used-size is always detected (the
    /// field matched the recomputed ground truth before the flip).
    #[test]
    fn proptest_used_field_flip_detected(byte in 0usize..8, bit in 0u8..8) {
        let mut raw = warm_cache_bytes().clone();
        let off = used_field_offset(&raw) + byte;
        raw[off] ^= 1 << bit;
        let dev = MemDev::from_vec(raw);
        let rep = audit_image(&dev);
        prop_assert!(!rep.is_clean(), "used-field flip must be flagged");
        prop_assert!(rep.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::UsedSizeMismatch | ViolationKind::QuotaExceeded
        )));
    }

    /// Flipping a sub-alignment bit of an allocated L1 entry makes the
    /// pointer unaligned — always detected.
    #[test]
    fn proptest_l1_alignment_flip_detected(bit in 0u8..9) {
        let mut raw = warm_cache_bytes().clone();
        let off = first_l1_entry_offset(&raw);
        // Entries are big-endian; bit N of the value lives in byte 7 - N/8.
        raw[off + 7 - (bit / 8) as usize] ^= 1 << (bit % 8);
        let dev = MemDev::from_vec(raw);
        let rep = audit_image(&dev);
        prop_assert!(!rep.is_clean(), "L1 misalignment must be flagged");
    }
}

// ---------------------------------------------------------------------------
// 3. Golden fixtures: the library-level version of the CI audit job.
// ---------------------------------------------------------------------------

#[test]
fn golden_fixtures_honour_their_naming_contract() {
    let dir = std::env::temp_dir().join(format!("vmi-audit-fixtures-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let made = vmi_img::fixtures::make_fixtures(&dir).unwrap();
    assert!(made.len() >= 8, "expected the full fixture set");
    for path in &made {
        let name = path.file_name().unwrap().to_str().unwrap();
        let devs = vmi_img::collect_chain_devs(path).unwrap();
        let rep = audit_chain(&devs, true);
        if name.starts_with("ok-") {
            assert!(
                rep.is_clean(),
                "{name} must fsck clean: {:?}",
                rep.all_violations()
            );
        } else {
            assert!(
                !rep.is_clean(),
                "{name} must produce at least one violation"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
