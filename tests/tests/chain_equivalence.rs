//! Property-based equivalence: an image chain must be indistinguishable
//! from a flat disk, and the cache layer must uphold its §3 requirements
//! (immutability w.r.t. the base, quota never exceeded) under arbitrary
//! operation interleavings.

use std::sync::Arc;

use proptest::prelude::*;
use vmi_blockdev::{BlockDev, MemDev, SharedDev};
use vmi_qcow::{create_cached_chain, CreateOpts, MapResolver, QcowImage};

const VSIZE: u64 = 4 << 20;

#[derive(Debug, Clone)]
enum GuestOp {
    Read { off: u64, len: usize },
    Write { off: u64, byte: u8, len: usize },
}

fn ops_strategy() -> impl Strategy<Value = Vec<GuestOp>> {
    let op = prop_oneof![
        (0..VSIZE - 70_000, 1usize..70_000).prop_map(|(off, len)| GuestOp::Read { off, len }),
        (0..VSIZE - 70_000, any::<u8>(), 1usize..70_000)
            .prop_map(|(off, byte, len)| GuestOp::Write { off, byte, len }),
    ];
    proptest::collection::vec(op, 1..40)
}

/// Build a base image with deterministic content, a reference copy of the
/// guest-visible bytes, and the paper's three-layer chain over it.
fn build_chain(seed: u8, quota: u64) -> (Vec<u8>, Arc<QcowImage>, SharedDev) {
    let mut reference = vec![0u8; VSIZE as usize];
    for (i, b) in reference.iter_mut().enumerate() {
        *b = (i as u64 % 251) as u8 ^ seed;
    }
    let ns = MapResolver::new();
    let base_dev: SharedDev = Arc::new(MemDev::from_vec(reference.clone()));
    ns.insert("base", base_dev.clone());
    let cache_dev = ns.create_mem("cache");
    let cow = create_cached_chain(
        &ns,
        "base",
        "cache",
        cache_dev,
        Arc::new(MemDev::new()),
        VSIZE,
        quota,
        9,
    )
    .expect("chain builds");
    (reference, cow, base_dev)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The chain's guest-visible content equals a flat byte array under any
    /// interleaving of reads and writes — including once the cache quota is
    /// exhausted mid-sequence.
    #[test]
    fn chain_equals_flat_disk(ops in ops_strategy(), seed in any::<u8>()) {
        // Small quota: many sequences exhaust it, exercising the space-error
        // path inside the interleaving.
        let (mut reference, cow, _base) = build_chain(seed, 1 << 20);
        let mut buf = vec![0u8; 70_000];
        for op in &ops {
            match *op {
                GuestOp::Read { off, len } => {
                    cow.read_at(&mut buf[..len], off).unwrap();
                    prop_assert_eq!(&buf[..len], &reference[off as usize..off as usize + len]);
                }
                GuestOp::Write { off, byte, len } => {
                    buf[..len].fill(byte);
                    cow.write_at(&buf[..len], off).unwrap();
                    reference[off as usize..off as usize + len].fill(byte);
                }
            }
        }
        // Full-image sweep at the end.
        let mut all = vec![0u8; VSIZE as usize];
        cow.read_at(&mut all, 0).unwrap();
        prop_assert_eq!(all, reference);
    }

    /// §3 requirement three: "immutability with respect to the base image".
    /// No guest op sequence may alter a single byte of the base.
    #[test]
    fn base_image_never_modified(ops in ops_strategy(), seed in any::<u8>()) {
        let (original, cow, base_dev) = build_chain(seed, 2 << 20);
        let mut buf = vec![0u8; 70_000];
        for op in &ops {
            match *op {
                GuestOp::Read { off, len } => cow.read_at(&mut buf[..len], off).unwrap(),
                GuestOp::Write { off, byte, len } => {
                    buf[..len].fill(byte);
                    cow.write_at(&buf[..len], off).unwrap();
                }
            }
        }
        let mut base_now = vec![0u8; VSIZE as usize];
        base_dev.read_at(&mut base_now, 0).unwrap();
        prop_assert_eq!(base_now, original);
    }

    /// §3 requirement two: the quota bounds the cache at all times, and the
    /// structural check stays clean.
    #[test]
    fn quota_invariant_holds(ops in ops_strategy(), quota_kb in 64u64..4096) {
        let quota = quota_kb * 1024;
        let (_, cow, _) = build_chain(3, quota);
        let cache_dev = cow.backing().unwrap().clone();
        let cache = cache_dev
            .as_any()
            .and_then(|a| a.downcast_ref::<QcowImage>())
            .expect("cache layer");
        let initial = cache.cache_used();
        let mut buf = vec![0u8; 70_000];
        for op in &ops {
            match *op {
                GuestOp::Read { off, len } => cow.read_at(&mut buf[..len], off).unwrap(),
                GuestOp::Write { off, byte, len } => {
                    buf[..len].fill(byte);
                    cow.write_at(&buf[..len], off).unwrap();
                }
            }
            prop_assert!(cache.cache_used() <= quota.max(initial));
        }
        let report = vmi_qcow::check(cache).unwrap();
        prop_assert!(report.is_clean(), "{:?}", report.errors);
    }

    /// A plain CoW chain (no cache) is also equivalent to a flat disk —
    /// the §2 baseline the cache extension must not regress.
    #[test]
    fn plain_cow_equals_flat_disk(ops in ops_strategy(), seed in any::<u8>()) {
        let mut reference = vec![0u8; VSIZE as usize];
        for (i, b) in reference.iter_mut().enumerate() {
            *b = (i as u64 % 241) as u8 ^ seed;
        }
        let base: SharedDev = Arc::new(MemDev::from_vec(reference.clone()));
        let cow = QcowImage::create(
            Arc::new(MemDev::new()),
            CreateOpts::cow(VSIZE, "b"),
            Some(Arc::new(vmi_blockdev::ReadOnlyDev::new(base)) as SharedDev),
        )
        .unwrap();
        let mut buf = vec![0u8; 70_000];
        for op in &ops {
            match *op {
                GuestOp::Read { off, len } => {
                    cow.read_at(&mut buf[..len], off).unwrap();
                    prop_assert_eq!(&buf[..len], &reference[off as usize..off as usize + len]);
                }
                GuestOp::Write { off, byte, len } => {
                    buf[..len].fill(byte);
                    cow.write_at(&buf[..len], off).unwrap();
                    reference[off as usize..off as usize + len].fill(byte);
                }
            }
        }
    }
}
