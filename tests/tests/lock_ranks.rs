//! Cross-check between the two lock-order enforcers: the static manifest
//! (`LOCK_ORDER.toml`, consumed by `vmi-lint`) and the runtime witness
//! (`parking_lot::lockrank` constants in the shim). A rank edited in one
//! place but not the other fails here before it can mislead either tool.

use parking_lot::{lockrank, rank, Mutex};
use vmi_audit::lint::lockorder::Manifest;

fn workspace_manifest() -> Manifest {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../LOCK_ORDER.toml");
    let text = std::fs::read_to_string(path).expect("LOCK_ORDER.toml at repo root");
    Manifest::parse(&text).expect("manifest parses")
}

/// Every class rank in the manifest must be a rank the witness knows, and
/// the witness's name for it must be the class name itself (or a prefix of
/// it, for bands that share a witness label: `dev.counting.write` maps to
/// the witness name `dev.counting`, and the chained-image band 40..=47 all
/// report `qcow.state`).
#[test]
fn manifest_ranks_match_witness_constants() {
    let m = workspace_manifest();
    assert!(!m.classes.is_empty());
    for (class, lc) in &m.classes {
        let witness = lockrank::name(lc.rank);
        assert_ne!(
            witness, "unregistered",
            "class `{class}` rank {} unknown to parking_lot::lockrank",
            lc.rank
        );
        assert!(
            class == witness || class.starts_with(&format!("{witness}.")),
            "class `{class}` (rank {}) maps to witness name `{witness}`",
            lc.rank
        );
    }
}

/// Spot-check the constants the workspace registers at construction against
/// the manifest, so renumbering either side trips immediately.
#[test]
fn witness_constants_agree_with_manifest_ranks() {
    let m = workspace_manifest();
    let expect = [
        ("nbd.exports", lockrank::NBD_EXPORTS),
        ("engine.queue", lockrank::ENGINE_QUEUE),
        ("qcow.range", lockrank::QCOW_RANGE),
        ("qcow.state", lockrank::QCOW_STATE),
        ("qcow.shard", lockrank::QCOW_SHARD),
        ("dev.leaf", lockrank::DEV_LEAF),
        ("sim.world", lockrank::SIM_WORLD),
        ("obs.sink", lockrank::OBS_SINK),
    ];
    for (class, rank) in expect {
        assert_eq!(
            m.classes.get(class).map(|c| c.rank),
            Some(rank),
            "manifest rank for `{class}`"
        );
    }
    // The chained-image state band must fit under its declared top.
    const { assert!(lockrank::QCOW_STATE < lockrank::QCOW_STATE_TOP) };
    const { assert!(lockrank::QCOW_STATE_TOP < lockrank::QCOW_SHARD) };
}

/// Ascending acquisition is legal and guards pop on drop.
#[test]
fn witness_accepts_ascending_order() {
    let low = Mutex::new(0u32);
    low.set_rank(lockrank::QCOW_CHAIN);
    let high = Mutex::new(0u32);
    high.set_rank(lockrank::DEV_LEAF);

    {
        let _a = low.lock();
        let _b = high.lock();
        assert_eq!(
            rank::snapshot(),
            vec![lockrank::QCOW_CHAIN, lockrank::DEV_LEAF]
        );
    }
    assert!(rank::snapshot().is_empty(), "guards popped on drop");

    // Release-then-reacquire in the other order is fine too.
    drop(high.lock());
    drop(low.lock());
}

/// Acquiring a lower rank while a higher one is held panics at the
/// acquiring site with both ranks in the message.
#[test]
#[should_panic(expected = "lock-rank violation")]
fn witness_panics_on_rank_inversion() {
    let low = Mutex::new(0u32);
    low.set_rank(lockrank::QCOW_CHAIN);
    let high = Mutex::new(0u32);
    high.set_rank(lockrank::DEV_LEAF);

    let _b = high.lock();
    let _a = low.lock(); // inversion: QCOW_CHAIN < DEV_LEAF
}

/// Equal ranks are an inversion too, unless the class is reentrant
/// (`rank::held_reentrant`, used only by the byte-range lock class).
#[test]
#[should_panic(expected = "lock-rank violation")]
fn witness_panics_on_equal_rank_self_nest() {
    let a = Mutex::new(0u32);
    a.set_rank(lockrank::SIM_WORLD);
    let b = Mutex::new(0u32);
    b.set_rank(lockrank::SIM_WORLD);

    let _x = a.lock();
    let _y = b.lock();
}

/// Unranked locks (rank 0) are exempt: the witness only judges locks that
/// registered a rank, so incremental adoption cannot produce false panics.
#[test]
fn unranked_locks_are_exempt() {
    let ranked = Mutex::new(0u32);
    ranked.set_rank(lockrank::OBS_SINK);
    let unranked = Mutex::new(0u32);

    let _a = ranked.lock();
    let _b = unranked.lock(); // no rank, no check
}
