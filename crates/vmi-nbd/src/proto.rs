//! NBD wire-protocol constants and framing helpers (fixed-newstyle
//! handshake + simple replies), per the canonical protocol document
//! <https://github.com/NetworkBlockDevice/nbd/blob/master/doc/proto.md>.

use std::io::{Read, Write};

use vmi_blockdev::{BlockError, Result};

/// `NBDMAGIC` — first 8 bytes of the server greeting.
pub const NBDMAGIC: u64 = 0x4e42_444d_4147_4943;
/// `IHAVEOPT` — second 8 bytes of the greeting, and the option-request magic.
pub const IHAVEOPT: u64 = 0x4948_4156_454F_5054;
/// Option *reply* magic.
pub const OPT_REPLY_MAGIC: u64 = 0x0003_e889_0455_65a9;
/// Transmission request magic.
pub const REQUEST_MAGIC: u32 = 0x2560_9513;
/// Transmission (simple) reply magic.
pub const SIMPLE_REPLY_MAGIC: u32 = 0x6744_6698;

/// Handshake flag: fixed-newstyle negotiation.
pub const NBD_FLAG_FIXED_NEWSTYLE: u16 = 1 << 0;
/// Handshake flag: omit the 124-byte zero pad after export info.
pub const NBD_FLAG_NO_ZEROES: u16 = 1 << 1;

/// Client handshake flag mirror of [`NBD_FLAG_FIXED_NEWSTYLE`].
pub const NBD_FLAG_C_FIXED_NEWSTYLE: u32 = 1 << 0;
/// Client handshake flag mirror of [`NBD_FLAG_NO_ZEROES`].
pub const NBD_FLAG_C_NO_ZEROES: u32 = 1 << 1;

/// Option: bind to an export and enter transmission.
pub const NBD_OPT_EXPORT_NAME: u32 = 1;
/// Option: abort the session.
pub const NBD_OPT_ABORT: u32 = 2;
/// Option: list export names.
pub const NBD_OPT_LIST: u32 = 3;

/// Option-reply type: acknowledged.
pub const NBD_REP_ACK: u32 = 1;
/// Option-reply type: one export-name item.
pub const NBD_REP_SERVER: u32 = 2;
/// Option-reply error: unsupported option.
pub const NBD_REP_ERR_UNSUP: u32 = 0x8000_0001;
/// Option-reply error: unknown export.
pub const NBD_REP_ERR_UNKNOWN: u32 = 0x8000_0006;

/// Transmission flag: this export has flags (always set).
pub const NBD_FLAG_HAS_FLAGS: u16 = 1 << 0;
/// Transmission flag: export is read-only.
pub const NBD_FLAG_READ_ONLY: u16 = 1 << 1;
/// Transmission flag: `FLUSH` is supported.
pub const NBD_FLAG_SEND_FLUSH: u16 = 1 << 2;
/// Transmission flag: `TRIM` is supported.
pub const NBD_FLAG_SEND_TRIM: u16 = 1 << 5;

/// Command: read.
pub const NBD_CMD_READ: u16 = 0;
/// Command: write.
pub const NBD_CMD_WRITE: u16 = 1;
/// Command: disconnect.
pub const NBD_CMD_DISC: u16 = 2;
/// Command: flush.
pub const NBD_CMD_FLUSH: u16 = 3;
/// Command: trim (discard).
pub const NBD_CMD_TRIM: u16 = 4;

/// Maximum payload a single transmission request may carry (the protocol
/// document suggests servers SHOULD support at least 32 MiB; we cap there).
/// Requests beyond this get a proper `NBD_EINVAL` *reply* — never an
/// unbounded allocation, and never a dropped connection.
pub const MAX_REQUEST_BYTES: u32 = 32 << 20;

/// POSIX-style error codes carried in replies.
pub const NBD_EIO: u32 = 5;
/// Invalid argument (out-of-range request).
pub const NBD_EINVAL: u32 = 22;
/// No space (cache quota exhausted surfaces as this).
pub const NBD_ENOSPC: u32 = 28;
/// Operation not permitted (write to read-only export).
pub const NBD_EPERM: u32 = 1;

/// One parsed transmission request header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Command flags (unused by this implementation).
    pub flags: u16,
    /// Command type (`NBD_CMD_*`).
    pub ty: u16,
    /// Opaque client handle echoed in the reply.
    pub handle: u64,
    /// Byte offset.
    pub offset: u64,
    /// Byte length.
    pub length: u32,
}

/// Read exactly `n` bytes.
pub fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> Result<()> {
    r.read_exact(buf)
        .map_err(|e| BlockError::new(vmi_blockdev::BlockErrorKind::Io, format!("nbd read: {e}")))
}

/// Consume and discard exactly `n` payload bytes in bounded chunks.
///
/// Used when a request must be rejected but its payload is already on the
/// wire (e.g. an oversized `WRITE`): the stream stays framed so the
/// connection can carry further requests after the error reply.
pub fn drain_payload(r: &mut impl Read, n: u64) -> Result<()> {
    let mut remaining = n;
    let mut sink = [0u8; 8192];
    while remaining > 0 {
        let take = (remaining as usize).min(sink.len());
        read_exact(r, &mut sink[..take])?;
        remaining -= take as u64;
    }
    Ok(())
}

/// Write all bytes.
pub fn write_all(w: &mut impl Write, buf: &[u8]) -> Result<()> {
    w.write_all(buf)
        .map_err(|e| BlockError::new(vmi_blockdev::BlockErrorKind::Io, format!("nbd write: {e}")))
}

/// Read a big-endian u16.
pub fn read_u16(r: &mut impl Read) -> Result<u16> {
    let mut b = [0u8; 2];
    read_exact(r, &mut b)?;
    Ok(u16::from_be_bytes(b))
}

/// Read a big-endian u32.
pub fn read_u32(r: &mut impl Read) -> Result<u32> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b)?;
    Ok(u32::from_be_bytes(b))
}

/// Read a big-endian u64.
pub fn read_u64(r: &mut impl Read) -> Result<u64> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b)?;
    Ok(u64::from_be_bytes(b))
}

/// Parse one transmission request header (after its magic).
pub fn read_request(r: &mut impl Read) -> Result<Request> {
    let magic = read_u32(r)?;
    if magic != REQUEST_MAGIC {
        return Err(BlockError::corrupt(format!("bad request magic {magic:#x}")));
    }
    Ok(Request {
        flags: read_u16(r)?,
        ty: read_u16(r)?,
        handle: read_u64(r)?,
        offset: read_u64(r)?,
        length: read_u32(r)?,
    })
}

/// Serialize one transmission request header.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<()> {
    let mut b = Vec::with_capacity(28);
    b.extend_from_slice(&REQUEST_MAGIC.to_be_bytes());
    b.extend_from_slice(&req.flags.to_be_bytes());
    b.extend_from_slice(&req.ty.to_be_bytes());
    b.extend_from_slice(&req.handle.to_be_bytes());
    b.extend_from_slice(&req.offset.to_be_bytes());
    b.extend_from_slice(&req.length.to_be_bytes());
    write_all(w, &b)
}

/// Write a simple reply header.
pub fn write_simple_reply(w: &mut impl Write, error: u32, handle: u64) -> Result<()> {
    let mut b = Vec::with_capacity(16);
    b.extend_from_slice(&SIMPLE_REPLY_MAGIC.to_be_bytes());
    b.extend_from_slice(&error.to_be_bytes());
    b.extend_from_slice(&handle.to_be_bytes());
    write_all(w, &b)
}

/// Read a simple reply header; returns (error, handle).
pub fn read_simple_reply(r: &mut impl Read) -> Result<(u32, u64)> {
    let magic = read_u32(r)?;
    if magic != SIMPLE_REPLY_MAGIC {
        return Err(BlockError::corrupt(format!("bad reply magic {magic:#x}")));
    }
    Ok((read_u32(r)?, read_u64(r)?))
}

/// Write one option reply (server → client during negotiation).
pub fn write_option_reply(
    w: &mut impl Write,
    option: u32,
    reply_type: u32,
    payload: &[u8],
) -> Result<()> {
    let mut b = Vec::with_capacity(20 + payload.len());
    b.extend_from_slice(&OPT_REPLY_MAGIC.to_be_bytes());
    b.extend_from_slice(&option.to_be_bytes());
    b.extend_from_slice(&reply_type.to_be_bytes());
    b.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    b.extend_from_slice(payload);
    write_all(w, &b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request {
            flags: 0,
            ty: NBD_CMD_READ,
            handle: 0xDEAD,
            offset: 4096,
            length: 512,
        };
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        assert_eq!(buf.len(), 28);
        let back = read_request(&mut &buf[..]).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn simple_reply_roundtrip() {
        let mut buf = Vec::new();
        write_simple_reply(&mut buf, NBD_ENOSPC, 77).unwrap();
        let (err, handle) = read_simple_reply(&mut &buf[..]).unwrap();
        assert_eq!(err, NBD_ENOSPC);
        assert_eq!(handle, 77);
    }

    #[test]
    fn bad_magic_detected() {
        let buf = [0u8; 28];
        assert!(read_request(&mut &buf[..]).is_err());
        assert!(read_simple_reply(&mut &buf[..16]).is_err());
    }

    #[test]
    fn magics_match_spec() {
        // Spot-check the protocol constants against their ASCII identities.
        assert_eq!(&NBDMAGIC.to_be_bytes(), b"NBDMAGIC");
        assert_eq!(&IHAVEOPT.to_be_bytes(), b"IHAVEOPT");
    }
}
