//! The NBD client: attach to a served export and use it as a [`BlockDev`].
//!
//! Because [`NbdClient`] implements `BlockDev`, a remote export can sit
//! anywhere a local device can — including as the *backing device* of a
//! local `vmi-qcow` cache image: a compute node can chain
//! `local cache ← NBD ← storage-node export`, which is exactly the paper's
//! deployment realized over a real network protocol.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;

use parking_lot::{lockrank, Mutex};
use vmi_blockdev::{BlockDev, BlockError, BlockErrorKind, Result};

use crate::proto::*;

struct Conn {
    r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
    next_handle: u64,
}

/// A connected NBD client bound to one export.
pub struct NbdClient {
    conn: Mutex<Conn>,
    size: u64,
    read_only: bool,
    export: String,
}

impl NbdClient {
    /// Connect to `addr` and bind to `export` via fixed-newstyle
    /// negotiation.
    pub fn connect(addr: &str, export: &str) -> Result<Self> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| BlockError::new(BlockErrorKind::Io, format!("connect: {e}")))?;
        stream.set_nodelay(true).ok();
        let mut r = BufReader::new(stream.try_clone().map_err(io_err)?);
        let mut w = BufWriter::new(stream);

        // Handshake.
        let magic = read_u64(&mut r)?;
        if magic != NBDMAGIC {
            return Err(BlockError::corrupt(format!("bad server magic {magic:#x}")));
        }
        let opt_magic = read_u64(&mut r)?;
        if opt_magic != IHAVEOPT {
            return Err(BlockError::corrupt("server is not newstyle"));
        }
        let server_flags = read_u16(&mut r)?;
        if server_flags & NBD_FLAG_FIXED_NEWSTYLE == 0 {
            return Err(BlockError::unsupported("server lacks fixed-newstyle"));
        }
        let no_zeroes = server_flags & NBD_FLAG_NO_ZEROES != 0;
        let mut cflags = NBD_FLAG_C_FIXED_NEWSTYLE;
        if no_zeroes {
            cflags |= NBD_FLAG_C_NO_ZEROES;
        }
        write_all(&mut w, &cflags.to_be_bytes())?;

        // Bind to the export.
        write_all(&mut w, &IHAVEOPT.to_be_bytes())?;
        write_all(&mut w, &NBD_OPT_EXPORT_NAME.to_be_bytes())?;
        write_all(&mut w, &(export.len() as u32).to_be_bytes())?;
        write_all(&mut w, export.as_bytes())?;
        w.flush().map_err(io_err)?;

        let size = read_u64(&mut r)?;
        let tflags = read_u16(&mut r)?;
        if !no_zeroes {
            let mut pad = [0u8; 124];
            read_exact(&mut r, &mut pad)?;
        }
        let conn = Mutex::new(Conn {
            r,
            w,
            next_handle: 1,
        });
        conn.set_rank(lockrank::NBD_CLIENT);
        Ok(Self {
            conn,
            size,
            read_only: tflags & NBD_FLAG_READ_ONLY != 0,
            export: export.to_string(),
        })
    }

    /// Whether the server exported read-only.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// The export name this client is bound to.
    pub fn export_name(&self) -> &str {
        &self.export
    }

    /// Issue `TRIM` for `[off, off + len)`.
    pub fn trim(&self, off: u64, len: u64) -> Result<()> {
        let mut c = self.conn.lock();
        let handle = Self::send(&mut c, NBD_CMD_TRIM, off, len as u32, &[])?;
        Self::expect_ok(&mut c, handle)
    }

    /// Cleanly disconnect (best-effort; Drop also sends it).
    pub fn disconnect(&self) {
        let mut c = self.conn.lock();
        let handle = c.next_handle;
        c.next_handle += 1;
        let _ = write_request(
            &mut c.w,
            &Request {
                flags: 0,
                ty: NBD_CMD_DISC,
                handle,
                offset: 0,
                length: 0,
            },
        );
        let _ = c.w.flush();
    }

    fn send(c: &mut Conn, ty: u16, offset: u64, length: u32, payload: &[u8]) -> Result<u64> {
        let handle = c.next_handle;
        c.next_handle += 1;
        write_request(
            &mut c.w,
            &Request {
                flags: 0,
                ty,
                handle,
                offset,
                length,
            },
        )?;
        if !payload.is_empty() {
            write_all(&mut c.w, payload)?;
        }
        c.w.flush().map_err(io_err)?;
        Ok(handle)
    }

    fn expect_ok(c: &mut Conn, handle: u64) -> Result<()> {
        let (err, h) = read_simple_reply(&mut c.r)?;
        if h != handle {
            return Err(BlockError::corrupt(format!("reply handle {h} != {handle}")));
        }
        err_to_result(err)
    }
}

fn err_to_result(err: u32) -> Result<()> {
    match err {
        0 => Ok(()),
        NBD_ENOSPC => Err(BlockError::no_space("remote: no space")),
        NBD_EPERM => Err(BlockError::read_only("remote: read-only export")),
        NBD_EINVAL => Err(BlockError::unsupported("remote: invalid request")),
        e => Err(BlockError::new(
            BlockErrorKind::Io,
            format!("remote errno {e}"),
        )),
    }
}

fn io_err(e: std::io::Error) -> BlockError {
    BlockError::new(BlockErrorKind::Io, e.to_string())
}

impl BlockDev for NbdClient {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        if off + buf.len() as u64 > self.size {
            return Err(BlockError::out_of_bounds(off, buf.len(), self.size));
        }
        let mut c = self.conn.lock();
        let handle = Self::send(&mut c, NBD_CMD_READ, off, buf.len() as u32, &[])?;
        let (err, h) = read_simple_reply(&mut c.r)?;
        if h != handle {
            return Err(BlockError::corrupt("reply handle mismatch"));
        }
        err_to_result(err)?;
        read_exact(&mut c.r, buf)
    }

    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        if self.read_only {
            return Err(BlockError::read_only("NBD export is read-only"));
        }
        if buf.is_empty() {
            return Ok(());
        }
        let mut c = self.conn.lock();
        let handle = Self::send(&mut c, NBD_CMD_WRITE, off, buf.len() as u32, buf)?;
        Self::expect_ok(&mut c, handle)
    }

    fn len(&self) -> u64 {
        self.size
    }

    fn set_len(&self, _len: u64) -> Result<()> {
        Err(BlockError::unsupported("NBD exports have a fixed size"))
    }

    fn flush(&self) -> Result<()> {
        let mut c = self.conn.lock();
        let handle = Self::send(&mut c, NBD_CMD_FLUSH, 0, 0, &[])?;
        Self::expect_ok(&mut c, handle)
    }

    fn describe(&self) -> String {
        format!("nbd-client({})", self.export)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl Drop for NbdClient {
    fn drop(&mut self) {
        self.disconnect();
    }
}
