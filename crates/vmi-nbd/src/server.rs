//! The NBD server: export any [`BlockDev`] — in particular an opened
//! `vmi-qcow` cache chain — to standard NBD clients over TCP.
//!
//! This is the deployment shape the paper's architecture maps onto today:
//! a storage node keeps warm cache images in memory and *serves* them as
//! network block devices; compute nodes attach and boot. The server speaks
//! fixed-newstyle negotiation (`NBD_OPT_EXPORT_NAME`, `LIST`, `ABORT`) and
//! the simple transmission phase (`READ`/`WRITE`/`FLUSH`/`TRIM`/`DISC`).

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{lockrank, Mutex};
use vmi_blockdev::{BlockErrorKind, Result, SharedDev};
use vmi_obs::{met, Obs};
use vmi_qcow::{ConcurrentImage, QcowImage, RequestEngine};

use crate::proto::*;

/// One served export.
struct Export {
    dev: SharedDev,
    read_only: bool,
}

impl Export {
    /// TRIM maps to image discard when the export is an image layer (plain
    /// or wrapped in [`ConcurrentImage`]); raw devices acknowledge without
    /// action, and read-only image exports refuse.
    fn trim(&self, off: u64, len: u64) -> u32 {
        let any = self.dev.as_any();
        if let Some(conc) = any.and_then(|a| a.downcast_ref::<ConcurrentImage>()) {
            if self.read_only {
                return NBD_EPERM;
            }
            return match conc.discard(off, len) {
                Ok(_) => 0,
                Err(e) => errno(&e),
            };
        }
        match any.and_then(|a| a.downcast_ref::<QcowImage>()) {
            Some(img) if !self.read_only => match img.discard(off, len) {
                Ok(_) => 0,
                Err(e) => errno(&e),
            },
            Some(_) => NBD_EPERM,
            None => 0,
        }
    }
}

/// `Ok` when `[off, off+len)` is a sane request against `dev_len`:
/// within the per-request size cap and within the export, with overflow
/// rejected. `Err` carries the NBD errno for the reply.
fn validate_range(off: u64, len: u32, dev_len: u64) -> std::result::Result<(), u32> {
    if len > MAX_REQUEST_BYTES {
        return Err(NBD_EINVAL);
    }
    match off.checked_add(len as u64) {
        Some(end) if end <= dev_len => Ok(()),
        _ => Err(NBD_EINVAL),
    }
}

/// A running NBD server.
///
/// Exports are looked up by name at `NBD_OPT_EXPORT_NAME` time; each client
/// connection is handled on its own thread. Drop the handle (or call
/// [`NbdServer::shutdown`]) to stop accepting; live connections finish
/// their current request and exit on the next read.
pub struct NbdServer {
    addr: SocketAddr,
    exports: Arc<Mutex<HashMap<String, Arc<Export>>>>,
    stop: Arc<AtomicBool>,
    served_requests: Arc<AtomicU64>,
    pipeline_depth: Arc<AtomicUsize>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl NbdServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) and start
    /// accepting in a background thread.
    pub fn start(addr: &str) -> Result<Self> {
        Self::start_with_obs(addr, Obs::disabled())
    }

    /// [`NbdServer::start`] with an observability handle: every served
    /// transmission request records its wall-clock service time into the
    /// [`met::NBD_REQUEST_NS`] histogram.
    pub fn start_with_obs(addr: &str, obs: Obs) -> Result<Self> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| vmi_blockdev::BlockError::new(BlockErrorKind::Io, format!("bind: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| vmi_blockdev::BlockError::new(BlockErrorKind::Io, e.to_string()))?;
        listener.set_nonblocking(true).ok();
        let exports: Arc<Mutex<HashMap<String, Arc<Export>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        exports.set_rank(lockrank::NBD_EXPORTS);
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let pipeline_depth = Arc::new(AtomicUsize::new(1));
        let accept_thread = {
            let exports = exports.clone();
            let stop = stop.clone();
            let served = served.clone();
            let pipeline_depth = pipeline_depth.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false).ok();
                            stream.set_nodelay(true).ok();
                            let exports = exports.clone();
                            let served = served.clone();
                            let obs = obs.clone();
                            let depth = pipeline_depth.load(Ordering::Acquire);
                            std::thread::spawn(move || {
                                let _ = handle_connection(stream, &exports, &served, &obs, depth);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(Self {
            addr: local,
            exports,
            stop,
            served_requests: served,
            pipeline_depth,
            accept_thread: Some(accept_thread),
        })
    }

    /// Set the per-connection request pipeline depth for connections
    /// accepted *from now on*.
    ///
    /// Depth 1 (the default) keeps the classic serial loop: read a request,
    /// serve it, reply, repeat — and with it the bit-identical span stream
    /// the tracing tests pin down. Depth ≥ 2 switches new connections to
    /// the submission/completion front-end: the reader thread parses and
    /// submits up to `depth` requests into a [`RequestEngine`] whose
    /// workers serve them against the shared export device, and replies go
    /// out in completion order (NBD explicitly permits out-of-order replies
    /// — clients match on the handle).
    pub fn set_pipeline_depth(&self, depth: usize) {
        self.pipeline_depth.store(depth.max(1), Ordering::Release);
    }

    /// The currently configured pipeline depth.
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth.load(Ordering::Acquire)
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Register `dev` under `name`.
    pub fn add_export(&self, name: impl Into<String>, dev: SharedDev, read_only: bool) {
        self.exports
            .lock()
            .insert(name.into(), Arc::new(Export { dev, read_only }));
    }

    /// Register an opened image chain under `name` (the usual case: a CoW
    /// or cache chain served to a booting VM).
    pub fn add_image(&self, name: impl Into<String>, img: Arc<QcowImage>) {
        let ro = img.is_read_only();
        self.add_export(name, img as SharedDev, ro);
    }

    /// Register an image wrapped in [`ConcurrentImage`], so many
    /// connections (and pipelined requests within one connection) serve
    /// warm reads in parallel instead of convoying on the image mutex.
    pub fn add_image_concurrent(&self, name: impl Into<String>, img: Arc<QcowImage>) {
        let ro = img.is_read_only();
        self.add_export(name, ConcurrentImage::new(img) as SharedDev, ro);
    }

    /// Remove an export; existing connections keep their handle.
    pub fn remove_export(&self, name: &str) -> bool {
        self.exports.lock().remove(name).is_some()
    }

    /// Total transmission requests served across all connections.
    pub fn served_requests(&self) -> u64 {
        self.served_requests.load(Ordering::Relaxed)
    }

    /// Stop accepting new connections.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NbdServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection state machine: handshake → option haggling → transmission.
fn handle_connection(
    stream: TcpStream,
    exports: &Mutex<HashMap<String, Arc<Export>>>,
    served: &AtomicU64,
    obs: &Obs,
    depth: usize,
) -> Result<()> {
    let mut r = BufReader::new(stream.try_clone().map_err(io_err)?);
    let mut w = BufWriter::new(stream);

    // --- handshake ------------------------------------------------------
    write_all(&mut w, &NBDMAGIC.to_be_bytes())?;
    write_all(&mut w, &IHAVEOPT.to_be_bytes())?;
    write_all(
        &mut w,
        &(NBD_FLAG_FIXED_NEWSTYLE | NBD_FLAG_NO_ZEROES).to_be_bytes(),
    )?;
    w.flush().map_err(io_err)?;
    let client_flags = read_u32(&mut r)?;
    let no_zeroes = client_flags & NBD_FLAG_C_NO_ZEROES != 0;

    // --- option haggling --------------------------------------------------
    let export: Arc<Export> = loop {
        let magic = read_u64(&mut r)?;
        if magic != IHAVEOPT {
            return Err(vmi_blockdev::BlockError::corrupt("bad option magic"));
        }
        let option = read_u32(&mut r)?;
        let len = read_u32(&mut r)? as usize;
        if len > 4096 {
            return Err(vmi_blockdev::BlockError::corrupt("oversized option"));
        }
        let mut payload = vec![0u8; len];
        read_exact(&mut r, &mut payload)?;
        match option {
            NBD_OPT_EXPORT_NAME => {
                let name = String::from_utf8_lossy(&payload).to_string();
                let Some(export) = exports.lock().get(&name).cloned() else {
                    // EXPORT_NAME has no error reply path: drop the session.
                    return Err(vmi_blockdev::BlockError::unsupported(format!(
                        "unknown export {name:?}"
                    )));
                };
                // Export info: size + transmission flags (+ pad).
                write_all(&mut w, &export.dev.len().to_be_bytes())?;
                let mut flags = NBD_FLAG_HAS_FLAGS | NBD_FLAG_SEND_FLUSH | NBD_FLAG_SEND_TRIM;
                if export.read_only {
                    flags |= NBD_FLAG_READ_ONLY;
                }
                write_all(&mut w, &flags.to_be_bytes())?;
                if !no_zeroes {
                    write_all(&mut w, &[0u8; 124])?;
                }
                w.flush().map_err(io_err)?;
                break export;
            }
            NBD_OPT_LIST => {
                let names: Vec<String> = exports.lock().keys().cloned().collect();
                for name in names {
                    let mut item = (name.len() as u32).to_be_bytes().to_vec();
                    item.extend_from_slice(name.as_bytes());
                    write_option_reply(&mut w, option, NBD_REP_SERVER, &item)?;
                }
                write_option_reply(&mut w, option, NBD_REP_ACK, &[])?;
                w.flush().map_err(io_err)?;
            }
            NBD_OPT_ABORT => {
                write_option_reply(&mut w, option, NBD_REP_ACK, &[])?;
                w.flush().map_err(io_err)?;
                return Ok(());
            }
            _ => {
                write_option_reply(&mut w, option, NBD_REP_ERR_UNSUP, &[])?;
                w.flush().map_err(io_err)?;
            }
        }
    };

    // --- transmission ------------------------------------------------------
    if depth > 1 {
        return transmission_pipelined(r, w, &export, served, obs, depth);
    }
    transmission_serial(r, w, &export, served, obs)
}

/// Classic serial transmission loop: one request at a time, in order.
fn transmission_serial(
    mut r: BufReader<TcpStream>,
    mut w: BufWriter<TcpStream>,
    export: &Export,
    served: &AtomicU64,
    obs: &Obs,
) -> Result<()> {
    let mut data = Vec::new();
    loop {
        let req = read_request(&mut r)?;
        served.fetch_add(1, Ordering::Relaxed);
        let req_start = obs.enabled().then(std::time::Instant::now);
        // One root span per request: everything the device layers emit while
        // serving it (qcow reads, L2 walks, CoR fills, retries) parents here.
        let span = obs.span("nbd.request", || {
            format!(
                "ty={} off={} len={}",
                cmd_name(req.ty),
                req.offset,
                req.length
            )
        });
        match req.ty {
            NBD_CMD_DISC => return Ok(()),
            NBD_CMD_READ => match validate_range(req.offset, req.length, export.dev.len()) {
                Err(err) => write_simple_reply(&mut w, err, req.handle)?,
                Ok(()) => {
                    data.resize(req.length as usize, 0);
                    match export.dev.read_at_in(&mut data, req.offset, span.id()) {
                        Ok(()) => {
                            write_simple_reply(&mut w, 0, req.handle)?;
                            write_all(&mut w, &data)?;
                        }
                        Err(e) => write_simple_reply(&mut w, errno(&e), req.handle)?,
                    }
                }
            },
            NBD_CMD_WRITE => {
                // An oversized write is rejected *without* buffering its
                // payload: drain it to keep the stream framed, then reply.
                if req.length > MAX_REQUEST_BYTES {
                    drain_payload(&mut r, req.length as u64)?;
                    write_simple_reply(&mut w, NBD_EINVAL, req.handle)?;
                } else {
                    data.resize(req.length as usize, 0);
                    read_exact(&mut r, &mut data)?;
                    let err = if export.read_only {
                        NBD_EPERM
                    } else if validate_range(req.offset, req.length, export.dev.len()).is_err() {
                        NBD_EINVAL
                    } else {
                        match export.dev.write_at_in(&data, req.offset, span.id()) {
                            Ok(()) => 0,
                            Err(e) => errno(&e),
                        }
                    };
                    write_simple_reply(&mut w, err, req.handle)?;
                }
            }
            NBD_CMD_FLUSH => {
                let err = match export.dev.flush() {
                    Ok(()) => 0,
                    Err(e) => errno(&e),
                };
                write_simple_reply(&mut w, err, req.handle)?;
            }
            NBD_CMD_TRIM => {
                let err = export.trim(req.offset, req.length as u64);
                write_simple_reply(&mut w, err, req.handle)?;
            }
            _ => {
                write_simple_reply(&mut w, NBD_EINVAL, req.handle)?;
            }
        }
        w.flush().map_err(io_err)?;
        drop(span);
        if let Some(start) = req_start {
            obs.observe(met::NBD_REQUEST_NS, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Bookkeeping for one in-flight pipelined request.
struct Pending {
    handle: u64,
    is_read: bool,
    span: vmi_obs::SpanGuard,
    start: Option<std::time::Instant>,
}

/// Write one reply frame (header + optional read payload) atomically with
/// respect to other repliers sharing the writer.
fn locked_reply(
    writer: &Mutex<BufWriter<TcpStream>>,
    err: u32,
    handle: u64,
    payload: Option<&[u8]>,
) -> Result<()> {
    let mut w = writer.lock();
    write_simple_reply(&mut *w, err, handle)?;
    if err == 0 {
        if let Some(p) = payload {
            write_all(&mut *w, p)?;
        }
    }
    w.flush().map_err(io_err)
}

/// Pipelined transmission: the reader thread parses and submits requests
/// into a [`RequestEngine`] (up to `depth` workers serving the shared
/// export device); a drain thread writes replies as completions arrive, in
/// whatever order the device finishes them. `FLUSH`/`TRIM`/`DISC` drain
/// in-flight requests first, preserving their barrier meaning.
fn transmission_pipelined(
    mut r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
    export: &Arc<Export>,
    served: &AtomicU64,
    obs: &Obs,
    depth: usize,
) -> Result<()> {
    let engine = Arc::new(RequestEngine::new(export.dev.clone(), depth));
    let writer = Arc::new(Mutex::new(w));
    writer.set_rank(lockrank::NBD_WRITER);
    let pending: Arc<Mutex<HashMap<u64, Pending>>> = Arc::new(Mutex::new(HashMap::new()));
    pending.set_rank(lockrank::NBD_PENDING);

    let drain = {
        let engine = engine.clone();
        let writer = writer.clone();
        let pending = pending.clone();
        let obs = obs.clone();
        std::thread::spawn(move || {
            while let Some(c) = engine.next_completion() {
                let Some(p) = pending.lock().remove(&c.id) else {
                    continue;
                };
                let err = match &c.result {
                    Ok(()) => 0,
                    Err(e) => errno(e),
                };
                let payload = if p.is_read { c.data.as_deref() } else { None };
                let sent = locked_reply(&writer, err, p.handle, payload);
                drop(p.span);
                if let Some(start) = p.start {
                    obs.observe(met::NBD_REQUEST_NS, start.elapsed().as_nanos() as u64);
                }
                if sent.is_err() {
                    // Client went away; stop writing. The reader will hit
                    // EOF and shut the engine down.
                    break;
                }
            }
        })
    };

    let outcome = (|| -> Result<()> {
        let mut data = Vec::new();
        loop {
            let req = read_request(&mut r)?;
            served.fetch_add(1, Ordering::Relaxed);
            let start = obs.enabled().then(std::time::Instant::now);
            let span = obs.span("nbd.request", || {
                format!(
                    "ty={} off={} len={} pipelined",
                    cmd_name(req.ty),
                    req.offset,
                    req.length
                )
            });
            let inline_err: Option<u32> = match req.ty {
                NBD_CMD_DISC => {
                    engine.wait_idle();
                    return Ok(());
                }
                NBD_CMD_READ => match validate_range(req.offset, req.length, export.dev.len()) {
                    Err(err) => Some(err),
                    Ok(()) => {
                        // Hold the pending lock across submit: a fast worker
                        // could otherwise complete before the insert and the
                        // drain thread would drop the reply on the floor.
                        let mut p = pending.lock();
                        let id = engine.submit_in(
                            vmi_qcow::Request::Read {
                                off: req.offset,
                                len: req.length as usize,
                            },
                            span.id(),
                        );
                        p.insert(
                            id,
                            Pending {
                                handle: req.handle,
                                is_read: true,
                                span,
                                start,
                            },
                        );
                        continue;
                    }
                },
                NBD_CMD_WRITE => {
                    if req.length > MAX_REQUEST_BYTES {
                        drain_payload(&mut r, req.length as u64)?;
                        Some(NBD_EINVAL)
                    } else {
                        data.resize(req.length as usize, 0);
                        read_exact(&mut r, &mut data)?;
                        if export.read_only {
                            Some(NBD_EPERM)
                        } else if validate_range(req.offset, req.length, export.dev.len()).is_err()
                        {
                            Some(NBD_EINVAL)
                        } else {
                            // Same submit-vs-drain race as the read path:
                            // insert must be visible before the completion.
                            let mut p = pending.lock();
                            let id = engine.submit_in(
                                vmi_qcow::Request::Write {
                                    off: req.offset,
                                    data: data.clone(),
                                },
                                span.id(),
                            );
                            p.insert(
                                id,
                                Pending {
                                    handle: req.handle,
                                    is_read: false,
                                    span,
                                    start,
                                },
                            );
                            continue;
                        }
                    }
                }
                NBD_CMD_FLUSH => {
                    // Barrier: everything submitted before the flush must
                    // have hit the device before the flush itself runs.
                    engine.wait_idle();
                    Some(match export.dev.flush() {
                        Ok(()) => 0,
                        Err(e) => errno(&e),
                    })
                }
                NBD_CMD_TRIM => {
                    engine.wait_idle();
                    Some(export.trim(req.offset, req.length as u64))
                }
                _ => Some(NBD_EINVAL),
            };
            if let Some(err) = inline_err {
                locked_reply(&writer, err, req.handle, None)?;
            }
            drop(span);
            if let Some(start) = start {
                obs.observe(met::NBD_REQUEST_NS, start.elapsed().as_nanos() as u64);
            }
        }
    })();

    engine.shutdown();
    let _ = drain.join();
    outcome
}

fn cmd_name(ty: u16) -> &'static str {
    match ty {
        NBD_CMD_READ => "read",
        NBD_CMD_WRITE => "write",
        NBD_CMD_FLUSH => "flush",
        NBD_CMD_TRIM => "trim",
        NBD_CMD_DISC => "disc",
        _ => "other",
    }
}

fn errno(e: &vmi_blockdev::BlockError) -> u32 {
    match e.kind() {
        BlockErrorKind::NoSpace => NBD_ENOSPC,
        BlockErrorKind::ReadOnly => NBD_EPERM,
        BlockErrorKind::OutOfBounds => NBD_EINVAL,
        _ => NBD_EIO,
    }
}

fn io_err(e: std::io::Error) -> vmi_blockdev::BlockError {
    vmi_blockdev::BlockError::new(BlockErrorKind::Io, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmi_blockdev::{BlockDev, MemDev};

    #[test]
    fn server_binds_and_lists_exports() {
        let mut srv = NbdServer::start("127.0.0.1:0").unwrap();
        srv.add_export("disk0", Arc::new(MemDev::with_len(1 << 20)), false);
        assert!(srv.addr().port() > 0);
        assert!(srv.remove_export("disk0"));
        assert!(!srv.remove_export("disk0"));
        srv.shutdown();
    }

    #[test]
    fn request_latency_lands_in_histogram() {
        let rec: Arc<vmi_obs::JsonlSink> = vmi_obs::JsonlSink::new();
        let obs = Obs::new(Arc::new(vmi_obs::WallClock::new()), rec);
        let mut srv = NbdServer::start_with_obs("127.0.0.1:0", obs.clone()).unwrap();
        srv.add_export("disk0", Arc::new(MemDev::with_len(1 << 20)), false);
        let client = crate::NbdClient::connect(&srv.addr().to_string(), "disk0").unwrap();
        let mut buf = [0u8; 512];
        client.read_at(&mut buf, 0).unwrap();
        client.read_at(&mut buf, 4096).unwrap();
        drop(client);
        srv.shutdown();
        let h = obs
            .histogram(met::NBD_REQUEST_NS)
            .expect("recorder attached");
        assert!(h.count >= 2, "two reads must be timed, saw {}", h.count);
    }

    #[test]
    fn add_image_marks_read_only() {
        let srv = NbdServer::start("127.0.0.1:0").unwrap();
        let dev: SharedDev = Arc::new(MemDev::new());
        {
            let img = vmi_qcow::QcowImage::create(
                dev.clone(),
                vmi_qcow::CreateOpts::plain(1 << 20),
                None,
            )
            .unwrap();
            img.close().unwrap();
        }
        let img = vmi_qcow::QcowImage::open(dev, None, true).unwrap();
        srv.add_image("ro-img", img);
        assert!(srv.exports.lock().get("ro-img").unwrap().read_only);
        // BlockDev::len is visible through the export.
        assert_eq!(srv.exports.lock().get("ro-img").unwrap().dev.len(), 1 << 20);
    }
}
