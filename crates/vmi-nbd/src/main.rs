//! `vmi-nbd` — serve image files over NBD.
//!
//! ```text
//! vmi-nbd serve --addr 127.0.0.1:10809 NAME=PATH [NAME=PATH ...]
//! ```
//!
//! Each `PATH` is opened with its backing chain (the §4.3 flag dance) and
//! exported under `NAME`. Caches opened through a chain keep warming as
//! clients read. Ctrl-C to stop.

use std::sync::Arc;

use vmi_nbd::NbdServer;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("serve") {
        eprintln!("usage: vmi-nbd serve [--addr HOST:PORT] [--ro] [--pipeline N] NAME=PATH ...");
        std::process::exit(2);
    }
    let mut addr = "127.0.0.1:10809".to_string();
    let mut read_only = false;
    let mut pipeline = 1usize;
    let mut exports: Vec<(String, String)> = Vec::new();
    let mut iter = args[1..].iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--addr" => {
                addr = iter.next().cloned().unwrap_or_else(|| {
                    eprintln!("--addr needs a value");
                    std::process::exit(2);
                })
            }
            "--ro" => read_only = true,
            "--pipeline" => {
                pipeline = iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--pipeline needs a positive integer");
                    std::process::exit(2);
                })
            }
            spec => match spec.split_once('=') {
                Some((name, path)) => exports.push((name.to_string(), path.to_string())),
                None => {
                    eprintln!("export spec must be NAME=PATH, got {spec:?}");
                    std::process::exit(2);
                }
            },
        }
    }
    if exports.is_empty() {
        eprintln!("no exports given");
        std::process::exit(2);
    }

    let server = match NbdServer::start(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    server.set_pipeline_depth(pipeline);
    for (name, path) in &exports {
        match vmi_img_open(path, read_only) {
            Ok(dev) => {
                server.add_export(name.clone(), dev, read_only);
                println!("exported {name} <- {path}");
            }
            Err(e) => {
                eprintln!("open {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "serving on {} — attach with: nbd-client or NbdClient::connect",
        server.addr()
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Open `path` as an image chain if it parses as one, else as a raw file.
fn vmi_img_open(path: &str, read_only: bool) -> vmi_blockdev::Result<vmi_blockdev::SharedDev> {
    let p = std::path::Path::new(path);
    let raw: vmi_blockdev::SharedDev = if read_only {
        Arc::new(vmi_blockdev::FileDev::open_read_only(p)?)
    } else {
        Arc::new(vmi_blockdev::FileDev::open(p)?)
    };
    if vmi_qcow::Header::decode(raw.as_ref() as &dyn vmi_blockdev::BlockDev).is_ok() {
        // Image file: open with its chain via the directory resolver.
        let resolver = vmi_img_resolver(p);
        let name = p
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| vmi_blockdev::BlockError::unsupported("bad path"))?;
        Ok(vmi_qcow::open_chain(&resolver, name, read_only)? as vmi_blockdev::SharedDev)
    } else {
        Ok(raw)
    }
}

fn vmi_img_resolver(path: &std::path::Path) -> impl vmi_qcow::DevResolver {
    struct R(std::path::PathBuf);
    impl vmi_qcow::DevResolver for R {
        fn resolve(&self, name: &str) -> vmi_blockdev::Result<vmi_blockdev::SharedDev> {
            let p = if std::path::Path::new(name).is_absolute() {
                std::path::PathBuf::from(name)
            } else {
                self.0.join(name)
            };
            match vmi_blockdev::FileDev::open(&p) {
                Ok(d) => Ok(Arc::new(d)),
                Err(_) => Ok(Arc::new(vmi_blockdev::FileDev::open_read_only(&p)?)),
            }
        }
    }
    R(path
        .parent()
        .unwrap_or(std::path::Path::new("."))
        .to_path_buf())
}
