//! # vmi-nbd — serve and attach VM image chains as network block devices
//!
//! The deployable face of the reproduction: the calibration hint for this
//! paper ("vhost-user-blk or NBD cache server") maps the paper's
//! architecture onto today's stack. A storage node runs an [`NbdServer`]
//! exporting base images and warm caches; compute nodes attach with an
//! [`NbdClient`] — which is itself a [`vmi_blockdev::BlockDev`], so the
//! paper's chain composes across the network:
//!
//! ```text
//!   storage node                      compute node
//!   NbdServer ── TCP (NBD proto) ──► NbdClient ◄── cache ◄── CoW ◄── VM
//! ```
//!
//! Protocol: fixed-newstyle negotiation (`EXPORT_NAME`, `LIST`, `ABORT`)
//! and the simple transmission phase (`READ`/`WRITE`/`FLUSH`/`TRIM`/`DISC`)
//! per the canonical NBD protocol document. `TRIM` on an exported image
//! maps to the image's cluster `discard`.

//! ```
//! use std::sync::Arc;
//! use vmi_blockdev::{BlockDev, MemDev};
//! use vmi_nbd::{NbdClient, NbdServer};
//!
//! let srv = NbdServer::start("127.0.0.1:0").unwrap();
//! let disk = Arc::new(MemDev::with_len(1 << 20));
//! disk.write_at(b"hello nbd", 0).unwrap();
//! srv.add_export("disk", disk, false);
//!
//! let client = NbdClient::connect(&srv.addr().to_string(), "disk").unwrap();
//! let mut buf = [0u8; 9];
//! client.read_at(&mut buf, 0).unwrap();
//! assert_eq!(&buf, b"hello nbd");
//! ```

#![forbid(unsafe_code)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::NbdClient;
pub use server::NbdServer;
