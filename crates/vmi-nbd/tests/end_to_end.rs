//! End-to-end NBD tests over real localhost TCP: handshake, data integrity,
//! image chains across the network, concurrent clients, and error mapping.

use std::sync::Arc;

use vmi_blockdev::{BlockDev, BlockErrorKind, MemDev, SharedDev, SparseDev};
use vmi_nbd::{NbdClient, NbdServer};
use vmi_qcow::{CreateOpts, QcowImage};

fn server() -> NbdServer {
    NbdServer::start("127.0.0.1:0").unwrap()
}

#[test]
fn raw_export_roundtrip() {
    let srv = server();
    let dev = Arc::new(MemDev::with_len(1 << 20));
    dev.write_at(b"over the wire", 500).unwrap();
    srv.add_export("disk", dev.clone(), false);

    let client = NbdClient::connect(&srv.addr().to_string(), "disk").unwrap();
    assert_eq!(client.len(), 1 << 20);
    assert!(!client.is_read_only());
    let mut buf = [0u8; 13];
    client.read_at(&mut buf, 500).unwrap();
    assert_eq!(&buf, b"over the wire");

    client.write_at(b"written back", 100).unwrap();
    client.flush().unwrap();
    let mut check = [0u8; 12];
    dev.read_at(&mut check, 100).unwrap();
    assert_eq!(&check, b"written back");
    assert!(srv.served_requests() >= 3);
}

#[test]
fn unknown_export_fails_connect() {
    let srv = server();
    srv.add_export("exists", Arc::new(MemDev::with_len(4096)), false);
    assert!(NbdClient::connect(&srv.addr().to_string(), "missing").is_err());
    // The server stays healthy for the next client.
    assert!(NbdClient::connect(&srv.addr().to_string(), "exists").is_ok());
}

#[test]
fn read_only_export_rejects_writes_with_eperm() {
    let srv = server();
    srv.add_export("ro", Arc::new(MemDev::with_len(4096)), true);
    let client = NbdClient::connect(&srv.addr().to_string(), "ro").unwrap();
    assert!(client.is_read_only());
    let err = client.write_at(b"nope", 0).unwrap_err();
    assert_eq!(err.kind(), BlockErrorKind::ReadOnly);
}

#[test]
fn out_of_range_read_maps_to_einval() {
    let srv = server();
    srv.add_export("small", Arc::new(MemDev::with_len(1024)), false);
    let client = NbdClient::connect(&srv.addr().to_string(), "small").unwrap();
    let mut buf = [0u8; 64];
    // The client pre-checks bounds itself:
    assert!(client.read_at(&mut buf, 1000).is_err());
}

#[test]
fn image_chain_served_over_nbd() {
    // base ← cache ← CoW opened locally, exported at the top: a remote VM
    // sees the composed guest view.
    let content: Vec<u8> = (0..(2usize << 20)).map(|i| (i % 231) as u8).collect();
    let base: SharedDev = Arc::new(MemDev::from_vec(content.clone()));
    let cache = QcowImage::create(
        Arc::new(SparseDev::new()),
        CreateOpts::cache(2 << 20, "b", 8 << 20),
        Some(base),
    )
    .unwrap();
    let cow = QcowImage::create(
        Arc::new(SparseDev::new()),
        CreateOpts::cow(2 << 20, "c"),
        Some(cache.clone() as SharedDev),
    )
    .unwrap();

    let srv = server();
    srv.add_image("vm-disk", cow);
    let client = NbdClient::connect(&srv.addr().to_string(), "vm-disk").unwrap();
    let mut buf = vec![0u8; 8192];
    client.read_at(&mut buf, 65536).unwrap();
    assert_eq!(&buf[..], &content[65536..65536 + 8192]);
    // The read warmed the cache layer *server-side*.
    assert!(cache.cor_stats().fill_bytes > 0);
    // Guest write through the wire lands in the CoW layer, not the cache.
    client.write_at(&[0xEE; 4096], 65536).unwrap();
    client.read_at(&mut buf[..4096], 65536).unwrap();
    assert_eq!(&buf[..4096], &[0xEE; 4096]);
    let mut cbuf = [0u8; 16];
    cache.read_at(&mut cbuf, 65536).unwrap();
    assert_eq!(
        &cbuf[..],
        &content[65536..65536 + 16],
        "cache immutable to guest writes"
    );
}

#[test]
fn remote_backing_chain_compose() {
    // The compute-node shape: local cache whose *backing* is the NBD client
    // attached to the storage node's base export.
    let content: Vec<u8> = (0..(1usize << 20)).map(|i| (i % 229) as u8).collect();
    let srv = server();
    srv.add_export("base", Arc::new(MemDev::from_vec(content.clone())), true);

    let remote_base: SharedDev =
        Arc::new(NbdClient::connect(&srv.addr().to_string(), "base").unwrap());
    let cache = QcowImage::create(
        Arc::new(SparseDev::new()),
        CreateOpts::cache(1 << 20, "nbd://base", 4 << 20),
        Some(remote_base),
    )
    .unwrap();
    let mut buf = vec![0u8; 4096];
    cache.read_at(&mut buf, 32768).unwrap();
    assert_eq!(&buf[..], &content[32768..32768 + 4096]);
    let misses_after_first = cache.cor_stats().miss_bytes;
    assert!(misses_after_first >= 4096);
    // Second read is warm: no more network fetches.
    cache.read_at(&mut buf, 32768).unwrap();
    assert_eq!(cache.cor_stats().miss_bytes, misses_after_first);
    let before = srv.served_requests();
    cache.read_at(&mut buf, 32768).unwrap();
    assert_eq!(
        srv.served_requests(),
        before,
        "warm reads generate no NBD requests"
    );
}

#[test]
fn trim_over_nbd_discards_image_clusters() {
    let base: SharedDev = Arc::new(MemDev::from_vec(vec![7u8; 1 << 20]));
    let cache = QcowImage::create(
        Arc::new(SparseDev::new()),
        CreateOpts::cache(1 << 20, "b", 4 << 20),
        Some(base),
    )
    .unwrap();
    let mut buf = vec![0u8; 65536];
    cache.read_at(&mut buf, 0).unwrap(); // warm 64 KiB = 128 clusters
    let used_before = cache.cache_used();

    let srv = server();
    srv.add_export("cache", cache.clone() as SharedDev, false);
    let client = NbdClient::connect(&srv.addr().to_string(), "cache").unwrap();
    client.trim(0, 32768).unwrap();
    assert!(
        cache.cache_used() < used_before,
        "TRIM must free cache quota"
    );
    // Data is still correct (re-fetched from base on demand).
    client.read_at(&mut buf[..1024], 0).unwrap();
    assert_eq!(&buf[..1024], &[7u8; 1024]);
}

#[test]
fn concurrent_clients_share_an_export() {
    let srv = server();
    let dev = Arc::new(MemDev::with_len(1 << 20));
    for i in 0..(1 << 20) / 4096 {
        dev.write_at(&[(i % 251) as u8; 4096], i * 4096).unwrap();
    }
    srv.add_export("shared", dev, true);
    let addr = srv.addr().to_string();
    crossbeam::thread::scope(|s| {
        for t in 0..4u64 {
            let addr = addr.clone();
            s.spawn(move |_| {
                let client = NbdClient::connect(&addr, "shared").unwrap();
                let mut buf = [0u8; 4096];
                for i in 0..32u64 {
                    let block = (i * 7 + t * 3) % 256;
                    client.read_at(&mut buf, block * 4096).unwrap();
                    assert_eq!(buf[0], (block % 251) as u8);
                }
            });
        }
    })
    .unwrap();
    assert!(srv.served_requests() >= 128);
}

#[test]
fn list_option_does_not_break_session() {
    // Our client doesn't send LIST, but another (raw) probe shouldn't wedge
    // the server: simulate by connecting, aborting, then connecting again.
    let srv = server();
    srv.add_export("x", Arc::new(MemDev::with_len(4096)), false);
    for _ in 0..3 {
        let c = NbdClient::connect(&srv.addr().to_string(), "x").unwrap();
        drop(c); // sends DISC
    }
    let c = NbdClient::connect(&srv.addr().to_string(), "x").unwrap();
    let mut b = [0u8; 1];
    c.read_at(&mut b, 0).unwrap();
}

#[test]
fn flaky_remote_base_is_ridden_out_by_retries() {
    // The resilient compute-node shape: the storage node's base medium
    // throws transient read errors; the compute node sees them as remote
    // I/O errors and a RetryDev above the NBD client rides them out. Every
    // guest read returns correct data, and the server's request count
    // matches the client's wire attempts exactly (error replies included).
    use vmi_blockdev::{CountingDev, FaultDev, FaultPlan, FaultSite, RetryDev, RetryPolicy};

    let content: Vec<u8> = (0..(1usize << 20)).map(|i| (i % 241) as u8).collect();
    let flaky_base = Arc::new(FaultDev::new(Arc::new(MemDev::from_vec(content.clone()))));
    flaky_base.inject(FaultPlan::EveryNth {
        site: FaultSite::Read,
        n: 4,
        kind: BlockErrorKind::Io,
    });
    let srv = server();
    srv.add_export("base", flaky_base as SharedDev, true);

    let remote = NbdClient::connect(&srv.addr().to_string(), "base").unwrap();
    let wire = Arc::new(CountingDev::new(Arc::new(remote)));
    let retry = Arc::new(RetryDev::new(
        wire.clone() as SharedDev,
        RetryPolicy::attempts(4).with_seed(3),
    ));
    let cache = QcowImage::create(
        Arc::new(SparseDev::new()),
        CreateOpts::cache(1 << 20, "nbd://base", 4 << 20),
        Some(retry.clone() as SharedDev),
    )
    .unwrap();

    let mut buf = vec![0u8; 4096];
    for i in 0..32u64 {
        let off = i * 16384;
        cache.read_at(&mut buf, off).unwrap();
        assert_eq!(
            &buf[..],
            &content[off as usize..off as usize + 4096],
            "data wrong at {off}"
        );
    }
    assert!(retry.retries() > 0, "every 4th remote read must be retried");
    assert_eq!(retry.exhausted(), 0, "no read may run out of attempts");
    // served_requests consistency: the server answered one request per
    // successful wire read plus one per error reply — and each error reply
    // is exactly one retry on the client side.
    assert_eq!(
        srv.served_requests(),
        wire.stats().snapshot().reads + retry.retries(),
        "server and client agree on the wire traffic"
    );
    // The cache warmed despite the flaky base: warm re-reads are free.
    let before = srv.served_requests();
    cache.read_at(&mut buf, 0).unwrap();
    assert_eq!(srv.served_requests(), before, "warm read stays local");
}
