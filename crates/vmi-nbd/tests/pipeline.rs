//! Wire-level tests for the PR-8 front-end work: proper error *replies*
//! (never dropped connections) on oversized/overlapping requests, and
//! request pipelining within one connection over a shared image.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use vmi_blockdev::{BlockDev, MemDev, SharedDev};
use vmi_nbd::proto::*;
use vmi_nbd::NbdServer;

/// A raw NBD connection that lets tests drive arbitrary frames.
struct RawConn {
    r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
    size: u64,
}

impl RawConn {
    fn connect(addr: &str, export: &str) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).ok();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        assert_eq!(read_u64(&mut r).unwrap(), NBDMAGIC);
        assert_eq!(read_u64(&mut r).unwrap(), IHAVEOPT);
        let flags = read_u16(&mut r).unwrap();
        assert!(flags & NBD_FLAG_FIXED_NEWSTYLE != 0);
        let cflags = NBD_FLAG_C_FIXED_NEWSTYLE | NBD_FLAG_C_NO_ZEROES;
        write_all(&mut w, &cflags.to_be_bytes()).unwrap();
        write_all(&mut w, &IHAVEOPT.to_be_bytes()).unwrap();
        write_all(&mut w, &NBD_OPT_EXPORT_NAME.to_be_bytes()).unwrap();
        write_all(&mut w, &(export.len() as u32).to_be_bytes()).unwrap();
        write_all(&mut w, export.as_bytes()).unwrap();
        w.flush().unwrap();
        let size = read_u64(&mut r).unwrap();
        let _tflags = read_u16(&mut r).unwrap();
        Self { r, w, size }
    }

    fn send(&mut self, ty: u16, handle: u64, offset: u64, length: u32, payload: &[u8]) {
        write_request(
            &mut self.w,
            &Request {
                flags: 0,
                ty,
                handle,
                offset,
                length,
            },
        )
        .unwrap();
        if !payload.is_empty() {
            write_all(&mut self.w, payload).unwrap();
        }
        self.w.flush().unwrap();
    }

    fn recv(&mut self) -> (u32, u64) {
        read_simple_reply(&mut self.r).unwrap()
    }

    fn recv_data(&mut self, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.r.read_exact(&mut buf).unwrap();
        buf
    }
}

fn serve_mem(len: u64) -> (NbdServer, SharedDev) {
    let srv = NbdServer::start("127.0.0.1:0").unwrap();
    let dev: SharedDev = Arc::new(MemDev::with_len(len));
    srv.add_export("disk", dev.clone(), false);
    (srv, dev)
}

// ----------------------------------------------------------------------
// error-reply hardening (serial path)
// ----------------------------------------------------------------------

#[test]
fn oversized_read_gets_einval_and_connection_survives() {
    let (srv, dev) = serve_mem(1 << 20);
    dev.write_at(b"still here", 512).unwrap();
    let mut c = RawConn::connect(&srv.addr().to_string(), "disk");
    c.send(NBD_CMD_READ, 1, 0, MAX_REQUEST_BYTES + 1, &[]);
    let (err, handle) = c.recv();
    assert_eq!((err, handle), (NBD_EINVAL, 1));
    // The connection must still be usable afterwards.
    c.send(NBD_CMD_READ, 2, 512, 10, &[]);
    let (err, handle) = c.recv();
    assert_eq!((err, handle), (0, 2));
    assert_eq!(c.recv_data(10), b"still here");
}

#[test]
fn oversized_write_payload_is_drained_then_rejected() {
    let (srv, _dev) = serve_mem(1 << 20);
    let mut c = RawConn::connect(&srv.addr().to_string(), "disk");
    let oversized = MAX_REQUEST_BYTES + 4096;
    let payload = vec![0xABu8; oversized as usize];
    c.send(NBD_CMD_WRITE, 7, 0, oversized, &payload);
    let (err, handle) = c.recv();
    assert_eq!((err, handle), (NBD_EINVAL, 7));
    // Framing survived the drained payload: a normal write still works.
    c.send(NBD_CMD_WRITE, 8, 0, 4, b"good");
    let (err, handle) = c.recv();
    assert_eq!((err, handle), (0, 8));
    c.send(NBD_CMD_READ, 9, 0, 4, &[]);
    assert_eq!(c.recv(), (0, 9));
    assert_eq!(c.recv_data(4), b"good");
}

#[test]
fn read_and_write_past_export_end_reply_einval() {
    let (srv, _dev) = serve_mem(1 << 16);
    let mut c = RawConn::connect(&srv.addr().to_string(), "disk");
    assert_eq!(c.size, 1 << 16);
    // Overlapping the end of the export.
    c.send(NBD_CMD_READ, 1, (1 << 16) - 8, 64, &[]);
    assert_eq!(c.recv(), (NBD_EINVAL, 1));
    // A write overlapping the end must consume its payload and reply
    // (previously it could silently grow a raw device).
    c.send(NBD_CMD_WRITE, 2, (1 << 16) - 8, 64, &[1u8; 64]);
    assert_eq!(c.recv(), (NBD_EINVAL, 2));
    // offset + length overflowing u64 must not panic the handler.
    c.send(NBD_CMD_READ, 3, u64::MAX - 4, 64, &[]);
    assert_eq!(c.recv(), (NBD_EINVAL, 3));
    c.send(NBD_CMD_READ, 4, 0, 8, &[]);
    assert_eq!(c.recv(), (0, 4));
    c.recv_data(8);
}

// ----------------------------------------------------------------------
// pipelining
// ----------------------------------------------------------------------

#[test]
fn pipelined_reads_complete_out_of_order_by_handle() {
    let srv = NbdServer::start("127.0.0.1:0").unwrap();
    srv.set_pipeline_depth(8);
    assert_eq!(srv.pipeline_depth(), 8);
    let dev = MemDev::with_len(1 << 20);
    // Stamp each 4 KiB block with its index so replies are checkable.
    for i in 0..256u64 {
        dev.write_at(&i.to_be_bytes(), i * 4096).unwrap();
    }
    srv.add_export("disk", Arc::new(dev), false);

    let mut c = RawConn::connect(&srv.addr().to_string(), "disk");
    // Fire a burst of reads without waiting for any reply.
    for h in 0..32u64 {
        c.send(NBD_CMD_READ, h, h * 4096, 8, &[]);
    }
    let mut seen = HashMap::new();
    for _ in 0..32 {
        let (err, handle) = c.recv();
        assert_eq!(err, 0, "read {handle} failed");
        let data = c.recv_data(8);
        seen.insert(handle, u64::from_be_bytes(data.try_into().unwrap()));
    }
    assert_eq!(seen.len(), 32, "every handle must be answered exactly once");
    for (handle, block) in seen {
        assert_eq!(handle, block, "handle {handle} got block {block}");
    }
}

#[test]
fn pipelined_writes_then_flush_then_readback() {
    let srv = NbdServer::start("127.0.0.1:0").unwrap();
    srv.set_pipeline_depth(4);
    let (_, dev) = {
        let dev: SharedDev = Arc::new(MemDev::with_len(1 << 20));
        srv.add_export("disk", dev.clone(), false);
        ((), dev)
    };
    let mut c = RawConn::connect(&srv.addr().to_string(), "disk");
    for h in 0..16u64 {
        c.send(NBD_CMD_WRITE, h, h * 512, 512, &[h as u8 + 1; 512]);
    }
    // FLUSH is a barrier: all 16 writes must be on the device before it
    // returns. Its reply may arrive before some write replies (NBD allows
    // reordering), so collect until the flush handle shows up…
    c.send(NBD_CMD_FLUSH, 99, 0, 0, &[]);
    let mut pending = (0..16u64).collect::<std::collections::HashSet<_>>();
    let mut flushed = false;
    while !pending.is_empty() || !flushed {
        let (err, handle) = c.recv();
        assert_eq!(err, 0);
        if handle == 99 {
            flushed = true;
        } else {
            assert!(pending.remove(&handle), "duplicate reply {handle}");
        }
    }
    // …then verify the bytes actually landed.
    for h in 0..16u64 {
        let mut buf = [0u8; 512];
        dev.read_at(&mut buf, h * 512).unwrap();
        assert_eq!(buf, [h as u8 + 1; 512], "write {h} not durable after flush");
    }
}

#[test]
fn pipelined_error_replies_keep_connection_alive() {
    let srv = NbdServer::start("127.0.0.1:0").unwrap();
    srv.set_pipeline_depth(4);
    srv.add_export("disk", Arc::new(MemDev::with_len(4096)) as SharedDev, false);
    let mut c = RawConn::connect(&srv.addr().to_string(), "disk");
    c.send(NBD_CMD_READ, 1, 0, MAX_REQUEST_BYTES + 1, &[]);
    assert_eq!(c.recv(), (NBD_EINVAL, 1));
    c.send(NBD_CMD_WRITE, 2, 4000, 200, &[9u8; 200]);
    assert_eq!(c.recv(), (NBD_EINVAL, 2));
    c.send(NBD_CMD_READ, 3, 0, 16, &[]);
    assert_eq!(c.recv(), (0, 3));
    c.recv_data(16);
}

#[test]
fn pipelined_concurrent_image_export_serves_warm_reads() {
    let srv = NbdServer::start("127.0.0.1:0").unwrap();
    srv.set_pipeline_depth(8);

    // base ← cache, warmed, exported through ConcurrentImage.
    let base = {
        let d = MemDev::new();
        let data: Vec<u8> = (0..(1u64 << 20)).map(|i| (i % 247) as u8).collect();
        d.write_at(&data, 0).unwrap();
        Arc::new(d) as SharedDev
    };
    let img = vmi_qcow::QcowImage::create(
        Arc::new(MemDev::new()) as SharedDev,
        vmi_qcow::CreateOpts::cache(1 << 20, "base", 4 << 20).with_cluster_bits(12),
        Some(base),
    )
    .unwrap();
    let mut warm = vec![0u8; 1 << 20];
    img.read_at(&mut warm, 0).unwrap();
    srv.add_image_concurrent("cache", img);

    let mut c = RawConn::connect(&srv.addr().to_string(), "cache");
    for h in 0..24u64 {
        c.send(NBD_CMD_READ, h, h * 8192, 4096, &[]);
    }
    let mut got = HashMap::new();
    for _ in 0..24 {
        let (err, handle) = c.recv();
        assert_eq!(err, 0);
        got.insert(handle, c.recv_data(4096));
    }
    for (h, data) in got {
        let off = (h * 8192) as usize;
        assert_eq!(data, &warm[off..off + 4096], "handle {h} data mismatch");
    }
    // TRIM through the concurrent wrapper (drains in-flight, then discards).
    c.send(NBD_CMD_TRIM, 100, 0, 8192, &[]);
    assert_eq!(c.recv(), (0, 100));
    c.send(NBD_CMD_DISC, 101, 0, 0, &[]);
}
