//! Cost hooks for *local* media: compute-node disks and memory.
//!
//! Wrap a container device in [`local_disk_dev`] / [`memory_dev`] before
//! handing it to `vmi-qcow`, and every byte the image code moves is charged
//! to the node's simulated disk (or memory bus) on the op clock.
//!
//! The local-disk model reflects how a host actually serves file I/O:
//!
//! * **Buffered writes** land in the host page cache and are written back
//!   off the critical path — the writer pays a memory copy. The
//!   `sync_writes` flag disables this and stalls every write on the
//!   platter, reproducing the paper's observation that creating a cold
//!   cache *on disk* "significantly slows down the boot process, due to
//!   delays from slow, synchronous writes to the cache image" (§5.1).
//! * **Reads** go through the node's page cache with sequential
//!   **readahead**: the first touch of a page pays the disk; pages
//!   prefetched ahead of a sequential stream become ready in the
//!   background, overlapping guest compute — why a warm cache on the
//!   compute node's disk boots within ~1 % of one in storage memory (§6).

use std::sync::Arc;

use parking_lot::Mutex;
use vmi_blockdev::{CostHook, LatencyDev, OpKind, SharedDev};
use vmi_sim::{CacheId, CacheOutcome, DiskId, SimWorld};

/// Page size of the node page cache / readahead unit.
pub const NODE_PAGE: u64 = 16 * 1024;

/// Default readahead window for sequential streams.
pub const DEFAULT_READAHEAD: u64 = 512 * 1024;

/// Default per-write penalty for synchronous cache-file writes.
pub const DEFAULT_SYNC_PENALTY_NS: u64 = 400_000;

/// Charges operations against a node-local disk, through an optional node
/// page cache with readahead.
pub struct LocalDiskCost {
    world: SimWorld,
    disk: DiskId,
    /// Placement of this file on the local disk (seek distances between
    /// different files on the same disk).
    file_base: u64,
    /// When set, every write stalls on the platter.
    sync_writes: bool,
    /// Extra penalty per synchronous write.
    sync_penalty_ns: u64,
    /// The node's page cache (keyed by `file_base` + page index).
    page_cache: Option<CacheId>,
    /// Bytes prefetched beyond a sequential read.
    readahead: u64,
    /// End offset of the last read (sequentiality detection).
    last_read_end: Mutex<u64>,
}

impl LocalDiskCost {
    fn read_through_cache(&self, cache: CacheId, off: u64, len: usize) {
        let first = off / NODE_PAGE;
        let last = (off + len as u64 - 1) / NODE_PAGE;
        for page in first..=last {
            match self.world.cache_probe(cache, self.file_base, page) {
                CacheOutcome::Hit { .. } => {
                    // probe advanced the op clock to readiness; pay the copy.
                    self.world.charge_mem(NODE_PAGE.min(len as u64));
                }
                CacheOutcome::Miss => {
                    self.world.charge_disk(
                        self.disk,
                        self.file_base + page * NODE_PAGE,
                        NODE_PAGE,
                        false,
                    );
                    let ready = self.world.op_now();
                    self.world
                        .cache_insert(cache, self.file_base, page, ready, false);
                }
            }
        }
        // Sequential stream? Prefetch the readahead window in the
        // background (bulk disk work that does not block this op).
        let mut last_end = self.last_read_end.lock();
        let sequential = off <= *last_end + NODE_PAGE && off + len as u64 > *last_end;
        *last_end = off + len as u64;
        drop(last_end);
        if sequential && self.readahead > 0 {
            let ra_first = last + 1;
            let ra_last = ra_first + self.readahead / NODE_PAGE;
            let mut t = self.world.op_now();
            for page in ra_first..ra_last {
                // Only prefetch pages not already cached. The presence check
                // must not block on in-flight pages (prefetch is async).
                if !self.world.cache_contains(cache, self.file_base, page) {
                    t = self.world.bulk_disk(
                        self.disk,
                        t,
                        self.file_base + page * NODE_PAGE,
                        NODE_PAGE,
                        false,
                    );
                    self.world
                        .cache_insert(cache, self.file_base, page, t, false);
                }
            }
        }
    }
}

impl CostHook for LocalDiskCost {
    fn charge(&self, kind: OpKind, off: u64, len: usize) {
        match kind {
            OpKind::Read => match self.page_cache {
                Some(cache) => self.read_through_cache(cache, off, len),
                None => self
                    .world
                    .charge_disk(self.disk, self.file_base + off, len as u64, false),
            },
            OpKind::Write if self.sync_writes => {
                // Synchronous writes go through to the platter and stall the
                // writer — the §5.1 cold-cache-on-disk behaviour. They still
                // populate the page cache.
                self.world
                    .charge_disk(self.disk, self.file_base + off, len as u64, true);
                self.world
                    .wait_until(self.world.op_now() + self.sync_penalty_ns);
                self.insert_written_pages(off, len);
            }
            OpKind::Write => {
                // Buffered write: a memory copy now, writeback later.
                self.world.charge_mem(len as u64);
                self.insert_written_pages(off, len);
            }
            OpKind::Flush => {}
        }
    }
}

impl LocalDiskCost {
    fn insert_written_pages(&self, off: u64, len: usize) {
        if let Some(cache) = self.page_cache {
            if len == 0 {
                return;
            }
            let first = off / NODE_PAGE;
            let last = (off + len as u64 - 1) / NODE_PAGE;
            let now = self.world.op_now();
            for page in first..=last {
                self.world
                    .cache_insert(cache, self.file_base, page, now, false);
            }
        }
    }
}

/// Wrap `inner` so its I/O is charged to `disk` at `file_base`, going
/// through the node page cache `page_cache` (pass `None` for raw access).
pub fn local_disk_dev_cached(
    world: SimWorld,
    disk: DiskId,
    file_base: u64,
    inner: SharedDev,
    sync_writes: bool,
    page_cache: Option<CacheId>,
) -> SharedDev {
    Arc::new(LatencyDev::new(
        inner,
        LocalDiskCost {
            world,
            disk,
            file_base,
            sync_writes,
            sync_penalty_ns: DEFAULT_SYNC_PENALTY_NS,
            page_cache,
            readahead: DEFAULT_READAHEAD,
            last_read_end: {
                let m = Mutex::new(u64::MAX - (1 << 30));
                m.set_rank(parking_lot::lockrank::REMOTE_STREAM);
                m
            },
        },
    ))
}

/// Wrap `inner` so its I/O is charged to `disk` at `file_base`, without a
/// page cache (every read hits the platter model).
pub fn local_disk_dev(
    world: SimWorld,
    disk: DiskId,
    file_base: u64,
    inner: SharedDev,
    sync_writes: bool,
) -> SharedDev {
    local_disk_dev_cached(world, disk, file_base, inner, sync_writes, None)
}

/// Charges operations against the node's memory bus (tmpfs-resident files:
/// in-memory caches, CoW scratch in RAM).
pub struct MemCost {
    world: SimWorld,
}

impl CostHook for MemCost {
    fn charge(&self, kind: OpKind, _off: u64, len: usize) {
        if !matches!(kind, OpKind::Flush) {
            self.world.charge_mem(len as u64);
        }
    }
}

/// Wrap `inner` as a memory-resident file.
pub fn memory_dev(world: SimWorld, inner: SharedDev) -> SharedDev {
    Arc::new(LatencyDev::new(inner, MemCost { world }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmi_blockdev::{BlockDev, MemDev};
    use vmi_sim::{DiskSpec, MSEC};

    fn world_disk() -> (SimWorld, DiskId) {
        let w = SimWorld::new();
        let d = w.add_disk(DiskSpec {
            seq_bw_bps: 100_000_000,
            seek_ns: 5 * MSEC,
            short_seek_ns: 5 * MSEC,
            short_seek_window: 0,
            per_op_ns: 100_000,
            adjacency_window: 65536,
        });
        (w, d)
    }

    #[test]
    fn disk_dev_charges_reads() {
        let (w, d) = world_disk();
        let dev = local_disk_dev(w.clone(), d, 0, Arc::new(MemDev::with_len(1 << 20)), false);
        w.begin_op(0);
        let mut buf = [0u8; 4096];
        dev.read_at(&mut buf, 512 << 10).unwrap(); // far from head: seeks
        let t = w.end_op();
        assert!(t >= 5 * MSEC);
        assert_eq!(w.disk_stats(d).read_ops, 1);
    }

    #[test]
    fn sync_writes_pay_penalty() {
        let (w, d) = world_disk();
        let base = Arc::new(MemDev::new());
        let plain = local_disk_dev(w.clone(), d, 0, base.clone(), false);
        let synced = local_disk_dev(w.clone(), d, 0, base, true);
        w.begin_op(0);
        plain.write_at(&[0; 512], 0).unwrap();
        let t_plain = w.end_op();
        w.begin_op(t_plain);
        synced.write_at(&[0; 512], 512).unwrap();
        let t_sync = w.end_op() - t_plain;
        assert!(
            t_sync >= t_plain + DEFAULT_SYNC_PENALTY_NS / 2,
            "sync write {t_sync} must exceed plain {t_plain}"
        );
    }

    #[test]
    fn buffered_writes_are_memory_speed() {
        let (w, d) = world_disk();
        let dev = local_disk_dev(w.clone(), d, 0, Arc::new(MemDev::new()), false);
        w.begin_op(0);
        dev.write_at(&[0u8; 65536], 0).unwrap();
        let t = w.end_op();
        assert!(t < 100_000, "buffered write must not hit the platter: {t}");
        assert_eq!(w.disk_stats(d).write_ops, 0);
    }

    #[test]
    fn memory_dev_is_fast() {
        let w = SimWorld::new();
        let dev = memory_dev(w.clone(), Arc::new(MemDev::new()));
        w.begin_op(0);
        dev.write_at(&[0u8; 65536], 0).unwrap();
        let mut buf = [0u8; 65536];
        dev.read_at(&mut buf, 0).unwrap();
        let t = w.end_op();
        assert!(t < 100_000, "memory ops are ~µs: {t}");
    }

    #[test]
    fn file_base_separates_files_for_seek_purposes() {
        let (w, d) = world_disk();
        let a = local_disk_dev(w.clone(), d, 0, Arc::new(MemDev::with_len(1 << 20)), false);
        let b = local_disk_dev(
            w.clone(),
            d,
            10 << 30,
            Arc::new(MemDev::with_len(1 << 20)),
            false,
        );
        w.begin_op(0);
        let mut buf = [0u8; 512];
        a.read_at(&mut buf, 0).unwrap();
        b.read_at(&mut buf, 0).unwrap(); // same file offset, different placement
        w.end_op();
        assert_eq!(w.disk_stats(d).seeks, 1, "jump between files seeks");
    }

    #[test]
    fn page_cache_makes_rereads_free() {
        let (w, d) = world_disk();
        let pc = w.add_cache(1 << 30, NODE_PAGE);
        let dev = local_disk_dev_cached(
            w.clone(),
            d,
            0,
            Arc::new(MemDev::with_len(1 << 20)),
            false,
            Some(pc),
        );
        let mut buf = [0u8; 4096];
        w.begin_op(0);
        dev.read_at(&mut buf, 512 << 10).unwrap();
        let t1 = w.end_op();
        assert!(t1 >= 5 * MSEC, "first touch hits the disk");
        w.begin_op(t1);
        dev.read_at(&mut buf, 512 << 10).unwrap();
        let t2 = w.end_op() - t1;
        assert!(t2 < 100_000, "re-read served from page cache: {t2}");
    }

    #[test]
    fn readahead_overlaps_sequential_stream() {
        let (w, d) = world_disk();
        let pc = w.add_cache(1 << 30, NODE_PAGE);
        let dev = local_disk_dev_cached(
            w.clone(),
            d,
            0,
            Arc::new(MemDev::with_len(16 << 20)),
            false,
            Some(pc),
        );
        // Read sequentially with "think time" between ops; after the first
        // few reads the prefetcher runs ahead and reads become waits-free.
        let mut buf = [0u8; NODE_PAGE as usize];
        let mut now = 0;
        let mut waits = Vec::new();
        for i in 0..16u64 {
            w.begin_op(now);
            dev.read_at(&mut buf, i * NODE_PAGE).unwrap();
            let done = w.end_op();
            waits.push(done - now);
            now = done + 20 * MSEC; // guest computes 20 ms between reads
        }
        assert!(waits[0] > 0);
        let tail_wait: u64 = waits[8..].iter().sum();
        assert!(
            tail_wait < 8 * MSEC,
            "readahead must hide the tail of a sequential stream: {waits:?}"
        );
    }

    #[test]
    fn written_pages_are_read_back_from_cache() {
        let (w, d) = world_disk();
        let pc = w.add_cache(1 << 30, NODE_PAGE);
        let dev = local_disk_dev_cached(w.clone(), d, 0, Arc::new(MemDev::new()), false, Some(pc));
        w.begin_op(0);
        dev.write_at(&[1u8; 4096], 0).unwrap();
        let mut buf = [0u8; 4096];
        dev.read_at(&mut buf, 0).unwrap();
        let t = w.end_op();
        assert!(t < 100_000, "read-own-write served from page cache: {t}");
        assert_eq!(w.disk_stats(d).read_ops, 0);
    }
}
