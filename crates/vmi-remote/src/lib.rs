//! # vmi-remote — NFS-style remote file access over simulated links
//!
//! The paper's storage node "runs an off-the-shelf NFS-server; the compute
//! nodes mount the NFS location" (§5). This crate provides that layer for
//! the simulated cluster:
//!
//! * [`export::NfsExport`] — a file served by the storage node, placed on
//!   its disk (behind the page cache) or on tmpfs (storage-node memory,
//!   the §3.3 cache placement);
//! * [`mount::NfsMount`] — the compute-node client: a [`vmi_blockdev::BlockDev`]
//!   whose reads/writes carry real bytes immediately and charge the
//!   storage disk + shared NIC on the simulated op clock, with client-side
//!   page caching and `rwsize`-capped RPCs;
//! * [`sim_dev`] — cost hooks for node-local media (compute disk with
//!   optional synchronous writes, memory).

#![forbid(unsafe_code)]

pub mod export;
pub mod mount;
pub mod sim_dev;

pub use export::{ExportMedium, NfsExport, SERVER_PAGE};
pub use mount::{MountOpts, NfsMount, DEFAULT_CLIENT_PAGE, DEFAULT_RWSIZE};
pub use sim_dev::{
    local_disk_dev, local_disk_dev_cached, memory_dev, DEFAULT_READAHEAD, DEFAULT_SYNC_PENALTY_NS,
    NODE_PAGE,
};
