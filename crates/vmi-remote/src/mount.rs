//! Client side: a compute node's NFS mount of one exported file.
//!
//! [`NfsMount`] is a [`BlockDev`], so a `vmi-qcow` image can use a mounted
//! remote file directly as its backing store — exactly how the paper's
//! compute nodes reach the base image ("the compute nodes mount the NFS
//! location", §5).
//!
//! Cost model per read:
//! * the client caches fetched pages (`client_page` bytes, default 16 KiB —
//!   the kernel's effective fetch unit with moderate readahead under the
//!   tuned `rwsize` of 64 KiB);
//! * uncached page runs become RPCs capped at `rwsize`: the server charges
//!   its page-cache/disk path, then the response occupies the shared
//!   storage-node link;
//! * fully client-cached reads are free (no RPC).

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;
use vmi_blockdev::{BlockDev, BlockError, Result};
use vmi_sim::LinkId;

use crate::export::NfsExport;

/// Default effective client fetch granularity.
pub const DEFAULT_CLIENT_PAGE: u64 = 16 * 1024;

/// Default maximum RPC transfer size (the paper tunes NFS `rwsize` to the
/// 64 KiB QCOW2 cluster size, §5).
pub const DEFAULT_RWSIZE: u64 = 64 * 1024;

/// Mount options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MountOpts {
    /// Client fetch/caching granularity in bytes (power of two).
    pub client_page: u64,
    /// Maximum bytes per RPC.
    pub rwsize: u64,
}

impl Default for MountOpts {
    fn default() -> Self {
        Self {
            client_page: DEFAULT_CLIENT_PAGE,
            rwsize: DEFAULT_RWSIZE,
        }
    }
}

/// A mounted remote file.
pub struct NfsMount {
    export: Arc<NfsExport>,
    /// The storage node's NIC (shared by every mount in the experiment).
    link: LinkId,
    opts: MountOpts,
    /// Client-side page cache: set of fetched page indices.
    cached: Mutex<HashSet<u64>>,
}

impl NfsMount {
    /// Mount `export` over `link`.
    pub fn new(export: Arc<NfsExport>, link: LinkId, opts: MountOpts) -> Arc<Self> {
        assert!(opts.client_page.is_power_of_two());
        assert!(opts.rwsize >= opts.client_page);
        let cached = Mutex::new(HashSet::new());
        cached.set_rank(parking_lot::lockrank::REMOTE_CACHED);
        Arc::new(Self {
            export,
            link,
            opts,
            cached,
        })
    }

    /// The mounted export.
    pub fn export(&self) -> &Arc<NfsExport> {
        &self.export
    }

    /// Drop the client cache (remount / memory pressure).
    pub fn drop_client_cache(&self) {
        self.cached.lock().clear();
    }

    /// Number of client pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.cached.lock().len()
    }

    /// Charge one fetch RPC covering pages `[first, last]` (inclusive).
    fn charge_fetch(&self, first_page: u64, last_page: u64) {
        let cp = self.opts.client_page;
        let off = first_page * cp;
        let bytes = (last_page - first_page + 1) * cp;
        // Server produces the bytes…
        self.export.charge_read(off, bytes);
        // …then they cross the shared storage NIC.
        self.export.world.charge_link(self.link, bytes);
    }
}

impl BlockDev for NfsMount {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        // Move the real bytes first.
        self.export.dev.read_at(buf, off)?;
        if buf.is_empty() {
            return Ok(());
        }
        // Price the uncached page runs.
        let cp = self.opts.client_page;
        let pages_per_rpc = (self.opts.rwsize / cp).max(1);
        let first = off / cp;
        let last = (off + buf.len() as u64 - 1) / cp;
        let mut cached = self.cached.lock();
        let mut run_start: Option<u64> = None;
        let flush_run = |s: u64, e: u64| {
            // Split long runs at rwsize.
            let mut p = s;
            while p <= e {
                let chunk_end = (p + pages_per_rpc - 1).min(e);
                self.charge_fetch(p, chunk_end);
                p = chunk_end + 1;
            }
        };
        for page in first..=last {
            if cached.insert(page) {
                if run_start.is_none() {
                    run_start = Some(page);
                }
            } else if let Some(s) = run_start.take() {
                flush_run(s, page - 1);
            }
        }
        if let Some(s) = run_start {
            flush_run(s, last);
        }
        Ok(())
    }

    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        self.export.dev.write_at(buf, off)?;
        if buf.is_empty() {
            return Ok(());
        }
        // Client pages covered by the write become cached (write-through
        // with local copy); the data crosses the link and hits the server.
        let cp = self.opts.client_page;
        let first = off / cp;
        let last = (off + buf.len() as u64 - 1) / cp;
        {
            let mut cached = self.cached.lock();
            for page in first..=last {
                cached.insert(page);
            }
        }
        self.export.world.charge_link(self.link, buf.len() as u64);
        self.export.charge_write(off, buf.len() as u64);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.export.dev.len()
    }

    fn set_len(&self, _len: u64) -> Result<()> {
        Err(BlockError::unsupported("resize over NFS mount not modeled"))
    }

    fn flush(&self) -> Result<()> {
        self.export.dev.flush()
    }

    fn describe(&self) -> String {
        format!("nfs({})", self.export.dev.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::ExportMedium;
    use vmi_blockdev::MemDev;
    use vmi_sim::{DiskSpec, NetSpec, SimWorld};

    fn setup(medium_disk: bool) -> (SimWorld, Arc<NfsMount>, LinkId) {
        let w = SimWorld::new();
        let d = w.add_disk(DiskSpec {
            seq_bw_bps: 200_000_000,
            seek_ns: 4_000_000,
            short_seek_ns: 4_000_000,
            short_seek_window: 0,
            per_op_ns: 100_000,
            adjacency_window: 1 << 20,
        });
        let c = w.add_cache(1 << 30, crate::export::SERVER_PAGE);
        let link = w.add_link(NetSpec {
            bw_bps: 100_000_000,
            latency_ns: 100_000,
            per_msg_ns: 0,
            discipline: vmi_sim::LinkDiscipline::Fifo,
        });
        let dev = Arc::new(MemDev::with_len(8 << 20));
        dev.write_at(&[0xAB; 1 << 20], 0).unwrap();
        let medium = if medium_disk {
            ExportMedium::Disk(d)
        } else {
            ExportMedium::Tmpfs
        };
        let exp = NfsExport::new(w.clone(), 1, dev, 0, medium, c);
        let m = NfsMount::new(exp, link, MountOpts::default());
        (w, m, link)
    }

    #[test]
    fn data_flows_correctly() {
        let (w, m, _) = setup(true);
        w.begin_op(0);
        let mut buf = [0u8; 4096];
        m.read_at(&mut buf, 100).unwrap();
        w.end_op();
        assert_eq!(buf, [0xAB; 4096]);
    }

    #[test]
    fn fetch_rounds_to_client_pages_and_caches() {
        let (w, m, link) = setup(true);
        w.begin_op(0);
        let mut buf = [0u8; 4096];
        m.read_at(&mut buf, 0).unwrap();
        w.end_op();
        // 4 KiB read fetched one 16 KiB client page.
        assert_eq!(w.link_stats(link).bytes, DEFAULT_CLIENT_PAGE);
        assert_eq!(m.cached_pages(), 1);
        // Re-read and nearby read inside the same page are free.
        w.begin_op(1_000_000_000);
        m.read_at(&mut buf, 8192).unwrap();
        let done = w.end_op();
        assert_eq!(
            w.link_stats(link).bytes,
            DEFAULT_CLIENT_PAGE,
            "no new traffic"
        );
        assert_eq!(
            done, 1_000_000_000,
            "client-cached read takes no simulated time"
        );
    }

    #[test]
    fn large_read_splits_at_rwsize() {
        let (w, m, link) = setup(false);
        w.begin_op(0);
        let mut buf = vec![0u8; 256 * 1024];
        m.read_at(&mut buf, 0).unwrap();
        w.end_op();
        let s = w.link_stats(link);
        assert_eq!(s.bytes, 256 * 1024);
        assert_eq!(s.messages, 4, "256 KiB at rwsize 64 KiB = 4 RPCs");
    }

    #[test]
    fn writes_cross_link_and_reach_server() {
        let (w, m, link) = setup(true);
        w.begin_op(0);
        m.write_at(&[7u8; 8192], 0).unwrap();
        w.end_op();
        assert_eq!(w.link_stats(link).bytes, 8192);
        assert_eq!(m.export().received_bytes(), 8192);
        // The written range is now client-cached: reading it is free.
        w.begin_op(10);
        let mut buf = [0u8; 8192];
        m.read_at(&mut buf, 0).unwrap();
        assert_eq!(w.end_op(), 10);
        assert_eq!(buf, [7u8; 8192]);
    }

    #[test]
    fn contention_between_mounts_shares_the_link() {
        let w = SimWorld::new();
        let c = w.add_cache(1 << 30, crate::export::SERVER_PAGE);
        let link = w.add_link(NetSpec {
            bw_bps: 1_000_000,
            latency_ns: 0,
            per_msg_ns: 0,
            discipline: vmi_sim::LinkDiscipline::Fifo,
        });
        let mk = |id: u64| {
            let dev = Arc::new(MemDev::with_len(1 << 20));
            NfsMount::new(
                NfsExport::new(w.clone(), id, dev, 0, ExportMedium::Tmpfs, c),
                link,
                MountOpts::default(),
            )
        };
        let (a, b) = (mk(1), mk(2));
        let mut buf = vec![0u8; 65536];
        w.begin_op(0);
        a.read_at(&mut buf, 0).unwrap();
        let ta = w.end_op();
        w.begin_op(0);
        b.read_at(&mut buf, 0).unwrap();
        let tb = w.end_op();
        assert!(
            tb >= ta + 60_000_000,
            "b queues behind a on the slow pipe: {ta} {tb}"
        );
    }
}
