//! Server side: an NFS-style export of one image file on the storage node.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vmi_blockdev::SharedDev;
use vmi_sim::{CacheId, DiskId, SimWorld};

/// Where an exported file physically lives on the storage node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportMedium {
    /// On the storage node's disks; reads miss to the given disk, cached by
    /// the node's page cache.
    Disk(DiskId),
    /// On `tmpfs` (storage-node memory): no disk is ever touched. This is
    /// the §3.3 / Fig. 13 placement for VMI caches.
    Tmpfs,
}

/// Server page size: the granularity at which the storage node reads from
/// its disk and caches pages (kernel readahead unit).
pub const SERVER_PAGE: u64 = 64 * 1024;

/// One exported file.
pub struct NfsExport {
    /// Unique id (keys page-cache entries; distinct per file).
    pub file_id: u64,
    /// The real bytes of the file.
    pub dev: SharedDev,
    /// Physical placement of the file on the storage disk: byte offset the
    /// file starts at (drives seek distances between different VMIs).
    pub disk_base: u64,
    /// Medium the file lives on.
    pub medium: ExportMedium,
    /// The storage node's page cache (shared by all exports of that node).
    pub page_cache: CacheId,
    /// Shared simulation world.
    pub world: SimWorld,
    /// Bytes served to clients (fetch volume at the storage node).
    served_bytes: AtomicU64,
    /// Bytes written by clients.
    received_bytes: AtomicU64,
}

impl NfsExport {
    /// Create an export.
    pub fn new(
        world: SimWorld,
        file_id: u64,
        dev: SharedDev,
        disk_base: u64,
        medium: ExportMedium,
        page_cache: CacheId,
    ) -> Arc<Self> {
        Arc::new(Self {
            file_id,
            dev,
            disk_base,
            medium,
            page_cache,
            world,
            served_bytes: AtomicU64::new(0),
            received_bytes: AtomicU64::new(0),
        })
    }

    /// Charge the server-side cost of producing `[off, off+len)` of this
    /// file on the op clock: page-cache probes, disk reads on miss (or
    /// memory copies for tmpfs).
    pub fn charge_read(&self, off: u64, len: u64) {
        self.served_bytes.fetch_add(len, Ordering::Relaxed);
        match self.medium {
            ExportMedium::Tmpfs => {
                self.world.charge_mem(len);
            }
            ExportMedium::Disk(disk) => {
                let first = off / SERVER_PAGE;
                let last = (off + len - 1) / SERVER_PAGE;
                for page in first..=last {
                    match self.world.cache_probe(self.page_cache, self.file_id, page) {
                        vmi_sim::CacheOutcome::Hit { .. } => {
                            // op clock already advanced to readiness; pay the
                            // memory copy.
                            self.world.charge_mem(SERVER_PAGE);
                        }
                        vmi_sim::CacheOutcome::Miss => {
                            self.world.charge_disk(
                                disk,
                                self.disk_base + page * SERVER_PAGE,
                                SERVER_PAGE,
                                false,
                            );
                            let ready = self.world.op_now();
                            self.world.cache_insert(
                                self.page_cache,
                                self.file_id,
                                page,
                                ready,
                                false,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Charge the server-side cost of absorbing a client write.
    pub fn charge_write(&self, off: u64, len: u64) {
        self.received_bytes.fetch_add(len, Ordering::Relaxed);
        match self.medium {
            ExportMedium::Tmpfs => self.world.charge_mem(len),
            ExportMedium::Disk(disk) => {
                // Writes land in the page cache and are written back; charge
                // the disk write directly (NFS commits are synchronous-ish).
                self.world
                    .charge_disk(disk, self.disk_base + off, len, true);
                let first = off / SERVER_PAGE;
                let last = (off + len.max(1) - 1) / SERVER_PAGE;
                let ready = self.world.op_now();
                for page in first..=last {
                    self.world
                        .cache_insert(self.page_cache, self.file_id, page, ready, false);
                }
            }
        }
    }

    /// Bytes this export has served to clients.
    pub fn served_bytes(&self) -> u64 {
        self.served_bytes.load(Ordering::Relaxed)
    }

    /// Bytes clients have written to this export.
    pub fn received_bytes(&self) -> u64 {
        self.received_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use vmi_blockdev::MemDev;
    use vmi_sim::{DiskSpec, NetSpec};

    fn world_with_disk() -> (SimWorld, DiskId, CacheId) {
        let w = SimWorld::new();
        let d = w.add_disk(DiskSpec {
            seq_bw_bps: 100_000_000,
            seek_ns: 1_000_000,
            short_seek_ns: 1_000_000,
            short_seek_window: 0,
            per_op_ns: 0,
            adjacency_window: SERVER_PAGE,
        });
        let c = w.add_cache(10 << 20, SERVER_PAGE);
        let _ = w.add_link(NetSpec::gbe_1());
        (w, d, c)
    }

    #[test]
    fn first_read_misses_second_hits() {
        let (w, d, c) = world_with_disk();
        let exp = NfsExport::new(
            w.clone(),
            1,
            StdArc::new(MemDev::with_len(1 << 20)),
            0,
            ExportMedium::Disk(d),
            c,
        );
        let far = 512 * 1024; // well beyond the adjacency window from head 0
        w.begin_op(0);
        exp.charge_read(far, 4096);
        let t1 = w.end_op();
        assert!(t1 >= 1_000_000, "first read pays the seek: {t1}");
        w.begin_op(t1);
        exp.charge_read(far, 4096);
        let t2 = w.end_op();
        assert!(
            t2 - t1 < 100_000,
            "second read is a page-cache hit: {}",
            t2 - t1
        );
        assert_eq!(exp.served_bytes(), 8192);
    }

    #[test]
    fn tmpfs_reads_never_touch_disk() {
        let (w, d, c) = world_with_disk();
        let exp = NfsExport::new(
            w.clone(),
            2,
            StdArc::new(MemDev::with_len(1 << 20)),
            0,
            ExportMedium::Tmpfs,
            c,
        );
        w.begin_op(0);
        exp.charge_read(0, 65536);
        let t = w.end_op();
        assert!(t < 100_000, "tmpfs read must be memory-speed: {t}");
        assert_eq!(w.disk_stats(d).read_ops, 0);
    }

    #[test]
    fn write_inserts_pages_into_cache() {
        let (w, d, c) = world_with_disk();
        let exp = NfsExport::new(
            w.clone(),
            3,
            StdArc::new(MemDev::with_len(1 << 20)),
            0,
            ExportMedium::Disk(d),
            c,
        );
        w.begin_op(0);
        exp.charge_write(0, SERVER_PAGE);
        let t1 = w.end_op();
        // A read of the just-written page hits the page cache.
        w.begin_op(t1);
        exp.charge_read(0, SERVER_PAGE);
        let t2 = w.end_op();
        assert_eq!(w.disk_stats(d).read_ops, 0, "read served from cache");
        assert!(t2 > t1);
        assert_eq!(exp.received_bytes(), SERVER_PAGE);
    }
}
