//! Property tests for the NFS-style layer: the mount must be a transparent
//! window onto the export's data, and the client cache must only ever
//! *reduce* traffic, never corrupt it.

use std::sync::Arc;

use proptest::prelude::*;
use vmi_blockdev::{BlockDev, MemDev, SharedDev};
use vmi_remote::{ExportMedium, MountOpts, NfsExport, NfsMount};
use vmi_sim::{DiskSpec, NetSpec, SimWorld};

const FILE_SIZE: u64 = 1 << 20;

fn setup(content: &[u8]) -> (SimWorld, Arc<NfsMount>, vmi_sim::LinkId) {
    let w = SimWorld::new();
    let d = w.add_disk(DiskSpec {
        seq_bw_bps: 200_000_000,
        seek_ns: 4_000_000,
        short_seek_ns: 1_000_000,
        short_seek_window: 1 << 30,
        per_op_ns: 100_000,
        adjacency_window: 1 << 20,
    });
    let c = w.add_cache(1 << 30, 65536);
    let link = w.add_link(NetSpec::gbe_1());
    let dev: SharedDev = Arc::new(MemDev::from_vec(content.to_vec()));
    let exp = NfsExport::new(w.clone(), 1, dev, 0, ExportMedium::Disk(d), c);
    (
        w.clone(),
        NfsMount::new(exp, link, MountOpts::default()),
        link,
    )
}

proptest! {
    /// Reads through the mount return exactly the export's bytes, for any
    /// access pattern, and simulated time never regresses.
    #[test]
    fn mount_reads_are_transparent(
        reads in proptest::collection::vec((0u64..FILE_SIZE - 70_000, 1usize..70_000), 1..40),
    ) {
        let content: Vec<u8> =
            (0..FILE_SIZE as usize).map(|i| (i % 255) as u8).collect();
        let (w, m, _) = setup(&content);
        let mut buf = vec![0u8; 70_000];
        let mut now = 0u64;
        for &(off, len) in &reads {
            w.begin_op(now);
            m.read_at(&mut buf[..len], off).unwrap();
            let done = w.end_op();
            prop_assert!(done >= now);
            now = done;
            prop_assert_eq!(&buf[..len], &content[off as usize..off as usize + len]);
        }
    }

    /// Repeating a read sequence adds zero network traffic (client cache),
    /// and total traffic is bounded by page-rounded coverage.
    #[test]
    fn client_cache_suppresses_repeats(
        reads in proptest::collection::vec((0u64..FILE_SIZE - 70_000, 1usize..70_000), 1..30),
    ) {
        let content = vec![7u8; FILE_SIZE as usize];
        let (w, m, link) = setup(&content);
        let mut buf = vec![0u8; 70_000];
        let mut now = 0u64;
        let mut run = |w: &SimWorld, m: &NfsMount| {
            for &(off, len) in &reads {
                w.begin_op(now);
                m.read_at(&mut buf[..len], off).unwrap();
                now = w.end_op();
            }
        };
        run(&w, &m);
        let first = w.link_stats(link).bytes;
        run(&w, &m);
        let second = w.link_stats(link).bytes;
        prop_assert_eq!(first, second, "repeat reads must be free");
        // Bound: page-rounded unique coverage.
        let page = vmi_remote::DEFAULT_CLIENT_PAGE;
        let mut rs = vmi_trace::RangeSet::new();
        for &(off, len) in &reads {
            rs.insert(off / page * page, (off + len as u64).div_ceil(page) * page);
        }
        prop_assert!(first <= rs.covered(), "traffic {first} > rounded coverage {}", rs.covered());
        prop_assert!(first >= rs.covered() / 8, "implausibly little traffic");
    }

    /// Writes through the mount are durably visible to later reads and
    /// count as received bytes at the export.
    #[test]
    fn mount_writes_roundtrip(
        writes in proptest::collection::vec(
            (0u64..FILE_SIZE - 4096, 1usize..4096, any::<u8>()), 1..20),
    ) {
        let content = vec![0u8; FILE_SIZE as usize];
        let (w, m, _) = setup(&content);
        let mut now = 0u64;
        let mut reference = content;
        for &(off, len, byte) in &writes {
            w.begin_op(now);
            m.write_at(&vec![byte; len], off).unwrap();
            now = w.end_op();
            reference[off as usize..off as usize + len].fill(byte);
        }
        let mut buf = vec![0u8; 8192];
        for &(off, len, _) in &writes {
            w.begin_op(now);
            m.read_at(&mut buf[..len], off).unwrap();
            now = w.end_op();
            prop_assert_eq!(&buf[..len], &reference[off as usize..off as usize + len]);
        }
        let expected: u64 = writes.iter().map(|&(_, l, _)| l as u64).sum();
        prop_assert_eq!(m.export().received_bytes(), expected);
    }
}
