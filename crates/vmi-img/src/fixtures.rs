//! Golden fsck fixtures: known-good and deliberately-corrupted images.
//!
//! `vmi-img make-fixtures <dir>` materialises one image (or chain) per
//! audited failure mode, following a naming convention the CI audit job
//! relies on:
//!
//! * `ok-*.img` must pass `vmi-img fsck --chain --deep` cleanly;
//! * `bad-*.img` must produce at least one violation;
//! * any other extension (`*.raw`) is an auxiliary backing file and is not
//!   fsck'd directly.
//!
//! Corruptions are seeded by byte-patching freshly created images, exactly
//! the damage classes a torn write or buggy writer would leave behind:
//! a stale used-size, a quota below the referenced set, two mapping entries
//! aliasing one cluster, cache contents diverging from the base (§3.1), and
//! a backing-file cycle.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use vmi_blockdev::{be_u32, be_u64, BlockDev, FileDev};
use vmi_qcow::DEFAULT_CLUSTER_BITS;

use crate::{create_image, open_image, CreateSpec};

type Result<T> = std::result::Result<T, Box<dyn std::error::Error>>;

const SIZE: u64 = 1 << 20; // 1 MiB virtual — small but multi-cluster
const QUOTA: u64 = 256 << 10;
const CACHE_CLUSTER_BITS: u32 = 9; // 512 B, the paper's final arrangement

/// Create the full golden-fixture set under `dir`; returns the fsck'able
/// image paths (the `*.img` files), ok fixtures first.
pub fn make_fixtures(dir: &Path) -> Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut out = Vec::new();

    // Shared raw base: deterministic non-zero content so cache fills are
    // meaningful (an all-zero base makes divergence patches ambiguous).
    let base = dir.join("ok-base.raw");
    {
        let dev = FileDev::create(&base)?;
        dev.set_len(SIZE)?;
        let mut block = [0u8; 4096];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i % 251) as u8 + 1;
        }
        for off in (0..SIZE).step_by(4096) {
            dev.write_at(&block, off)?;
        }
        dev.flush()?;
    }

    // ok-plain.img: no backing, no quota, a few writes.
    let ok_plain = dir.join("ok-plain.img");
    {
        let img = create_image(&plain_spec(&ok_plain))?;
        img.write_at(&[0xAA; 4096], 0)?;
        img.write_at(&[0xBB; 4096], SIZE / 2)?;
        img.close()?;
    }
    out.push(ok_plain);

    // ok-cache.img: warmed cache over the raw base.
    let ok_cache = dir.join("ok-cache.img");
    make_warm_cache(&ok_cache, "ok-base.raw")?;
    out.push(ok_cache);

    // ok-cow.img: full §4.4 chain CoW → cache → raw base, with divergent
    // writes in the CoW layer (legal: only caches are immutable).
    let ok_cow = dir.join("ok-cow.img");
    make_warm_cache(&dir.join("ok-chain.cache"), "ok-base.raw")?;
    {
        create_image(&CreateSpec {
            path: ok_cow.clone(),
            size: SIZE,
            cluster_bits: DEFAULT_CLUSTER_BITS,
            backing: Some("ok-chain.cache".into()),
            cache_quota: 0,
        })?
        .close()?;
        let img = open_image(&ok_cow, false)?;
        img.write_at(&[0xEE; 4096], 8192)?;
        img.close()?;
    }
    out.push(ok_cow);

    // bad-torn-used.img: cache whose recorded used-size was never flushed
    // (torn write). Repairable: fsck suggests rewriting the used field.
    let bad_torn = dir.join("bad-torn-used.img");
    make_warm_cache(&bad_torn, "ok-base.raw")?;
    let (_, used_off) = cache_ext_offsets(&bad_torn)?;
    patch_u64(&bad_torn, used_off, 512)?;
    out.push(bad_torn);

    // bad-quota-exceeded.img: referenced clusters exceed the (patched-down)
    // quota — the invariant §4.3 enforces at every allocation.
    let bad_quota = dir.join("bad-quota-exceeded.img");
    make_warm_cache(&bad_quota, "ok-base.raw")?;
    let (quota_off, _) = cache_ext_offsets(&bad_quota)?;
    patch_u64(&bad_quota, quota_off, 1024)?;
    out.push(bad_quota);

    // bad-overlap.img: two L2 data entries aliasing the same physical
    // cluster — a double allocation.
    let bad_overlap = dir.join("bad-overlap.img");
    {
        let img = create_image(&plain_spec(&bad_overlap))?;
        img.write_at(&[1; 4096], 0)?;
        img.write_at(&[2; 4096], 4096)?;
        img.close()?;
    }
    alias_two_data_entries(&bad_overlap)?;
    out.push(bad_overlap);

    // bad-divergence.img: warmed cache whose cached bytes were mutated
    // after the fill — breaks the §3.1 immutability invariant. Only a deep
    // chain fsck can see this.
    let bad_div = dir.join("bad-divergence.img");
    make_warm_cache(&bad_div, "ok-base.raw")?;
    corrupt_first_data_cluster(&bad_div)?;
    out.push(bad_div);

    // bad-cycle-a.img / bad-cycle-b.img: each names the other as backing.
    // Built in three steps because creation opens the whole backing chain:
    // `a` is created over a raw placeholder `b`; the real `b` (backed by
    // `a`) is created at a temp path while the placeholder still resolves
    // `a`'s chain; then the rename closes the loop. A chain fsck must
    // refuse to walk this forever.
    let cyc_a = dir.join("bad-cycle-a.img");
    let cyc_b = dir.join("bad-cycle-b.img");
    {
        let placeholder = FileDev::create(&cyc_b)?;
        placeholder.set_len(SIZE)?;
        placeholder.flush()?;
        drop(placeholder);
        create_image(&CreateSpec {
            path: cyc_a.clone(),
            size: SIZE,
            cluster_bits: DEFAULT_CLUSTER_BITS,
            backing: Some("bad-cycle-b.img".into()),
            cache_quota: 0,
        })?
        .close()?;
        let tmp = dir.join("bad-cycle-b.new");
        create_image(&CreateSpec {
            path: tmp.clone(),
            size: SIZE,
            cluster_bits: DEFAULT_CLUSTER_BITS,
            backing: Some("bad-cycle-a.img".into()),
            cache_quota: 0,
        })?
        .close()?;
        std::fs::rename(&tmp, &cyc_b)?;
    }
    out.push(cyc_a);
    out.push(cyc_b);

    Ok(out)
}

fn plain_spec(path: &Path) -> CreateSpec {
    CreateSpec {
        path: path.to_path_buf(),
        size: SIZE,
        cluster_bits: 12,
        backing: None,
        cache_quota: 0,
    }
}

/// Create a cache over `backing` and warm part of it through copy-on-read.
fn make_warm_cache(path: &Path, backing: &str) -> Result<()> {
    create_image(&CreateSpec {
        path: path.to_path_buf(),
        size: SIZE,
        cluster_bits: CACHE_CLUSTER_BITS,
        backing: Some(backing.to_string()),
        cache_quota: QUOTA,
    })?
    .close()?;
    let img = open_image(path, false)?;
    let mut buf = [0u8; 4096];
    for off in (0..(64u64 << 10)).step_by(4096) {
        img.read_at(&mut buf, off)?;
    }
    img.close()?;
    Ok(())
}

/// Locate the cache extension's quota and used fields by walking the
/// extension frames (8-byte type+length header, payload padded to 8).
fn cache_ext_offsets(path: &Path) -> Result<(u64, u64)> {
    const EXT_CACHE: u32 = 0xCAC8_E001;
    let raw = std::fs::read(path)?;
    let mut off = 48usize;
    loop {
        if off + 8 > raw.len() {
            return Err(format!("{}: no cache extension found", path.display()).into());
        }
        let ty = be_u32(&raw[off..]);
        let len = be_u32(&raw[off + 4..]) as usize;
        if ty == 0 {
            return Err(format!("{}: no cache extension found", path.display()).into());
        }
        if ty == EXT_CACHE {
            return Ok((off as u64 + 8, off as u64 + 16));
        }
        off += 8 + len.next_multiple_of(8);
    }
}

fn patch_u64(path: &Path, off: u64, value: u64) -> Result<()> {
    let mut f = OpenOptions::new().write(true).open(path)?;
    f.seek(SeekFrom::Start(off))?;
    f.write_all(&value.to_be_bytes())?;
    Ok(())
}

/// Parse just enough of the header to find the first L2 table with two or
/// more nonzero entries, then make the second entry alias the first.
fn first_l2(path: &Path) -> Result<(Vec<u8>, u64, u64)> {
    let raw = std::fs::read(path)?;
    let cluster_bits = be_u32(&raw[20..]);
    let cs = 1u64 << cluster_bits;
    let l1_off = be_u64(&raw[32..]) as usize;
    let l1_size = be_u32(&raw[40..]) as usize;
    for i in 0..l1_size {
        let l2_off = be_u64(&raw[l1_off + i * 8..]);
        if l2_off != 0 {
            return Ok((raw, cs, l2_off));
        }
    }
    Err(format!("{}: no allocated L2 table", path.display()).into())
}

fn alias_two_data_entries(path: &Path) -> Result<()> {
    let (raw, cs, l2_off) = first_l2(path)?;
    let l2 = &raw[l2_off as usize..(l2_off + cs) as usize];
    let mut entries: Vec<(usize, u64)> = Vec::new();
    for (i, e) in l2.chunks_exact(8).enumerate() {
        let d = be_u64(e);
        if d != 0 {
            entries.push((i, d));
        }
        if entries.len() == 2 {
            break;
        }
    }
    if entries.len() < 2 {
        return Err(format!("{}: need two data clusters to alias", path.display()).into());
    }
    let (second_idx, _) = entries[1];
    let (_, first_target) = entries[0];
    patch_u64(path, l2_off + second_idx as u64 * 8, first_target)
}

/// Flip bytes inside the first allocated data cluster (not a table), so the
/// mapping stays valid but the cached content no longer matches the base.
fn corrupt_first_data_cluster(path: &Path) -> Result<()> {
    let (raw, cs, l2_off) = first_l2(path)?;
    let l2 = &raw[l2_off as usize..(l2_off + cs) as usize];
    for e in l2.chunks_exact(8) {
        let d = be_u64(e);
        if d != 0 {
            let mut f = OpenOptions::new().read(true).write(true).open(path)?;
            f.seek(SeekFrom::Start(d))?;
            let mut byte = [0u8; 1];
            f.read_exact(&mut byte)?;
            byte[0] ^= 0xFF;
            f.seek(SeekFrom::Start(d))?;
            f.write_all(&byte)?;
            return Ok(());
        }
    }
    Err(format!("{}: no data cluster to corrupt", path.display()).into())
}
