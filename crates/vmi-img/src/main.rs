//! `vmi-img` — the command-line face of the image library.
//!
//! ```text
//! vmi-img create  <path> --size 8G [--cluster 64K] [--backing base.img] [--cache-quota 200M]
//! vmi-img info    <path>
//! vmi-img map     <path>
//! vmi-img check   <path>
//! vmi-img fsck    <path> [--chain] [--deep] [--json]
//! vmi-img commit  <path>
//! vmi-img chain   <base> --stem vm1 --size 8G --quota 200M
//! vmi-img warm    <cache> [--profile centos|debian|windows|tiny] [--seed N]
//! vmi-img make-fixtures <dir>
//! ```

use std::path::PathBuf;
use std::process::exit;

use vmi_img::{create_chain, create_image, open_image, warm_cache, CreateSpec};
use vmi_trace::VmiProfile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        exit(2);
    }
    let cmd = args[0].as_str();
    let rest = &args[1..];
    let result = match cmd {
        "create" => cmd_create(rest),
        "info" => cmd_info(rest),
        "map" => cmd_map(rest),
        "check" => cmd_check(rest),
        "fsck" => cmd_fsck(rest),
        "recover" => cmd_recover(rest),
        "make-fixtures" => cmd_make_fixtures(rest),
        "commit" => cmd_commit(rest),
        "compact" => cmd_compact(rest),
        "discard" => cmd_discard(rest),
        "resize" => cmd_resize(rest),
        "rebase" => cmd_rebase(rest),
        "snapshot" => cmd_snapshot(rest),
        "chain" => cmd_chain(rest),
        "warm" => cmd_warm(rest),
        "stats" => cmd_stats(rest),
        "--help" | "-h" | "help" => {
            usage();
            return;
        }
        other => {
            eprintln!("unknown command {other:?}");
            usage();
            exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("vmi-img {cmd}: {e}");
        exit(1);
    }
}

fn usage() {
    eprintln!("usage: vmi-img <create|info|map|check|commit|chain|warm> ...");
    eprintln!("  create <path> --size N [--cluster N] [--backing F] [--cache-quota N]");
    eprintln!("  info|map|check|commit|compact <path>");
    eprintln!("  fsck <path> [--chain] [--deep] [--json]   (--deep implies --chain)");
    eprintln!("  recover <path> [--json]   (crash recovery in place; exit 1 on refetch verdict)");
    eprintln!("  discard <path> --off N --len N");
    eprintln!("  resize <path> --size N   (grow only)");
    eprintln!("  rebase <path> [--backing F]   (unsafe rebase; omit --backing to detach)");
    eprintln!("  snapshot <path> --create NAME | --list | --apply ID | --delete ID");
    eprintln!("  chain <base> --stem S --size N [--quota N] [--cluster N]");
    eprintln!("  warm <cache> [--profile centos|debian|windows|tiny] [--seed N]");
    eprintln!("  stats <path> [--limit N]   (read pass; Prometheus metrics on stdout)");
    eprintln!("  make-fixtures <dir>   (golden ok-*/bad-* fsck fixtures)");
    eprintln!("sizes accept K/M/G suffixes (powers of two)");
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn parse_size(s: &str) -> Result<u64, Box<dyn std::error::Error>> {
    Ok(vmi_img::parse_size(s)?)
}

fn flag(rest: &[String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1).cloned())
}

fn positional(rest: &[String]) -> Result<PathBuf, Box<dyn std::error::Error>> {
    rest.iter()
        .find(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .ok_or_else(|| "missing image path".into())
}

fn cmd_create(rest: &[String]) -> CliResult {
    let path = positional(rest)?;
    let size = parse_size(&flag(rest, "--size").ok_or("--size required")?)?;
    let cluster = match flag(rest, "--cluster") {
        Some(c) => parse_size(&c)?.trailing_zeros(),
        None => vmi_qcow::DEFAULT_CLUSTER_BITS,
    };
    let quota = match flag(rest, "--cache-quota") {
        Some(q) => parse_size(&q)?,
        None => 0,
    };
    let spec = CreateSpec {
        path: path.clone(),
        size,
        cluster_bits: cluster,
        backing: flag(rest, "--backing"),
        cache_quota: quota,
    };
    create_image(&spec)?.close()?;
    println!(
        "created {} ({} bytes virtual{})",
        path.display(),
        size,
        if quota > 0 {
            format!(", cache quota {quota}")
        } else {
            String::new()
        }
    );
    Ok(())
}

fn cmd_info(rest: &[String]) -> CliResult {
    let img = open_image(&positional(rest)?, true)?;
    print!("{}", vmi_qcow::info(&img).render());
    Ok(())
}

fn cmd_map(rest: &[String]) -> CliResult {
    let img = open_image(&positional(rest)?, true)?;
    let extents = vmi_qcow::map(&img)?;
    println!("{:>12} {:>12} {:>8}", "start", "length", "layer");
    for e in extents {
        let layer = match e.depth {
            Some(0) => "this".to_string(),
            Some(d) => format!("back+{d}"),
            None => "zero".to_string(),
        };
        println!("{:>12} {:>12} {:>8}", e.range.start, e.range.len(), layer);
    }
    Ok(())
}

fn cmd_check(rest: &[String]) -> CliResult {
    let img = open_image(&positional(rest)?, true)?;
    let rep = vmi_qcow::check(&img)?;
    println!("L2 tables: {}", rep.l2_tables);
    println!("data clusters: {}", rep.data_clusters);
    if rep.is_clean() {
        println!("No errors were found on the image.");
        Ok(())
    } else {
        for e in &rep.errors {
            eprintln!("ERROR: {e}");
        }
        Err(format!("{} error(s)", rep.errors.len()).into())
    }
}

fn cmd_fsck(rest: &[String]) -> CliResult {
    let path = positional(rest)?;
    let json = rest.iter().any(|a| a == "--json");
    let deep = rest.iter().any(|a| a == "--deep");
    let chain = deep || rest.iter().any(|a| a == "--chain");

    let (violations, l2_tables, data_clusters) = if chain {
        let devs = vmi_img::collect_chain_devs(&path)?;
        let rep = vmi_audit::audit_chain(&devs, deep);
        let top = rep.layers.first();
        (
            rep.all_violations(),
            top.map_or(0, |l| l.l2_tables),
            top.map_or(0, |l| l.data_clusters),
        )
    } else {
        let dev = vmi_blockdev::FileDev::open_read_only(&path)?;
        let rep = vmi_audit::audit_image(&dev);
        (rep.violations, rep.l2_tables, rep.data_clusters)
    };

    if json {
        let items: Vec<String> = violations.iter().map(|v| v.to_json()).collect();
        println!(
            "{{\"image\":\"{}\",\"clean\":{},\"l2_tables\":{},\"data_clusters\":{},\"violations\":[{}]}}",
            path.display(),
            violations.is_empty(),
            l2_tables,
            data_clusters,
            items.join(",")
        );
    } else {
        println!("L2 tables: {l2_tables}");
        println!("data clusters: {data_clusters}");
        if violations.is_empty() {
            println!("No invariant violations were found.");
        }
        for v in &violations {
            eprintln!("{v}");
            if v.repair != vmi_audit::RepairHint::None {
                eprintln!("    repair: {}", v.repair.describe());
            }
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!("{} violation(s)", violations.len()).into())
    }
}

fn cmd_recover(rest: &[String]) -> CliResult {
    let path = positional(rest)?;
    let json = rest.iter().any(|a| a == "--json");
    let dev: vmi_blockdev::SharedDev = std::sync::Arc::new(vmi_blockdev::FileDev::open(&path)?);
    let rep = vmi_qcow::recover(&dev);
    if json {
        println!("{}", rep.to_json());
    } else {
        println!(
            "{}: {} ({} repair(s), {} pass(es))",
            path.display(),
            rep.verdict.as_str(),
            rep.verdict.repairs(),
            rep.passes
        );
        for r in &rep.repairs {
            println!("  applied: {r}");
        }
        for v in &rep.remaining {
            eprintln!("  unrepaired: {v}");
        }
    }
    if rep.is_usable() {
        Ok(())
    } else {
        Err("unrecoverable image: refetch from the storage node".into())
    }
}

fn cmd_make_fixtures(rest: &[String]) -> CliResult {
    let dir = positional(rest)?;
    let made = vmi_img::fixtures::make_fixtures(&dir)?;
    for p in &made {
        println!("{}", p.display());
    }
    Ok(())
}

fn cmd_commit(rest: &[String]) -> CliResult {
    let img = open_image(&positional(rest)?, false)?;
    let n = vmi_qcow::commit(&img)?;
    println!("committed {n} bytes into the backing file");
    Ok(())
}

fn cmd_compact(rest: &[String]) -> CliResult {
    use vmi_blockdev::FileDev;
    let path = positional(rest)?;
    let img = open_image(&path, false)?;
    let before = img.file_size();
    // Compact into a sibling file, then swap it into place.
    let tmp = path.with_extension("compact.tmp");
    let new_dev: std::sync::Arc<FileDev> = std::sync::Arc::new(FileDev::create(&tmp)?);
    let backing = img.backing().cloned();
    let compacted = vmi_qcow::compact(&img, new_dev, backing)?;
    let after = compacted.file_size();
    drop(compacted);
    drop(img);
    std::fs::rename(&tmp, &path)?;
    println!(
        "compacted {}: {} -> {} bytes ({:.1}% saved)",
        path.display(),
        before,
        after,
        100.0 * (before.saturating_sub(after)) as f64 / before.max(1) as f64
    );
    Ok(())
}

fn cmd_discard(rest: &[String]) -> CliResult {
    let path = positional(rest)?;
    let off = parse_size(&flag(rest, "--off").ok_or("--off required")?)?;
    let len = parse_size(&flag(rest, "--len").ok_or("--len required")?)?;
    let img = open_image(&path, false)?;
    let n = img.discard(off, len)?;
    img.close()?;
    println!("discarded {n} cluster(s) in [{off}, {})", off + len);
    Ok(())
}

fn cmd_resize(rest: &[String]) -> CliResult {
    let path = positional(rest)?;
    let new_size = parse_size(&flag(rest, "--size").ok_or("--size required")?)?;
    let img = open_image(&path, false)?;
    let old = img.virtual_size();
    let grown = img.resize(new_size)?;
    grown.close()?;
    println!("resized {}: {} -> {} bytes", path.display(), old, new_size);
    Ok(())
}

fn cmd_rebase(rest: &[String]) -> CliResult {
    let path = positional(rest)?;
    let img = open_image(&path, false)?;
    let rebased = match flag(rest, "--backing") {
        Some(name) => {
            let resolver = vmi_img::FsResolver::for_image(&path);
            let bdev = vmi_qcow::DevResolver::resolve(&resolver, &name)?;
            img.rebase_unsafe(Some(name.clone()), Some(bdev))?
        }
        None => img.rebase_unsafe(None, None)?,
    };
    rebased.close()?;
    println!(
        "rebased {} onto {:?}",
        path.display(),
        rebased.header().backing_file.as_deref().unwrap_or("<none>")
    );
    Ok(())
}

fn cmd_snapshot(rest: &[String]) -> CliResult {
    let path = positional(rest)?;
    if rest.iter().any(|a| a == "--list") {
        let img = open_image(&path, true)?;
        let snaps = img.list_snapshots();
        if snaps.is_empty() {
            println!("no snapshots");
        }
        for s in snaps {
            println!("{:>4}  {}", s.id, s.name);
        }
        return Ok(());
    }
    let img = open_image(&path, false)?;
    if let Some(name) = flag(rest, "--create") {
        let id = img.create_snapshot(name.clone())?;
        img.close()?;
        println!("created snapshot {id} ({name})");
    } else if let Some(id) = flag(rest, "--apply") {
        img.apply_snapshot(id.parse()?)?;
        img.close()?;
        println!("reverted to snapshot {id}");
    } else if let Some(id) = flag(rest, "--delete") {
        img.delete_snapshot(id.parse()?)?;
        img.close()?;
        println!("deleted snapshot {id}");
    } else {
        return Err("need one of --create/--list/--apply/--delete".into());
    }
    Ok(())
}

fn cmd_chain(rest: &[String]) -> CliResult {
    let base = positional(rest)?;
    let stem = flag(rest, "--stem").ok_or("--stem required")?;
    let size = parse_size(&flag(rest, "--size").ok_or("--size required")?)?;
    let quota = match flag(rest, "--quota") {
        Some(q) => parse_size(&q)?,
        None => 200 << 20,
    };
    let cluster = match flag(rest, "--cluster") {
        Some(c) => parse_size(&c)?.trailing_zeros(),
        None => 9, // 512 B, the paper's final arrangement
    };
    let cow = create_chain(&base, &stem, size, quota, cluster)?;
    println!("chain ready: boot from {}", cow.display());
    Ok(())
}

fn cmd_stats(rest: &[String]) -> CliResult {
    use vmi_blockdev::BlockDev;
    use vmi_obs::{ManualClock, NullRecorder, Obs};

    let path = positional(rest)?;
    let obs = Obs::new(
        std::sync::Arc::new(ManualClock::new(0)),
        std::sync::Arc::new(NullRecorder),
    );
    let img = vmi_img::open_image_with_obs(&path, true, &obs)?;
    // One sequential read pass through the metrics-instrumented chain:
    // every L2 lookup, cache hit/miss, and backing fetch lands in the
    // registry, which then renders in the Prometheus text format.
    let limit = match flag(rest, "--limit") {
        Some(l) => parse_size(&l)?.min(img.virtual_size()),
        None => img.virtual_size(),
    };
    let mut buf = vec![0u8; 1 << 20];
    let mut off = 0u64;
    while off < limit {
        let n = buf.len().min((limit - off) as usize);
        img.read_at(&mut buf[..n], off)?;
        off += n as u64;
    }
    let snap = obs
        .metrics_snapshot()
        .ok_or("metrics snapshot unavailable")?;
    print!("{}", snap.to_prometheus());
    Ok(())
}

fn cmd_warm(rest: &[String]) -> CliResult {
    let cache = positional(rest)?;
    let profile = match flag(rest, "--profile").as_deref() {
        None | Some("centos") => VmiProfile::centos_6_3(),
        Some("debian") => VmiProfile::debian_6_0_7(),
        Some("windows") => VmiProfile::windows_server_2012(),
        Some("tiny") => VmiProfile::tiny_test(),
        Some(other) => return Err(format!("unknown profile {other:?}").into()),
    };
    let seed = flag(rest, "--seed")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1);
    let (fetched, used) = warm_cache(&cache, &profile, seed)?;
    println!(
        "warmed {}: fetched {:.1} MiB from base, cache uses {:.1} MiB",
        cache.display(),
        fetched as f64 / (1 << 20) as f64,
        used as f64 / (1 << 20) as f64
    );
    Ok(())
}
