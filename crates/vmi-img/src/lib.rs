//! # vmi-img — `qemu-img`-style operations on image files
//!
//! The operational entry points of §4.2/§4.4, usable as a library (this
//! crate) or a CLI (the `vmi-img` binary):
//!
//! * `create` — plain, CoW, or cache image (a non-zero `--cache-quota`
//!   makes it a cache, exactly the §4.3 convention);
//! * `info`, `map`, `check` — inspect a file and its backing chain;
//! * `commit` — push a CoW layer into its (writable) backing file;
//! * `chain` — the §4.4 two-step flow in one command: create
//!   `base ← cache(quota) ← CoW`;
//! * `warm` — warm a cache image by replaying a synthetic boot trace
//!   through it (the §3.2 "boot a sample VM upon registration" flow).
//!
//! Backing files are resolved relative to the image's directory, like QEMU
//! does. All commands work on real files through [`vmi_blockdev::FileDev`].

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use vmi_blockdev::{BlockDev, BlockError, FileDev, Result, SharedDev};
use vmi_qcow::{CreateOpts, DevResolver, Header, QcowImage};

pub mod fixtures;

/// Resolves backing-file names against a directory on the real filesystem.
pub struct FsResolver {
    /// Directory that relative backing names are resolved against.
    pub dir: PathBuf,
}

impl FsResolver {
    /// Resolver rooted at the directory containing `image_path`.
    pub fn for_image(image_path: &Path) -> Self {
        Self {
            dir: image_path.parent().unwrap_or(Path::new(".")).to_path_buf(),
        }
    }
}

impl DevResolver for FsResolver {
    fn resolve(&self, name: &str) -> Result<SharedDev> {
        let path = if Path::new(name).is_absolute() {
            PathBuf::from(name)
        } else {
            self.dir.join(name)
        };
        // The §4.3 flag dance needs caches writable: open read-write when
        // permitted, falling back to read-only (open_chain wraps plain
        // layers read-only regardless).
        match FileDev::open(&path) {
            Ok(dev) => Ok(Arc::new(dev)),
            Err(_) => Ok(Arc::new(FileDev::open_read_only(&path)?)),
        }
    }
}

/// [`open_image`] with an observability handle attached to every layer, so
/// reads through the returned image feed `obs`'s metrics registry (the
/// `vmi-img stats` command renders the result via
/// [`vmi_obs::MetricsSnapshot::to_prometheus`]).
pub fn open_image_with_obs(
    path: &Path,
    read_only: bool,
    obs: &vmi_obs::Obs,
) -> Result<Arc<QcowImage>> {
    let resolver = FsResolver::for_image(path);
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| BlockError::unsupported("invalid image path"))?;
    vmi_qcow::open_chain_with_obs(&resolver, name, read_only, obs)
}

/// Open the image at `path` together with its backing chain.
pub fn open_image(path: &Path, read_only: bool) -> Result<Arc<QcowImage>> {
    let resolver = FsResolver::for_image(path);
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| BlockError::unsupported("invalid image path"))?;
    vmi_qcow::open_chain(&resolver, name, read_only)
}

/// Open `path` and every layer reachable through backing-file names as raw
/// read-only devices, ordered top → base, for [`vmi_audit::audit_chain`].
///
/// This deliberately bypasses the driver's open path: an fsck must be able
/// to look at containers too corrupt for [`open_image`] to accept. Backing
/// names are resolved like the driver resolves them (relative to the layer
/// naming them). A file reached twice yields the *same* `Arc`, so the
/// auditor's device-identity check sees backing cycles; the walk itself
/// stops at the first repeat, and anything deeper than the auditor's depth
/// limit is left for the auditor to condemn.
pub fn collect_chain_devs(path: &Path) -> Result<Vec<SharedDev>> {
    let mut seen: HashMap<PathBuf, SharedDev> = HashMap::new();
    let mut devs: Vec<SharedDev> = Vec::new();
    let mut current = path.to_path_buf();
    loop {
        let canon = std::fs::canonicalize(&current).unwrap_or_else(|_| current.clone());
        if let Some(dev) = seen.get(&canon) {
            devs.push(dev.clone());
            break;
        }
        let dev: SharedDev = Arc::new(FileDev::open_read_only(&current)?);
        seen.insert(canon, dev.clone());
        devs.push(dev.clone());
        if devs.len() > vmi_audit::MAX_CHAIN_DEPTH {
            break;
        }
        match vmi_audit::probe_backing(dev.as_ref() as &dyn BlockDev) {
            Some(name) => {
                let next = if Path::new(&name).is_absolute() {
                    PathBuf::from(name)
                } else {
                    current.parent().unwrap_or(Path::new(".")).join(name)
                };
                current = next;
            }
            None => break,
        }
    }
    Ok(devs)
}

/// Parameters for [`create_image`].
#[derive(Debug, Clone)]
pub struct CreateSpec {
    /// Path of the new image file.
    pub path: PathBuf,
    /// Virtual size in bytes.
    pub size: u64,
    /// Cluster size (log2).
    pub cluster_bits: u32,
    /// Backing file name (relative names resolve next to the image).
    pub backing: Option<String>,
    /// Cache quota; non-zero creates a cache image.
    pub cache_quota: u64,
}

/// Create an image file on disk; returns the opened image.
pub fn create_image(spec: &CreateSpec) -> Result<Arc<QcowImage>> {
    let dev: SharedDev = Arc::new(FileDev::create(&spec.path)?);
    let backing = match &spec.backing {
        None => None,
        Some(name) => {
            let resolver = FsResolver::for_image(&spec.path);
            let bdev = resolver.resolve(name)?;
            // Determine layer type for the flag dance: image chains open
            // recursively; raw bases are wrapped read-only.
            Some(match Header::decode(bdev.as_ref() as &dyn BlockDev) {
                Ok(h) if h.is_cache() => vmi_qcow::open_chain(&resolver, name, false)? as SharedDev,
                Ok(_) => vmi_qcow::open_chain(&resolver, name, true)? as SharedDev,
                Err(_) => Arc::new(vmi_blockdev::ReadOnlyDev::new(bdev)) as SharedDev,
            })
        }
    };
    let opts = CreateOpts {
        size: spec.size,
        cluster_bits: spec.cluster_bits,
        backing_file: spec.backing.clone(),
        cache_quota: spec.cache_quota,
    };
    QcowImage::create(dev, opts, backing)
}

/// The §4.4 two-step chain in one call: creates `<stem>.cache` and
/// `<stem>.cow` next to `base`, returns the CoW path.
pub fn create_chain(
    base: &Path,
    stem: &str,
    size: u64,
    quota: u64,
    cache_cluster_bits: u32,
) -> Result<PathBuf> {
    let dir = base.parent().unwrap_or(Path::new(".")).to_path_buf();
    let base_name = base
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| BlockError::unsupported("invalid base path"))?
        .to_string();
    let cache_path = dir.join(format!("{stem}.cache"));
    let cow_path = dir.join(format!("{stem}.cow"));
    // Step 1: "qemu-img is invoked with a cache quota and pointing to the
    // base image as its backing file."
    create_image(&CreateSpec {
        path: cache_path.clone(),
        size,
        cluster_bits: cache_cluster_bits,
        backing: Some(base_name),
        cache_quota: quota,
    })?
    .close()?;
    // Step 2: "qemu-img is invoked with no cache quota and pointing to the
    // cache image as its backing file."
    create_image(&CreateSpec {
        path: cow_path.clone(),
        size,
        cluster_bits: vmi_qcow::DEFAULT_CLUSTER_BITS,
        backing: Some(format!("{stem}.cache")),
        cache_quota: 0,
    })?
    .close()?;
    Ok(cow_path)
}

/// Warm a cache image by replaying a generated boot trace through it
/// (§3.2's sample-VM boot). Returns (bytes fetched from base, cache used).
pub fn warm_cache(
    cache_path: &Path,
    profile: &vmi_trace::VmiProfile,
    seed: u64,
) -> Result<(u64, u64)> {
    let img = open_image(cache_path, false)?;
    if !img.is_cache() {
        return Err(BlockError::unsupported("not a cache image"));
    }
    if img.virtual_size() < profile.virtual_size {
        return Err(BlockError::unsupported(format!(
            "image virtual size {} smaller than profile's {}",
            img.virtual_size(),
            profile.virtual_size
        )));
    }
    let trace = vmi_trace::generate(profile, seed);
    let mut buf = vec![0u8; 1 << 20];
    for op in trace
        .ops
        .iter()
        .filter(|o| o.kind == vmi_trace::OpKind::Read)
    {
        img.read_at(&mut buf[..op.len as usize], op.offset)?;
    }
    let fetched = img.cor_stats().miss_bytes;
    let used = img.cache_used();
    img.close()?;
    Ok((fetched, used))
}

/// Parse a human size: plain bytes, or `K`/`M`/`G` binary suffixes
/// (`512`, `64K`, `200M`, `8G`).
pub fn parse_size(s: &str) -> Result<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1u64 << 10),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1u64 << 20),
        Some('G') | Some('g') => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    let n: u64 = num
        .parse()
        .map_err(|e| BlockError::unsupported(format!("bad size {s:?}: {e}")))?;
    n.checked_mul(mult)
        .ok_or_else(|| BlockError::unsupported(format!("size {s:?} overflows")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vmi-img-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn parse_size_suffixes() {
        assert_eq!(parse_size("512").unwrap(), 512);
        assert_eq!(parse_size("64K").unwrap(), 64 << 10);
        assert_eq!(parse_size("200m").unwrap(), 200 << 20);
        assert_eq!(parse_size("8G").unwrap(), 8 << 30);
        assert!(parse_size("abc").is_err());
        assert!(parse_size("99999999999G").is_err(), "overflow rejected");
    }

    #[test]
    fn create_info_roundtrip_on_disk() {
        let d = tmpdir("create");
        let img = create_image(&CreateSpec {
            path: d.join("a.img"),
            size: 16 << 20,
            cluster_bits: 16,
            backing: None,
            cache_quota: 0,
        })
        .unwrap();
        img.write_at(b"persisted", 4096).unwrap();
        img.close().unwrap();
        drop(img);
        let back = open_image(&d.join("a.img"), true).unwrap();
        let mut buf = [0u8; 9];
        back.read_at(&mut buf, 4096).unwrap();
        assert_eq!(&buf, b"persisted");
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn full_chain_flow_on_disk() {
        let d = tmpdir("chain");
        // Raw base.
        let base = FileDev::create(d.join("base.raw")).unwrap();
        base.set_len(16 << 20).unwrap();
        base.write_at(&[0x42; 8192], 1 << 20).unwrap();
        base.flush().unwrap();
        drop(base);

        let cow_path = create_chain(&d.join("base.raw"), "vm1", 16 << 20, 4 << 20, 9).unwrap();
        let cow = open_image(&cow_path, false).unwrap();
        let mut buf = [0u8; 8192];
        cow.read_at(&mut buf, 1 << 20).unwrap();
        assert_eq!(buf, [0x42; 8192]);
        cow.write_at(&[1; 512], 0).unwrap();
        drop(cow);

        // The cache file persisted its fill; reopen and verify warm read.
        let cache = open_image(&d.join("vm1.cache"), true).unwrap();
        assert!(cache.is_cache());
        cache.read_at(&mut buf, 1 << 20).unwrap();
        assert_eq!(buf, [0x42; 8192]);
        assert_eq!(cache.cor_stats().miss_bytes, 0, "read must be warm");
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn warm_cache_command_flow() {
        let d = tmpdir("warm");
        let profile = vmi_trace::VmiProfile::tiny_test();
        let base = FileDev::create(d.join("base.raw")).unwrap();
        base.set_len(profile.virtual_size).unwrap();
        base.flush().unwrap();
        drop(base);
        create_chain(&d.join("base.raw"), "vm", profile.virtual_size, 16 << 20, 9).unwrap();
        let (fetched, used) = warm_cache(&d.join("vm.cache"), &profile, 5).unwrap();
        assert!(fetched >= profile.unique_read_bytes / 2);
        assert!(used > profile.unique_read_bytes);
        // Re-warming does nothing new.
        let (fetched2, _) = warm_cache(&d.join("vm.cache"), &profile, 5).unwrap();
        assert_eq!(fetched2, 0);
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn warm_on_non_cache_rejected() {
        let d = tmpdir("notcache");
        create_image(&CreateSpec {
            path: d.join("p.img"),
            size: 64 << 20,
            cluster_bits: 16,
            backing: None,
            cache_quota: 0,
        })
        .unwrap()
        .close()
        .unwrap();
        let err = warm_cache(&d.join("p.img"), &vmi_trace::VmiProfile::tiny_test(), 1).unwrap_err();
        assert!(err.to_string().contains("not a cache"));
        std::fs::remove_dir_all(d).unwrap();
    }
}
