//! Regression probe: an L1 entry patched to a cluster-aligned offset near
//! `u64::MAX` must be *flagged* by the auditor, not overflow its
//! out-of-bounds arithmetic and panic in debug builds.

use std::sync::Arc;
use vmi_audit::audit_image;
use vmi_blockdev::{BlockDev, MemDev, SharedDev};
use vmi_qcow::{CreateOpts, QcowImage};

#[test]
fn crafted_huge_l1_entry_does_not_panic() {
    let mem = Arc::new(MemDev::new());
    let dev: SharedDev = mem.clone();
    let img = QcowImage::create(dev.clone(), CreateOpts::plain(1 << 20), None).unwrap();
    img.write_at(&[1u8; 4096], 0).unwrap();
    img.close().unwrap();
    let mut raw = mem.to_vec();
    // Find first allocated L1 entry and point it at a cluster-aligned
    // offset near u64::MAX so `l2_off + cs` overflows.
    let l1_off = u64::from_be_bytes(raw[32..40].try_into().unwrap()) as usize;
    let l1_size = u32::from_be_bytes(raw[40..44].try_into().unwrap()) as usize;
    let cb = u32::from_be_bytes(raw[20..24].try_into().unwrap());
    let cs: u64 = 1 << cb;
    let evil = (u64::MAX / cs) * cs; // largest cluster-aligned u64
    let mut patched = false;
    for i in 0..l1_size {
        let o = l1_off + i * 8;
        if u64::from_be_bytes(raw[o..o + 8].try_into().unwrap()) != 0 {
            raw[o..o + 8].copy_from_slice(&evil.to_be_bytes());
            patched = true;
            break;
        }
    }
    assert!(patched);
    let dev2 = MemDev::from_vec(raw);
    let rep = audit_image(&dev2);
    assert!(!rep.is_clean(), "evil entry must be flagged");
}
