//! Golden corpus for the lint engine: one known-bad snippet per rule, the
//! tokenizer edge cases that used to defeat the line scanner, allowlist /
//! strict / JSON semantics, and the committed lock-order bad fixture.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

use vmi_audit::lint::{self, Options};

static NEXT: AtomicU32 = AtomicU32::new(0);

/// A scratch workspace root, deleted on drop.
struct TempRoot(PathBuf);

impl TempRoot {
    fn new() -> TempRoot {
        let dir = std::env::temp_dir().join(format!(
            "vmi-lint-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        TempRoot(dir)
    }

    fn write(&self, rel: &str, content: &str) -> &Self {
        let p = self.0.join(rel);
        fs::create_dir_all(p.parent().unwrap()).unwrap();
        fs::write(p, content).unwrap();
        self
    }

    fn run(&self) -> lint::Outcome {
        lint::run(&Options::new(&self.0))
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn rules_of(out: &lint::Outcome) -> Vec<&'static str> {
    out.reported.iter().map(|f| f.rule).collect()
}

// ---- per-rule golden snippets ------------------------------------------

#[test]
fn no_unwrap_fires_in_library_code_only() {
    let t = TempRoot::new();
    t.write(
        "crates/x/src/lib.rs",
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    t.write(
        "crates/x/src/bin/tool.rs",
        "fn main() { Some(1).unwrap(); }\n",
    );
    let out = t.run();
    assert_eq!(rules_of(&out), ["no-unwrap"]);
    assert_eq!(out.reported[0].path, "crates/x/src/lib.rs");
    assert_eq!(out.exit, 1);
}

#[test]
fn no_raw_clock_fires_outside_vmi_obs() {
    let t = TempRoot::new();
    t.write(
        "crates/x/src/lib.rs",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    t.write(
        "crates/vmi-obs/src/lib.rs",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let out = t.run();
    assert_eq!(rules_of(&out), ["no-raw-clock"]);
    assert_eq!(out.reported[0].path, "crates/x/src/lib.rs");
}

#[test]
fn no_raw_sleep_fires() {
    let t = TempRoot::new();
    t.write(
        "crates/x/src/lib.rs",
        "pub fn nap() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n",
    );
    assert_eq!(rules_of(&t.run()), ["no-raw-sleep"]);
}

#[test]
fn obs_twin_requires_delegating_twin_in_crate() {
    let t = TempRoot::new();
    t.write(
        "crates/x/src/lib.rs",
        "pub fn open_with_obs() -> u32 { 1 }\n",
    );
    let out = t.run();
    assert_eq!(rules_of(&out), ["obs-twin"]);
    assert!(out.reported[0].message.contains("pub fn open"));

    let t2 = TempRoot::new();
    // The twin may live in a different module of the same crate.
    t2.write("crates/x/src/a.rs", "pub fn open_with_obs() -> u32 { 1 }\n");
    t2.write(
        "crates/x/src/b.rs",
        "pub fn open() -> u32 { open_with_obs() }\n",
    );
    assert_eq!(t2.run().exit, 0);
}

#[test]
fn span_pair_fires_on_hand_emitted_spans() {
    let t = TempRoot::new();
    t.write(
        "crates/x/src/lib.rs",
        "pub fn f(o: &Obs) { o.emit(|| Event::SpanStart { id: 1 }); }\n",
    );
    assert_eq!(rules_of(&t.run()), ["span-pair"]);
}

#[test]
fn qcow_barrier_fires_only_inside_vmi_qcow() {
    let t = TempRoot::new();
    t.write(
        "crates/vmi-qcow/src/lib.rs",
        "pub fn f(d: &D) { d.flush(); }\n",
    );
    t.write(
        "crates/other/src/lib.rs",
        "pub fn f(d: &D) { d.flush(); }\n",
    );
    let out = t.run();
    assert_eq!(rules_of(&out), ["qcow-barrier"]);
    assert_eq!(out.reported[0].path, "crates/vmi-qcow/src/lib.rs");
}

#[test]
fn no_std_lock_fires_on_std_sync_and_poison_idioms() {
    let t = TempRoot::new();
    t.write(
        "crates/x/src/lib.rs",
        "pub struct S { m: std::sync::Mutex<u32> }\npub fn f(s: &S) -> u32 { *s.m.lock().unwrap() }\n",
    );
    let rules = rules_of(&t.run());
    assert!(rules.contains(&"no-std-lock"), "{rules:?}");
}

// ---- tokenizer edge cases ----------------------------------------------

#[test]
fn needles_inside_multiline_raw_strings_do_not_fire() {
    let t = TempRoot::new();
    t.write(
        "crates/x/src/lib.rs",
        "pub fn f() -> &'static str {\n    r#\"first .unwrap()\nsecond panic! std::sync::Mutex\"#\n}\n",
    );
    assert_eq!(t.run().exit, 0);
}

#[test]
fn needles_inside_nested_block_comments_do_not_fire() {
    let t = TempRoot::new();
    t.write(
        "crates/x/src/lib.rs",
        "/* outer /* .unwrap() */ still comment panic! */\npub fn f() -> u32 { 1 }\n",
    );
    assert_eq!(t.run().exit, 0);
}

#[test]
fn cfg_test_modules_are_exempt() {
    let t = TempRoot::new();
    t.write(
        "crates/x/src/lib.rs",
        "pub fn f() -> u32 { 1 }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); std::thread::sleep(d); }\n}\n",
    );
    assert_eq!(t.run().exit, 0);
}

#[test]
fn inline_allow_suppresses_a_finding() {
    let t = TempRoot::new();
    t.write(
        "crates/x/src/lib.rs",
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() } // lint:allow(no-unwrap)\n",
    );
    assert_eq!(t.run().exit, 0);
}

// ---- allowlist / strict / output semantics ------------------------------

#[test]
fn allowlist_entry_suppresses_and_stale_entry_warns() {
    let t = TempRoot::new();
    t.write(
        "crates/x/src/lib.rs",
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    t.write(
        ".vmi-lint.allow",
        "no-unwrap:crates/x/src/lib.rs:v.unwrap()\nno-raw-sleep:nowhere.rs:nothing\n",
    );
    let out = t.run();
    assert_eq!(out.exit, 0, "stderr: {}", out.stderr);
    assert!(out.stdout.contains("1 allowlisted"), "{}", out.stdout);
    assert!(
        out.stderr.contains("matched nothing (stale?)"),
        "{}",
        out.stderr
    );
}

#[test]
fn strict_turns_stale_allow_entries_into_failure() {
    let t = TempRoot::new();
    t.write("crates/x/src/lib.rs", "pub fn f() -> u32 { 1 }\n");
    t.write(".vmi-lint.allow", "no-unwrap:nowhere.rs:nothing\n");
    let mut opts = Options::new(&t.0);
    opts.strict = true;
    let out = lint::run(&opts);
    assert_eq!(out.exit, 1);
    assert!(
        out.stderr.contains("fatal under --strict"),
        "{}",
        out.stderr
    );
    // Without strict the same tree is clean.
    assert_eq!(t.run().exit, 0);
}

#[test]
fn json_output_shape_is_stable() {
    let t = TempRoot::new();
    t.write(
        "crates/x/src/lib.rs",
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    let mut opts = Options::new(&t.0);
    opts.json = true;
    let out = lint::run(&opts);
    assert_eq!(
        out.stdout,
        "{\"rule\":\"no-unwrap\",\"path\":\"crates/x/src/lib.rs\",\"line\":1,\
         \"message\":\"`.unwrap()` in library code; return a typed error instead\"}\n"
    );
}

#[test]
fn missing_crates_dir_is_a_usage_error() {
    let t = TempRoot::new();
    assert_eq!(t.run().exit, 2);
}

// ---- lock-order rules ---------------------------------------------------

const TINY_MANIFEST: &str = "\
[class.a]\nrank = 10\nblocking = \"forbid\"\n\
[class.b]\nrank = 20\nblocking = \"allow\"\n\
[[site]]\nclass = \"a\"\npattern = \".a.lock(\"\ncrate = \"x\"\n\
[[site]]\nclass = \"b\"\npattern = \".b.lock(\"\ncrate = \"x\"\n\
[analysis]\nblocking = [\"recv\"]\nstop = [\"drop\"]\n";

#[test]
fn lock_order_inversion_is_detected() {
    let t = TempRoot::new();
    t.write("LOCK_ORDER.toml", TINY_MANIFEST);
    t.write(
        "crates/x/src/lib.rs",
        "pub fn f(s: &S) {\n    let g = s.b.lock();\n    let h = s.a.lock();\n}\n",
    );
    let out = t.run();
    assert_eq!(rules_of(&out), ["lock-order"]);
    assert!(
        out.reported[0].message.contains("ascending"),
        "{}",
        out.reported[0].message
    );
    assert_eq!(out.reported[0].line_no, 3);
}

#[test]
fn lock_order_correct_nesting_is_clean() {
    let t = TempRoot::new();
    t.write("LOCK_ORDER.toml", TINY_MANIFEST);
    t.write(
        "crates/x/src/lib.rs",
        "pub fn f(s: &S) {\n    let g = s.a.lock();\n    let h = s.b.lock();\n}\n",
    );
    assert_eq!(t.run().exit, 0);
}

#[test]
fn lock_order_inversion_through_a_callee_is_detected() {
    let t = TempRoot::new();
    t.write("LOCK_ORDER.toml", TINY_MANIFEST);
    // No direct inversion: the held->acquired edge only exists through the
    // interprocedural fixpoint.
    t.write(
        "crates/x/src/lib.rs",
        "pub fn outer(s: &S) {\n    let g = s.b.lock();\n    helper(s);\n}\n\
         fn helper(s: &S) {\n    let h = s.a.lock();\n}\n",
    );
    let out = t.run();
    assert_eq!(rules_of(&out), ["lock-order"]);
    assert_eq!(out.reported[0].line_no, 3, "flagged at the call site");
}

#[test]
fn lock_order_release_via_drop_and_block_end_is_respected() {
    let t = TempRoot::new();
    t.write("LOCK_ORDER.toml", TINY_MANIFEST);
    t.write(
        "crates/x/src/lib.rs",
        "pub fn explicit(s: &S) {\n    let g = s.b.lock();\n    drop(g);\n    let h = s.a.lock();\n}\n\
         pub fn scoped(s: &S) {\n    {\n        let g = s.b.lock();\n    }\n    let h = s.a.lock();\n}\n",
    );
    let out = t.run();
    assert_eq!(out.exit, 0, "{}", out.stdout);
}

#[test]
fn blocking_under_forbid_class_is_detected() {
    let t = TempRoot::new();
    t.write("LOCK_ORDER.toml", TINY_MANIFEST);
    t.write(
        "crates/x/src/lib.rs",
        "pub fn f(s: &S, ch: &Receiver) {\n    let g = s.a.lock();\n    ch.recv();\n}\n",
    );
    let out = t.run();
    assert_eq!(rules_of(&out), ["blocking-under-lock"]);
}

#[test]
fn chained_class_may_self_nest() {
    let t = TempRoot::new();
    t.write(
        "LOCK_ORDER.toml",
        "[class.a]\nrank = 10\nchained = true\n\
         [[site]]\nclass = \"a\"\npattern = \".a.lock(\"\ncrate = \"x\"\n",
    );
    t.write(
        "crates/x/src/lib.rs",
        "pub fn f(s: &S, t: &S) {\n    let g = s.a.lock();\n    let h = t.a.lock();\n}\n",
    );
    assert_eq!(t.run().exit, 0);
}

#[test]
fn broken_manifest_is_a_usage_error() {
    let t = TempRoot::new();
    t.write("LOCK_ORDER.toml", "[class.a]\nrank = \"ten\"\n");
    t.write("crates/x/src/lib.rs", "pub fn f() -> u32 { 1 }\n");
    let out = t.run();
    assert_eq!(out.exit, 2);
    assert!(out.stderr.contains("LOCK_ORDER.toml"), "{}", out.stderr);
}

// ---- the committed bad fixture (same tree CI runs) ----------------------

#[test]
fn committed_bad_fixture_trips_the_analyzer() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/lockorder-bad");
    let out = lint::run(&Options::new(&root));
    assert_eq!(out.exit, 1);
    let rules = rules_of(&out);
    assert!(rules.contains(&"lock-order"), "{rules:?}");
    assert!(rules.contains(&"blocking-under-lock"), "{rules:?}");
    assert!(
        out.stdout.contains("lock acquisition cycle"),
        "{}",
        out.stdout
    );
    assert!(
        out.stdout.contains("re-acquiring `front`"),
        "{}",
        out.stdout
    );
}

// ---- the real workspace must be clean (the analyzer's acceptance bar) ---

#[test]
fn workspace_lock_order_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = lint::run(&Options::new(&root));
    let lock_findings: Vec<_> = out
        .reported
        .iter()
        .filter(|f| f.rule == "lock-order" || f.rule == "blocking-under-lock")
        .collect();
    assert!(
        lock_findings.is_empty(),
        "workspace lock-order findings: {lock_findings:#?}"
    );
}
