//! Parser-level fsck tests over hand-built containers.
//!
//! These images are assembled byte by byte — no `vmi-qcow` involved — so the
//! checker is exercised against the *format specification* rather than
//! against whatever the driver happens to write. Driver-produced images are
//! covered by the integration suite in `tests/`.

use std::sync::Arc;

use vmi_audit::{
    audit_chain, audit_image, audit_image_opts, audit_image_with_obs, probe_backing, AuditOpts,
    RepairHint, Severity, ViolationKind,
};
use vmi_blockdev::{BlockDev, MemDev, SharedDev};

const CS: u64 = 512; // cluster_bits = 9
const SIZE: u64 = 32 << 10; // exactly one L2 table of coverage (64 entries)

fn put32(v: &mut Vec<u8>, x: u32) {
    v.extend_from_slice(&x.to_be_bytes());
}
fn put64(v: &mut Vec<u8>, x: u64) {
    v.extend_from_slice(&x.to_be_bytes());
}

/// Build a single-L2 cache image: header cluster 0, L1 at 512, L2 at 1024,
/// data clusters as given by `entries` (l2_idx -> container offset).
struct Builder {
    quota: u64,
    used: u64,
    cache: bool,
    backing: Option<String>,
    size: u64,
    entries: Vec<(usize, u64)>,
}

impl Builder {
    fn cache() -> Self {
        Builder {
            quota: 16 << 10,
            used: 0,
            cache: true,
            backing: None,
            size: SIZE,
            entries: Vec::new(),
        }
    }

    fn plain() -> Self {
        Builder {
            quota: 0,
            used: 0,
            cache: false,
            backing: None,
            size: SIZE,
            entries: Vec::new(),
        }
    }

    fn map(mut self, l2_idx: usize, off: u64) -> Self {
        self.entries.push((l2_idx, off));
        self
    }

    /// `used` consistent with the §4.3 accounting for the mapped entries.
    fn consistent_used(&self) -> u64 {
        let l2_tables = u64::from(!self.entries.is_empty());
        CS + CS + (l2_tables + self.entries.len() as u64) * CS
    }

    fn build(&self) -> SharedDev {
        let mut bytes = Vec::new();
        put32(&mut bytes, 0x5146_49fb); // magic
        put32(&mut bytes, 3); // version
        let name = self.backing.clone().unwrap_or_default();
        let ext_len = if self.cache { 24 + 8 } else { 8 };
        put64(&mut bytes, if name.is_empty() { 0 } else { 48 + ext_len }); // backing_off
        put32(&mut bytes, name.len() as u32);
        put32(&mut bytes, 9); // cluster_bits
        put64(&mut bytes, self.size);
        put64(&mut bytes, CS); // l1_table_offset
        put32(&mut bytes, 1); // l1_size
        put32(&mut bytes, 48); // header_length
        if self.cache {
            put32(&mut bytes, 0xCAC8_E001);
            put32(&mut bytes, 16);
            put64(&mut bytes, self.quota);
            put64(
                &mut bytes,
                if self.used == 0 {
                    self.consistent_used()
                } else {
                    self.used
                },
            );
        }
        put32(&mut bytes, 0); // EXT_END
        put32(&mut bytes, 0);
        bytes.extend_from_slice(name.as_bytes());

        let dev = MemDev::new();
        dev.write_at(&bytes, 0).unwrap();
        if !self.entries.is_empty() {
            // L1[0] -> L2 table at 1024.
            dev.write_at(&1024u64.to_be_bytes(), CS).unwrap();
            let mut l2 = vec![0u8; CS as usize];
            let mut max_off = 1024 + CS;
            for &(idx, off) in &self.entries {
                l2[idx * 8..idx * 8 + 8].copy_from_slice(&off.to_be_bytes());
                // Deliberately-out-of-bounds test offsets must stay out of
                // bounds (and must not balloon the in-memory container).
                if off + CS <= (1 << 20) {
                    max_off = max_off.max(off + CS);
                }
            }
            dev.write_at(&l2, 1024).unwrap();
            // Make sure the container extends over every data cluster.
            if dev.len() < max_off {
                dev.set_len(max_off).unwrap();
            }
        } else {
            dev.write_at(&[0u8; 512], CS).unwrap(); // empty L1
        }
        Arc::new(dev)
    }
}

fn kinds(report: &vmi_audit::AuditReport) -> Vec<ViolationKind> {
    report.violations.iter().map(|v| v.kind).collect()
}

#[test]
fn clean_cache_image_audits_clean() {
    let dev = Builder::cache().map(0, 1536).map(1, 2048).build();
    let rep = audit_image(dev.as_ref());
    assert!(rep.is_clean(), "{:?}", rep.violations);
    assert!(rep.is_cache);
    assert_eq!(rep.data_clusters, 2);
    assert_eq!(rep.l2_tables, 1);
    assert_eq!(rep.recomputed_used, 512 + 512 + 3 * 512);
}

#[test]
fn clean_plain_image_audits_clean() {
    let dev = Builder::plain().map(0, 1536).build();
    let rep = audit_image(dev.as_ref());
    assert!(rep.is_clean(), "{:?}", rep.violations);
    assert!(!rep.is_cache);
    assert_eq!(rep.quota, 0);
}

#[test]
fn torn_used_size_is_a_repairable_warning() {
    let mut b = Builder::cache().map(0, 1536);
    b.used = 640; // stale pre-boot value
    let dev = b.build();
    let rep = audit_image(dev.as_ref());
    assert_eq!(kinds(&rep), vec![ViolationKind::UsedSizeMismatch]);
    let v = &rep.violations[0];
    assert_eq!(v.severity, Severity::Warning);
    assert_eq!(v.repair, RepairHint::RewriteUsedSize(rep.recomputed_used));
    assert_eq!(rep.used_repair(), Some(rep.recomputed_used));
    assert!(!rep.has_errors());
}

#[test]
fn expected_used_override_suppresses_the_torn_warning() {
    // Paranoid mode: the on-disk field is stale mid-session by design; the
    // driver passes its in-memory counter instead.
    let mut b = Builder::cache().map(0, 1536);
    b.used = 640;
    let dev = b.build();
    let truth = Builder::cache().map(0, 1536).consistent_used();
    let rep = audit_image_opts(
        dev.as_ref(),
        &AuditOpts {
            expected_used: Some(truth),
            ..Default::default()
        },
    );
    assert!(rep.is_clean(), "{:?}", rep.violations);
}

#[test]
fn quota_exceeded_is_structural() {
    let mut b = Builder::cache().map(0, 1536).map(1, 2048);
    b.quota = 1024; // quota below even the metadata footprint
    b.used = 1024;
    let dev = b.build();
    let rep = audit_image(dev.as_ref());
    assert!(
        kinds(&rep).contains(&ViolationKind::QuotaExceeded),
        "{:?}",
        rep.violations
    );
    assert!(rep.has_errors());
    assert_eq!(rep.violations[0].repair, RepairHint::DiscardCache);
}

#[test]
fn overlapping_data_clusters_detected() {
    // Two L2 entries pointing at the same container cluster.
    let dev = Builder::cache().map(0, 1536).map(1, 1536).build();
    let rep = audit_image(dev.as_ref());
    assert!(
        kinds(&rep).contains(&ViolationKind::OverlappingClusters),
        "{:?}",
        rep.violations
    );
}

#[test]
fn data_cluster_aliasing_metadata_detected() {
    // An L2 entry pointing back into the L2 table itself.
    let dev = Builder::cache().map(0, 1024).build();
    let rep = audit_image(dev.as_ref());
    assert!(
        kinds(&rep).contains(&ViolationKind::OverlappingClusters),
        "{:?}",
        rep.violations
    );
}

#[test]
fn unaligned_and_out_of_bounds_entries_detected() {
    let dev = Builder::cache().map(0, 1537).map(1, 1 << 40).build();
    let rep = audit_image(dev.as_ref());
    let ks = kinds(&rep);
    assert!(ks.contains(&ViolationKind::L2EntryUnaligned), "{ks:?}");
    assert!(ks.contains(&ViolationKind::L2EntryOutOfBounds), "{ks:?}");
}

#[test]
fn bad_magic_detected() {
    let dev = Builder::cache().map(0, 1536).build();
    dev.write_at(&[0u8; 4], 0).unwrap();
    let rep = audit_image(dev.as_ref());
    assert_eq!(kinds(&rep), vec![ViolationKind::BadMagic]);
    assert!(rep.violations[0].detail.contains("header"));
}

#[test]
fn zero_quota_detected() {
    let mut b = Builder::cache().map(0, 1536);
    b.quota = 0;
    b.used = 1; // avoid the builder's auto-consistent fill
    let dev = b.build();
    // Patch quota to zero directly (builder refuses zero): quota sits right
    // after the 8-byte ext frame at offset 48.
    dev.write_at(&0u64.to_be_bytes(), 56).unwrap();
    let rep = audit_image(dev.as_ref());
    assert_eq!(kinds(&rep), vec![ViolationKind::ZeroQuota]);
}

#[test]
fn truncated_l1_detected() {
    let dev = Builder::cache().build();
    dev.set_len(100).unwrap(); // chop the container before the L1 table
    let rep = audit_image(dev.as_ref());
    assert_eq!(kinds(&rep), vec![ViolationKind::TruncatedL1]);
}

#[test]
fn mapping_beyond_virtual_size_detected() {
    // Shrink the virtual size so l1_size=1 still matches, but entry 1 maps
    // a guest address past the end.
    let mut b = Builder::cache().map(0, 1536).map(1, 2048);
    b.size = 513; // one cluster + 1 byte; l2_idx 1 maps vba 512..1024 (legal), idx 4 is beyond
    let dev = Builder {
        entries: vec![(0, 1536), (4, 2048)],
        ..b
    }
    .build();
    let rep = audit_image(dev.as_ref());
    assert!(
        kinds(&rep).contains(&ViolationKind::L2EntryOutOfBounds),
        "{:?}",
        rep.violations
    );
}

#[test]
fn never_errors_on_garbage() {
    // Arbitrary garbage must produce violations, not panics.
    let dev = MemDev::new();
    dev.write_at(&[0xA5u8; 4096], 0).unwrap();
    let rep = audit_image(&dev);
    assert!(!rep.is_clean());
    let empty = MemDev::new();
    let rep = audit_image(&empty);
    assert_eq!(kinds(&rep), vec![ViolationKind::UnreadableHeader]);
}

#[test]
fn probe_backing_reads_the_name() {
    let mut b = Builder::cache().map(0, 1536);
    b.backing = Some("base.img".into());
    let dev = b.build();
    assert_eq!(probe_backing(dev.as_ref()).as_deref(), Some("base.img"));
    let plain = Builder::plain().build();
    assert_eq!(probe_backing(plain.as_ref()), None);
}

#[test]
fn audit_with_obs_counts_and_emits() {
    use vmi_obs::{met, ManualClock, RecorderHandle};
    let mut b = Builder::cache().map(0, 1536);
    b.used = 640;
    let dev = b.build();
    let (rec, sink) = RecorderHandle::jsonl();
    let obs = rec.attach(Arc::new(ManualClock::new(0)));
    let rep = audit_image_with_obs(dev.as_ref(), &AuditOpts::default(), &obs);
    assert_eq!(rep.violations.len(), 1);
    assert_eq!(obs.counter_value(met::AUDIT_RUNS), 1);
    assert_eq!(obs.counter_value(met::AUDIT_VIOLATIONS), 1);
    let lines = sink.lines();
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"audit_violation\"") && l.contains("used_size_mismatch")),
        "{lines:?}"
    );
}

// ---- chain-level checks ----

#[test]
fn chain_cycle_via_shared_device_detected() {
    let a = Builder::cache().map(0, 1536).build();
    let b = Builder::plain().build();
    let rep = audit_chain(&[a.clone(), b, a.clone()], false);
    assert!(
        rep.violations
            .iter()
            .any(|v| v.kind == ViolationKind::ChainCycle),
        "{:?}",
        rep.violations
    );
    assert_eq!(rep.violations[0].repair, RepairHint::RebuildChain);
}

#[test]
fn overlong_chain_flagged_as_cycle() {
    let layers: Vec<SharedDev> = (0..20).map(|_| Builder::plain().build()).collect();
    let rep = audit_chain(&layers, false);
    assert!(rep
        .violations
        .iter()
        .any(|v| v.kind == ViolationKind::ChainCycle));
}

#[test]
fn chain_size_mismatch_detected() {
    let top = Builder::cache().map(0, 1536).build();
    let mut bot = Builder::plain();
    bot.size = SIZE * 2;
    // l1_size must still match the bigger geometry: 2 L2 tables needed.
    let bot_dev = {
        let dev = bot.build();
        // Patch l1_size to 2 so the layer itself stays structurally clean.
        dev.write_at(&2u32.to_be_bytes(), 40).unwrap();
        let mut l1 = vec![0u8; 16];
        l1[..8].copy_from_slice(&0u64.to_be_bytes());
        dev.write_at(&l1, CS).unwrap();
        dev
    };
    let rep = audit_chain(&[top, bot_dev], false);
    assert!(
        rep.violations
            .iter()
            .any(|v| v.kind == ViolationKind::ChainSizeMismatch),
        "{:?}",
        rep.violations
    );
}

#[test]
fn clean_chain_over_raw_base_is_clean() {
    let base: SharedDev = Arc::new(MemDev::new());
    base.write_at(&[7u8; 4096], 0).unwrap();
    // Cache cluster 0 copied verbatim from the base.
    let cache = Builder::cache().map(0, 1536).build();
    cache.write_at(&[7u8; 512], 1536).unwrap();
    let rep = audit_chain(&[cache, base], true);
    assert!(rep.is_clean(), "{:?}", rep.all_violations());
}

#[test]
fn cache_base_divergence_detected_by_deep_check() {
    let base: SharedDev = Arc::new(MemDev::new());
    base.write_at(&[7u8; 4096], 0).unwrap();
    let cache = Builder::cache().map(0, 1536).build();
    cache.write_at(&[9u8; 512], 1536).unwrap(); // diverges from base
    let shallow = audit_chain(&[cache.clone(), base.clone()], false);
    assert!(
        shallow.is_clean(),
        "shallow pass must not read data clusters"
    );
    let deep = audit_chain(&[cache, base], true);
    assert!(
        deep.violations
            .iter()
            .any(|v| v.kind == ViolationKind::CacheBaseDivergence),
        "{:?}",
        deep.violations
    );
    assert_eq!(deep.violations[0].repair, RepairHint::DiscardCache);
}

#[test]
fn cow_layer_may_diverge_from_base() {
    // A *plain* (CoW) layer holding different bytes than the base is the
    // whole point of copy-on-write — the deep check must not flag it.
    let base: SharedDev = Arc::new(MemDev::new());
    base.write_at(&[7u8; 4096], 0).unwrap();
    let cow = Builder::plain().map(0, 1536).build();
    cow.write_at(&[9u8; 512], 1536).unwrap();
    let rep = audit_chain(&[cow, base], true);
    assert!(rep.is_clean(), "{:?}", rep.all_violations());
}

#[test]
fn divergence_resolves_through_middle_layers() {
    // cache -> cache -> raw base: the upper cache's cluster must match what
    // the *resolved* stack below says, which here comes from the middle
    // cache's mapped cluster, not the raw base.
    let base: SharedDev = Arc::new(MemDev::new());
    base.write_at(&[1u8; 4096], 0).unwrap();
    let mid = Builder::cache().map(0, 1536).build();
    mid.write_at(&[1u8; 512], 1536).unwrap(); // faithful copy of base
    let top = Builder::cache().map(0, 1536).build();
    top.write_at(&[1u8; 512], 1536).unwrap();
    let rep = audit_chain(&[top.clone(), mid.clone(), base.clone()], true);
    assert!(rep.is_clean(), "{:?}", rep.all_violations());
    // Now corrupt the middle copy: *its* divergence is detected, and the
    // top layer (which matches the resolved view through mid) now also
    // diverges from what mid serves.
    mid.write_at(&[2u8; 512], 1536).unwrap();
    let rep = audit_chain(&[top, mid, base], true);
    assert!(rep
        .violations
        .iter()
        .any(|v| v.kind == ViolationKind::CacheBaseDivergence));
}

#[test]
fn json_rendering_is_wellformed() {
    let dev = Builder::cache().map(0, 1537).build();
    let rep = audit_image(dev.as_ref());
    for v in &rep.violations {
        let j = v.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"kind\""));
        assert!(!v.to_string().is_empty());
    }
}
