//! Intentionally broken lock ordering — analyzer self-test corpus.
//!
//! Not a workspace member and never compiled; `vmi-lint --root` is pointed
//! at the fixture root by CI (and by `tests/lint_engine.rs`) and must exit
//! 1 with at least: a rank inversion, an acquisition cycle, an illegal
//! self-nest, and a blocking call under a `blocking = "forbid"` class.

use parking_lot::Mutex;
use std::sync::Arc;

pub struct Pair {
    pub front: Mutex<u64>,
    pub back: Mutex<u64>,
    pub dev: Arc<dyn BlockDev>,
}

pub trait BlockDev: Send + Sync {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<(), ()>;
}

/// Correct order: front (10) then back (20). This one is fine.
pub fn good_nesting(p: &Pair) -> u64 {
    let f = p.front.lock();
    let b = p.back.lock();
    *f + *b
}

/// Rank inversion: back (20) held while acquiring front (10) — and one half
/// of a front -> back -> front cycle with `good_nesting`.
pub fn bad_inversion(p: &Pair) -> u64 {
    let b = p.back.lock();
    let f = p.front.lock();
    *f + *b
}

/// Illegal self-nest: `front` is not a chained class.
pub fn bad_self_nest(p: &Pair, q: &Pair) -> u64 {
    let a = p.front.lock();
    let b = q.front.lock();
    *a + *b
}

/// Blocking device I/O while holding `front`, whose manifest entry says
/// `blocking = "forbid"`.
pub fn bad_blocking_read(p: &Pair) -> Result<(), ()> {
    let mut buf = [0u8; 512];
    let _g = p.front.lock();
    p.dev.read_at(&mut buf, 0)
}

/// The inversion hides one call deep: the analyzer's interprocedural pass
/// must carry `helper_takes_front`'s acquisition up into the caller.
pub fn bad_transitive(p: &Pair) -> u64 {
    let b = p.back.lock();
    helper_takes_front(p) + *b
}

fn helper_takes_front(p: &Pair) -> u64 {
    let f = p.front.lock();
    *f
}
