//! Single-container audit: the fsck walk over header, L1, and L2 tables.

use std::collections::HashSet;

use vmi_blockdev::{be_u64, BlockDev};
use vmi_obs::{met, Event, Obs};

use crate::format::{parse_header, Geom};
use crate::{AuditOpts, AuditReport, RepairHint, Severity, Violation, ViolationKind};

/// Audit one container with default options.
pub fn audit_image(dev: &dyn BlockDev) -> AuditReport {
    audit_image_opts(dev, &AuditOpts::default())
}

/// Audit one container, emitting an obs event and metrics per violation.
pub fn audit_image_with_obs(dev: &dyn BlockDev, opts: &AuditOpts, obs: &Obs) -> AuditReport {
    obs.count(met::AUDIT_RUNS, 1);
    let report = audit_image_opts(dev, opts);
    for v in &report.violations {
        obs.count(met::AUDIT_VIOLATIONS, 1);
        obs.emit(|| Event::AuditViolation {
            kind: v.kind.as_str().to_string(),
            severity: v.severity.as_str().to_string(),
            detail: v.detail.clone(),
        });
    }
    report
}

/// Audit one container.
///
/// Never panics and never returns `Err`: problems — including I/O problems
/// reading the container — are reported as [`Violation`]s. The walk collects
/// as many findings as it can (up to [`AuditOpts::max_violations`]) instead
/// of stopping at the first, so one fsck run paints the whole picture.
pub fn audit_image_opts(dev: &dyn BlockDev, opts: &AuditOpts) -> AuditReport {
    let mut rep = AuditReport::default();
    let cap = opts.cap();

    let raw = match parse_header(dev) {
        Ok(r) => r,
        Err(v) => {
            rep.violations.push(v);
            return rep;
        }
    };
    rep.is_cache = raw.cache.is_some();
    if let Some((quota, used)) = raw.cache {
        rep.quota = quota;
        rep.recorded_used = used;
    }

    let geom = match Geom::new(raw.cluster_bits, raw.size) {
        Ok(g) => g,
        Err(v) => {
            rep.violations.push(v);
            return rep;
        }
    };
    let cs = geom.cluster_size();
    if raw.l1_size as u64 != geom.l1_entries() {
        rep.violations.push(Violation::error(
            ViolationKind::L1SizeMismatch,
            format!(
                "l1_size {} does not match geometry ({} entries for size {} at {} B clusters)",
                raw.l1_size,
                geom.l1_entries(),
                raw.size,
                cs
            ),
        ));
        return rep;
    }

    // The container may legitimately be shorter than the last allocated
    // cluster's end (a tail data cluster is grown lazily by writes), so
    // bounds are checked against the cluster-aligned end of file.
    let file_end = geom.align_up(dev.len());

    // L1 placement: cluster-aligned, after the header cluster, in bounds.
    let l1_bytes = geom.l1_table_bytes();
    if raw.l1_table_offset % cs != 0 || raw.l1_table_offset < cs {
        rep.violations.push(Violation::error(
            ViolationKind::L1TableMisplaced,
            format!(
                "L1 table offset {:#x} is {} (cluster size {} B)",
                raw.l1_table_offset,
                if raw.l1_table_offset < cs {
                    "inside the header cluster"
                } else {
                    "not cluster-aligned"
                },
                cs
            ),
        ));
        return rep;
    }
    let mut l1_raw = vec![0u8; raw.l1_size as usize * 8];
    if raw.l1_table_offset + l1_bytes > file_end
        || dev.read_at(&mut l1_raw, raw.l1_table_offset).is_err()
    {
        rep.violations.push(Violation::error(
            ViolationKind::TruncatedL1,
            format!(
                "L1 table at {:#x}+{} extends past container end {:#x}",
                raw.l1_table_offset, l1_bytes, file_end
            ),
        ));
        return rep;
    }

    // Cluster-reference map for overlap detection: the header cluster and
    // the L1 table clusters are implicitly referenced.
    let mut refs: HashSet<u64> = HashSet::new();
    refs.insert(0);
    for c in 0..l1_bytes / cs {
        refs.insert(raw.l1_table_offset / cs + c);
    }
    if let Some((snap_off, snap_len, _count)) = raw.snaptab {
        if snap_len > 0 && (snap_off + snap_len as u64 > file_end || snap_off % cs != 0) {
            rep.violations.push(Violation::error(
                ViolationKind::SnapshotTableInvalid,
                format!(
                    "snapshot table at {snap_off:#x}+{snap_len} is misaligned or out of bounds"
                ),
            ));
        }
        // The snapshot table's own clusters are allocated like any others.
        if snap_len > 0 {
            for c in snap_off / cs..(snap_off + snap_len as u64).div_ceil(cs) {
                refs.insert(c);
            }
        }
    }

    let mut l2_tables = 0u64;
    let mut data_clusters = 0u64;
    let push = |rep: &mut AuditReport, v: Violation| {
        if rep.violations.len() < cap {
            rep.violations.push(v);
        }
    };

    for (l1_idx, e) in l1_raw.chunks_exact(8).enumerate() {
        let l2_off = be_u64(e);
        if l2_off == 0 {
            continue;
        }
        l2_tables += 1;
        if l2_off % cs != 0 {
            push(
                &mut rep,
                Violation::error(
                    ViolationKind::L1EntryUnaligned,
                    format!("L1[{l1_idx}] invalid: {l2_off:#x} not aligned to {cs} B clusters"),
                )
                .with_repair(RepairHint::ClearL1Entry {
                    index: l1_idx as u64,
                }),
            );
            continue;
        }
        // checked_add: a crafted entry near u64::MAX must be flagged as
        // out-of-bounds, not overflow the bound computation.
        if l2_off.checked_add(cs).is_none_or(|end| end > file_end) {
            push(
                &mut rep,
                Violation::error(
                    ViolationKind::L1EntryOutOfBounds,
                    format!("L1[{l1_idx}] invalid: {l2_off:#x} past container end {file_end:#x}"),
                )
                .with_repair(RepairHint::ClearL1Entry {
                    index: l1_idx as u64,
                }),
            );
            continue;
        }
        if !refs.insert(l2_off / cs) {
            push(
                &mut rep,
                Violation::error(
                    ViolationKind::OverlappingClusters,
                    format!(
                        "L1[{l1_idx}] L2 table at {l2_off:#x} overlaps an already-referenced cluster"
                    ),
                ),
            );
        }
        let mut l2_raw = vec![0u8; cs as usize];
        if dev.read_at(&mut l2_raw, l2_off).is_err() {
            push(
                &mut rep,
                Violation::error(
                    ViolationKind::TruncatedL2,
                    format!("unreadable L2 table at {l2_off:#x}"),
                ),
            );
            continue;
        }
        for (l2_idx, d) in l2_raw.chunks_exact(8).enumerate() {
            let doff = be_u64(d);
            if doff == 0 {
                continue;
            }
            data_clusters += 1;
            if doff % cs != 0 {
                push(
                    &mut rep,
                    Violation::error(
                        ViolationKind::L2EntryUnaligned,
                        format!(
                            "L2[{l1_idx}][{l2_idx}] invalid: {doff:#x} not aligned to {cs} B clusters"
                        ),
                    )
                    .with_repair(RepairHint::ClearL2Entry {
                        l1_index: l1_idx as u64,
                        l2_index: l2_idx as u64,
                    }),
                );
                continue;
            }
            if doff.checked_add(cs).is_none_or(|end| end > file_end) {
                push(
                    &mut rep,
                    Violation::error(
                        ViolationKind::L2EntryOutOfBounds,
                        format!(
                            "L2[{l1_idx}][{l2_idx}] invalid: {doff:#x} past container end {file_end:#x}"
                        ),
                    )
                    .with_repair(RepairHint::ClearL2Entry {
                        l1_index: l1_idx as u64,
                        l2_index: l2_idx as u64,
                    }),
                );
                continue;
            }
            let vba = geom.vba_of(l1_idx as u64, l2_idx as u64);
            if vba >= raw.size {
                push(
                    &mut rep,
                    Violation::error(
                        ViolationKind::L2EntryOutOfBounds,
                        format!(
                            "L2[{l1_idx}][{l2_idx}] maps guest address {vba:#x} beyond virtual size {:#x}",
                            raw.size
                        ),
                    ),
                );
                continue;
            }
            if !refs.insert(doff / cs) {
                push(
                    &mut rep,
                    Violation::error(
                        ViolationKind::OverlappingClusters,
                        format!(
                            "L2[{l1_idx}][{l2_idx}] data cluster at {doff:#x} overlaps an already-referenced cluster"
                        ),
                    ),
                );
            }
        }
    }
    rep.l2_tables = l2_tables;
    rep.data_clusters = data_clusters;

    // §4.3 accounting ground truth: header cluster + L1 table + every
    // allocated (L2 or data) cluster. The header's recorded value is only a
    // cached copy written back at close.
    let recomputed = cs + l1_bytes + (l2_tables + data_clusters) * cs;
    rep.recomputed_used = recomputed;

    if let Some((quota, recorded)) = raw.cache {
        // A fresh cache legitimately starts above a tiny quota: creation
        // always costs the header cluster + L1 table.
        let initial = cs + l1_bytes;
        if recomputed > quota.max(initial) {
            push(
                &mut rep,
                Violation::error(
                    ViolationKind::QuotaExceeded,
                    format!("referenced clusters ({recomputed} bytes) exceed quota {quota}"),
                )
                .with_repair(RepairHint::DiscardCache),
            );
        } else {
            let expected = opts.expected_used.unwrap_or(recorded);
            if recomputed != expected {
                push(
                    &mut rep,
                    Violation {
                        kind: ViolationKind::UsedSizeMismatch,
                        severity: Severity::Warning,
                        detail: format!(
                            "recorded used {expected} != referenced {recomputed} (torn flush)"
                        ),
                        repair: RepairHint::RewriteUsedSize(recomputed),
                    },
                );
            }
        }
    }
    rep
}
