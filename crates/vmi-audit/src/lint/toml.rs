//! Dependency-free parser for the TOML subset used by `LOCK_ORDER.toml`.
//!
//! Supported: `# comments`, `[table]` / `[dotted.table]` headers,
//! `[[array.of.tables]]` headers, and `key = value` pairs where a value is
//! a `"string"`, an integer, `true`/`false`, or a single-line array of
//! strings. That is all the manifest needs; anything else is a parse error
//! (loudly, with a line number) rather than a silent skip, so a typo in the
//! manifest cannot disable the analyzer.

use std::collections::BTreeMap;

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `"…"`.
    Str(String),
    /// Decimal integer.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// `["a", "b"]`.
    List(Vec<String>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The list payload, if this is a list of strings.
    pub fn as_list(&self) -> Option<&[String]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }
}

/// Key → value pairs of one table.
pub type Table = BTreeMap<String, Value>;

/// A parsed document: plain tables and arrays-of-tables, keyed by their
/// dotted header names.
#[derive(Debug, Default)]
pub struct Doc {
    /// `[name]` tables (dotted names kept verbatim).
    pub tables: BTreeMap<String, Table>,
    /// `[[name]]` arrays of tables, in file order.
    pub arrays: BTreeMap<String, Vec<Table>>,
}

enum Cursor {
    Table(String),
    Array(String),
}

/// Parse a document; errors carry the 1-based line number.
pub fn parse(text: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    let mut cursor: Option<Cursor> = None;
    let mut lines = text.lines().enumerate();
    while let Some((i, raw)) = lines.next() {
        let line_no = i + 1;
        let mut owned;
        let mut line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        // Multi-line arrays: keep appending lines until the bracket closes.
        if line.contains('=') && line.contains('[') && !line.trim_end().ends_with(']') {
            owned = line.to_string();
            for (_, next) in lines.by_ref() {
                let frag = strip_comment(next).trim().to_string();
                owned.push(' ');
                owned.push_str(&frag);
                if frag.ends_with(']') {
                    break;
                }
            }
            line = owned.as_str();
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            let name = name.trim().to_string();
            doc.arrays
                .entry(name.clone())
                .or_default()
                .push(Table::new());
            cursor = Some(Cursor::Array(name));
        } else if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let name = name.trim().to_string();
            doc.tables.entry(name.clone()).or_default();
            cursor = Some(Cursor::Table(name));
        } else if let Some((key, val)) = line.split_once('=') {
            let key = key.trim();
            if key.is_empty() {
                return Err(format!("line {line_no}: empty key"));
            }
            let val = parse_value(val.trim()).map_err(|e| format!("line {line_no}: {e}"))?;
            let table = match &cursor {
                Some(Cursor::Table(name)) => doc.tables.entry(name.clone()).or_default(),
                Some(Cursor::Array(name)) => {
                    let v = doc.arrays.entry(name.clone()).or_default();
                    if v.is_empty() {
                        v.push(Table::new());
                    }
                    let last = v.len() - 1;
                    &mut v[last]
                }
                None => return Err(format!("line {line_no}: key outside any [table]")),
            };
            table.insert(key.to_string(), val);
        } else {
            return Err(format!("line {line_no}: cannot parse `{line}`"));
        }
    }
    Ok(doc)
}

/// Strip a `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_value(v: &str) -> Result<Value, String> {
    if v == "true" {
        return Ok(Value::Bool(true));
    }
    if v == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = v.strip_prefix('"') {
        let s = inner
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{v}`"))?;
        return Ok(Value::Str(unescape(s)));
    }
    if let Some(inner) = v.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array `{v}` (arrays must be single-line)"))?
            .trim();
        let mut items = Vec::new();
        if !inner.is_empty() {
            for item in split_items(inner) {
                let item = item.trim();
                let s = item
                    .strip_prefix('"')
                    .and_then(|r| r.strip_suffix('"'))
                    .ok_or_else(|| format!("array item `{item}` is not a string"))?;
                items.push(unescape(s));
            }
        }
        return Ok(Value::List(items));
    }
    v.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("cannot parse value `{v}`"))
}

/// Split array items on commas outside string literals.
fn split_items(inner: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut in_str = false;
    let mut prev_backslash = false;
    let mut start = 0;
    for (i, c) in inner.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            ',' if !in_str => {
                out.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    if !inner[start..].trim().is_empty() {
        out.push(&inner[start..]);
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_and_values() {
        let doc = parse(
            "# top comment\n[class.a]\nrank = 10  # trailing\nblocking = \"allow\"\nchained = true\n",
        )
        .unwrap();
        let t = &doc.tables["class.a"];
        assert_eq!(t["rank"].as_int(), Some(10));
        assert_eq!(t["blocking"].as_str(), Some("allow"));
        assert_eq!(t["chained"].as_bool(), Some(true));
    }

    #[test]
    fn parses_array_of_tables() {
        let doc = parse("[[site]]\nclass = \"a\"\n[[site]]\nclass = \"b\"\n").unwrap();
        let sites = &doc.arrays["site"];
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[1]["class"].as_str(), Some("b"));
    }

    #[test]
    fn parses_string_arrays_with_commas_and_hashes() {
        let doc = parse("[t]\nxs = [\"a,b\", \"c#d\"]\n").unwrap();
        assert_eq!(
            doc.tables["t"]["xs"].as_list().unwrap(),
            &["a,b".to_string(), "c#d".to_string()]
        );
    }

    #[test]
    fn rejects_garbage_with_line_number() {
        let err = parse("[t]\nnot a kv pair\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn rejects_keys_outside_tables() {
        assert!(parse("x = 1\n").is_err());
    }
}
