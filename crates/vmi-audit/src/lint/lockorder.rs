//! Static lock-order analysis over the workspace sources.
//!
//! Lock classes and their ranks are declared in a checked-in manifest
//! (`LOCK_ORDER.toml`); the analyzer extracts per-function *held →
//! acquired* edges from guard lifetimes, closes them over an
//! interprocedural call graph, and reports:
//!
//! * **`lock-order`** — an acquisition whose class rank is not strictly
//!   above every rank already held (rank inversion), re-acquisition of a
//!   non-`chained` class, or any cycle in the acquisition graph.
//! * **`blocking-under-lock`** — a blocking call (device I/O, `barrier`,
//!   `recv`, drains) while holding a class whose manifest entry says
//!   `blocking = "forbid"`.
//!
//! The model is deliberately an approximation with a bias towards *no
//! false positives* (the runtime lock-rank witness in the `parking_lot`
//! facade covers what the static pass under-approximates):
//!
//! * An acquisition site is a manifest-declared receiver-path substring
//!   (e.g. `.mut_order.lock(`), optionally scoped to a crate and a file.
//! * A `let`-bound guard is held to the end of its enclosing block (brace
//!   depth), an explicit `drop(name)` releases early, `let _ =` and
//!   temporaries are line-scoped.
//! * Calls are resolved by name: manifest `[indirect]` names (the dyn
//!   `BlockDev` surface) map straight to a class; stop-listed names are
//!   ignored; otherwise same-crate definitions win, then a unique
//!   workspace-wide definition. Effects propagate by fixpoint.

use std::collections::{BTreeMap, BTreeSet};

use super::tokenizer::FileView;
use super::{toml, Finding};

/// One lock class from the manifest.
#[derive(Debug, Clone)]
pub struct LockClass {
    /// Acquisition rank; locks must be taken in strictly ascending rank.
    pub rank: u32,
    /// When false, blocking calls are forbidden while the class is held.
    pub blocking_allowed: bool,
    /// When true, nesting the class inside itself is legal (reentrant
    /// range guards; per-depth chained image state).
    pub chained: bool,
}

/// An acquisition-site pattern from the manifest.
#[derive(Debug, Clone)]
pub struct SitePattern {
    /// Class this site acquires.
    pub class: String,
    /// Code substring that identifies the acquisition (receiver path).
    pub pattern: String,
    /// Restrict to one crate (directory name under `crates/`).
    pub krate: Option<String>,
    /// Restrict to paths containing this substring.
    pub file: Option<String>,
}

/// Parsed `LOCK_ORDER.toml`.
#[derive(Debug, Default)]
pub struct Manifest {
    /// Class name → declaration.
    pub classes: BTreeMap<String, LockClass>,
    /// Acquisition sites.
    pub sites: Vec<SitePattern>,
    /// Callee name → class acquired behind a dynamic dispatch boundary.
    pub indirect: BTreeMap<String, String>,
    /// Callee names that block (I/O, drains, channel receives).
    pub blocking: BTreeSet<String>,
    /// Callee names never resolved to workspace functions (ubiquitous
    /// std/collection names that would otherwise alias).
    pub stop: BTreeSet<String>,
}

impl Manifest {
    /// Parse and validate manifest text.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let doc = toml::parse(text)?;
        let mut m = Manifest::default();
        for (name, table) in &doc.tables {
            if let Some(class) = name.strip_prefix("class.") {
                let rank = table
                    .get("rank")
                    .and_then(|v| v.as_int())
                    .ok_or_else(|| format!("class `{class}`: missing integer `rank`"))?;
                if !(0..=u32::MAX as i64).contains(&rank) {
                    return Err(format!("class `{class}`: rank {rank} out of range"));
                }
                let blocking_allowed = match table.get("blocking").and_then(|v| v.as_str()) {
                    Some("allow") => true,
                    Some("forbid") | None => false,
                    Some(other) => {
                        return Err(format!(
                            "class `{class}`: blocking = {other:?} (want \"allow\" or \"forbid\")"
                        ))
                    }
                };
                let chained = table
                    .get("chained")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false);
                m.classes.insert(
                    class.to_string(),
                    LockClass {
                        rank: rank as u32,
                        blocking_allowed,
                        chained,
                    },
                );
            }
        }
        if m.classes.is_empty() {
            return Err("no [class.*] tables".to_string());
        }
        let mut by_rank: BTreeMap<u32, &String> = BTreeMap::new();
        for (name, c) in &m.classes {
            if let Some(prev) = by_rank.insert(c.rank, name) {
                return Err(format!(
                    "classes `{prev}` and `{name}` share rank {}; ranks must be unique",
                    c.rank
                ));
            }
        }
        for site in doc.arrays.get("site").map(Vec::as_slice).unwrap_or(&[]) {
            let class = site
                .get("class")
                .and_then(|v| v.as_str())
                .ok_or("a [[site]] is missing `class`")?
                .to_string();
            if !m.classes.contains_key(&class) {
                return Err(format!("[[site]] names undeclared class `{class}`"));
            }
            let pattern = site
                .get("pattern")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("[[site]] for `{class}` is missing `pattern`"))?
                .to_string();
            if pattern.is_empty() {
                return Err(format!("[[site]] for `{class}` has an empty pattern"));
            }
            m.sites.push(SitePattern {
                class,
                pattern,
                krate: site
                    .get("crate")
                    .and_then(|v| v.as_str())
                    .map(str::to_string),
                file: site
                    .get("file")
                    .and_then(|v| v.as_str())
                    .map(str::to_string),
            });
        }
        if m.sites.is_empty() {
            return Err("no [[site]] acquisition patterns".to_string());
        }
        if let Some(ind) = doc.tables.get("indirect") {
            for (callee, v) in ind {
                let class = v
                    .as_str()
                    .ok_or_else(|| format!("[indirect] {callee}: value must be a class string"))?;
                if !m.classes.contains_key(class) {
                    return Err(format!(
                        "[indirect] {callee} names undeclared class `{class}`"
                    ));
                }
                m.indirect.insert(callee.clone(), class.to_string());
            }
        }
        if let Some(analysis) = doc.tables.get("analysis") {
            if let Some(list) = analysis.get("blocking").and_then(|v| v.as_list()) {
                m.blocking.extend(list.iter().cloned());
            }
            if let Some(list) = analysis.get("stop").and_then(|v| v.as_list()) {
                m.stop.extend(list.iter().cloned());
            }
        }
        Ok(m)
    }
}

/// One scanned source file handed to the analyzer.
pub struct SourceFile<'a> {
    /// Root-relative path with forward slashes.
    pub rel: &'a str,
    /// Crate directory name.
    pub krate: &'a str,
    /// Tokenized view.
    pub view: &'a FileView,
    /// Original source lines (for finding `line_text`).
    pub raw_lines: &'a [&'a str],
}

#[derive(Debug, Clone)]
struct Acq {
    class: String,
    line: usize, // 0-based index into the file's lines
    col: usize,
    release_line: usize, // inclusive
}

#[derive(Debug, Default)]
struct FnSummary {
    name: String,
    krate: String,
    file: usize,
    /// Classes acquired directly (patterns + indirect callees).
    direct: BTreeSet<String>,
    /// Direct held → acquired edges with their site.
    edges: Vec<(String, String, usize, usize)>, // held, acquired, file, line(0-based)
    /// Calls made while holding a class: (class, callee, line).
    held_calls: Vec<(String, String, usize)>,
    /// Every callee name (for transitive effects).
    calls: BTreeSet<String>,
}

/// Run the analysis; returns `lock-order` / `blocking-under-lock` findings.
pub fn analyze(manifest: &Manifest, files: &[SourceFile<'_>]) -> Vec<Finding> {
    let mut fns: Vec<FnSummary> = Vec::new();
    for (fidx, sf) in files.iter().enumerate() {
        for span in &sf.view.fns {
            if span.in_test {
                continue;
            }
            fns.push(extract_fn(manifest, sf, fidx, span));
        }
    }

    // Name resolution index: name -> fn indices, per crate and global.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    // `caller` is excluded from its own resolution: a wrapper delegating to
    // an inner impl of the same name (`self.img.discard(...)` inside
    // `ConcurrentImage::discard`) must not alias to itself.
    let resolve = |callee: &str, from_crate: &str, caller: usize| -> Vec<usize> {
        if manifest.stop.contains(callee) || manifest.indirect.contains_key(callee) {
            return Vec::new();
        }
        let Some(cands) = by_name.get(callee) else {
            return Vec::new();
        };
        let cands: Vec<usize> = cands.iter().copied().filter(|&i| i != caller).collect();
        let same: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| fns[i].krate == from_crate)
            .collect();
        if !same.is_empty() {
            same
        } else if cands.len() == 1 {
            cands
        } else {
            Vec::new()
        }
    };

    // Fixpoint: may_acquire(fn) = direct ∪ ⋃ may_acquire(resolved callees).
    let mut may: Vec<BTreeSet<String>> = fns.iter().map(|f| f.direct.clone()).collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for callee in &fns[i].calls {
                for j in resolve(callee, &fns[i].krate, i) {
                    add.extend(may[j].iter().cloned());
                }
            }
            for c in add {
                if may[i].insert(c) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Final edge set with one witness site per (held, acquired) pair.
    let mut edges: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        for (held, acq, file, line) in &f.edges {
            edges
                .entry((held.clone(), acq.clone()))
                .or_insert((*file, *line));
        }
        for (held, callee, line) in &f.held_calls {
            if let Some(class) = manifest.indirect.get(callee) {
                edges
                    .entry((held.clone(), class.clone()))
                    .or_insert((f.file, *line));
            }
            for j in resolve(callee, &f.krate, i) {
                for acq in &may[j] {
                    edges
                        .entry((held.clone(), acq.clone()))
                        .or_insert((f.file, *line));
                }
            }
        }
    }

    let mut findings = Vec::new();
    let site = |file: usize, line: usize| -> (String, usize, String) {
        let sf = &files[file];
        (
            sf.rel.to_string(),
            line + 1,
            sf.raw_lines.get(line).copied().unwrap_or("").to_string(),
        )
    };

    for ((held, acq), (file, line)) in &edges {
        let hc = &manifest.classes[held];
        let ac = &manifest.classes[acq];
        if held == acq {
            if !hc.chained {
                let (path, line_no, line_text) = site(*file, *line);
                findings.push(Finding {
                    rule: "lock-order",
                    path,
                    line_no,
                    message: format!(
                        "re-acquiring `{held}` (rank {}) while already holding it; \
                         class is not marked chained in LOCK_ORDER.toml",
                        hc.rank
                    ),
                    line_text,
                });
            }
        } else if ac.rank <= hc.rank {
            let (path, line_no, line_text) = site(*file, *line);
            findings.push(Finding {
                rule: "lock-order",
                path,
                line_no,
                message: format!(
                    "acquiring `{acq}` (rank {}) while holding `{held}` (rank {}); \
                     lock order requires ascending ranks (see LOCK_ORDER.toml)",
                    ac.rank, hc.rank
                ),
                line_text,
            });
        }
    }

    // Cycle reporting over the acquisition graph (legal chained self-edges
    // excluded). Any multi-class cycle also contains an inversion edge, but
    // naming the loop makes the report actionable at a glance.
    for cycle in find_cycles(&edges) {
        let key = (cycle[0].clone(), cycle[1].clone());
        let (file, line) = edges[&key];
        let (path, line_no, line_text) = site(file, line);
        let shown: Vec<String> = cycle
            .iter()
            .chain(std::iter::once(&cycle[0]))
            .map(|c| format!("`{c}`"))
            .collect();
        findings.push(Finding {
            rule: "lock-order",
            path,
            line_no,
            message: format!("lock acquisition cycle: {}", shown.join(" -> ")),
            line_text,
        });
    }

    // Blocking calls under a forbid class.
    for f in &fns {
        for (held, callee, line) in &f.held_calls {
            if manifest.blocking.contains(callee) && !manifest.classes[held].blocking_allowed {
                let (path, line_no, line_text) = site(f.file, *line);
                findings.push(Finding {
                    rule: "blocking-under-lock",
                    path,
                    line_no,
                    message: format!(
                        "blocking call `{callee}` while holding `{held}` (rank {}); \
                         LOCK_ORDER.toml forbids blocking under this class",
                        manifest.classes[held].rank
                    ),
                    line_text,
                });
            }
        }
    }

    findings
}

/// Extract acquisitions, edges, and calls for one function span.
fn extract_fn(
    manifest: &Manifest,
    sf: &SourceFile<'_>,
    fidx: usize,
    span: &super::tokenizer::FnSpan,
) -> FnSummary {
    let lines = &sf.view.lines;
    let lo = span.start - 1;
    let hi = (span.end - 1).min(lines.len().saturating_sub(1));
    let mut out = FnSummary {
        name: span.name.clone(),
        krate: sf.krate.to_string(),
        file: fidx,
        ..FnSummary::default()
    };

    // Pass 1: acquisitions with release lines.
    let mut acqs: Vec<Acq> = Vec::new();
    for l in lo..=hi {
        let code = lines[l].code.as_str();
        for sp in &manifest.sites {
            if let Some(k) = &sp.krate {
                if sf.krate != k {
                    continue;
                }
            }
            if let Some(fsub) = &sp.file {
                if !sf.rel.contains(fsub.as_str()) {
                    continue;
                }
            }
            for (col, _) in code.match_indices(sp.pattern.as_str()) {
                let binding =
                    let_binding(code).filter(|_| guard_is_bound(code, col, sp.pattern.len()));
                let release_line = match binding.as_deref() {
                    // `let _ = x.lock()` drops immediately; temporaries (and
                    // chained calls like `.lock().keys().collect()`, where
                    // the guard dies at end of statement) live on their own
                    // line only.
                    None | Some("_") => l,
                    Some(name) => {
                        let depth = lines[l].depth_start;
                        let mut rel = hi;
                        let needle = format!("drop({name})");
                        for (j, ln) in lines.iter().enumerate().take(hi + 1).skip(l + 1) {
                            if ln.code.contains(&needle) || ln.depth_end < depth {
                                rel = j;
                                break;
                            }
                        }
                        rel
                    }
                };
                acqs.push(Acq {
                    class: sp.class.clone(),
                    line: l,
                    col,
                    release_line,
                });
                out.direct.insert(sp.class.clone());
            }
        }
    }

    // Pass 2: edges and calls.
    for (l, ln) in lines.iter().enumerate().take(hi + 1).skip(lo) {
        let calls = extract_calls(&ln.code);
        for (callee, _) in &calls {
            out.calls.insert(callee.clone());
            if let Some(class) = manifest.indirect.get(callee.as_str()) {
                out.direct.insert(class.clone());
            }
        }
        let same_line: Vec<&Acq> = {
            let mut v: Vec<&Acq> = acqs.iter().filter(|a| a.line == l).collect();
            v.sort_by_key(|a| a.col);
            v
        };
        // Same-line acquisitions nest in textual order.
        for (i, a) in same_line.iter().enumerate() {
            for b in &same_line[i + 1..] {
                out.edges.push((a.class.clone(), b.class.clone(), fidx, l));
            }
        }
        for g in acqs.iter().filter(|a| a.line < l && a.release_line >= l) {
            for a in &same_line {
                out.edges.push((g.class.clone(), a.class.clone(), fidx, l));
            }
            for (callee, _) in &calls {
                if callee != "drop" {
                    out.held_calls.push((g.class.clone(), callee.clone(), l));
                }
            }
        }
    }
    out
}

/// Whether the acquisition at `col` is what the `let` actually binds: the
/// pattern must be value-initial (only a receiver path between the `=` and
/// the pattern — not buried inside an argument list) and un-chained (no
/// further `.method()` after the call closes, which would reduce the guard
/// to a temporary).
fn guard_is_bound(code: &str, col: usize, pat_len: usize) -> bool {
    let Some(eq) = code.find('=') else {
        return false;
    };
    if eq >= col {
        return false;
    }
    let between = &code[eq + 1..col];
    if !between
        .chars()
        .all(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ':' | ' ' | '\t' | '&' | '*'))
    {
        return false;
    }
    // Balance parens from the pattern's opening `(`; a `.` right after the
    // matching close means a chained call.
    let mut depth = 1i32;
    let mut rest = code[col + pat_len..].char_indices();
    for (i, c) in rest.by_ref() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    let tail = code[col + pat_len + i + c.len_utf8()..].trim_start();
                    return !tail.starts_with('.');
                }
            }
            _ => {}
        }
    }
    // Call spans lines; assume bound.
    true
}

/// The simple `let`-binding name of a line, if it starts one.
fn let_binding(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    // Require a plain `name =` binding; destructuring patterns (`let Some(g)`,
    // `let (a, b)`) get temporary treatment.
    let after = rest[name.len()..].trim_start();
    if after.starts_with('=') || after.starts_with(':') {
        Some(name)
    } else {
        None
    }
}

const KEYWORDS: [&str; 18] = [
    "if", "while", "for", "match", "return", "fn", "as", "in", "loop", "move", "ref", "mut",
    "else", "impl", "dyn", "where", "unsafe", "let",
];

/// Identifiers followed by `(` — candidate calls. Macros (`name!(`),
/// keywords, uppercase-initial names (tuple structs, enum variants), and
/// `fn` definition names are skipped.
fn extract_calls(code: &str) -> Vec<(String, usize)> {
    let b: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i].is_alphabetic() || b[i] == '_' {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            let word: String = b[start..i].iter().collect();
            let mut j = i;
            while j < b.len() && b[j] == ' ' {
                j += 1;
            }
            if j < b.len() && b[j] == '(' {
                let first = word.chars().next().unwrap_or('_');
                let prev = b[..start].iter().rev().find(|c| **c != ' ');
                let after_fn_kw = code[..start].trim_end().ends_with("fn");
                if !first.is_uppercase()
                    && prev != Some(&'!')
                    && !after_fn_kw
                    && !KEYWORDS.contains(&word.as_str())
                {
                    out.push((word, start));
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Distinct simple cycles (as class-name sequences), excluding chained
/// self-loops. One representative cycle is reported per strongly connected
/// component to keep output readable.
fn find_cycles(edges: &BTreeMap<(String, String), (usize, usize)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (held, acq) in edges.keys() {
        if held == acq {
            continue; // self-loops handled by the chained check
        }
        adj.entry(held.as_str()).or_default().push(acq.as_str());
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in adj.keys() {
        if done.contains(start) {
            continue;
        }
        // DFS from `start` looking for a path back to `start`.
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into();
        while let Some(&(node, next)) = stack.last() {
            let succs = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if next < succs.len() {
                let top = stack.len() - 1;
                stack[top].1 += 1;
                let s = succs[next];
                if s == start {
                    cycles.push(path.iter().map(|c| c.to_string()).collect());
                    for c in &path {
                        done.insert(*c);
                    }
                    break;
                }
                if !on_path.contains(s) {
                    on_path.insert(s);
                    path.push(s);
                    stack.push((s, 0));
                }
            } else {
                stack.pop();
                if let Some(popped) = path.pop() {
                    on_path.remove(popped);
                }
            }
        }
        done.insert(start);
    }
    cycles
}
