//! Source-level lint engine for the workspace (`vmi-lint` is the thin CLI).
//!
//! Three layers:
//!
//! * [`tokenizer`] — dependency-free lexical scanner (strings, nested block
//!   comments, attributes, brace/`cfg(test)`/`fn` scope tracking);
//! * [`rules`] — the per-line rules (`no-unwrap`, `no-raw-clock`,
//!   `no-raw-sleep`, `obs-twin`, `span-pair`, `qcow-barrier`,
//!   `no-std-lock`) ported onto it;
//! * [`lockorder`] — the interprocedural lock-order analyzer driven by
//!   `LOCK_ORDER.toml` (`lock-order`, `blocking-under-lock`).
//!
//! [`run`] reproduces the historical `vmi-lint` behaviour bit-for-bit:
//! same `--json` object shape, same allowlist semantics
//! (`rule:path-substring:line-substring`, inline `lint:allow(rule)`), same
//! exit codes (0 clean, 1 findings, 2 usage/I-O error). New here: the
//! lock-order rules and `--strict`, which turns stale allowlist entries
//! from warnings into failures.

pub mod lockorder;
pub mod rules;
pub mod tokenizer;
pub mod toml;

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

pub use rules::RULES;

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Root-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line_no: usize,
    /// Human-readable message.
    pub message: String,
    /// Raw source line, used for allowlist `line-substring` matching.
    pub line_text: String,
}

/// Per-crate registry for the obs-twin rule: the crate's `pub fn` names and
/// every `*_with_obs` definition as `(file, line, name)`.
pub type ObsTwinRegistry = (Vec<String>, Vec<(String, usize, String)>);

#[derive(Debug, Clone)]
struct AllowEntry {
    rule: String,
    path_sub: String,
    line_sub: String,
    /// Set when the entry matched at least one finding (unused entries are
    /// reported so the allowlist cannot silently rot).
    used: Cell<bool>,
}

/// Configuration for one lint run.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root (holds `crates/`).
    pub root: PathBuf,
    /// Allowlist file; defaults to `<root>/.vmi-lint.allow`.
    pub allow_path: Option<PathBuf>,
    /// Lock-order manifest; defaults to `<root>/LOCK_ORDER.toml`. The
    /// lock-order rules are skipped when the file does not exist.
    pub manifest_path: Option<PathBuf>,
    /// Emit findings as JSON lines instead of text.
    pub json: bool,
    /// Stale allowlist entries become failures instead of warnings.
    pub strict: bool,
}

impl Options {
    /// Defaults rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Options {
            root: root.into(),
            allow_path: None,
            manifest_path: None,
            json: false,
            strict: false,
        }
    }
}

/// Result of a lint run: the process exit code plus the exact stdout /
/// stderr text the CLI should print.
#[derive(Debug)]
pub struct Outcome {
    /// 0 clean, 1 findings (or stale allows under strict), 2 usage/IO error.
    pub exit: u8,
    /// Findings / clean summary.
    pub stdout: String,
    /// Warnings and error messages.
    pub stderr: String,
    /// Findings that were reported (not allowlisted), sorted.
    pub reported: Vec<Finding>,
}

impl Outcome {
    fn error(msg: String) -> Outcome {
        Outcome {
            exit: 2,
            stdout: String::new(),
            stderr: msg,
            reported: Vec::new(),
        }
    }
}

/// Run the full lint + lock-order pass.
pub fn run(opts: &Options) -> Outcome {
    let root = &opts.root;
    let allow_file = opts
        .allow_path
        .clone()
        .unwrap_or_else(|| root.join(".vmi-lint.allow"));
    let allow = match load_allowlist(&allow_file) {
        Ok(a) => a,
        Err(e) => {
            return Outcome::error(format!(
                "vmi-lint: cannot read {}: {e}\n",
                allow_file.display()
            ))
        }
    };

    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Outcome::error(format!(
            "vmi-lint: {} is not a directory\n",
            crates_dir.display()
        ));
    }
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = match fs::read_dir(&crates_dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(e) => return Outcome::error(format!("vmi-lint: {e}\n")),
    };
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files);
        }
    }
    files.sort();

    // Scan every file once; keep the views for the lock-order pass.
    struct Scanned {
        rel: String,
        krate: String,
        text: String,
        view: tokenizer::FileView,
    }
    let mut scanned: Vec<Scanned> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    let mut pub_fns: BTreeMap<String, ObsTwinRegistry> = BTreeMap::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_name = rel.split('/').nth(1).unwrap_or("").to_string();
        let text = match fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => return Outcome::error(format!("vmi-lint: cannot read {rel}: {e}\n")),
        };
        let view = tokenizer::scan(&text);
        let raw_lines: Vec<&str> = text.lines().collect();
        let entry = pub_fns.entry(crate_name.clone()).or_default();
        rules::scan_file(&rel, &crate_name, &view, &raw_lines, &mut findings, entry);
        scanned.push(Scanned {
            rel,
            krate: crate_name,
            text,
            view,
        });
    }

    // obs-twin closes over the whole crate: the twin may live in another
    // module of the same crate.
    for registry in pub_fns.values() {
        rules::check_obs_twins(registry, &mut findings);
    }

    // Lock-order analysis, when a manifest is present.
    let manifest_file = opts
        .manifest_path
        .clone()
        .unwrap_or_else(|| root.join("LOCK_ORDER.toml"));
    if manifest_file.exists() {
        let text = match fs::read_to_string(&manifest_file) {
            Ok(t) => t,
            Err(e) => {
                return Outcome::error(format!(
                    "vmi-lint: cannot read {}: {e}\n",
                    manifest_file.display()
                ))
            }
        };
        let manifest = match lockorder::Manifest::parse(&text) {
            Ok(m) => m,
            Err(e) => {
                return Outcome::error(format!("vmi-lint: {}: {e}\n", manifest_file.display()))
            }
        };
        let raw_per_file: Vec<Vec<&str>> =
            scanned.iter().map(|s| s.text.lines().collect()).collect();
        let sources: Vec<lockorder::SourceFile<'_>> = scanned
            .iter()
            .zip(&raw_per_file)
            .map(|(s, raw)| lockorder::SourceFile {
                rel: &s.rel,
                krate: &s.krate,
                view: &s.view,
                raw_lines: raw,
            })
            .collect();
        for f in lockorder::analyze(&manifest, &sources) {
            // Honour inline `lint:allow(rule)` at the site line, matching
            // the per-line rules.
            let inline = scanned
                .iter()
                .find(|s| s.rel == f.path)
                .and_then(|s| s.view.lines.get(f.line_no.saturating_sub(1)))
                .is_some_and(|lv| lv.comment.contains(&format!("lint:allow({})", f.rule)));
            if !inline {
                findings.push(f);
            }
        }
    }

    // Allowlist filtering and output, bit-compatible with the historical
    // binary.
    let mut stdout = String::new();
    let mut stderr = String::new();
    let mut reported: Vec<Finding> = Vec::new();
    findings.sort_by(|a, b| (&a.path, a.line_no).cmp(&(&b.path, b.line_no)));
    for f in &findings {
        if let Some(a) = allow.iter().find(|a| {
            a.rule == f.rule && f.path.contains(&a.path_sub) && f.line_text.contains(&a.line_sub)
        }) {
            a.used.set(true);
            continue;
        }
        if opts.json {
            let _ = writeln!(
                stdout,
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                f.rule,
                f.path,
                f.line_no,
                f.message.replace('"', "\\\"")
            );
        } else {
            let _ = writeln!(
                stdout,
                "{}:{}: [{}] {}",
                f.path, f.line_no, f.rule, f.message
            );
        }
        reported.push(f.clone());
    }
    let mut stale = 0usize;
    for a in &allow {
        if !a.used.get() {
            stale += 1;
            if opts.strict {
                let _ = writeln!(
                    stderr,
                    "vmi-lint: error: allowlist entry `{}:{}:{}` matched nothing (stale \
                     entries are fatal under --strict)",
                    a.rule, a.path_sub, a.line_sub
                );
            } else {
                let _ = writeln!(
                    stderr,
                    "vmi-lint: warning: allowlist entry `{}:{}:{}` matched nothing (stale?)",
                    a.rule, a.path_sub, a.line_sub
                );
            }
        }
    }
    let exit = if !reported.is_empty() {
        let _ = writeln!(stderr, "vmi-lint: {} finding(s)", reported.len());
        1
    } else if opts.strict && stale > 0 {
        let _ = writeln!(
            stderr,
            "vmi-lint: {stale} stale allowlist entr{}",
            ies(stale)
        );
        1
    } else {
        if !opts.json {
            let _ = writeln!(
                stdout,
                "vmi-lint: clean ({} files, {} rules, {} allowlisted)",
                files.len(),
                RULES.len(),
                findings.len() - reported.len()
            );
        }
        0
    };
    Outcome {
        exit,
        stdout,
        stderr,
        reported,
    }
}

fn ies(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

fn load_allowlist(path: &Path) -> std::io::Result<Vec<AllowEntry>> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for line in fs::read_to_string(path)?.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, ':');
        let (Some(rule), Some(path_sub), Some(line_sub)) =
            (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        out.push(AllowEntry {
            rule: rule.trim().to_string(),
            path_sub: path_sub.trim().to_string(),
            line_sub: line_sub.trim().to_string(),
            used: Cell::new(false),
        });
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}
