//! The per-line lint rules, ported onto the [`tokenizer`](super::tokenizer).
//!
//! Rule semantics (needles, messages, exemptions) are bit-compatible with
//! the historical `vmi-lint` line scanner; only the lexical substrate
//! changed (the tokenizer handles multi-line raw strings and nested block
//! comments that the old per-line stripper could not).

use super::tokenizer::FileView;
use super::{Finding, ObsTwinRegistry};

/// Every rule the linter knows, in reporting order. The lock-order rules
/// are implemented in [`lockorder`](super::lockorder) but share this
/// registry (and the allowlist machinery).
pub const RULES: [&str; 9] = [
    "no-unwrap",
    "no-raw-clock",
    "no-raw-sleep",
    "obs-twin",
    "span-pair",
    "qcow-barrier",
    "no-std-lock",
    "lock-order",
    "blocking-under-lock",
];

/// Run the seven per-line rules over one scanned file.
///
/// `rel` is the root-relative path (forward slashes), `raw_lines` the
/// original source lines (for `line_text` used by allowlist matching).
pub fn scan_file(
    rel: &str,
    crate_name: &str,
    view: &FileView,
    raw_lines: &[&str],
    findings: &mut Vec<Finding>,
    pub_fns: &mut ObsTwinRegistry,
) {
    // Binary entry points may use unwrap/expect freely: a CLI aborting with
    // a message is the intended behaviour there.
    let is_bin = rel.contains("/src/bin/") || rel.ends_with("/main.rs");

    for (i, lv) in view.lines.iter().enumerate() {
        let line_no = i + 1;
        let raw = raw_lines.get(i).copied().unwrap_or("");
        let code = lv.code.as_str();
        let comment = lv.comment.as_str();
        let trimmed_code = code.trim();
        let in_test = lv.in_test;
        let inline_allow = |rule: &str| comment.contains(&format!("lint:allow({rule})"));

        // Collect the pub fn inventory (non-test code only).
        if !in_test {
            if let Some(name) = pub_fn_name(trimmed_code) {
                pub_fns.0.push(name.to_string());
                if name.ends_with("_with_obs") && !inline_allow("obs-twin") {
                    pub_fns.1.push((rel.to_string(), line_no, name.to_string()));
                }
            }
        }

        if in_test {
            continue;
        }

        if !is_bin {
            for needle in [".unwrap()", ".expect(", "panic!", "unimplemented!", "todo!"] {
                if code.contains(needle) && !inline_allow("no-unwrap") {
                    findings.push(Finding {
                        rule: "no-unwrap",
                        path: rel.to_string(),
                        line_no,
                        message: format!(
                            "`{needle}` in library code; return a typed error instead"
                        ),
                        line_text: raw.to_string(),
                    });
                }
            }
        }
        if crate_name != "vmi-obs" {
            for needle in ["Instant::now", "SystemTime::now"] {
                if code.contains(needle) && !inline_allow("no-raw-clock") {
                    findings.push(Finding {
                        rule: "no-raw-clock",
                        path: rel.to_string(),
                        line_no,
                        message: format!("`{needle}` outside vmi-obs clocks; take a `Clock`"),
                        line_text: raw.to_string(),
                    });
                }
            }
        }
        if crate_name != "vmi-obs"
            && code.contains("emit")
            && (code.contains("Event::SpanStart") || code.contains("Event::SpanEnd"))
            && !inline_allow("span-pair")
        {
            findings.push(Finding {
                rule: "span-pair",
                path: rel.to_string(),
                line_no,
                message: "hand-emitted span event; use `Obs::span`/`span_in` so the guard \
                          emits the matching end"
                    .to_string(),
                line_text: raw.to_string(),
            });
        }
        if crate_name == "vmi-qcow" && code.contains(".flush()") && !inline_allow("qcow-barrier") {
            findings.push(Finding {
                rule: "qcow-barrier",
                path: rel.to_string(),
                line_no,
                message: "direct `.flush()` in vmi-qcow; order metadata through \
                          `QcowImage::barrier` (or justify with an allow entry)"
                    .to_string(),
                line_text: raw.to_string(),
            });
        }
        for needle in [
            "std::sync::Mutex",
            "std::sync::RwLock",
            ".lock().unwrap()",
            ".read().unwrap()",
            ".write().unwrap()",
        ] {
            if code.contains(needle) && !inline_allow("no-std-lock") {
                findings.push(Finding {
                    rule: "no-std-lock",
                    path: rel.to_string(),
                    line_no,
                    message: format!(
                        "`{needle}`: use the non-poisoning `parking_lot` facade on request paths"
                    ),
                    line_text: raw.to_string(),
                });
            }
        }
        if code.contains("thread::sleep") && !inline_allow("no-raw-sleep") {
            findings.push(Finding {
                rule: "no-raw-sleep",
                path: rel.to_string(),
                line_no,
                message: "`thread::sleep` outside the RetryPolicy sleep hook".to_string(),
                line_text: raw.to_string(),
            });
        }
    }
}

/// Cross-file pass for `obs-twin`: every `pub fn *_with_obs` needs a
/// delegating non-obs twin somewhere in the same crate.
pub fn check_obs_twins(registry: &ObsTwinRegistry, findings: &mut Vec<Finding>) {
    let (names, with_obs) = registry;
    for (path, line_no, name) in with_obs {
        let base = name.trim_end_matches("_with_obs");
        if !names.iter().any(|n| n == base) {
            findings.push(Finding {
                rule: "obs-twin",
                path: path.clone(),
                line_no: *line_no,
                message: format!(
                    "pub fn {name} has no delegating non-obs twin `pub fn {base}` in this crate"
                ),
                line_text: String::new(),
            });
        }
    }
}

fn pub_fn_name(code: &str) -> Option<&str> {
    let rest = code.strip_prefix("pub fn ").or_else(|| {
        code.strip_prefix("pub const fn ")
            .or_else(|| code.strip_prefix("pub async fn "))
    })?;
    let end = rest.find(|c: char| !c.is_alphanumeric() && c != '_')?;
    (end > 0).then(|| &rest[..end])
}
