//! Lightweight, dependency-free lexical scanner for Rust sources.
//!
//! This is not a parser: it produces, for each **line** of a file, the code
//! with string/char literals blanked and comments removed (`code`), the
//! comment text (`comment`), whether the line starts inside `#[cfg(test)]` /
//! `#[test]` code (`in_test`), and the brace depth at the start and end of
//! the line. On top of that it recovers the spans of named `fn` items
//! (innermost-enclosing attribution: a nested `fn` owns its own body).
//!
//! Handled correctly, because lint rules must not fire inside them:
//! ordinary strings (including multi-line and escapes), raw strings with
//! any number of `#`s (including multi-line), byte/char literals vs.
//! lifetimes, line comments, and **nested** block comments. Attributes are
//! not stripped — rules match on them deliberately (`#[cfg(test)]`).

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct LineView {
    /// The line with comments removed and string/char literal *contents*
    /// blanked (`"…"` becomes `""`, `'x'` becomes `' '`).
    pub code: String,
    /// The comment text of the line (line comments and the interior of
    /// block comments), used for `lint:allow(...)` markers.
    pub comment: String,
    /// True when the line *starts* inside a test region (the line that
    /// opens the region — e.g. `mod tests {` after `#[cfg(test)]` — is
    /// itself non-test, matching the historical scanner).
    pub in_test: bool,
    /// Brace depth before the first character of the line.
    pub depth_start: i64,
    /// Brace depth after the last character of the line.
    pub depth_end: i64,
}

/// A named `fn` item span (1-based, inclusive lines). Bodies of nested fns
/// belong to the nested entry; `start` is the line of the `fn` keyword and
/// `end` the line of the matching closing brace. Bodyless declarations
/// (trait methods ending in `;`) are not recorded.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword (1-based).
    pub start: usize,
    /// Line of the closing brace of the body (1-based).
    pub end: usize,
    /// True when the whole fn lives in test code.
    pub in_test: bool,
}

/// A scanned file: per-line views plus the fn item index.
#[derive(Debug)]
pub struct FileView {
    /// One entry per source line, in order.
    pub lines: Vec<LineView>,
    /// Named fn spans, in source order.
    pub fns: Vec<FnSpan>,
}

#[derive(Default)]
struct LexState {
    block_comment_depth: usize,
    /// Inside a `"…"` string that continues past a line break.
    in_string: bool,
    /// Inside a raw string; the value is the `#` count of its delimiter.
    in_raw_string: Option<usize>,
}

/// Scan a whole file.
pub fn scan(text: &str) -> FileView {
    let mut lex = LexState::default();
    let mut brace_depth: i64 = 0;
    let mut test_regions: Vec<i64> = Vec::new();
    let mut test_pending = false;
    let mut lines = Vec::new();

    for raw in text.lines() {
        let depth_start = brace_depth;
        let in_test = !test_regions.is_empty();
        let (code, comment) = strip_line(raw, &mut lex);
        // Attributes appear outside literals; match on the raw line like the
        // historical scanner (doc text never starts with `#[`).
        let t = raw.trim_start();
        if t.starts_with("#[cfg(test)]") || t.starts_with("#[test]") {
            test_pending = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if test_pending {
                        test_regions.push(brace_depth);
                        test_pending = false;
                    }
                    brace_depth += 1;
                }
                '}' => {
                    brace_depth -= 1;
                    if test_regions.last() == Some(&brace_depth) {
                        test_regions.pop();
                    }
                }
                // A same-line terminator (e.g. `#[cfg(test)] use ...;`)
                // cancels a pending test attribute that never opened a brace.
                ';' if test_pending => test_pending = false,
                _ => {}
            }
        }
        lines.push(LineView {
            code,
            comment,
            in_test,
            depth_start,
            depth_end: brace_depth,
        });
    }

    let fns = find_fns(&lines);
    FileView { lines, fns }
}

/// Find named fn item spans over the cleaned lines.
fn find_fns(lines: &[LineView]) -> Vec<FnSpan> {
    // Open fns as (name, body_open_depth, start_line, in_test).
    let mut open: Vec<(String, i64, usize, bool)> = Vec::new();
    // Declared-but-unopened fn header being carried across lines.
    let mut pending: Option<(String, usize, bool)> = None;
    let mut out = Vec::new();
    let mut depth;

    for (idx, lv) in lines.iter().enumerate() {
        depth = lv.depth_start;
        let code = lv.code.as_str();
        let mut chars = code.char_indices().peekable();
        while let Some((i, c)) = chars.next() {
            match c {
                '{' => {
                    if let Some((name, start, in_test)) = pending.take() {
                        open.push((name, depth, start, in_test));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    while let Some((name, d, start, in_test)) = open.last().cloned() {
                        if depth == d {
                            out.push(FnSpan {
                                name,
                                start,
                                end: idx + 1,
                                in_test,
                            });
                            open.pop();
                        } else {
                            break;
                        }
                    }
                }
                ';' => {
                    // Bodyless declaration (trait method signature).
                    pending = None;
                }
                'f' => {
                    // `fn NAME` with a word boundary on each side.
                    let bytes = code.as_bytes();
                    let before_ok = i == 0 || !is_ident(bytes[i - 1] as char);
                    if before_ok && code[i..].starts_with("fn ") {
                        let rest = &code[i + 3..];
                        let name: String = rest
                            .trim_start()
                            .chars()
                            .take_while(|c| is_ident(*c))
                            .collect();
                        if !name.is_empty() {
                            pending = Some((name, idx + 1, lv.in_test));
                        }
                        // Skip past "fn " so the name's chars are not
                        // re-examined (harmless either way).
                        while let Some((j, _)) = chars.peek() {
                            if *j < i + 3 {
                                chars.next();
                            } else {
                                break;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    // Unclosed fns at EOF (truncated file): close them at the last line.
    for (name, _, start, in_test) in open {
        out.push(FnSpan {
            name,
            start,
            end: lines.len(),
            in_test,
        });
    }
    out.sort_by_key(|f| f.start);
    out
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Remove comments and blank literal contents from one line, carrying
/// multi-line state (block comments, plain and raw strings) in `lex`.
fn strip_line(raw: &str, lex: &mut LexState) -> (String, String) {
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let b: Vec<char> = raw.chars().collect();
    let mut i = 0;
    while i < b.len() {
        if lex.block_comment_depth > 0 {
            if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                lex.block_comment_depth -= 1;
                i += 2;
            } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                lex.block_comment_depth += 1;
                i += 2;
            } else {
                comment.push(b[i]);
                i += 1;
            }
            continue;
        }
        if let Some(hashes) = lex.in_raw_string {
            if b[i] == '"' && (0..hashes).all(|k| b.get(i + 1 + k) == Some(&'#')) {
                lex.in_raw_string = None;
                code.push_str("\"\"");
                i += 1 + hashes;
            } else {
                i += 1;
            }
            continue;
        }
        if lex.in_string {
            match b[i] {
                '\\' => i += 2,
                '"' => {
                    lex.in_string = false;
                    code.push_str("\"\"");
                    i += 1;
                }
                _ => i += 1,
            }
            continue;
        }
        match b[i] {
            '/' if b.get(i + 1) == Some(&'/') => {
                comment.extend(&b[i..]);
                break;
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                lex.block_comment_depth += 1;
                i += 2;
            }
            '"' => {
                lex.in_string = true;
                i += 1;
            }
            'b' if b.get(i + 1) == Some(&'"') => {
                // Byte string b"...": same lexing as a plain string.
                lex.in_string = true;
                i += 2;
            }
            'r' if matches!(b.get(i + 1), Some(&'"') | Some(&'#')) => {
                let mut j = i + 1;
                let mut hashes = 0;
                while b.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&'"') {
                    lex.in_raw_string = Some(hashes);
                    i = j + 1;
                } else {
                    // `r#ident` raw identifier, not a string.
                    code.push(b[i]);
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs. lifetime: a literal closes with a quote.
                if b.get(i + 1) == Some(&'\\') {
                    let mut j = i + 2;
                    while j < b.len() && b[j] != '\'' {
                        j += 1;
                    }
                    i = j + 1;
                    code.push_str("' '");
                } else if b.get(i + 2) == Some(&'\'') {
                    i += 3;
                    code.push_str("' '");
                } else {
                    code.push(b[i]);
                    i += 1;
                }
            }
            c => {
                code.push(c);
                i += 1;
            }
        }
    }
    // A plain string left open at end of line continues (multi-line string);
    // nothing to emit for it.
    (code, comment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_strings_and_comments() {
        let v = scan("let x = \"a.unwrap()\"; // .unwrap()\nlet y = 1;\n");
        assert_eq!(v.lines[0].code, "let x = \"\"; ");
        assert!(v.lines[0].comment.contains(".unwrap()"));
        assert_eq!(v.lines[1].code, "let y = 1;");
    }

    #[test]
    fn nested_block_comments() {
        let v = scan("a /* one /* two */ still */ b\nc\n");
        assert_eq!(v.lines[0].code.replace(' ', ""), "ab");
        assert_eq!(v.lines[1].code, "c");
    }

    #[test]
    fn multiline_raw_string_is_blanked() {
        let v = scan("let s = r#\"first .unwrap()\nsecond panic!\"#;\nlet t = 2;\n");
        assert!(!v.lines[0].code.contains("unwrap"));
        assert!(!v.lines[1].code.contains("panic"));
        assert_eq!(v.lines[2].code, "let t = 2;");
    }

    #[test]
    fn multiline_plain_string_is_blanked() {
        let v = scan("let s = \"first\nsecond .unwrap()\";\nlet t = 2;\n");
        assert!(!v.lines[1].code.contains("unwrap"));
        assert_eq!(v.lines[2].code, "let t = 2;");
    }

    #[test]
    fn cfg_test_regions_cover_bodies() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let v = scan(src);
        assert!(!v.lines[0].in_test);
        assert!(!v.lines[2].in_test, "opening line itself is non-test");
        assert!(v.lines[3].in_test);
        assert!(!v.lines[5].in_test);
    }

    #[test]
    fn fn_spans_are_found_with_nesting() {
        let src = "fn outer() {\n    let c = 1;\n    fn inner() {\n        let d = 2;\n    }\n}\n";
        let v = scan(src);
        let names: Vec<_> = v.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        let outer = &v.fns[0];
        let inner = &v.fns[1];
        assert_eq!((outer.start, outer.end), (1, 6));
        assert_eq!((inner.start, inner.end), (3, 5));
    }

    #[test]
    fn bodyless_trait_fn_is_skipped() {
        let v =
            scan("trait T {\n    fn sig(&self) -> u32;\n    fn with_body(&self) -> u32 { 1 }\n}\n");
        let names: Vec<_> = v.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_body"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let v = scan("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert_eq!(v.fns.len(), 1);
        assert!(v.lines[0].code.contains("&'a str"));
    }
}
