//! vmi-lint — project-specific source lints for the vmcache workspace.
//!
//! Thin CLI over [`vmi_audit::lint`]; see that module for the rule list
//! (seven per-line rules plus the `LOCK_ORDER.toml`-driven `lock-order`
//! and `blocking-under-lock` analysis) and the engine internals.
//!
//! Exceptions live in an allowlist file (default `.vmi-lint.allow` at the
//! scan root), one `rule:path-substring:line-substring` triple per line, or
//! inline as `lint:allow(rule)` in a comment on the offending line. Under
//! `--strict`, allowlist entries that match nothing are failures.
//!
//! Exit status: 0 clean, 1 findings, 2 usage/I-O error.

use std::path::PathBuf;
use std::process::ExitCode;

use vmi_audit::lint;

const USAGE: &str =
    "usage: vmi-lint [--root DIR] [--allowlist FILE] [--manifest FILE] [--json] [--strict]";

fn main() -> ExitCode {
    let mut opts = lint::Options::new(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => opts.root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--allowlist" => match args.next() {
                Some(v) => opts.allow_path = Some(PathBuf::from(v)),
                None => return usage("--allowlist needs a value"),
            },
            "--manifest" => match args.next() {
                Some(v) => opts.manifest_path = Some(PathBuf::from(v)),
                None => return usage("--manifest needs a value"),
            },
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let out = lint::run(&opts);
    print!("{}", out.stdout);
    eprint!("{}", out.stderr);
    ExitCode::from(out.exit)
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("vmi-lint: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}
