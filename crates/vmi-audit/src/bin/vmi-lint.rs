//! vmi-lint — project-specific source lints for the vmcache workspace.
//!
//! A deliberately small, dependency-free line scanner (no rustc internals,
//! no external parser) enforcing rules that `clippy` cannot know about:
//!
//! * `no-unwrap` — no `.unwrap()` / `.expect(...)` / `panic!` in non-test
//!   *library* code. Recoverable storage errors must travel as
//!   `BlockError`s; a panic in the image driver takes the VM down with it.
//!   Binary entry points (`src/bin/`, `main.rs`) and `#[cfg(test)]` /
//!   `#[test]` code are exempt.
//! * `no-raw-clock` — no `Instant::now` / `SystemTime::now` outside the
//!   `vmi-obs` clock abstraction; everything else must take a `Clock` so
//!   simulated time works (and events stay deterministic in tests).
//! * `no-raw-sleep` — no `std::thread::sleep` outside the `RetryPolicy`
//!   sleep hook; real sleeping in library code stalls the simulator.
//! * `obs-twin` — every public `*_with_obs` constructor keeps a delegating
//!   non-obs twin, so the no-observability API never rots.
//! * `span-pair` — no hand-emitted `Event::SpanStart` / `Event::SpanEnd`
//!   outside `vmi-obs`; spans must come from `Obs::span`/`span_in`, whose
//!   guard guarantees the matching end event. (Matching on the variants in
//!   replay/analysis code is fine — only `emit` sites are flagged.)
//! * `qcow-barrier` — no direct `.flush()` on a device inside `vmi-qcow`
//!   outside the `QcowImage::barrier` helper. Crash consistency rests on
//!   metadata mutations being fenced by `barrier()`; an unfenced flush is
//!   either redundant or (worse) a hint that ordering was hand-rolled.
//! * `no-std-lock` — no `std::sync::Mutex`/`std::sync::RwLock` (nor the
//!   poison-unwrap idioms `.lock().unwrap()` / `.read().unwrap()` /
//!   `.write().unwrap()`) in non-test crate code; use the `parking_lot`
//!   facade. Hot request paths (the PR-8 sharded driver, the NBD reply
//!   writer) take these locks per I/O — the facade is non-poisoning, so
//!   there is no `.unwrap()` to sprinkle, and a panicking peer cannot
//!   cascade poison errors through every other in-flight request.
//!
//! Exceptions live in an allowlist file (default `.vmi-lint.allow` at the
//! scan root), one `rule:path-substring:line-substring` triple per line, or
//! inline as `lint:allow(rule)` in a comment on the offending line.
//!
//! Exit status: 0 clean, 1 findings, 2 usage/I-O error.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const RULES: [&str; 7] = [
    "no-unwrap",
    "no-raw-clock",
    "no-raw-sleep",
    "obs-twin",
    "span-pair",
    "qcow-barrier",
    "no-std-lock",
];

#[derive(Debug)]
struct Finding {
    rule: &'static str,
    path: String,
    line_no: usize,
    message: String,
    line_text: String,
}

#[derive(Debug, Clone)]
struct AllowEntry {
    rule: String,
    path_sub: String,
    line_sub: String,
    /// Set when the entry matched at least one finding (unused entries are
    /// reported so the allowlist cannot silently rot).
    used: std::cell::Cell<bool>,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allow_path = Some(PathBuf::from(v)),
                None => return usage("--allowlist needs a value"),
            },
            "--json" => json = true,
            "-h" | "--help" => {
                eprintln!("usage: vmi-lint [--root DIR] [--allowlist FILE] [--json]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let allow_file = allow_path.unwrap_or_else(|| root.join(".vmi-lint.allow"));
    let allow = match load_allowlist(&allow_file) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("vmi-lint: cannot read {}: {e}", allow_file.display());
            return ExitCode::from(2);
        }
    };

    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        eprintln!("vmi-lint: {} is not a directory", crates_dir.display());
        return ExitCode::from(2);
    }

    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = match fs::read_dir(&crates_dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(e) => {
            eprintln!("vmi-lint: {e}");
            return ExitCode::from(2);
        }
    };
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files);
        }
    }
    files.sort();

    let mut findings = Vec::new();
    // crate name -> (pub fn names, [(file, line_no, with_obs name)])
    let mut pub_fns: BTreeMap<String, ObsTwinRegistry> = BTreeMap::new();
    for f in &files {
        let rel = f
            .strip_prefix(&root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_name = rel.split('/').nth(1).unwrap_or("").to_string();
        let text = match fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("vmi-lint: cannot read {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        let entry = pub_fns.entry(crate_name.clone()).or_default();
        scan_file(&rel, &crate_name, &text, &mut findings, entry);
    }

    // obs-twin closes over the whole crate: the twin may live in another
    // module of the same crate.
    for (names, with_obs) in pub_fns.values() {
        for (path, line_no, name) in with_obs {
            let base = name.trim_end_matches("_with_obs");
            if !names.iter().any(|n| n == base) {
                findings.push(Finding {
                    rule: "obs-twin",
                    path: path.clone(),
                    line_no: *line_no,
                    message: format!(
                        "pub fn {name} has no delegating non-obs twin `pub fn {base}` in this crate"
                    ),
                    line_text: String::new(),
                });
            }
        }
    }

    let mut reported = 0usize;
    findings.sort_by(|a, b| (&a.path, a.line_no).cmp(&(&b.path, b.line_no)));
    for f in &findings {
        if allow.iter().any(|a| {
            a.rule == f.rule && f.path.contains(&a.path_sub) && f.line_text.contains(&a.line_sub)
        }) {
            if let Some(a) = allow.iter().find(|a| {
                a.rule == f.rule
                    && f.path.contains(&a.path_sub)
                    && f.line_text.contains(&a.line_sub)
            }) {
                a.used.set(true);
            }
            continue;
        }
        reported += 1;
        if json {
            println!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                f.rule,
                f.path,
                f.line_no,
                f.message.replace('"', "\\\"")
            );
        } else {
            println!("{}:{}: [{}] {}", f.path, f.line_no, f.rule, f.message);
        }
    }
    for a in &allow {
        if !a.used.get() {
            eprintln!(
                "vmi-lint: warning: allowlist entry `{}:{}:{}` matched nothing (stale?)",
                a.rule, a.path_sub, a.line_sub
            );
        }
    }
    if reported == 0 {
        if !json {
            println!(
                "vmi-lint: clean ({} files, {} rules, {} allowlisted)",
                files.len(),
                RULES.len(),
                findings.len() - reported
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("vmi-lint: {reported} finding(s)");
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("vmi-lint: {msg}");
    eprintln!("usage: vmi-lint [--root DIR] [--allowlist FILE] [--json]");
    ExitCode::from(2)
}

fn load_allowlist(path: &Path) -> std::io::Result<Vec<AllowEntry>> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for line in fs::read_to_string(path)?.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, ':');
        let (Some(rule), Some(path_sub), Some(line_sub)) =
            (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        out.push(AllowEntry {
            rule: rule.trim().to_string(),
            path_sub: path_sub.trim().to_string(),
            line_sub: line_sub.trim().to_string(),
            used: std::cell::Cell::new(false),
        });
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Carries multi-line scanner state: block comments and `#[cfg(test)]`
/// brace-skip regions.
#[derive(Default)]
struct ScanState {
    block_comment_depth: usize,
    brace_depth: i64,
    /// Brace depths at which a test region opened; non-empty means "inside
    /// test code".
    test_regions: Vec<i64>,
    /// A test attribute was seen and applies to the next opened brace.
    test_pending: bool,
}

/// Per-crate registry for the obs-twin rule: the crate's `pub fn` names and
/// every `*_with_obs` definition as `(file, line, name)`.
type ObsTwinRegistry = (Vec<String>, Vec<(String, usize, String)>);

fn scan_file(
    rel: &str,
    crate_name: &str,
    text: &str,
    findings: &mut Vec<Finding>,
    pub_fns: &mut ObsTwinRegistry,
) {
    // Binary entry points may use unwrap/expect freely: a CLI aborting with
    // a message is the intended behaviour there.
    let is_bin = rel.contains("/src/bin/") || rel.ends_with("/main.rs");
    let mut st = ScanState::default();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let (code, comment) = strip_line(raw, &mut st);
        let trimmed_code = code.trim();

        // Test attributes put the next brace-delimited item in test land.
        if comment_or_code_has_attr(raw, "#[cfg(test)]") || comment_or_code_has_attr(raw, "#[test]")
        {
            st.test_pending = true;
        }
        let in_test = !st.test_regions.is_empty();
        track_braces(&code, &mut st);
        let inline_allow = |rule: &str| comment.contains(&format!("lint:allow({rule})"));

        // Collect the pub fn inventory (non-test code only).
        if !in_test {
            if let Some(name) = pub_fn_name(trimmed_code) {
                pub_fns.0.push(name.to_string());
                if name.ends_with("_with_obs") && !inline_allow("obs-twin") {
                    pub_fns.1.push((rel.to_string(), line_no, name.to_string()));
                }
            }
        }

        if in_test {
            continue;
        }

        if !is_bin {
            for needle in [".unwrap()", ".expect(", "panic!", "unimplemented!", "todo!"] {
                if code.contains(needle) && !inline_allow("no-unwrap") {
                    findings.push(Finding {
                        rule: "no-unwrap",
                        path: rel.to_string(),
                        line_no,
                        message: format!(
                            "`{needle}` in library code; return a typed error instead"
                        ),
                        line_text: raw.to_string(),
                    });
                }
            }
        }
        if crate_name != "vmi-obs" {
            for needle in ["Instant::now", "SystemTime::now"] {
                if code.contains(needle) && !inline_allow("no-raw-clock") {
                    findings.push(Finding {
                        rule: "no-raw-clock",
                        path: rel.to_string(),
                        line_no,
                        message: format!("`{needle}` outside vmi-obs clocks; take a `Clock`"),
                        line_text: raw.to_string(),
                    });
                }
            }
        }
        if crate_name != "vmi-obs"
            && code.contains("emit")
            && (code.contains("Event::SpanStart") || code.contains("Event::SpanEnd"))
            && !inline_allow("span-pair")
        {
            findings.push(Finding {
                rule: "span-pair",
                path: rel.to_string(),
                line_no,
                message: "hand-emitted span event; use `Obs::span`/`span_in` so the guard \
                          emits the matching end"
                    .to_string(),
                line_text: raw.to_string(),
            });
        }
        if crate_name == "vmi-qcow" && code.contains(".flush()") && !inline_allow("qcow-barrier") {
            findings.push(Finding {
                rule: "qcow-barrier",
                path: rel.to_string(),
                line_no,
                message: "direct `.flush()` in vmi-qcow; order metadata through \
                          `QcowImage::barrier` (or justify with an allow entry)"
                    .to_string(),
                line_text: raw.to_string(),
            });
        }
        for needle in [
            "std::sync::Mutex",
            "std::sync::RwLock",
            ".lock().unwrap()",
            ".read().unwrap()",
            ".write().unwrap()",
        ] {
            if code.contains(needle) && !inline_allow("no-std-lock") {
                findings.push(Finding {
                    rule: "no-std-lock",
                    path: rel.to_string(),
                    line_no,
                    message: format!(
                        "`{needle}`: use the non-poisoning `parking_lot` facade on request paths"
                    ),
                    line_text: raw.to_string(),
                });
            }
        }
        if code.contains("thread::sleep") && !inline_allow("no-raw-sleep") {
            findings.push(Finding {
                rule: "no-raw-sleep",
                path: rel.to_string(),
                line_no,
                message: "`thread::sleep` outside the RetryPolicy sleep hook".to_string(),
                line_text: raw.to_string(),
            });
        }
    }
}

fn comment_or_code_has_attr(raw: &str, attr: &str) -> bool {
    raw.trim_start().starts_with(attr)
}

fn pub_fn_name(code: &str) -> Option<&str> {
    let rest = code.strip_prefix("pub fn ").or_else(|| {
        code.strip_prefix("pub const fn ")
            .or_else(|| code.strip_prefix("pub async fn "))
    })?;
    let end = rest.find(|c: char| !c.is_alphanumeric() && c != '_')?;
    (end > 0).then(|| &rest[..end])
}

fn track_braces(code: &str, st: &mut ScanState) {
    for c in code.chars() {
        match c {
            '{' => {
                if st.test_pending {
                    st.test_regions.push(st.brace_depth);
                    st.test_pending = false;
                }
                st.brace_depth += 1;
            }
            '}' => {
                st.brace_depth -= 1;
                if st.test_regions.last() == Some(&st.brace_depth) {
                    st.test_regions.pop();
                }
            }
            // A same-line terminator (e.g. `#[cfg(test)] use ...;`) cancels
            // a pending test attribute that never opened a brace.
            ';' if st.test_pending => st.test_pending = false,
            _ => {}
        }
    }
}

/// Remove comments, string literals, and char literals from one line,
/// returning `(code, comments)`. Multi-line state (block comments) is kept
/// in `st`. Raw strings that span lines are not handled — the workspace
/// style avoids them — but single-line `r"..."`/`r#"..."#` are.
fn strip_line(raw: &str, st: &mut ScanState) -> (String, String) {
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let b: Vec<char> = raw.chars().collect();
    let mut i = 0;
    while i < b.len() {
        if st.block_comment_depth > 0 {
            if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                st.block_comment_depth -= 1;
                i += 2;
            } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                st.block_comment_depth += 1;
                i += 2;
            } else {
                comment.push(b[i]);
                i += 1;
            }
            continue;
        }
        match b[i] {
            '/' if b.get(i + 1) == Some(&'/') => {
                comment.extend(&b[i..]);
                break;
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                st.block_comment_depth += 1;
                i += 2;
            }
            '"' => {
                i += 1;
                while i < b.len() {
                    match b[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                code.push_str("\"\"");
            }
            'r' if b.get(i + 1) == Some(&'"') || (b.get(i + 1) == Some(&'#')) => {
                // r"..." or r#"..."# on one line.
                let mut j = i + 1;
                let mut hashes = 0;
                while b.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&'"') {
                    j += 1;
                    'rs: while j < b.len() {
                        if b[j] == '"' {
                            let mut k = 0;
                            while k < hashes && b.get(j + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'rs;
                            }
                        }
                        j += 1;
                    }
                    code.push_str("\"\"");
                    i = j;
                } else {
                    code.push(b[i]);
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs. lifetime: a literal closes with a quote.
                if b.get(i + 1) == Some(&'\\') {
                    let mut j = i + 2;
                    while j < b.len() && b[j] != '\'' {
                        j += 1;
                    }
                    i = j + 1;
                    code.push_str("' '");
                } else if b.get(i + 2) == Some(&'\'') {
                    i += 3;
                    code.push_str("' '");
                } else {
                    code.push(b[i]);
                    i += 1;
                }
            }
            c => {
                code.push(c);
                i += 1;
            }
        }
    }
    (code, comment)
}
