//! Independent parser for the on-disk container format.
//!
//! This deliberately duplicates the layout knowledge in `vmi-qcow::header` /
//! `vmi-qcow::layout` rather than importing it: the whole point of an fsck
//! is that it does not trust the driver, so a bug in the driver's encoder or
//! decoder cannot also blind the checker. The format itself is fixed by the
//! paper (§4.1/§4.3) and by QCOW2 compatibility, so the duplication is of
//! *constants*, not of behaviour.

use vmi_blockdev::{be_u32, be_u64, BlockDev};

use crate::{Violation, ViolationKind};

/// `"QFI\xfb"` — QCOW2's magic.
pub const MAGIC: u32 = 0x5146_49fb;
/// The only format version this checker understands.
pub const VERSION: u32 = 3;
/// Byte length of the fixed header portion.
pub const FIXED_HEADER_LEN: u64 = 48;
/// End-of-extensions marker.
pub const EXT_END: u32 = 0;
/// The paper's cache extension (quota + used, two u64s).
pub const EXT_CACHE: u32 = 0xCAC8_E001;
/// Snapshot-table pointer extension.
pub const EXT_SNAPTAB: u32 = 0x534E_4150;
/// Longest accepted backing-file name.
pub const MAX_BACKING_NAME: usize = 1023;
/// Largest accepted extension payload.
pub const MAX_EXT_LEN: usize = 4096;
/// Supported cluster-size envelope (512 B .. 2 MiB).
pub const MIN_CLUSTER_BITS: u32 = 9;
pub const MAX_CLUSTER_BITS: u32 = 21;

/// Raw header fields as found on disk (no driver-level interpretation).
#[derive(Debug, Clone)]
pub struct RawHeader {
    pub cluster_bits: u32,
    pub size: u64,
    pub l1_table_offset: u64,
    pub l1_size: u32,
    pub backing_file: Option<String>,
    /// `(quota, used)` from the cache extension, if present.
    pub cache: Option<(u64, u64)>,
    /// `(offset, len, count)` from the snapshot-table extension, if present.
    pub snaptab: Option<(u64, u32, u32)>,
}

/// Parse the header, returning the first fatal problem as a [`Violation`].
pub fn parse_header(dev: &dyn BlockDev) -> Result<RawHeader, Violation> {
    let mut fixed = [0u8; FIXED_HEADER_LEN as usize];
    if dev.read_at(&mut fixed, 0).is_err() {
        return Err(Violation::error(
            ViolationKind::UnreadableHeader,
            format!(
                "header truncated: container holds {} bytes, fixed header needs {}",
                dev.len(),
                FIXED_HEADER_LEN
            ),
        ));
    }
    let magic = be_u32(&fixed[0..]);
    if magic != MAGIC {
        return Err(Violation::error(
            ViolationKind::BadMagic,
            format!("header magic {magic:#010x} != {MAGIC:#010x} (\"QFI\\xfb\")"),
        ));
    }
    let version = be_u32(&fixed[4..]);
    if version != VERSION {
        return Err(Violation::error(
            ViolationKind::BadVersion,
            format!("format version {version} unsupported (expected {VERSION})"),
        ));
    }
    let backing_off = be_u64(&fixed[8..]);
    let backing_len = be_u32(&fixed[16..]) as usize;
    let cluster_bits = be_u32(&fixed[20..]);
    let size = be_u64(&fixed[24..]);
    let l1_table_offset = be_u64(&fixed[32..]);
    let l1_size = be_u32(&fixed[40..]);
    let header_length = be_u32(&fixed[44..]);
    if header_length as u64 != FIXED_HEADER_LEN {
        return Err(Violation::error(
            ViolationKind::BadHeaderLength,
            format!("header_length {header_length} != {FIXED_HEADER_LEN}"),
        ));
    }
    if backing_len > MAX_BACKING_NAME {
        return Err(Violation::error(
            ViolationKind::BackingNameInvalid,
            format!("backing name length {backing_len} exceeds {MAX_BACKING_NAME}"),
        ));
    }

    // Walk the extension frames (8-byte header, payload padded to 8).
    let mut cache = None;
    let mut snaptab = None;
    let mut pos = FIXED_HEADER_LEN;
    loop {
        let mut frame = [0u8; 8];
        if dev.read_at(&mut frame, pos).is_err() {
            return Err(Violation::error(
                ViolationKind::UnreadableHeader,
                format!("header extension area truncated at offset {pos}"),
            ));
        }
        let ty = be_u32(&frame[0..]);
        let len = be_u32(&frame[4..]) as usize;
        pos += 8;
        if ty == EXT_END {
            break;
        }
        if len > MAX_EXT_LEN {
            return Err(Violation::error(
                ViolationKind::OversizedExtension,
                format!("extension {ty:#x} claims {len} payload bytes (max {MAX_EXT_LEN})"),
            ));
        }
        let mut payload = vec![0u8; len];
        if dev.read_at(&mut payload, pos).is_err() {
            return Err(Violation::error(
                ViolationKind::UnreadableHeader,
                format!("extension {ty:#x} payload truncated at offset {pos}"),
            ));
        }
        pos += len.div_ceil(8) as u64 * 8;
        match ty {
            EXT_CACHE => {
                if len != 16 {
                    return Err(Violation::error(
                        ViolationKind::MalformedExtension,
                        format!("cache extension payload {len} bytes (expected 16)"),
                    ));
                }
                let quota = be_u64(&payload[0..]);
                let used = be_u64(&payload[8..]);
                if quota == 0 {
                    return Err(Violation::error(
                        ViolationKind::ZeroQuota,
                        "cache extension with zero quota (the driver never stores this)",
                    ));
                }
                cache = Some((quota, used));
            }
            EXT_SNAPTAB => {
                if len != 16 {
                    return Err(Violation::error(
                        ViolationKind::MalformedExtension,
                        format!("snapshot extension payload {len} bytes (expected 16)"),
                    ));
                }
                snaptab = Some((
                    be_u64(&payload[0..]),
                    be_u32(&payload[8..]),
                    be_u32(&payload[12..]),
                ));
            }
            // Unknown extensions are skipped — the QCOW2 forward-compat rule.
            _ => {}
        }
    }

    let backing_file = if backing_len == 0 {
        None
    } else {
        let mut name = vec![0u8; backing_len];
        if dev.read_at(&mut name, backing_off).is_err() {
            return Err(Violation::error(
                ViolationKind::BackingNameInvalid,
                format!("backing name unreadable at offset {backing_off}"),
            ));
        }
        match String::from_utf8(name) {
            Ok(s) => Some(s),
            Err(_) => {
                return Err(Violation::error(
                    ViolationKind::BackingNameInvalid,
                    "backing name is not UTF-8",
                ))
            }
        }
    };

    Ok(RawHeader {
        cluster_bits,
        size,
        l1_table_offset,
        l1_size,
        backing_file,
        cache,
        snaptab,
    })
}

/// Minimal geometry math, mirroring the paper's §4.1 VBA split
/// (`d = cluster_bits`, `m = cluster_bits - 3`, `n = 64 - d - m`).
#[derive(Debug, Clone, Copy)]
pub struct Geom {
    pub cluster_bits: u32,
    pub size: u64,
}

impl Geom {
    /// Validate the header's geometry fields.
    pub fn new(cluster_bits: u32, size: u64) -> Result<Geom, Violation> {
        if !(MIN_CLUSTER_BITS..=MAX_CLUSTER_BITS).contains(&cluster_bits) {
            return Err(Violation::error(
                ViolationKind::BadGeometry,
                format!(
                    "cluster_bits {cluster_bits} outside [{MIN_CLUSTER_BITS}, {MAX_CLUSTER_BITS}]"
                ),
            ));
        }
        if size == 0 {
            return Err(Violation::error(
                ViolationKind::BadGeometry,
                "zero virtual size",
            ));
        }
        let g = Geom { cluster_bits, size };
        let n_bits = 64 - cluster_bits - (cluster_bits - 3);
        if g.l1_entries() > (1u64 << n_bits) {
            return Err(Violation::error(
                ViolationKind::BadGeometry,
                format!("virtual size {size} too large for cluster_bits {cluster_bits}"),
            ));
        }
        Ok(g)
    }

    #[inline]
    pub fn cluster_size(&self) -> u64 {
        1 << self.cluster_bits
    }

    /// Entries per L2 table (one cluster of 8-byte entries).
    #[inline]
    pub fn l2_entries(&self) -> u64 {
        1 << (self.cluster_bits - 3)
    }

    /// Guest bytes covered by one L2 table.
    #[inline]
    pub fn l2_coverage(&self) -> u64 {
        self.l2_entries() << self.cluster_bits
    }

    #[inline]
    pub fn l1_entries(&self) -> u64 {
        self.size.div_ceil(self.l2_coverage())
    }

    /// L1 table footprint, rounded up to whole clusters.
    #[inline]
    pub fn l1_table_bytes(&self) -> u64 {
        (self.l1_entries() * 8).div_ceil(self.cluster_size()) * self.cluster_size()
    }

    #[inline]
    pub fn align_up(&self, off: u64) -> u64 {
        off.div_ceil(self.cluster_size()) * self.cluster_size()
    }

    /// Guest address mapped by entry `(l1_idx, l2_idx)`.
    #[inline]
    pub fn vba_of(&self, l1_idx: u64, l2_idx: u64) -> u64 {
        (l1_idx * self.l2_entries() + l2_idx) << self.cluster_bits
    }
}
