//! # vmi-audit — image-format invariant checker and project source lints
//!
//! The paper's cache correctness rests on structural invariants that the
//! driver in `vmi-qcow` enforces implicitly while it runs: the quota/used
//! header extension must agree with the clusters actually allocated (§4.3),
//! mapping tables must stay in bounds and never alias the same container
//! cluster, chains must be acyclic with compatible geometry (Algorithm 1),
//! and a cache is *immutable with respect to its base* — only data read from
//! the base may ever enter it (§3.1). This crate checks those invariants
//! from the outside, the way `qemu-img check` or `fsck` would: it parses the
//! on-disk container format independently (no dependency on `vmi-qcow`, so a
//! driver bug cannot hide itself) and reports typed [`Violation`]s with a
//! [`Severity`] and a [`RepairHint`].
//!
//! Entry points:
//!
//! * [`audit_image`] / [`audit_image_opts`] / [`audit_image_with_obs`] —
//!   verify a single container: header and extension framing, geometry,
//!   L1/L2 table bounds and alignment, overlapping cluster allocations, and
//!   (for cache images) the recorded used-size and quota accounting.
//! * [`audit_chain`] — verify a backing chain ordered top → base: per-layer
//!   structure, acyclicity, virtual-size equality (§4.3: a cache or CoW
//!   image's size "has to be the same as the base image's"), cluster-size
//!   compatibility, and optionally the *deep* immutability invariant (every
//!   mapped cache cluster byte-identical to the same range of its base).
//!
//! Consumers: `vmi-qcow::scrub` is a thin wrapper mapping violations to its
//! clean/repaired/discarded verdicts; `vmi-img fsck` is the CLI; the
//! `paranoid` feature of `vmi-qcow` re-audits the container after every
//! mutating op in debug builds. The companion `vmi-lint` binary (in
//! `src/bin/`) enforces *source-level* rules over the workspace.

#![forbid(unsafe_code)]

mod chain;
mod format;
mod image;
pub mod lint;

use std::fmt;

pub use chain::{audit_chain, ChainReport, MAX_CHAIN_DEPTH};
pub use image::{audit_image, audit_image_opts, audit_image_with_obs};

/// Best-effort probe of a container's backing-file name, for chain walkers
/// (e.g. `vmi-img fsck --chain`) that need to resolve the next layer before
/// auditing it. `None` when the container is not parseable or names no
/// backing.
pub fn probe_backing(dev: &dyn vmi_blockdev::BlockDev) -> Option<String> {
    format::parse_header(dev).ok()?.backing_file
}

/// How bad a violation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Repairable inconsistency: the image is usable after the repair hint
    /// is applied (e.g. a torn used-size field).
    Warning,
    /// Structural damage: the image (or chain) must not be trusted.
    Error,
}

impl Severity {
    /// Wire label (`"warning"` / `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// What kind of invariant was broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// The fixed header could not be read at all.
    UnreadableHeader,
    /// Magic number is not `QFI\xfb`.
    BadMagic,
    /// Unsupported format version.
    BadVersion,
    /// `header_length` field disagrees with the fixed layout.
    BadHeaderLength,
    /// A header extension claims an implausibly large payload.
    OversizedExtension,
    /// A known extension has the wrong payload size.
    MalformedExtension,
    /// Cache extension with a zero quota (never stored by the driver).
    ZeroQuota,
    /// Backing-file name too long, unreadable, or not UTF-8.
    BackingNameInvalid,
    /// cluster_bits / virtual size outside the supported envelope.
    BadGeometry,
    /// `l1_size` disagrees with the geometry's required L1 entry count.
    L1SizeMismatch,
    /// The L1 table is misaligned or overlaps the header cluster.
    L1TableMisplaced,
    /// The L1 table extends past the end of the container.
    TruncatedL1,
    /// An L1 entry is not cluster-aligned.
    L1EntryUnaligned,
    /// An L1 entry points outside the container.
    L1EntryOutOfBounds,
    /// An L2 table could not be read.
    TruncatedL2,
    /// An L2 entry is not cluster-aligned.
    L2EntryUnaligned,
    /// An L2 entry points outside the container (or maps a guest address
    /// beyond the virtual size).
    L2EntryOutOfBounds,
    /// Two mappings (or a mapping and metadata) share a container cluster.
    OverlappingClusters,
    /// The snapshot-table pointer is out of bounds.
    SnapshotTableInvalid,
    /// Recorded used-size differs from the recomputed ground truth (the
    /// classic torn close §4.3); repairable in place.
    UsedSizeMismatch,
    /// Referenced clusters exceed the cache quota.
    QuotaExceeded,
    /// A mapped cache cluster is not byte-identical to its base range
    /// (breaks the §3.1 immutability invariant).
    CacheBaseDivergence,
    /// The backing chain revisits a layer (or exceeds the depth bound).
    ChainCycle,
    /// Layers of a chain disagree on the virtual disk size (§4.3).
    ChainSizeMismatch,
    /// Adjacent layers have irreconcilable cluster sizes.
    ChainClusterIncompatible,
}

impl ViolationKind {
    /// Stable wire label used in JSON output and obs events.
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationKind::UnreadableHeader => "unreadable_header",
            ViolationKind::BadMagic => "bad_magic",
            ViolationKind::BadVersion => "bad_version",
            ViolationKind::BadHeaderLength => "bad_header_length",
            ViolationKind::OversizedExtension => "oversized_extension",
            ViolationKind::MalformedExtension => "malformed_extension",
            ViolationKind::ZeroQuota => "zero_quota",
            ViolationKind::BackingNameInvalid => "backing_name_invalid",
            ViolationKind::BadGeometry => "bad_geometry",
            ViolationKind::L1SizeMismatch => "l1_size_mismatch",
            ViolationKind::L1TableMisplaced => "l1_table_misplaced",
            ViolationKind::TruncatedL1 => "truncated_l1",
            ViolationKind::L1EntryUnaligned => "l1_entry_unaligned",
            ViolationKind::L1EntryOutOfBounds => "l1_entry_out_of_bounds",
            ViolationKind::TruncatedL2 => "truncated_l2",
            ViolationKind::L2EntryUnaligned => "l2_entry_unaligned",
            ViolationKind::L2EntryOutOfBounds => "l2_entry_out_of_bounds",
            ViolationKind::OverlappingClusters => "overlapping_clusters",
            ViolationKind::SnapshotTableInvalid => "snapshot_table_invalid",
            ViolationKind::UsedSizeMismatch => "used_size_mismatch",
            ViolationKind::QuotaExceeded => "quota_exceeded",
            ViolationKind::CacheBaseDivergence => "cache_base_divergence",
            ViolationKind::ChainCycle => "chain_cycle",
            ViolationKind::ChainSizeMismatch => "chain_size_mismatch",
            ViolationKind::ChainClusterIncompatible => "chain_cluster_incompatible",
        }
    }
}

/// How (whether) a violation can be fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairHint {
    /// No automated repair; recreate the image.
    None,
    /// Rewrite the cache extension's `used` field to this recomputed value
    /// (the §4.3 torn-close repair performed by `vmi-qcow::scrub`).
    RewriteUsedSize(u64),
    /// Drop the cache and deploy without it (plain-QCOW2 fallback); the
    /// base is unaffected.
    DiscardCache,
    /// Rebuild the chain from intact layers.
    RebuildChain,
    /// Zero the garbage L1 entry at this index. Safe for crash prefixes:
    /// with write barriers a torn L1 entry was never flush-acked, so the L2
    /// table it pointed at held no durable guest data.
    ClearL1Entry {
        /// Index into the L1 table.
        index: u64,
    },
    /// Zero the garbage L2 entry `l2_index` in the L2 table referenced by
    /// `L1[l1_index]`. Same crash-prefix reasoning as
    /// [`RepairHint::ClearL1Entry`].
    ClearL2Entry {
        /// Index of the owning L1 entry.
        l1_index: u64,
        /// Entry index within that L2 table.
        l2_index: u64,
    },
}

impl RepairHint {
    /// Short human-readable repair advice.
    pub fn describe(&self) -> String {
        match self {
            RepairHint::None => "no automated repair; recreate the image".to_string(),
            RepairHint::RewriteUsedSize(v) => {
                format!("rewrite recorded used-size to {v} (scrub repairs this in place)")
            }
            RepairHint::DiscardCache => {
                "discard the cache and redeploy without it; the base is intact".to_string()
            }
            RepairHint::RebuildChain => "rebuild the backing chain from intact layers".to_string(),
            RepairHint::ClearL1Entry { index } => {
                format!("zero L1[{index}] (torn, never flush-acked; recover clears in place)")
            }
            RepairHint::ClearL2Entry { l1_index, l2_index } => format!(
                "zero L2 entry {l2_index} under L1[{l1_index}] (torn, never flush-acked; \
                 recover clears in place)"
            ),
        }
    }
}

/// One broken invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which invariant.
    pub kind: ViolationKind,
    /// How bad.
    pub severity: Severity,
    /// Human-readable specifics (offsets, indices, expected vs. found).
    pub detail: String,
    /// Suggested remediation.
    pub repair: RepairHint,
}

impl Violation {
    pub(crate) fn error(kind: ViolationKind, detail: impl Into<String>) -> Self {
        Violation {
            kind,
            severity: Severity::Error,
            detail: detail.into(),
            repair: RepairHint::None,
        }
    }

    pub(crate) fn with_repair(mut self, repair: RepairHint) -> Self {
        self.repair = repair;
        self
    }

    /// One-line JSON object (no external serializer; mirrors vmi-obs style).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"severity\":\"{}\",\"detail\":\"{}\",\"repair\":\"{}\"}}",
            self.kind.as_str(),
            self.severity.as_str(),
            json_escape(&self.detail),
            json_escape(&self.repair.describe()),
        )
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {}",
            self.severity.as_str(),
            self.kind.as_str(),
            self.detail
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Knobs for [`audit_image_opts`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AuditOpts {
    /// Compare the recomputed used-size against this value instead of the
    /// header's recorded one. Mid-session (paranoid mode) the on-disk field
    /// is stale by design — §4.3 writes it back only at close — so the
    /// driver passes its in-memory counter here.
    pub expected_used: Option<u64>,
    /// Cap on reported violations (0 means the default of 64). The walk
    /// stops collecting past the cap; the image is already condemned.
    pub max_violations: usize,
}

impl AuditOpts {
    pub(crate) fn cap(&self) -> usize {
        if self.max_violations == 0 {
            64
        } else {
            self.max_violations
        }
    }
}

/// Result of auditing one container.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Everything found, in discovery order.
    pub violations: Vec<Violation>,
    /// `true` iff the image carries the cache extension.
    pub is_cache: bool,
    /// Quota recorded in the header (0 for non-cache images).
    pub quota: u64,
    /// Used-size recorded in the header (0 for non-cache images).
    pub recorded_used: u64,
    /// Ground-truth used-size recomputed from the tables: header cluster +
    /// L1 table + (L2 tables + data clusters) × cluster_size (§4.3).
    pub recomputed_used: u64,
    /// Mapped data clusters counted during the walk.
    pub data_clusters: u64,
    /// Allocated L2 tables counted during the walk.
    pub l2_tables: u64,
}

impl AuditReport {
    /// `true` when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// `true` when any violation is structural (severity [`Severity::Error`]).
    pub fn has_errors(&self) -> bool {
        self.violations
            .iter()
            .any(|v| v.severity == Severity::Error)
    }

    /// The proposed in-place used-size repair, if the only problem class is
    /// a torn used field.
    pub fn used_repair(&self) -> Option<u64> {
        self.violations.iter().find_map(|v| match v.repair {
            RepairHint::RewriteUsedSize(u) => Some(u),
            _ => None,
        })
    }
}
