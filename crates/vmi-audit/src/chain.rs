//! Chain-level audit: acyclicity, geometry compatibility, and the paper's
//! §3.1 immutability invariant (deep check).

use std::collections::HashMap;
use std::sync::Arc;

use vmi_blockdev::{be_u64, BlockDev, SharedDev};

use crate::format::{parse_header, Geom, MAGIC};
use crate::image::audit_image;
use crate::{AuditReport, RepairHint, Violation, ViolationKind};

/// Maximum backing-chain depth tolerated before a cycle is assumed
/// (mirrors the driver's `vmi-qcow::chain` loop guard).
pub const MAX_CHAIN_DEPTH: usize = 16;

/// Result of auditing a whole backing chain.
#[derive(Debug, Clone, Default)]
pub struct ChainReport {
    /// Chain-level violations (cycles, size/cluster incompatibilities,
    /// immutability breaks).
    pub violations: Vec<Violation>,
    /// Per-layer structural reports, in the same top → base order as the
    /// input. A raw base layer gets an empty default report.
    pub layers: Vec<AuditReport>,
}

impl ChainReport {
    /// `true` when neither the chain nor any layer has a violation.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.layers.iter().all(AuditReport::is_clean)
    }

    /// All violations — chain-level first, then per-layer in order.
    pub fn all_violations(&self) -> Vec<Violation> {
        let mut out = self.violations.clone();
        for l in &self.layers {
            out.extend(l.violations.iter().cloned());
        }
        out
    }
}

enum Layer {
    Qcow(View),
    Raw,
}

/// An independently-parsed read-only view of one qcow layer's mapping, used
/// to resolve guest reads for the deep immutability comparison.
struct View {
    geom: Geom,
    is_cache: bool,
    /// `l1_idx -> decoded L2 entries`, eagerly loaded for valid entries.
    l2: HashMap<usize, Vec<u64>>,
}

fn build_view(dev: &dyn BlockDev) -> Option<View> {
    let raw = parse_header(dev).ok()?;
    let geom = Geom::new(raw.cluster_bits, raw.size).ok()?;
    if raw.l1_size as u64 != geom.l1_entries() {
        return None;
    }
    let cs = geom.cluster_size();
    let file_end = geom.align_up(dev.len());
    let mut l1_raw = vec![0u8; raw.l1_size as usize * 8];
    dev.read_at(&mut l1_raw, raw.l1_table_offset).ok()?;
    let l1: Vec<u64> = l1_raw.chunks_exact(8).map(be_u64).collect();
    let mut l2 = HashMap::new();
    for (i, &off) in l1.iter().enumerate() {
        if off == 0 || off % cs != 0 || off + cs > file_end {
            continue;
        }
        let mut l2_raw = vec![0u8; cs as usize];
        if dev.read_at(&mut l2_raw, off).is_ok() {
            l2.insert(i, l2_raw.chunks_exact(8).map(be_u64).collect());
        }
    }
    Some(View {
        geom,
        is_cache: raw.cache.is_some(),
        l2,
    })
}

/// Resolve a guest read starting at layer `idx`, falling through unmapped
/// clusters to lower layers; past the base everything reads as zeroes.
fn read_guest(layers: &[Layer], devs: &[SharedDev], idx: usize, off: u64, buf: &mut [u8]) {
    if buf.is_empty() {
        return;
    }
    let Some(layer) = layers.get(idx) else {
        buf.fill(0);
        return;
    };
    match layer {
        Layer::Raw => {
            buf.fill(0);
            let _ = devs[idx].read_at_zero_pad(buf, off);
        }
        Layer::Qcow(view) => {
            let cs = view.geom.cluster_size();
            let mut pos = 0usize;
            let mut o = off;
            while pos < buf.len() {
                let in_c = o % cs;
                let n = ((cs - in_c) as usize).min(buf.len() - pos);
                let l1_idx = (o / view.geom.l2_coverage()) as usize;
                let l2_idx = ((o >> view.geom.cluster_bits) % view.geom.l2_entries()) as usize;
                let doff = view
                    .l2
                    .get(&l1_idx)
                    .and_then(|t| t.get(l2_idx))
                    .copied()
                    .filter(|&d| d != 0);
                match doff {
                    Some(d) => {
                        buf[pos..pos + n].fill(0);
                        let _ = devs[idx].read_at_zero_pad(&mut buf[pos..pos + n], d + in_c);
                    }
                    None => read_guest(layers, devs, idx + 1, o, &mut buf[pos..pos + n]),
                }
                pos += n;
                o += n as u64;
            }
        }
    }
}

/// Cap on reported divergent clusters per cache layer (the first few
/// pinpoint the damage; thousands would drown the report).
const MAX_DIVERGENCE_REPORTS: usize = 8;

/// Audit a backing chain, ordered **top → base**. The base may be a raw
/// device (no container format); every other layer must parse as an image.
///
/// Checks, in order:
/// 1. per-layer structure via [`audit_image`];
/// 2. acyclicity — the same device appearing twice, or a chain deeper than
///    [`MAX_CHAIN_DEPTH`], means the backing graph loops (Algorithm 1 walks
///    it recursively and would never terminate);
/// 3. virtual-size equality — §4.3: a cache/CoW image's size "has to be the
///    same as the base image's";
/// 4. cluster-size compatibility between adjacent layers (cluster sizes are
///    powers of two, so one must divide the other; a corrupt header can
///    still break this);
/// 5. with `deep`, the §3.1 immutability invariant: every mapped cluster of
///    every *cache* layer must be byte-identical to the same guest range
///    resolved through the layers below it — a cache only ever holds data
///    copied verbatim from its base.
pub fn audit_chain(layers_in: &[SharedDev], deep: bool) -> ChainReport {
    let mut rep = ChainReport::default();
    if layers_in.is_empty() {
        return rep;
    }
    if layers_in.len() > MAX_CHAIN_DEPTH {
        rep.violations.push(
            Violation::error(
                ViolationKind::ChainCycle,
                format!(
                    "chain depth {} exceeds the maximum of {MAX_CHAIN_DEPTH} (backing loop?)",
                    layers_in.len()
                ),
            )
            .with_repair(RepairHint::RebuildChain),
        );
        return rep;
    }
    // A cycle through the backing graph necessarily revisits a device.
    for i in 0..layers_in.len() {
        for j in i + 1..layers_in.len() {
            if Arc::ptr_eq(&layers_in[i], &layers_in[j]) {
                rep.violations.push(
                    Violation::error(
                        ViolationKind::ChainCycle,
                        format!("layer {j} is the same device as layer {i} (backing cycle)"),
                    )
                    .with_repair(RepairHint::RebuildChain),
                );
            }
        }
    }
    if !rep.violations.is_empty() {
        return rep;
    }

    let last = layers_in.len() - 1;
    let mut layers: Vec<Layer> = Vec::with_capacity(layers_in.len());
    for (i, dev) in layers_in.iter().enumerate() {
        let mut magic = [0u8; 4];
        let looks_qcow = dev.read_at(&mut magic, 0).is_ok() && u32::from_be_bytes(magic) == MAGIC;
        if i == last && !looks_qcow {
            // A raw base image: legal, unauditable, the recursion floor.
            rep.layers.push(AuditReport::default());
            layers.push(Layer::Raw);
            continue;
        }
        // Every non-base layer must be a container (a raw device cannot
        // name a backing file); audit_image reports the bad magic itself.
        rep.layers.push(audit_image(dev.as_ref()));
        match build_view(dev.as_ref()) {
            Some(v) => layers.push(Layer::Qcow(v)),
            None => layers.push(Layer::Raw),
        }
    }

    // Geometry compatibility between adjacent container layers.
    let views: Vec<Option<&View>> = layers
        .iter()
        .map(|l| match l {
            Layer::Qcow(v) => Some(v),
            Layer::Raw => None,
        })
        .collect();
    for i in 0..views.len().saturating_sub(1) {
        let (Some(a), Some(b)) = (views[i], views[i + 1]) else {
            continue;
        };
        if a.geom.size != b.geom.size {
            rep.violations.push(
                Violation::error(
                    ViolationKind::ChainSizeMismatch,
                    format!(
                        "layer {} virtual size {} != layer {} virtual size {} (§4.3 requires equality)",
                        i,
                        a.geom.size,
                        i + 1,
                        b.geom.size
                    ),
                )
                .with_repair(RepairHint::RebuildChain),
            );
        }
        let (ca, cb) = (a.geom.cluster_size(), b.geom.cluster_size());
        if ca % cb != 0 && cb % ca != 0 {
            rep.violations.push(
                Violation::error(
                    ViolationKind::ChainClusterIncompatible,
                    format!(
                        "layer {} cluster size {ca} and layer {} cluster size {cb} are mutually indivisible",
                        i,
                        i + 1
                    ),
                )
                .with_repair(RepairHint::RebuildChain),
            );
        }
    }

    if deep {
        for i in 0..layers.len() {
            let Layer::Qcow(view) = &layers[i] else {
                continue;
            };
            // Only cache layers are immutable w.r.t. their base; a CoW
            // layer's entire purpose is to diverge.
            if !view.is_cache || i + 1 >= layers.len() {
                continue;
            }
            if rep.layers[i].has_errors() {
                // Mapping tables are untrustworthy; structural violations
                // already condemn the layer.
                continue;
            }
            let cs = view.geom.cluster_size();
            let mut reported = 0usize;
            'walk: for (&l1_idx, table) in &view.l2 {
                for (l2_idx, &doff) in table.iter().enumerate() {
                    if doff == 0 {
                        continue;
                    }
                    let vba = view.geom.vba_of(l1_idx as u64, l2_idx as u64);
                    if vba >= view.geom.size {
                        continue;
                    }
                    let n = cs.min(view.geom.size - vba) as usize;
                    let mut cached = vec![0u8; n];
                    let _ = layers_in[i].read_at_zero_pad(&mut cached, doff);
                    let mut below = vec![0u8; n];
                    read_guest(&layers, layers_in, i + 1, vba, &mut below);
                    if cached != below {
                        rep.violations.push(
                            Violation::error(
                                ViolationKind::CacheBaseDivergence,
                                format!(
                                    "layer {i} cache cluster at {doff:#x} (guest {vba:#x}) differs from its base range (§3.1 immutability)"
                                ),
                            )
                            .with_repair(RepairHint::DiscardCache),
                        );
                        reported += 1;
                        if reported >= MAX_DIVERGENCE_REPORTS {
                            break 'walk;
                        }
                    }
                }
            }
        }
    }
    rep
}
