//! Trace analysis: working sets, histograms, and summary statistics.
//!
//! `unique_read_bytes` is the measurement behind Table 1; `TraceSummary`
//! powers the `figures table1` harness and the examples.

use crate::op::{BootTrace, OpKind};
use crate::rangeset::RangeSet;

/// Unique bytes read by the trace (Table 1's "Size of unique reads").
pub fn unique_read_bytes(trace: &BootTrace) -> u64 {
    let mut set = RangeSet::new();
    for op in trace.ops.iter().filter(|o| o.kind == OpKind::Read) {
        set.insert(op.offset, op.offset + op.len as u64);
    }
    set.covered()
}

/// Unique bytes written by the trace.
pub fn unique_write_bytes(trace: &BootTrace) -> u64 {
    let mut set = RangeSet::new();
    for op in trace.ops.iter().filter(|o| o.kind == OpKind::Write) {
        set.insert(op.offset, op.offset + op.len as u64);
    }
    set.covered()
}

/// Aggregate statistics of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Profile name.
    pub profile: String,
    /// Number of read operations.
    pub read_ops: usize,
    /// Number of write operations.
    pub write_ops: usize,
    /// Total bytes read (with re-reads).
    pub read_bytes: u64,
    /// Unique bytes read (the Table 1 metric).
    pub unique_read_bytes: u64,
    /// Total bytes written.
    pub write_bytes: u64,
    /// Mean read request size in bytes.
    pub mean_read_len: f64,
    /// Total guest think time in nanoseconds.
    pub total_think_ns: u64,
    /// Re-read volume as a fraction of total read volume.
    pub reread_volume_fraction: f64,
}

/// Compute a [`TraceSummary`].
pub fn summarize(trace: &BootTrace) -> TraceSummary {
    let read_ops = trace.read_ops();
    let read_bytes = trace.read_bytes();
    let unique = unique_read_bytes(trace);
    TraceSummary {
        profile: trace.profile.clone(),
        read_ops,
        write_ops: trace.write_ops(),
        read_bytes,
        unique_read_bytes: unique,
        write_bytes: trace.write_bytes(),
        mean_read_len: if read_ops == 0 {
            0.0
        } else {
            read_bytes as f64 / read_ops as f64
        },
        total_think_ns: trace.total_think_ns(),
        reread_volume_fraction: if read_bytes == 0 {
            0.0
        } else {
            (read_bytes - unique) as f64 / read_bytes as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::op::TraceOp;
    use crate::profile::VmiProfile;

    #[test]
    fn unique_reads_dedupe() {
        let t = BootTrace {
            profile: "t".into(),
            virtual_size: 1 << 20,
            seed: 0,
            final_think_ns: 0,
            ops: vec![
                TraceOp {
                    think_ns: 0,
                    kind: OpKind::Read,
                    offset: 0,
                    len: 1000,
                },
                TraceOp {
                    think_ns: 0,
                    kind: OpKind::Read,
                    offset: 500,
                    len: 1000,
                },
                TraceOp {
                    think_ns: 0,
                    kind: OpKind::Write,
                    offset: 0,
                    len: 9999,
                },
            ],
        };
        assert_eq!(unique_read_bytes(&t), 1500);
        assert_eq!(unique_write_bytes(&t), 9999);
    }

    #[test]
    fn summary_consistency() {
        let p = VmiProfile::tiny_test();
        let t = generate(&p, 21);
        let s = summarize(&t);
        assert_eq!(s.read_ops + s.write_ops, t.ops.len());
        assert!(s.mean_read_len >= 4096.0);
        assert!(s.reread_volume_fraction > 0.0 && s.reread_volume_fraction < 0.5);
        assert_eq!(s.total_think_ns, p.total_think_ns);
    }
}
