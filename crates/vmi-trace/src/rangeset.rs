//! Interval set over `u64` byte addresses.
//!
//! Used to compute *unique* read working sets (Table 1: "Size of unique
//! reads") and coverage statistics. Ranges are half-open `[start, end)` and
//! automatically coalesced.

use std::collections::BTreeMap;

/// A set of non-overlapping, non-adjacent half-open ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    /// start → end, maintained coalesced.
    ranges: BTreeMap<u64, u64>,
    total: u64,
}

impl RangeSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `[start, end)`, merging with any overlapping/adjacent ranges.
    /// Returns the number of *newly covered* bytes.
    pub fn insert(&mut self, start: u64, end: u64) -> u64 {
        if end <= start {
            return 0;
        }
        // Collect every existing range that overlaps or is adjacent to
        // [start, end): the predecessor of `start` (if it reaches start) and
        // all ranges beginning inside (start, end].
        let mut touching: Vec<u64> = Vec::new();
        if let Some((&rs, &re)) = self.ranges.range(..=start).next_back() {
            if re >= start {
                touching.push(rs);
            }
        }
        touching.extend(
            self.ranges
                .range((
                    std::ops::Bound::Excluded(start),
                    std::ops::Bound::Included(end),
                ))
                .map(|(&rs, _)| rs),
        );
        let mut new_start = start;
        let mut new_end = end;
        let mut absorbed = 0u64;
        for rs in touching {
            let Some(re) = self.ranges.remove(&rs) else {
                continue;
            };
            new_start = new_start.min(rs);
            new_end = new_end.max(re);
            absorbed += re - rs;
        }
        self.ranges.insert(new_start, new_end);
        let added = (new_end - new_start) - absorbed;
        self.total += added;
        added
    }

    /// Total bytes covered.
    pub fn covered(&self) -> u64 {
        self.total
    }

    /// Whether `[start, end)` is fully contained.
    pub fn contains(&self, start: u64, end: u64) -> bool {
        if end <= start {
            return true;
        }
        match self.ranges.range(..=start).next_back() {
            Some((_, &re)) => re >= end,
            None => false,
        }
    }

    /// Number of disjoint ranges.
    pub fn fragment_count(&self) -> usize {
        self.ranges.len()
    }

    /// Iterate the ranges in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().map(|(&s, &e)| (s, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_inserts_accumulate() {
        let mut rs = RangeSet::new();
        assert_eq!(rs.insert(0, 10), 10);
        assert_eq!(rs.insert(20, 30), 10);
        assert_eq!(rs.covered(), 20);
        assert_eq!(rs.fragment_count(), 2);
    }

    #[test]
    fn overlapping_inserts_count_once() {
        let mut rs = RangeSet::new();
        rs.insert(0, 100);
        assert_eq!(rs.insert(50, 150), 50);
        assert_eq!(rs.covered(), 150);
        assert_eq!(rs.fragment_count(), 1);
        assert_eq!(rs.insert(0, 150), 0, "fully covered re-insert adds nothing");
    }

    #[test]
    fn adjacent_ranges_coalesce() {
        let mut rs = RangeSet::new();
        rs.insert(0, 10);
        rs.insert(10, 20);
        assert_eq!(rs.fragment_count(), 1);
        assert_eq!(rs.covered(), 20);
    }

    #[test]
    fn bridging_insert_merges_many() {
        let mut rs = RangeSet::new();
        rs.insert(0, 10);
        rs.insert(20, 30);
        rs.insert(40, 50);
        assert_eq!(rs.insert(5, 45), 20); // fills two gaps of 10 each
        assert_eq!(rs.fragment_count(), 1);
        assert_eq!(rs.covered(), 50);
    }

    #[test]
    fn contains_checks_full_containment() {
        let mut rs = RangeSet::new();
        rs.insert(10, 20);
        assert!(rs.contains(10, 20));
        assert!(rs.contains(12, 18));
        assert!(!rs.contains(5, 15));
        assert!(!rs.contains(15, 25));
        assert!(!rs.contains(30, 40));
        assert!(rs.contains(7, 7), "empty range trivially contained");
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut rs = RangeSet::new();
        assert_eq!(rs.insert(10, 10), 0);
        assert_eq!(rs.covered(), 0);
    }

    #[test]
    fn randomized_against_naive_bitmap() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut rs = RangeSet::new();
        let mut bitmap = vec![false; 4096];
        for _ in 0..500 {
            let a = rng.gen_range(0..4096u64);
            let b = rng.gen_range(0..4096u64);
            let (s, e) = if a <= b { (a, b) } else { (b, a) };
            rs.insert(s, e);
            for i in s..e {
                bitmap[i as usize] = true;
            }
            let truth = bitmap.iter().filter(|&&x| x).count() as u64;
            assert_eq!(rs.covered(), truth);
        }
    }
}
