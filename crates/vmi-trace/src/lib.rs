//! # vmi-trace — boot I/O workload model
//!
//! The paper's experiments boot real CentOS/Debian/Windows VMs; this crate
//! is the substituted workload substrate: deterministic synthetic boot
//! traces with the measured working-set sizes (Table 1), the small-request
//! read mix that motivated tuning the NFS `rwsize` to 64 KiB (§5), and a
//! CPU-dominated boot-time structure (§7.3). See DESIGN.md §2 for the
//! substitution argument.
//!
//! * [`profile::VmiProfile`] — the per-OS parameter set, with presets
//!   [`profile::VmiProfile::centos_6_3`], [`profile::VmiProfile::debian_6_0_7`],
//!   [`profile::VmiProfile::windows_server_2012`];
//! * [`gen::generate`] — `(profile, seed) → BootTrace`, deterministic;
//! * [`analyze`] — unique-working-set computation (Table 1) and summaries;
//! * [`rangeset::RangeSet`] — interval arithmetic used throughout.

//! ```
//! // Generate the CentOS boot trace and verify Table 1's working set.
//! let profile = vmi_trace::VmiProfile::centos_6_3();
//! let trace = vmi_trace::generate(&profile, 42);
//! let unique = vmi_trace::unique_read_bytes(&trace);
//! assert!((unique as f64 / (1 << 20) as f64 - 85.2).abs() < 0.1);
//! // Same seed, same trace — deterministic by construction.
//! assert_eq!(trace, vmi_trace::generate(&profile, 42));
//! ```

#![forbid(unsafe_code)]

pub mod analyze;
pub mod gen;
pub mod op;
pub mod profile;
pub mod rangeset;

pub use analyze::{summarize, unique_read_bytes, unique_write_bytes, TraceSummary};
pub use gen::{generate, SECTOR};
pub use op::{BootTrace, OpKind, TraceOp};
pub use profile::{VmiProfile, MIB, MS, SEC};
pub use rangeset::RangeSet;
