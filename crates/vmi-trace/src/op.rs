//! Boot-trace data model.
//!
//! A [`BootTrace`] is the I/O side of one VM boot: the ordered disk requests
//! the guest issues between "KVM invoked" and "VM connects back to a given
//! port" (the paper's boot-time definition, §5). Each operation carries the
//! *think time* that precedes it — CPU work the guest does before issuing
//! the request — so replaying a trace through a storage stack yields a boot
//! time with the paper's observed structure (CentOS spends only ~17 % of its
//! boot waiting on reads, §7.3).

use serde::{Deserialize, Serialize};

/// Direction of one trace operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Guest disk read.
    Read,
    /// Guest disk write (goes to the CoW layer in deployment).
    Write,
}

/// One guest disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOp {
    /// Nanoseconds of guest CPU work preceding this request.
    pub think_ns: u64,
    /// Read or write.
    pub kind: OpKind,
    /// Guest byte offset.
    pub offset: u64,
    /// Request length in bytes.
    pub len: u32,
}

/// A complete boot I/O trace plus its generation metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootTrace {
    /// Profile name this trace was generated from (e.g. `"centos-6.3"`).
    pub profile: String,
    /// Virtual disk size of the VMI the offsets index into.
    pub virtual_size: u64,
    /// Seed used by the generator (same seed → identical trace).
    pub seed: u64,
    /// Trailing guest work after the last I/O until the connect-back.
    pub final_think_ns: u64,
    /// The ordered requests.
    pub ops: Vec<TraceOp>,
}

impl BootTrace {
    /// Total guest think time, including the trailing connect-back segment.
    pub fn total_think_ns(&self) -> u64 {
        self.final_think_ns + self.ops.iter().map(|o| o.think_ns).sum::<u64>()
    }

    /// Total bytes read (not deduplicated).
    pub fn read_bytes(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.kind == OpKind::Read)
            .map(|o| o.len as u64)
            .sum()
    }

    /// Total bytes written.
    pub fn write_bytes(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.kind == OpKind::Write)
            .map(|o| o.len as u64)
            .sum()
    }

    /// Number of read operations.
    pub fn read_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.kind == OpKind::Read).count()
    }

    /// Number of write operations.
    pub fn write_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.kind == OpKind::Write).count()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BootTrace {
        BootTrace {
            profile: "test".into(),
            virtual_size: 1 << 30,
            seed: 7,
            final_think_ns: 1_000,
            ops: vec![
                TraceOp {
                    think_ns: 10,
                    kind: OpKind::Read,
                    offset: 0,
                    len: 4096,
                },
                TraceOp {
                    think_ns: 20,
                    kind: OpKind::Write,
                    offset: 8192,
                    len: 512,
                },
                TraceOp {
                    think_ns: 30,
                    kind: OpKind::Read,
                    offset: 4096,
                    len: 8192,
                },
            ],
        }
    }

    #[test]
    fn aggregates() {
        let t = sample();
        assert_eq!(t.total_think_ns(), 1_060);
        assert_eq!(t.read_bytes(), 12_288);
        assert_eq!(t.write_bytes(), 512);
        assert_eq!(t.read_ops(), 2);
        assert_eq!(t.write_ops(), 1);
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let back = BootTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }
}
