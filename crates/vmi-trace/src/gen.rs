//! Deterministic boot-trace generation from a [`VmiProfile`].
//!
//! The generator lays the profile's unique read working set out over a set
//! of *hot regions* scattered across the virtual disk (kernel, initrd,
//! `/etc`, `/usr/lib`, …), then emits reads that walk those regions in
//! sequential runs with occasional jumps and re-reads, interleaved with
//! small writes. Two properties are guaranteed by construction:
//!
//! * the unique read coverage equals `profile.unique_read_bytes` exactly;
//! * the same `(profile, seed)` pair always yields the identical trace, so
//!   "same VMI booted on 64 nodes" replays the same block sequence on every
//!   node — the sharing that makes the storage node's page cache effective
//!   in the single-VMI experiments (Fig. 2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::op::{BootTrace, OpKind, TraceOp};
use crate::profile::{SizeWeight, VmiProfile};

/// Sector size: all offsets and lengths are aligned to this.
pub const SECTOR: u64 = 512;

#[derive(Debug)]
struct Region {
    start: u64,
    len: u64,
    /// Bytes consumed from the start (fresh-read frontier).
    frontier: u64,
}

impl Region {
    fn remaining(&self) -> u64 {
        self.len - self.frontier
    }
}

/// Generate the boot trace for `profile` with a deterministic `seed`.
///
/// # Panics
/// Panics if the profile is internally inconsistent (working set larger
/// than the virtual disk, empty size distributions).
pub fn generate(profile: &VmiProfile, seed: u64) -> BootTrace {
    assert!(
        profile.unique_read_bytes + profile.write_bytes < profile.virtual_size / 2,
        "working set must be a small fraction of the image"
    );
    assert!(!profile.read_sizes.is_empty() && !profile.write_sizes.is_empty());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ee1_bad5_eed0_f00d);

    let mut regions = carve_regions(profile, &mut rng);
    let mut ops: Vec<TraceOp> = Vec::new();

    // --- reads ---------------------------------------------------------
    let target = align_down(profile.unique_read_bytes);
    let mut covered = 0u64;
    let mut current_region = 0usize;
    // Track (offset, len) of past fresh reads for re-read sampling.
    let mut history: Vec<(u64, u32)> = Vec::new();
    while covered < target {
        // Re-read already-touched data?
        if !history.is_empty() && rng.gen_bool(profile.reread_fraction) {
            let &(off, len) = &history[rng.gen_range(0..history.len())];
            ops.push(TraceOp {
                think_ns: 0,
                kind: OpKind::Read,
                offset: off,
                len,
            });
            continue;
        }
        // Fresh read: maybe jump to a different region / start a new run.
        let new_run = regions[current_region].remaining() == 0 || !rng.gen_bool(profile.seq_prob);
        if new_run {
            // Directory locality: most new runs stay in the current region;
            // only some jump elsewhere on the disk.
            if regions[current_region].remaining() == 0 || !rng.gen_bool(profile.region_stick_prob)
            {
                current_region = pick_region(&regions, &mut rng);
            }
            // File-to-file discontinuity: skip a small gap so the working
            // set is sparse at sub-cluster granularity (drives the Fig. 9
            // cold-cache amplification at 64 KiB clusters).
            let region = &mut regions[current_region];
            if profile.mean_run_gap > 0 && region.remaining() > profile.mean_run_gap * 4 {
                let gap = align_down(
                    (-(profile.mean_run_gap as f64) * f64::ln(1.0 - rng.gen::<f64>())) as u64,
                )
                .min(region.remaining() / 2);
                region.frontier += gap;
            }
        }
        let region = &mut regions[current_region];
        let want = sample_size(&profile.read_sizes, &mut rng) as u64;
        let len = want.min(region.remaining()).min(target - covered);
        debug_assert!(len > 0 && len % SECTOR == 0);
        let off = region.start + region.frontier;
        region.frontier += len;
        covered += len;
        history.push((off, len as u32));
        ops.push(TraceOp {
            think_ns: 0,
            kind: OpKind::Read,
            offset: off,
            len: len as u32,
        });
    }

    // --- writes ----------------------------------------------------------
    // Guest writes land in a dedicated scratch area near the end of the
    // disk (var/log, tmp) — disjoint from the read working set.
    let write_base = align_down(profile.virtual_size - profile.virtual_size / 8);
    let mut written = 0u64;
    let wtarget = align_down(profile.write_bytes);
    let mut wptr = 0u64;
    let mut write_ops: Vec<TraceOp> = Vec::new();
    while written < wtarget {
        let want = sample_size(&profile.write_sizes, &mut rng) as u64;
        let len = want.min(wtarget - written);
        write_ops.push(TraceOp {
            think_ns: 0,
            kind: OpKind::Write,
            offset: write_base + wptr,
            len: len as u32,
        });
        wptr += len;
        written += len;
    }
    // Interleave writes into the second half of the boot (services starting
    // up write logs while later files are still being read).
    interleave_writes(&mut ops, write_ops, &mut rng);

    // --- think time ------------------------------------------------------
    let tail = (profile.total_think_ns as f64 * profile.tail_think_fraction) as u64;
    let body = profile.total_think_ns - tail;
    distribute_think(&mut ops, body, &mut rng);

    BootTrace {
        profile: profile.name.clone(),
        virtual_size: profile.virtual_size,
        seed,
        final_think_ns: tail,
        ops,
    }
}

fn align_down(v: u64) -> u64 {
    v / SECTOR * SECTOR
}

/// Carve `profile.hot_regions` disjoint regions out of the first 3/4 of the
/// disk, with total capacity comfortably above the working set.
fn carve_regions(profile: &VmiProfile, rng: &mut StdRng) -> Vec<Region> {
    let n = profile.hot_regions.max(1);
    // Capacity covers the working set, inter-run gaps (roughly one mean gap
    // per mean-sized run at (1 - seq_prob) run-start rate), and margin.
    let mean_read: u64 = 12 * 1024;
    let runs_per_byte = (1.0 - profile.seq_prob).max(0.05) / mean_read as f64;
    let gap_overhead =
        (profile.unique_read_bytes as f64 * runs_per_byte * profile.mean_run_gap as f64) as u64;
    let capacity = profile.unique_read_bytes * 2 + gap_overhead * 2;
    // Region sizes: one big "kernel+userland" region, the rest smaller,
    // proportioned 2:1:1:… with jitter.
    let mut weights: Vec<f64> = (0..n).map(|i| if i == 0 { 2.0 } else { 1.0 }).collect();
    for w in weights.iter_mut() {
        *w *= rng.gen_range(0.6..1.4);
    }
    let wsum: f64 = weights.iter().sum();
    // Place regions at increasing offsets with random gaps, within the
    // first 3/4 of the disk.
    let usable = profile.virtual_size * 3 / 4;
    let total_len: u64 = capacity;
    let mut regions = Vec::with_capacity(n);
    let slack = usable.saturating_sub(total_len).max(SECTOR * n as u64);
    let mut cursor = 0u64;
    for w in &weights {
        let len = align_down(((capacity as f64) * w / wsum) as u64).max(SECTOR * 64);
        let gap = align_down(rng.gen_range(0..=(slack / n as u64)));
        cursor += gap;
        regions.push(Region {
            start: cursor,
            len,
            frontier: 0,
        });
        cursor += len;
    }
    assert!(
        cursor <= profile.virtual_size,
        "regions must fit: {} > {}",
        cursor,
        profile.virtual_size
    );
    regions
}

fn pick_region(regions: &[Region], rng: &mut StdRng) -> usize {
    // Weight by remaining capacity so the walk drains everything.
    let total: u64 = regions.iter().map(Region::remaining).sum();
    debug_assert!(total > 0);
    let mut t = rng.gen_range(0..total);
    for (i, r) in regions.iter().enumerate() {
        let rem = r.remaining();
        if t < rem {
            return i;
        }
        t -= rem;
    }
    regions.len() - 1
}

fn sample_size(dist: &[SizeWeight], rng: &mut StdRng) -> u32 {
    let total: u32 = dist.iter().map(|s| s.weight).sum();
    let mut t = rng.gen_range(0..total);
    for s in dist {
        if t < s.weight {
            return s.len;
        }
        t -= s.weight;
    }
    dist.last().map_or(0, |s| s.len)
}

/// Merge write ops into the tail half of the read sequence at random
/// positions, preserving the relative order of each class.
fn interleave_writes(ops: &mut Vec<TraceOp>, writes: Vec<TraceOp>, rng: &mut StdRng) {
    if writes.is_empty() {
        return;
    }
    let half = ops.len() / 2;
    let mut positions: Vec<usize> = (0..writes.len())
        .map(|_| rng.gen_range(half..=ops.len()))
        .collect();
    positions.sort_unstable();
    // Insert back-to-front so earlier indices stay valid.
    for (w, pos) in writes.into_iter().zip(positions.iter()).rev() {
        ops.insert((*pos).min(ops.len()), w);
    }
}

/// Spread `budget` nanoseconds of think time across ops with exponential
/// jitter (services do uneven amounts of work between I/Os).
fn distribute_think(ops: &mut [TraceOp], budget: u64, rng: &mut StdRng) {
    if ops.is_empty() || budget == 0 {
        return;
    }
    let weights: Vec<f64> = ops
        .iter()
        .map(|_| -f64::ln(1.0 - rng.gen::<f64>()))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut assigned = 0u64;
    for (op, w) in ops.iter_mut().zip(&weights) {
        let t = ((budget as f64) * w / wsum) as u64;
        op.think_ns = t;
        assigned += t;
    }
    // Rounding remainder goes to the first op.
    ops[0].think_ns += budget - assigned;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::unique_read_bytes;

    #[test]
    fn deterministic_for_same_seed() {
        let p = VmiProfile::tiny_test();
        let a = generate(&p, 7);
        let b = generate(&p, 7);
        assert_eq!(a, b);
        let c = generate(&p, 8);
        assert_ne!(a.ops, c.ops, "different seeds must differ");
    }

    #[test]
    fn unique_coverage_exact() {
        let p = VmiProfile::tiny_test();
        let t = generate(&p, 3);
        assert_eq!(unique_read_bytes(&t), align_down(p.unique_read_bytes));
    }

    #[test]
    fn write_volume_exact() {
        let p = VmiProfile::tiny_test();
        let t = generate(&p, 3);
        assert_eq!(t.write_bytes(), align_down(p.write_bytes));
    }

    #[test]
    fn think_budget_exact() {
        let p = VmiProfile::tiny_test();
        let t = generate(&p, 3);
        assert_eq!(t.total_think_ns(), p.total_think_ns);
        let tail = (p.total_think_ns as f64 * p.tail_think_fraction) as u64;
        assert_eq!(t.final_think_ns, tail);
    }

    #[test]
    fn offsets_sector_aligned_and_in_bounds() {
        let p = VmiProfile::tiny_test();
        let t = generate(&p, 9);
        for op in &t.ops {
            assert_eq!(op.offset % SECTOR, 0);
            assert!(op.len > 0);
            assert!(op.offset + op.len as u64 <= p.virtual_size);
        }
    }

    #[test]
    fn total_reads_exceed_unique_reads() {
        // Re-reads make total read volume strictly larger than the unique
        // working set.
        let p = VmiProfile::tiny_test();
        let t = generate(&p, 5);
        assert!(t.read_bytes() > unique_read_bytes(&t));
    }

    #[test]
    fn writes_disjoint_from_reads() {
        let p = VmiProfile::tiny_test();
        let t = generate(&p, 11);
        let mut reads = crate::rangeset::RangeSet::new();
        for op in t.ops.iter().filter(|o| o.kind == OpKind::Read) {
            reads.insert(op.offset, op.offset + op.len as u64);
        }
        for op in t.ops.iter().filter(|o| o.kind == OpKind::Write) {
            assert!(
                !reads.contains(op.offset, op.offset + 1),
                "write at {} overlaps read set",
                op.offset
            );
        }
    }

    #[test]
    fn full_centos_profile_generates() {
        let p = VmiProfile::centos_6_3();
        let t = generate(&p, 1);
        let uniq = unique_read_bytes(&t);
        assert_eq!(uniq, align_down(p.unique_read_bytes));
        // Order of magnitude: a boot is thousands of small requests.
        assert!(t.ops.len() > 2_000, "got {}", t.ops.len());
        assert!(t.ops.len() < 100_000);
    }

    #[test]
    fn snapshot_profile_generates_large_sequential_trace() {
        let p = VmiProfile::memory_snapshot_restore(64 << 20);
        let t = generate(&p, 2);
        assert_eq!(unique_read_bytes(&t), 64 << 20);
        assert_eq!(t.write_bytes(), 0);
        // Mean request size is large (restores stream).
        let mean = t.read_bytes() as f64 / t.read_ops() as f64;
        assert!(mean > 128.0 * 1024.0, "mean read {mean}");
    }

    #[test]
    fn writes_interleaved_in_second_half() {
        let p = VmiProfile::tiny_test();
        let t = generate(&p, 13);
        let first_write = t.ops.iter().position(|o| o.kind == OpKind::Write).unwrap();
        assert!(
            first_write >= t.read_ops() / 4,
            "writes must not lead the boot"
        );
    }
}
