//! `vmi-trace` — generate, inspect, and export boot I/O traces.
//!
//! ```text
//! vmi-trace generate --profile centos [--seed N] [--out FILE.json]
//! vmi-trace analyze  FILE.json
//! vmi-trace table1   [--seed N]
//! vmi-trace profiles
//! ```

use std::process::exit;

use vmi_trace::{generate, summarize, BootTrace, VmiProfile, MIB};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "analyze" => cmd_analyze(rest),
        "table1" => cmd_table1(rest),
        "profiles" => cmd_profiles(),
        "--help" | "-h" | "help" => {
            usage();
            return;
        }
        other => {
            eprintln!("unknown command {other:?}");
            usage();
            exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("vmi-trace {cmd}: {e}");
        exit(1);
    }
}

fn usage() {
    eprintln!("usage: vmi-trace <generate|analyze|table1|profiles> ...");
    eprintln!("  generate --profile centos|debian|windows|tiny|snapshot [--seed N] [--out F]");
    eprintln!("  analyze FILE.json      summarize a trace written by `generate`");
    eprintln!("  table1 [--seed N]      regenerate the paper's Table 1");
    eprintln!("  profiles               list profile parameters");
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn flag(rest: &[String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1).cloned())
}

fn pick_profile(rest: &[String]) -> Result<VmiProfile, Box<dyn std::error::Error>> {
    Ok(match flag(rest, "--profile").as_deref() {
        None | Some("centos") => VmiProfile::centos_6_3(),
        Some("debian") => VmiProfile::debian_6_0_7(),
        Some("windows") => VmiProfile::windows_server_2012(),
        Some("tiny") => VmiProfile::tiny_test(),
        Some("snapshot") => VmiProfile::memory_snapshot_restore(1 << 30),
        Some(other) => return Err(format!("unknown profile {other:?}").into()),
    })
}

fn cmd_generate(rest: &[String]) -> CliResult {
    let profile = pick_profile(rest)?;
    let seed = flag(rest, "--seed")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1);
    let trace = generate(&profile, seed);
    match flag(rest, "--out") {
        Some(path) => {
            std::fs::write(&path, trace.to_json())?;
            eprintln!("wrote {} ops to {path}", trace.ops.len());
        }
        None => println!("{}", trace.to_json()),
    }
    Ok(())
}

fn cmd_analyze(rest: &[String]) -> CliResult {
    let path = rest
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing trace file")?;
    let trace = BootTrace::from_json(&std::fs::read_to_string(path)?)?;
    print_summary(&trace);
    Ok(())
}

fn print_summary(trace: &BootTrace) {
    let s = summarize(trace);
    println!("profile:           {}", s.profile);
    println!(
        "ops:               {} reads, {} writes",
        s.read_ops, s.write_ops
    );
    println!(
        "read volume:       {:.1} MB total",
        s.read_bytes as f64 / MIB as f64
    );
    println!(
        "unique reads:      {:.1} MB (the Table 1 metric)",
        s.unique_read_bytes as f64 / MIB as f64
    );
    println!(
        "write volume:      {:.1} MB",
        s.write_bytes as f64 / MIB as f64
    );
    println!("mean read size:    {:.1} KiB", s.mean_read_len / 1024.0);
    println!(
        "re-read fraction:  {:.1} % of read volume",
        s.reread_volume_fraction * 100.0
    );
    println!("guest think time:  {:.1} s", s.total_think_ns as f64 / 1e9);
}

fn cmd_table1(rest: &[String]) -> CliResult {
    let seed = flag(rest, "--seed")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1);
    println!("{:<22} Size of unique reads", "VMI");
    for p in VmiProfile::paper_profiles() {
        let trace = generate(&p, seed);
        let unique = vmi_trace::unique_read_bytes(&trace);
        println!("{:<22} {:.1} MB", p.name, unique as f64 / MIB as f64);
    }
    Ok(())
}

fn cmd_profiles() -> CliResult {
    let mut all = VmiProfile::paper_profiles();
    all.push(VmiProfile::tiny_test());
    all.push(VmiProfile::memory_snapshot_restore(1 << 30));
    println!(
        "{:<26} {:>10} {:>12} {:>10} {:>10}",
        "profile", "disk", "unique rd", "writes", "think"
    );
    for p in all {
        println!(
            "{:<26} {:>8.1}G {:>10.1}M {:>9.1}M {:>9.1}s",
            p.name,
            p.virtual_size as f64 / (1 << 30) as f64,
            p.unique_read_bytes as f64 / MIB as f64,
            p.write_bytes as f64 / MIB as f64,
            p.total_think_ns as f64 / 1e9,
        );
    }
    Ok(())
}
