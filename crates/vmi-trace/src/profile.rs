//! Per-OS boot workload profiles.
//!
//! Each profile encodes what the paper measured about an OS image's boot
//! I/O: the unique read working set (Table 1), the small-request nature of
//! boot reads (§5: NFS rwsize tuned to 64 KiB because "the default NFS
//! rwsize of 1MB does not match well with the small-sized read requests
//! during boot time"), the modest write volume that lands in the CoW layer,
//! and the CPU-dominated structure of boot time (§7.3: the CentOS VM "only
//! waits 17% of its total boot time on reads").

use serde::{Deserialize, Serialize};

/// Milliseconds → nanoseconds.
pub const MS: u64 = 1_000_000;
/// Seconds → nanoseconds.
pub const SEC: u64 = 1_000 * MS;
/// One mebibyte.
pub const MIB: u64 = 1 << 20;

/// Weighted request-size distribution entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeWeight {
    /// Request size in bytes (sector-aligned).
    pub len: u32,
    /// Relative weight.
    pub weight: u32,
}

/// A boot workload description for one VMI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmiProfile {
    /// Human name, e.g. `"centos-6.3"`.
    pub name: String,
    /// Virtual disk size of the image.
    pub virtual_size: u64,
    /// Unique bytes read from the base image during boot (Table 1).
    pub unique_read_bytes: u64,
    /// Bytes written by the guest during boot (logs, tmp, …) — these go to
    /// the CoW image.
    pub write_bytes: u64,
    /// Total guest CPU time across the boot (think time).
    pub total_think_ns: u64,
    /// Fraction of `total_think_ns` spent *after* the last I/O, before the
    /// connect-back (service initialization).
    pub tail_think_fraction: f64,
    /// Read request size distribution.
    pub read_sizes: Vec<SizeWeight>,
    /// Write request size distribution.
    pub write_sizes: Vec<SizeWeight>,
    /// Probability that the next fresh read continues sequentially in the
    /// same hot region (boot loads files in runs).
    pub seq_prob: f64,
    /// Fraction of read operations that re-read already-read data. Boot
    /// traces are *disk-level*: the guest page cache absorbs most re-touches
    /// (85 MB working set ≪ guest RAM), so this is small.
    pub reread_fraction: f64,
    /// Number of hot regions the working set is scattered over (kernel,
    /// initrd, /etc, /usr/lib, …).
    pub hot_regions: usize,
    /// Mean gap skipped inside a region when a new sequential run starts
    /// (file-to-file discontinuity). This sub-cluster sparsity is what makes
    /// a 64 KiB-cluster cold cache fetch *more* than the working set
    /// (Fig. 9's read amplification) while 512 B clusters do not.
    pub mean_run_gap: u64,
    /// Probability that a new run stays in the current hot region
    /// (directory locality); low values scatter runs across the disk.
    pub region_stick_prob: f64,
}

impl VmiProfile {
    /// Default CentOS 6.3 profile: 85.2 MB unique reads (Table 1),
    /// ~20 s single-VM boot dominated by CPU (§7.3: 17 % read wait).
    pub fn centos_6_3() -> Self {
        Self {
            name: "centos-6.3".into(),
            virtual_size: 8 << 30,
            unique_read_bytes: (852 * MIB) / 10, // 85.2 MB
            write_bytes: 5 * MIB,
            total_think_ns: 17 * SEC,
            tail_think_fraction: 0.25,
            read_sizes: default_read_sizes(),
            write_sizes: default_write_sizes(),
            seq_prob: 0.70,
            reread_fraction: 0.03,
            hot_regions: 24,
            mean_run_gap: 80 * 1024,
            region_stick_prob: 0.8,
        }
    }

    /// Debian 6.0.7 (the ConPaaS services image): 24.9 MB unique reads.
    pub fn debian_6_0_7() -> Self {
        Self {
            name: "debian-6.0.7".into(),
            virtual_size: 4 << 30,
            unique_read_bytes: (249 * MIB) / 10, // 24.9 MB
            write_bytes: 13 * MIB,
            total_think_ns: 11 * SEC,
            tail_think_fraction: 0.25,
            read_sizes: default_read_sizes(),
            write_sizes: default_write_sizes(),
            seq_prob: 0.70,
            reread_fraction: 0.02,
            hot_regions: 14,
            mean_run_gap: 80 * 1024,
            region_stick_prob: 0.8,
        }
    }

    /// Windows Server 2012: 195.8 MB unique reads, the paper's largest
    /// boot working set.
    pub fn windows_server_2012() -> Self {
        Self {
            name: "windows-server-2012".into(),
            virtual_size: 20 << 30,
            unique_read_bytes: (1958 * MIB) / 10, // 195.8 MB
            write_bytes: 2 * MIB,
            total_think_ns: 35 * SEC,
            tail_think_fraction: 0.30,
            read_sizes: default_read_sizes(),
            write_sizes: default_write_sizes(),
            seq_prob: 0.75,
            reread_fraction: 0.04,
            hot_regions: 40,
            mean_run_gap: 96 * 1024,
            region_stick_prob: 0.8,
        }
    }

    /// All three paper profiles, in Table 1 order.
    pub fn paper_profiles() -> Vec<Self> {
        vec![
            Self::centos_6_3(),
            Self::debian_6_0_7(),
            Self::windows_server_2012(),
        ]
    }

    /// Restoring a suspended VM from a memory snapshot (§8 future work:
    /// "apply our caching scheme to memory snapshots of already booted
    /// virtual machines"). The workload is the opposite of a boot: one
    /// large, almost fully sequential read of the resident RAM image with
    /// very little CPU in between — I/O-bound instead of compute-bound.
    pub fn memory_snapshot_restore(resident_ram: u64) -> Self {
        Self {
            name: format!("snapshot-restore-{}m", resident_ram >> 20),
            virtual_size: (resident_ram * 5 / 2).max(256 * MIB),
            unique_read_bytes: resident_ram,
            write_bytes: 0,
            total_think_ns: 5 * SEC / 2, // device re-init, page-table fixup
            tail_think_fraction: 0.3,
            read_sizes: vec![
                SizeWeight {
                    len: 256 * 1024,
                    weight: 50,
                },
                SizeWeight {
                    len: 512 * 1024,
                    weight: 30,
                },
                SizeWeight {
                    len: 1024 * 1024,
                    weight: 20,
                },
            ],
            write_sizes: default_write_sizes(),
            seq_prob: 0.97,
            reread_fraction: 0.0,
            hot_regions: 2,
            mean_run_gap: 0,
            region_stick_prob: 0.95,
        }
    }

    /// A scaled-down profile for fast tests: same shape, tiny sizes.
    pub fn tiny_test() -> Self {
        Self {
            name: "tiny-test".into(),
            virtual_size: 64 * MIB,
            unique_read_bytes: 2 * MIB,
            write_bytes: 256 * 1024,
            total_think_ns: 100 * MS,
            tail_think_fraction: 0.2,
            read_sizes: default_read_sizes(),
            write_sizes: default_write_sizes(),
            seq_prob: 0.6,
            reread_fraction: 0.1,
            hot_regions: 4,
            mean_run_gap: 32 * 1024,
            region_stick_prob: 0.7,
        }
    }
}

/// Boot reads are small: mostly 4–32 KiB with a modest 64 KiB tail.
fn default_read_sizes() -> Vec<SizeWeight> {
    vec![
        SizeWeight {
            len: 4 * 1024,
            weight: 40,
        },
        SizeWeight {
            len: 8 * 1024,
            weight: 22,
        },
        SizeWeight {
            len: 16 * 1024,
            weight: 18,
        },
        SizeWeight {
            len: 32 * 1024,
            weight: 12,
        },
        SizeWeight {
            len: 64 * 1024,
            weight: 8,
        },
    ]
}

/// Boot writes: small log/temp appends.
fn default_write_sizes() -> Vec<SizeWeight> {
    vec![
        SizeWeight {
            len: 4 * 1024,
            weight: 50,
        },
        SizeWeight {
            len: 8 * 1024,
            weight: 30,
        },
        SizeWeight {
            len: 16 * 1024,
            weight: 20,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_working_sets() {
        // The profile constants must reproduce Table 1 to 0.1 MB.
        let centos = VmiProfile::centos_6_3();
        assert_eq!(centos.unique_read_bytes, 89_338_675); // 85.2 MiB-scaled
        assert!((centos.unique_read_bytes as f64 / MIB as f64 - 85.2).abs() < 0.05);
        let debian = VmiProfile::debian_6_0_7();
        assert!((debian.unique_read_bytes as f64 / MIB as f64 - 24.9).abs() < 0.05);
        let win = VmiProfile::windows_server_2012();
        assert!((win.unique_read_bytes as f64 / MIB as f64 - 195.8).abs() < 0.05);
    }

    #[test]
    fn working_set_is_tiny_fraction_of_image() {
        // §1: "virtual machines actually read only a small fraction … of the
        // total VMI".
        for p in VmiProfile::paper_profiles() {
            assert!(p.unique_read_bytes * 10 < p.virtual_size);
        }
    }

    #[test]
    fn read_wait_structure_matches_paper() {
        // CentOS: boot ≈ think + read-wait; think must dominate so that a
        // ~17 % read-wait share is attainable on an uncontended medium.
        let p = VmiProfile::centos_6_3();
        assert!(p.total_think_ns >= 10 * SEC);
        assert!(p.tail_think_fraction > 0.0 && p.tail_think_fraction < 1.0);
    }

    #[test]
    fn snapshot_profile_is_io_shaped() {
        let p = VmiProfile::memory_snapshot_restore(1 << 30);
        assert_eq!(p.unique_read_bytes, 1 << 30);
        assert_eq!(p.write_bytes, 0);
        assert!(p.seq_prob > 0.9, "restores are sequential");
        assert!(p.total_think_ns < 5 * SEC, "restores are not compute-bound");
        assert!(p.virtual_size > p.unique_read_bytes);
    }

    #[test]
    fn profiles_serialize() {
        let p = VmiProfile::centos_6_3();
        let s = serde_json::to_string(&p).unwrap();
        let back: VmiProfile = serde_json::from_str(&s).unwrap();
        assert_eq!(back, p);
    }
}
