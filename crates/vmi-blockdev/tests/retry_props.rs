//! Property tests for retry/backoff: the schedule is a pure function of
//! the policy, bounded by the configured cap, and jitter never widens the
//! envelope beyond its advertised fraction.

use proptest::prelude::*;
use vmi_blockdev::RetryPolicy;

proptest! {
    /// Two policies with identical parameters produce identical backoff
    /// schedules — the determinism the simulator depends on.
    #[test]
    fn schedule_is_deterministic_per_seed(
        attempts in 1u32..16,
        base in 1u64..1_000_000,
        max in 1u64..100_000_000,
        jitter in 0u32..=50,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy {
            max_attempts: attempts,
            base_delay_ns: base,
            max_delay_ns: max,
            jitter_frac: jitter as f64 / 100.0,
            seed,
        };
        let a = policy.schedule();
        let b = policy.schedule();
        prop_assert_eq!(&a, &b, "same policy, same schedule");
        prop_assert_eq!(a.len() as u32, attempts.saturating_sub(1));
    }

    /// Every delay stays inside the jittered envelope around the clamped
    /// exponential value, and the zero-jitter schedule is exactly it.
    #[test]
    fn delays_respect_cap_and_jitter_envelope(
        attempts in 2u32..12,
        base in 1u64..1_000_000,
        max in 1u64..100_000_000,
        seed in any::<u64>(),
    ) {
        let exact = RetryPolicy {
            max_attempts: attempts,
            base_delay_ns: base,
            max_delay_ns: max,
            jitter_frac: 0.0,
            seed,
        };
        for (i, d) in exact.schedule().into_iter().enumerate() {
            let raw = base.checked_shl(i as u32).unwrap_or(u64::MAX).min(max);
            prop_assert_eq!(d, raw, "no jitter → exact clamped exponential");
        }
        let jittered = RetryPolicy { jitter_frac: 0.25, ..exact };
        for (i, d) in jittered.schedule().into_iter().enumerate() {
            let raw = base.checked_shl(i as u32).unwrap_or(u64::MAX).min(max) as f64;
            prop_assert!(d as f64 >= raw * 0.75 - 1.0, "below envelope: {d} vs {raw}");
            prop_assert!(d as f64 <= raw * 1.25 + 1.0, "above envelope: {d} vs {raw}");
        }
    }

    /// Different seeds with nonzero jitter are allowed to differ, but the
    /// schedule length and the cap are seed-independent.
    #[test]
    fn cap_is_seed_independent(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let mk = |seed| RetryPolicy {
            max_attempts: 8,
            base_delay_ns: 1000,
            max_delay_ns: 50_000,
            jitter_frac: 0.5,
            seed,
        };
        let a = mk(seed_a).schedule();
        let b = mk(seed_b).schedule();
        prop_assert_eq!(a.len(), b.len());
        for d in a.iter().chain(b.iter()) {
            prop_assert!(*d <= 75_000, "cap × (1 + jitter) bounds everything: {d}");
        }
    }
}
