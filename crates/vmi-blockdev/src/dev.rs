//! The [`BlockDev`] trait: the storage interface everything else targets.

use std::sync::Arc;

use crate::{BlockError, Result};

/// A shareable handle to any block device.
pub type SharedDev = Arc<dyn BlockDev>;

/// A half-open byte range `[start, end)` on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteRange {
    /// First byte of the range.
    pub start: u64,
    /// One past the last byte of the range.
    pub end: u64,
}

impl ByteRange {
    /// Construct the range `[start, start + len)`.
    pub fn at(start: u64, len: u64) -> Self {
        Self {
            start,
            end: start + len,
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// `true` if the range covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Intersection with another range, if non-empty.
    pub fn intersect(&self, other: &ByteRange) -> Option<ByteRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(ByteRange { start, end })
    }
}

/// A byte-addressable, growable storage device.
///
/// Semantics (shared by all implementations and relied upon by `vmi-qcow`):
///
/// * `read_at` within `[0, len())` fills the buffer exactly; a read that
///   extends past `len()` fails with `OutOfBounds` — callers that want
///   zero-fill-past-EOF semantics (e.g. reading a cluster that was allocated
///   but only partially written by a growing image file) use
///   [`BlockDev::read_at_zero_pad`].
/// * `write_at` may extend the device: writing past the current end grows it
///   (like a POSIX file), unless the device is fixed-size or read-only.
/// * `flush` orders prior writes before subsequent observation by crash-
///   consistency-sensitive callers; memory devices treat it as a no-op.
///
/// # Concurrency
///
/// `BlockDev: Send + Sync` is a **contract**, not a formality: every method
/// takes `&self`, and callers (the qcow driver under [`crate::SharedDev`],
/// the request engine's worker pool, one NBD connection thread per client)
/// invoke them from many threads at once without external locking. An
/// implementation must therefore be internally synchronized:
///
/// * Each individual operation must be atomic with respect to the device's
///   *own* state — counters, fault plans, crash buffers, file cursors. The
///   in-tree decorators all follow the same pattern: decision + state
///   mutation under one `parking_lot` lock hold (or lone atomics), so an
///   op never observes a decorator mid-decision.
/// * **No torn-byte visibility**: a read racing a write to the same range
///   may see the old bytes, the new bytes, or (for decorators that delegate
///   without holding their lock across the inner call) a mix of complete
///   operations — but never a partially-applied single operation from a
///   device that buffers internally ([`crate::MemDev`] holds its `RwLock`
///   for the whole copy; [`crate::CrashDev`] write-back applies each
///   buffered write under its state lock).
/// * **Cross-operation ordering is the caller's job.** The trait promises
///   nothing about the order in which two concurrent operations land;
///   `vmi-qcow`'s `ConcurrentImage` builds that ordering with byte-range
///   locks above this interface. Decorators likewise only promise that
///   their decision sequence (e.g. `FaultDev` op counting) reflects *some*
///   serialization of the concurrent ops.
///
/// Decorator fine print: a decorator that checks its state and then
/// delegates *outside* the lock (e.g. `CrashDev` write-through reads) may
/// let an inner op complete concurrently with a state flip (a firing power
/// cut); the model counts such an op as having started before the flip.
pub trait BlockDev: Send + Sync {
    /// Read exactly `buf.len()` bytes starting at `off`.
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()>;

    /// Write all of `buf` at `off`, growing the device if needed.
    fn write_at(&self, buf: &[u8], off: u64) -> Result<()>;

    /// Current device length in bytes.
    fn len(&self) -> u64;

    /// `true` when the device currently holds zero bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resize the device. Growing exposes zero bytes; shrinking discards.
    fn set_len(&self, len: u64) -> Result<()>;

    /// Durably order prior writes (no-op for memory devices).
    fn flush(&self) -> Result<()>;

    /// Read, zero-padding any portion that lies past the current end.
    ///
    /// Returns the number of bytes that came from the device (the rest of
    /// the buffer was zeroed).
    fn read_at_zero_pad(&self, buf: &mut [u8], off: u64) -> Result<usize> {
        let len = self.len();
        if off >= len {
            buf.fill(0);
            return Ok(0);
        }
        let avail = ((len - off) as usize).min(buf.len());
        self.read_at(&mut buf[..avail], off)?;
        buf[avail..].fill(0);
        Ok(avail)
    }

    /// Read one physically contiguous *run* — a range the caller has already
    /// coalesced out of several logical units (e.g. consecutive qcow
    /// clusters) — as a single device operation.
    ///
    /// Byte-for-byte identical to [`BlockDev::read_at`]; the separate entry
    /// point exists so decorators can account, price, and fault-check the
    /// run as **one** operation instead of one per logical unit. Plain media
    /// inherit this default, which simply delegates.
    fn read_run_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.read_at(buf, off)
    }

    /// Write one physically contiguous run as a single device operation.
    /// See [`BlockDev::read_run_at`] for the contract.
    fn write_run_at(&self, buf: &[u8], off: u64) -> Result<()> {
        self.write_at(buf, off)
    }

    /// [`BlockDev::read_at`] with an explicit trace-span parent.
    ///
    /// The `_in` family is how causal tracing crosses device layers without
    /// thread-locals: instrumented callers pass their current span down, and
    /// instrumented devices (image formats, the retry decorator) override
    /// these to parent their own spans under it. Plain media inherit the
    /// defaults, which ignore the parent and delegate — identical behaviour,
    /// zero cost.
    fn read_at_in(&self, buf: &mut [u8], off: u64, parent: Option<vmi_obs::SpanId>) -> Result<()> {
        let _ = parent;
        self.read_at(buf, off)
    }

    /// [`BlockDev::write_at`] with an explicit trace-span parent.
    fn write_at_in(&self, buf: &[u8], off: u64, parent: Option<vmi_obs::SpanId>) -> Result<()> {
        let _ = parent;
        self.write_at(buf, off)
    }

    /// [`BlockDev::read_run_at`] with an explicit trace-span parent.
    fn read_run_at_in(
        &self,
        buf: &mut [u8],
        off: u64,
        parent: Option<vmi_obs::SpanId>,
    ) -> Result<()> {
        let _ = parent;
        self.read_run_at(buf, off)
    }

    /// [`BlockDev::write_run_at`] with an explicit trace-span parent.
    fn write_run_at_in(&self, buf: &[u8], off: u64, parent: Option<vmi_obs::SpanId>) -> Result<()> {
        let _ = parent;
        self.write_run_at(buf, off)
    }

    /// [`BlockDev::read_at_zero_pad`] with an explicit trace-span parent,
    /// routed through [`BlockDev::read_at_in`] so traced layers below keep
    /// the causal chain.
    fn read_at_zero_pad_in(
        &self,
        buf: &mut [u8],
        off: u64,
        parent: Option<vmi_obs::SpanId>,
    ) -> Result<usize> {
        let len = self.len();
        if off >= len {
            buf.fill(0);
            return Ok(0);
        }
        let avail = ((len - off) as usize).min(buf.len());
        self.read_at_in(&mut buf[..avail], off, parent)?;
        buf[avail..].fill(0);
        Ok(avail)
    }

    /// A short human-readable description (medium type), for diagnostics.
    fn describe(&self) -> String {
        "blockdev".to_string()
    }

    /// Runtime-type hook: formats layered on top of `BlockDev` (e.g. the
    /// qcow image type) override this to let chain-walking code recover the
    /// concrete type from a `SharedDev`. Plain media return `None`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Decorator hook: pass-through wrappers (counting, retry, fault,
    /// crash, read-only…) return the device they wrap so structural walks
    /// — in particular the lock-rank probe for backing chains — can see
    /// through them. Leaf media return `None`.
    fn inner_dev(&self) -> Option<&SharedDev> {
        None
    }
}

impl<T: BlockDev + ?Sized> BlockDev for Arc<T> {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        (**self).read_at(buf, off)
    }
    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        (**self).write_at(buf, off)
    }
    fn len(&self) -> u64 {
        (**self).len()
    }
    fn set_len(&self, len: u64) -> Result<()> {
        (**self).set_len(len)
    }
    fn flush(&self) -> Result<()> {
        (**self).flush()
    }
    fn read_at_zero_pad(&self, buf: &mut [u8], off: u64) -> Result<usize> {
        (**self).read_at_zero_pad(buf, off)
    }
    fn read_run_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        (**self).read_run_at(buf, off)
    }
    fn write_run_at(&self, buf: &[u8], off: u64) -> Result<()> {
        (**self).write_run_at(buf, off)
    }
    fn read_at_in(&self, buf: &mut [u8], off: u64, parent: Option<vmi_obs::SpanId>) -> Result<()> {
        (**self).read_at_in(buf, off, parent)
    }
    fn write_at_in(&self, buf: &[u8], off: u64, parent: Option<vmi_obs::SpanId>) -> Result<()> {
        (**self).write_at_in(buf, off, parent)
    }
    fn read_run_at_in(
        &self,
        buf: &mut [u8],
        off: u64,
        parent: Option<vmi_obs::SpanId>,
    ) -> Result<()> {
        (**self).read_run_at_in(buf, off, parent)
    }
    fn write_run_at_in(&self, buf: &[u8], off: u64, parent: Option<vmi_obs::SpanId>) -> Result<()> {
        (**self).write_run_at_in(buf, off, parent)
    }
    fn read_at_zero_pad_in(
        &self,
        buf: &mut [u8],
        off: u64,
        parent: Option<vmi_obs::SpanId>,
    ) -> Result<usize> {
        (**self).read_at_zero_pad_in(buf, off, parent)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }
    fn inner_dev(&self) -> Option<&SharedDev> {
        (**self).inner_dev()
    }
}

/// Validate an access `[off, off+len)` against a device length, producing the
/// standard `OutOfBounds` error on violation. Helper for implementations.
pub(crate) fn check_bounds(off: u64, len: usize, dev_len: u64) -> Result<()> {
    let end = off
        .checked_add(len as u64)
        .ok_or_else(|| BlockError::out_of_bounds(off, len, dev_len))?;
    if end > dev_len {
        return Err(BlockError::out_of_bounds(off, len, dev_len));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDev;

    #[test]
    fn byte_range_basics() {
        let r = ByteRange::at(10, 5);
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        assert_eq!(
            r.intersect(&ByteRange::at(12, 10)),
            Some(ByteRange { start: 12, end: 15 })
        );
        assert_eq!(r.intersect(&ByteRange::at(15, 1)), None);
        assert!(ByteRange::at(3, 0).is_empty());
    }

    #[test]
    fn check_bounds_rejects_overflow() {
        assert!(check_bounds(u64::MAX - 1, 16, u64::MAX).is_err());
        assert!(check_bounds(0, 16, 16).is_ok());
        assert!(check_bounds(1, 16, 16).is_err());
    }

    #[test]
    fn zero_pad_read_splits_correctly() {
        let dev = MemDev::new();
        dev.write_at(&[7u8; 8], 0).unwrap();
        let mut buf = [1u8; 16];
        let n = dev.read_at_zero_pad(&mut buf, 4).unwrap();
        assert_eq!(n, 4);
        assert_eq!(&buf[..4], &[7; 4]);
        assert_eq!(&buf[4..], &[0; 12]);
    }

    #[test]
    fn zero_pad_read_entirely_past_end() {
        let dev = MemDev::with_len(8);
        let mut buf = [9u8; 4];
        let n = dev.read_at_zero_pad(&mut buf, 100).unwrap();
        assert_eq!(n, 0);
        assert_eq!(buf, [0; 4]);
    }

    #[test]
    fn devices_and_decorators_are_send_sync() {
        // The concurrency contract in the trait docs, enforced at compile
        // time for every in-tree device and decorator.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemDev>();
        assert_send_sync::<crate::FileDev>();
        assert_send_sync::<crate::SparseDev>();
        assert_send_sync::<crate::CountingDev>();
        assert_send_sync::<crate::CrashDev>();
        assert_send_sync::<crate::FaultDev>();
        assert_send_sync::<crate::RetryDev>();
        assert_send_sync::<SharedDev>();
    }

    #[test]
    fn arc_dyn_delegates() {
        let dev: SharedDev = Arc::new(MemDev::new());
        dev.write_at(b"abc", 0).unwrap();
        assert_eq!(dev.len(), 3);
        let mut b = [0u8; 3];
        dev.read_at(&mut b, 0).unwrap();
        assert_eq!(&b, b"abc");
    }
}
