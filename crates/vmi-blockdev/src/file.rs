//! Real-file backend, used by the `vmi-img` CLI and file-based tests.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{lockrank, Mutex};

use crate::dev::check_bounds;
use crate::{BlockDev, BlockError, Result};

/// A block device backed by a host file.
///
/// Uses positioned I/O (`pread`/`pwrite`) so concurrent accesses through a
/// shared handle do not interfere; the logical length is cached in an atomic
/// and kept in sync with the file's metadata on growth.
#[derive(Debug)]
pub struct FileDev {
    file: Mutex<File>,
    len: AtomicU64,
    path: PathBuf,
    read_only: bool,
}

impl FileDev {
    /// Create (or truncate) a file of length zero at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let file = Mutex::new(file);
        file.set_rank(lockrank::DEV_LEAF);
        Ok(Self {
            file,
            len: AtomicU64::new(0),
            path,
            read_only: false,
        })
    }

    /// Open an existing file read-write.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_inner(path, false)
    }

    /// Open an existing file read-only, mirroring QEMU's default flag for
    /// backing images (paper §4.3).
    pub fn open_read_only(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_inner(path, true)
    }

    fn open_inner(path: impl AsRef<Path>, read_only: bool) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(!read_only)
            .open(&path)?;
        let len = file.metadata()?.len();
        let file = Mutex::new(file);
        file.set_rank(lockrank::DEV_LEAF);
        Ok(Self {
            file,
            len: AtomicU64::new(len),
            path,
            read_only,
        })
    }

    /// The path this device was opened at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the device rejects writes.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }
}

impl BlockDev for FileDev {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        check_bounds(off, buf.len(), self.len())?;
        let file = self.file.lock();
        file.read_exact_at(buf, off)?;
        Ok(())
    }

    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        if self.read_only {
            return Err(BlockError::read_only(format!("{}", self.path.display())));
        }
        if buf.is_empty() {
            return Ok(());
        }
        let file = self.file.lock();
        file.write_all_at(buf, off)?;
        let end = off + buf.len() as u64;
        self.len.fetch_max(end, Ordering::SeqCst);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len.load(Ordering::SeqCst)
    }

    fn set_len(&self, len: u64) -> Result<()> {
        if self.read_only {
            return Err(BlockError::read_only(format!("{}", self.path.display())));
        }
        let file = self.file.lock();
        file.set_len(len)?;
        self.len.store(len, Ordering::SeqCst);
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        if self.read_only {
            return Ok(());
        }
        let file = self.file.lock();
        file.sync_data()?;
        Ok(())
    }

    fn describe(&self) -> String {
        format!("file({})", self.path.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockErrorKind;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vmi-blockdev-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{}", name, std::process::id()))
    }

    #[test]
    fn create_write_reopen_read() {
        let p = tmp("rw");
        {
            let dev = FileDev::create(&p).unwrap();
            dev.write_at(b"hello file", 3).unwrap();
            dev.flush().unwrap();
            assert_eq!(dev.len(), 13);
        }
        let dev = FileDev::open(&p).unwrap();
        assert_eq!(dev.len(), 13);
        let mut buf = [0u8; 10];
        dev.read_at(&mut buf, 3).unwrap();
        assert_eq!(&buf, b"hello file");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn read_only_rejects_writes() {
        let p = tmp("ro");
        FileDev::create(&p).unwrap().write_at(b"x", 0).unwrap();
        let dev = FileDev::open_read_only(&p).unwrap();
        assert!(dev.is_read_only());
        let err = dev.write_at(b"y", 0).unwrap_err();
        assert_eq!(err.kind(), BlockErrorKind::ReadOnly);
        assert_eq!(dev.set_len(0).unwrap_err().kind(), BlockErrorKind::ReadOnly);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn set_len_truncates() {
        let p = tmp("trunc");
        let dev = FileDev::create(&p).unwrap();
        dev.write_at(&[9u8; 100], 0).unwrap();
        dev.set_len(10).unwrap();
        assert_eq!(dev.len(), 10);
        let mut buf = [0u8; 10];
        dev.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [9u8; 10]);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let err = FileDev::open("/nonexistent/vmi/file").unwrap_err();
        assert_eq!(err.kind(), BlockErrorKind::Io);
    }
}
