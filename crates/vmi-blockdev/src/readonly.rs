//! Read-only enforcement decorator.
//!
//! QEMU opens backing images read-only by default; the paper's cache
//! extension needed a "flag dance" (open RW, detect non-cache, re-open RO,
//! §4.3). [`ReadOnlyDev`] is how our stack expresses the RO side of that
//! protocol: base images are wrapped before being handed to an image chain,
//! making immutability a type-level/runtime-enforced property rather than a
//! convention.

use crate::{BlockDev, BlockError, Result, SharedDev};

/// Wrapper that rejects every mutation with a `ReadOnly` error.
pub struct ReadOnlyDev {
    inner: SharedDev,
}

impl ReadOnlyDev {
    /// Wrap `inner` in a read-only view.
    pub fn new(inner: SharedDev) -> Self {
        Self { inner }
    }

    /// The wrapped device (still read-write through this reference's own
    /// methods — holders of the `ReadOnlyDev` cannot reach it mutably via
    /// the trait).
    pub fn inner(&self) -> &SharedDev {
        &self.inner
    }
}

impl BlockDev for ReadOnlyDev {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.inner.read_at(buf, off)
    }

    fn write_at(&self, _buf: &[u8], _off: u64) -> Result<()> {
        Err(BlockError::read_only("write to read-only device"))
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn set_len(&self, _len: u64) -> Result<()> {
        Err(BlockError::read_only("resize of read-only device"))
    }

    fn flush(&self) -> Result<()> {
        // Flushing a read-only view is a harmless no-op.
        Ok(())
    }

    fn read_run_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.inner.read_run_at(buf, off)
    }

    fn write_run_at(&self, _buf: &[u8], _off: u64) -> Result<()> {
        Err(BlockError::read_only("write to read-only device"))
    }

    fn inner_dev(&self) -> Option<&SharedDev> {
        Some(&self.inner)
    }

    fn describe(&self) -> String {
        format!("ro({})", self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockErrorKind, MemDev};
    use std::sync::Arc;

    #[test]
    fn reads_pass_through_writes_fail() {
        let mem = Arc::new(MemDev::new());
        mem.write_at(b"base image", 0).unwrap();
        let ro = ReadOnlyDev::new(mem.clone());
        let mut buf = [0u8; 10];
        ro.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"base image");
        assert_eq!(
            ro.write_at(b"x", 0).unwrap_err().kind(),
            BlockErrorKind::ReadOnly
        );
        assert_eq!(ro.set_len(0).unwrap_err().kind(), BlockErrorKind::ReadOnly);
        assert!(ro.flush().is_ok());
        // The underlying device is untouched.
        assert_eq!(mem.to_vec(), b"base image");
    }

    #[test]
    fn len_tracks_inner() {
        let mem = Arc::new(MemDev::with_len(42));
        let ro = ReadOnlyDev::new(mem.clone());
        assert_eq!(ro.len(), 42);
        mem.set_len(100).unwrap();
        assert_eq!(ro.len(), 100);
    }
}
