//! Error type shared by all block devices and image formats.

use std::fmt;

/// Result alias for block-device operations.
pub type Result<T> = std::result::Result<T, BlockError>;

/// Classification of a block-device failure.
///
/// `NoSpace` is load-bearing for the paper's design: when a cache image's
/// quota is exhausted, its `write` path "return[s] with a space error that is
/// handled at the read function" (§4.3) — the read path then stops warming
/// the cache but keeps serving the guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockErrorKind {
    /// Access outside the device's current length.
    OutOfBounds,
    /// The device (or an image quota) has no room left for the write.
    NoSpace,
    /// Write attempted on a read-only device or image.
    ReadOnly,
    /// On-device data failed structural validation (bad magic, bad table...).
    Corrupt,
    /// Operation not supported by this device/format.
    Unsupported,
    /// Underlying host I/O failure.
    Io,
    /// A fault injected by [`crate::FaultDev`] for testing.
    Injected,
}

impl BlockErrorKind {
    /// Human-readable tag used in error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            BlockErrorKind::OutOfBounds => "out of bounds",
            BlockErrorKind::NoSpace => "no space",
            BlockErrorKind::ReadOnly => "read-only",
            BlockErrorKind::Corrupt => "corrupt",
            BlockErrorKind::Unsupported => "unsupported",
            BlockErrorKind::Io => "i/o error",
            BlockErrorKind::Injected => "injected fault",
        }
    }

    /// `true` iff a retry of the same operation could plausibly succeed.
    ///
    /// Host I/O failures and injected test faults model transient media /
    /// network conditions (an NFS timeout, a flaky disk). Everything else —
    /// bounds, permissions, quota, structural corruption — is a property of
    /// the request or the image and retrying cannot fix it.
    pub fn is_transient(self) -> bool {
        matches!(self, BlockErrorKind::Io | BlockErrorKind::Injected)
    }
}

/// A block-device error: a [`BlockErrorKind`] plus human-oriented context.
#[derive(Debug, Clone)]
pub struct BlockError {
    kind: BlockErrorKind,
    context: String,
}

impl BlockError {
    /// Create an error of `kind` with a free-form `context` message.
    pub fn new(kind: BlockErrorKind, context: impl Into<String>) -> Self {
        Self {
            kind,
            context: context.into(),
        }
    }

    /// Shorthand for [`BlockErrorKind::OutOfBounds`].
    pub fn out_of_bounds(off: u64, len: usize, dev_len: u64) -> Self {
        Self::new(
            BlockErrorKind::OutOfBounds,
            format!("access [{off}, {off}+{len}) beyond device length {dev_len}"),
        )
    }

    /// Shorthand for [`BlockErrorKind::NoSpace`] — the cache-quota space error.
    pub fn no_space(context: impl Into<String>) -> Self {
        Self::new(BlockErrorKind::NoSpace, context)
    }

    /// Shorthand for [`BlockErrorKind::ReadOnly`].
    pub fn read_only(context: impl Into<String>) -> Self {
        Self::new(BlockErrorKind::ReadOnly, context)
    }

    /// Shorthand for [`BlockErrorKind::Corrupt`].
    pub fn corrupt(context: impl Into<String>) -> Self {
        Self::new(BlockErrorKind::Corrupt, context)
    }

    /// Shorthand for [`BlockErrorKind::Unsupported`].
    pub fn unsupported(context: impl Into<String>) -> Self {
        Self::new(BlockErrorKind::Unsupported, context)
    }

    /// The failure classification.
    pub fn kind(&self) -> BlockErrorKind {
        self.kind
    }

    /// `true` iff this is the quota space error the CoR read path handles.
    pub fn is_no_space(&self) -> bool {
        self.kind == BlockErrorKind::NoSpace
    }

    /// `true` iff retrying the failed operation could plausibly succeed
    /// (see [`BlockErrorKind::is_transient`]). [`crate::RetryDev`] retries
    /// exactly these errors and fails fast on everything else.
    pub fn is_transient(&self) -> bool {
        self.kind.is_transient()
    }

    /// The contextual message.
    pub fn context(&self) -> &str {
        &self.context
    }
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.context)
    }
}

impl std::error::Error for BlockError {}

impl From<std::io::Error> for BlockError {
    fn from(e: std::io::Error) -> Self {
        BlockError::new(BlockErrorKind::Io, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_context() {
        let e = BlockError::no_space("cache quota exhausted");
        assert_eq!(e.to_string(), "no space: cache quota exhausted");
        assert!(e.is_no_space());
    }

    #[test]
    fn out_of_bounds_formats_range() {
        let e = BlockError::out_of_bounds(100, 16, 64);
        assert_eq!(e.kind(), BlockErrorKind::OutOfBounds);
        assert!(e.context().contains("[100, 100+16)"));
        assert!(!e.is_no_space());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: BlockError = io.into();
        assert_eq!(e.kind(), BlockErrorKind::Io);
    }

    #[test]
    fn kind_strings_are_distinct() {
        use BlockErrorKind::*;
        let kinds = [
            OutOfBounds,
            NoSpace,
            ReadOnly,
            Corrupt,
            Unsupported,
            Io,
            Injected,
        ];
        let strs: std::collections::HashSet<_> = kinds.iter().map(|k| k.as_str()).collect();
        assert_eq!(strs.len(), kinds.len());
    }

    #[test]
    fn transient_split_is_exhaustive() {
        use BlockErrorKind::*;
        for k in [Io, Injected] {
            assert!(k.is_transient(), "{} should be transient", k.as_str());
        }
        for k in [OutOfBounds, NoSpace, ReadOnly, Corrupt, Unsupported] {
            assert!(!k.is_transient(), "{} should be permanent", k.as_str());
        }
        assert!(BlockError::new(Io, "nfs timeout").is_transient());
        assert!(!BlockError::corrupt("bad magic").is_transient());
    }
}
