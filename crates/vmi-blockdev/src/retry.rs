//! Retry with deterministic backoff for transient block-device faults.
//!
//! The paper's deployment chains reach the base image over NFS (§5) — the
//! one hop in the stack where transient I/O faults are a fact of life.
//! [`RetryDev`] wraps any [`BlockDev`] and retries operations that fail with
//! a *transient* error ([`BlockError::is_transient`]) according to a
//! [`RetryPolicy`]: a bounded number of attempts separated by an exponential
//! backoff schedule with seeded jitter.
//!
//! Everything is deterministic by construction: the jitter RNG is seeded
//! from [`RetryPolicy::seed`], and delays are *charged*, not slept — a
//! pluggable sleep hook receives each backoff duration so tests advance a
//! manual sim clock and the simulator can price the wait, while production
//! callers may actually sleep. With no hook installed the delay is computed
//! (and reported via observability) but costs nothing, which keeps the
//! decorator usable in pure in-memory tests.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{lockrank, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vmi_obs::{met, Event, Obs};

use crate::{BlockDev, Result, SharedDev};

/// Deterministic backoff policy for [`RetryDev`].
///
/// Attempt `i` (0-based retry index) waits
/// `min(base_delay_ns << i, max_delay_ns)` scaled by a jitter factor drawn
/// uniformly from `[1 - jitter_frac, 1 + jitter_frac)` using a SplitMix64
/// RNG seeded with `seed`. The full schedule is a pure function of the
/// policy — see [`RetryPolicy::schedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry, in (simulated) nanoseconds.
    pub base_delay_ns: u64,
    /// Cap applied to the exponential schedule before jitter.
    pub max_delay_ns: u64,
    /// Jitter amplitude as a fraction of the delay (`0.0` = none,
    /// `0.5` = each delay scaled by a factor in `[0.5, 1.5)`).
    pub jitter_frac: f64,
    /// Seed for the jitter RNG; the schedule is a pure function of it.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Four attempts, 100 µs base doubling to a 10 ms cap, no jitter.
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay_ns: 100_000,
            max_delay_ns: 10_000_000,
            jitter_frac: 0.0,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and the default timings.
    pub fn attempts(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            ..Self::default()
        }
    }

    /// Builder-style seed override (also the jitter stream selector).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style jitter override.
    pub fn with_jitter(mut self, jitter_frac: f64) -> Self {
        self.jitter_frac = jitter_frac;
        self
    }

    /// Raw (pre-jitter) delay for 0-based retry index `i`.
    fn raw_delay_ns(&self, i: u32) -> u64 {
        self.base_delay_ns
            .checked_shl(i)
            .unwrap_or(u64::MAX)
            .min(self.max_delay_ns)
    }

    /// Delay before retry `i` (0-based), drawing jitter from `rng`.
    pub fn delay_ns(&self, i: u32, rng: &mut StdRng) -> u64 {
        let raw = self.raw_delay_ns(i);
        if self.jitter_frac <= 0.0 {
            return raw;
        }
        let amp = self.jitter_frac.min(1.0);
        let factor = 1.0 - amp + 2.0 * amp * rng.gen::<f64>();
        (raw as f64 * factor) as u64
    }

    /// The complete backoff schedule (one delay per possible retry),
    /// computed with a fresh RNG seeded from `self.seed`. Deterministic:
    /// equal policies produce equal schedules.
    pub fn schedule(&self) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.max_attempts.saturating_sub(1))
            .map(|i| self.delay_ns(i, &mut rng))
            .collect()
    }
}

/// Hook invoked with each backoff delay (in nanoseconds) before a retry.
type SleepHook = Box<dyn Fn(u64) + Send + Sync>;

/// Retrying decorator around any [`BlockDev`].
///
/// Transient errors from `read_at`, `write_at`, `set_len` and `flush` are
/// retried up to the policy's attempt budget; permanent errors and
/// exhausted budgets propagate unchanged. Each retry counts
/// [`met::RETRY_ATTEMPTS`] and emits an [`Event::RetryAttempt`].
///
/// Thread-safety: the jitter RNG and sleep hook are mutex-guarded (held
/// only to draw / clone, never across the inner I/O or the sleep itself),
/// and the stats are atomics — concurrent requests retry independently
/// without serializing on each other.
pub struct RetryDev {
    inner: SharedDev,
    policy: RetryPolicy,
    rng: Mutex<StdRng>,
    obs: Obs,
    sleep: Mutex<Option<SleepHook>>,
    retries: AtomicU64,
    exhausted: AtomicU64,
}

impl RetryDev {
    /// Wrap `inner` with `policy` and observability disabled.
    pub fn new(inner: SharedDev, policy: RetryPolicy) -> Self {
        Self::with_obs(inner, policy, Obs::disabled())
    }

    /// Wrap `inner` with `policy`, reporting retries through `obs`.
    pub fn with_obs(inner: SharedDev, policy: RetryPolicy, obs: Obs) -> Self {
        let rng = Mutex::new(StdRng::seed_from_u64(policy.seed));
        rng.set_rank(lockrank::DEV_RETRY);
        let sleep = Mutex::new(None);
        sleep.set_rank(lockrank::DEV_RETRY);
        Self {
            inner,
            policy,
            rng,
            obs,
            sleep,
            retries: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
        }
    }

    /// Install the backoff sleep hook. It receives each computed delay in
    /// nanoseconds; tests typically advance a [`vmi_obs::ManualClock`], the
    /// simulator charges the wait as operation latency.
    pub fn set_sleep_hook(&self, hook: impl Fn(u64) + Send + Sync + 'static) {
        *self.sleep.lock() = Some(Box::new(hook));
    }

    /// Total retries performed (excludes first attempts).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Operations that failed even after the full attempt budget.
    pub fn exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// The policy driving this device.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn run<T>(&self, op: &'static str, f: impl FnMut() -> Result<T>) -> Result<T> {
        self.run_in(op, None, f)
    }

    fn run_in<T>(
        &self,
        op: &'static str,
        parent: Option<vmi_obs::SpanId>,
        mut f: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        let budget = self.policy.max_attempts.max(1);
        let mut attempt: u32 = 0;
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt + 1 < budget => {
                    let delay = self.policy.delay_ns(attempt, &mut self.rng.lock());
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.obs.count(met::RETRY_ATTEMPTS, 1);
                    self.obs.emit(|| Event::RetryAttempt {
                        op: op.to_string(),
                        attempt: attempt as u64,
                        delay_ns: delay,
                    });
                    // The backoff wait is a traced child of the operation
                    // that caused it: the span brackets the sleep-hook call,
                    // so under a sim clock its duration is the charged delay.
                    let span = self.obs.span_in(parent, "retry.backoff", || {
                        format!("op={op} attempt={attempt} delay_ns={delay}")
                    });
                    if let Some(hook) = self.sleep.lock().as_ref() {
                        hook(delay);
                    }
                    drop(span);
                }
                Err(e) => {
                    if e.is_transient() {
                        self.exhausted.fetch_add(1, Ordering::Relaxed);
                        self.obs.count(met::RETRY_EXHAUSTED, 1);
                    }
                    return Err(e);
                }
            }
        }
    }
}

impl BlockDev for RetryDev {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.run("read", || self.inner.read_at(buf, off))
    }

    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        self.run("write", || self.inner.write_at(buf, off))
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.run("set_len", || self.inner.set_len(len))
    }

    fn flush(&self) -> Result<()> {
        self.run("flush", || self.inner.flush())
    }

    // A coalesced run retries as a unit: a transient fault anywhere in the
    // run re-issues the whole run, never a partial tail.
    fn read_run_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.run("read_run", || self.inner.read_run_at(buf, off))
    }

    fn write_run_at(&self, buf: &[u8], off: u64) -> Result<()> {
        self.run("write_run", || self.inner.write_run_at(buf, off))
    }

    // Span-threaded variants: backoff spans parent under the caller's span,
    // and the parent travels on to the inner device (which may itself be
    // traced, e.g. an image layer over this decorator).
    fn read_at_in(&self, buf: &mut [u8], off: u64, parent: Option<vmi_obs::SpanId>) -> Result<()> {
        self.run_in("read", parent, || self.inner.read_at_in(buf, off, parent))
    }

    fn write_at_in(&self, buf: &[u8], off: u64, parent: Option<vmi_obs::SpanId>) -> Result<()> {
        self.run_in("write", parent, || self.inner.write_at_in(buf, off, parent))
    }

    fn read_run_at_in(
        &self,
        buf: &mut [u8],
        off: u64,
        parent: Option<vmi_obs::SpanId>,
    ) -> Result<()> {
        self.run_in("read_run", parent, || {
            self.inner.read_run_at_in(buf, off, parent)
        })
    }

    fn write_run_at_in(&self, buf: &[u8], off: u64, parent: Option<vmi_obs::SpanId>) -> Result<()> {
        self.run_in("write_run", parent, || {
            self.inner.write_run_at_in(buf, off, parent)
        })
    }

    fn inner_dev(&self) -> Option<&SharedDev> {
        Some(&self.inner)
    }

    fn describe(&self) -> String {
        format!("retry({})", self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockErrorKind, FaultDev, FaultPlan, FaultSite, MemDev};
    use std::sync::Arc;

    fn flaky(plan: FaultPlan) -> (Arc<FaultDev>, RetryDev) {
        let mem = Arc::new(MemDev::with_len(4096));
        mem.write_at(&[7u8; 512], 0).unwrap();
        let fault = Arc::new(FaultDev::new(mem));
        fault.inject(plan);
        let dev = RetryDev::new(fault.clone(), RetryPolicy::attempts(4));
        (fault, dev)
    }

    #[test]
    fn transient_fault_is_retried_to_success() {
        let (_fault, dev) = flaky(FaultPlan::FailK {
            site: FaultSite::Read,
            k: 2,
            kind: BlockErrorKind::Io,
        });
        let mut buf = [0u8; 512];
        dev.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [7u8; 512]);
        assert_eq!(dev.retries(), 2);
        assert_eq!(dev.exhausted(), 0);
    }

    #[test]
    fn budget_exhaustion_propagates_the_error() {
        let (_fault, dev) = flaky(FaultPlan::FailK {
            site: FaultSite::Read,
            k: 10, // longer than the 4-attempt budget
            kind: BlockErrorKind::Io,
        });
        let mut buf = [0u8; 512];
        let err = dev.read_at(&mut buf, 0).unwrap_err();
        assert_eq!(err.kind(), BlockErrorKind::Io);
        assert_eq!(dev.retries(), 3, "4 attempts = 3 retries");
        assert_eq!(dev.exhausted(), 1);
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let (_fault, dev) = flaky(FaultPlan::NthOp {
            site: FaultSite::Read,
            n: 0,
            kind: BlockErrorKind::Corrupt,
        });
        let mut buf = [0u8; 512];
        let err = dev.read_at(&mut buf, 0).unwrap_err();
        assert_eq!(err.kind(), BlockErrorKind::Corrupt);
        assert_eq!(dev.retries(), 0, "no retry on a permanent error");
    }

    #[test]
    fn flush_and_write_are_retried_too() {
        let (_fault, dev) = flaky(FaultPlan::NthOp {
            site: FaultSite::Flush,
            n: 0,
            kind: BlockErrorKind::Io,
        });
        dev.write_at(&[1u8; 16], 0).unwrap();
        dev.flush().unwrap();
        assert_eq!(dev.retries(), 1);
    }

    #[test]
    fn sleep_hook_receives_the_schedule() {
        let (_fault, dev) = flaky(FaultPlan::FailK {
            site: FaultSite::Read,
            k: 3,
            kind: BlockErrorKind::Io,
        });
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        dev.set_sleep_hook(move |ns| seen2.lock().push(ns));
        let mut buf = [0u8; 16];
        dev.read_at(&mut buf, 0).unwrap();
        let expected = dev.policy().schedule();
        assert_eq!(*seen.lock(), expected[..3].to_vec());
    }

    #[test]
    fn backoff_spans_are_balanced_and_parented() {
        let mem = Arc::new(MemDev::with_len(4096));
        let fault = Arc::new(FaultDev::new(mem));
        fault.inject(FaultPlan::FailK {
            site: FaultSite::Read,
            k: 2,
            kind: BlockErrorKind::Io,
        });
        let sink = vmi_obs::JsonlSink::new();
        let clock = Arc::new(vmi_obs::ManualClock::new(0));
        let obs = Obs::new(clock.clone(), sink.clone());
        let dev = RetryDev::with_obs(fault, RetryPolicy::attempts(4), obs.clone());
        let clock2 = clock.clone();
        dev.set_sleep_hook(move |ns| clock2.advance(ns));

        let root = obs.span("qcow.read", String::new);
        let root_id = root.id().unwrap().0;
        let mut buf = [0u8; 16];
        dev.read_at_in(&mut buf, 0, root.id()).unwrap();
        drop(root);

        let events = sink.events();
        let mut open: Vec<u64> = Vec::new();
        let mut backoffs = 0;
        for (_, e) in &events {
            match e {
                Event::SpanStart {
                    id, parent, kind, ..
                } => {
                    if kind == "retry.backoff" {
                        assert_eq!(*parent, root_id, "backoff parents under the caller");
                        backoffs += 1;
                    }
                    open.push(*id);
                }
                Event::SpanEnd { id } => {
                    assert_eq!(open.pop(), Some(*id), "spans nest properly");
                }
                _ => {}
            }
        }
        assert!(open.is_empty(), "every span closed");
        assert_eq!(backoffs, 2, "one backoff span per retry");
        // The backoff span's duration equals the charged delay.
        let schedule = dev.policy().schedule();
        let start = events
            .iter()
            .find(|(_, e)| matches!(e, Event::SpanStart { kind, .. } if kind == "retry.backoff"))
            .map(|(t, _)| *t)
            .unwrap();
        let first_backoff_id = match &events
            .iter()
            .find(|(_, e)| matches!(e, Event::SpanStart { kind, .. } if kind == "retry.backoff"))
            .unwrap()
            .1
        {
            Event::SpanStart { id, .. } => *id,
            _ => unreachable!(),
        };
        let end = events
            .iter()
            .find(|(_, e)| matches!(e, Event::SpanEnd { id } if *id == first_backoff_id))
            .map(|(t, _)| *t)
            .unwrap();
        assert_eq!(end - start, schedule[0]);
    }

    #[test]
    fn schedule_is_exponential_capped_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_delay_ns: 1_000,
            max_delay_ns: 6_000,
            jitter_frac: 0.0,
            seed: 9,
        };
        assert_eq!(p.schedule(), vec![1_000, 2_000, 4_000, 6_000, 6_000]);
        let jittered = p.clone().with_jitter(0.5);
        assert_eq!(jittered.schedule(), jittered.schedule(), "same seed");
        assert_ne!(
            jittered.schedule(),
            jittered.clone().with_seed(10).schedule(),
            "different seeds diverge"
        );
        for (d, raw) in jittered.schedule().iter().zip(p.schedule()) {
            let lo = raw / 2;
            let hi = raw + raw / 2;
            assert!((lo..=hi).contains(d), "jittered {d} outside [{lo}, {hi}]");
        }
    }
}
