//! I/O accounting decorator.
//!
//! The paper's Figures 9 and 10 plot "observed traffic at the storage node"
//! against cache quota. [`CountingDev`] wraps any device and transparently
//! records operation counts, byte totals, and request-size histograms so an
//! experiment can wrap the storage-node export and read the traffic off the
//! counters afterwards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{lockrank, Mutex};

use crate::{BlockDev, Result, SharedDev};

/// Histogram of request sizes in power-of-two buckets `[2^k, 2^(k+1))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeHistogram {
    buckets: [u64; 33],
}

impl Default for SizeHistogram {
    fn default() -> Self {
        Self { buckets: [0; 33] }
    }
}

impl SizeHistogram {
    fn record(&mut self, len: usize) {
        // Bucket k holds sizes in [2^k, 2^(k+1)), i.e. k = floor(log2(len)).
        // Zero-length requests land in bucket 0 alongside size-1 requests.
        let bucket = if len == 0 {
            0
        } else {
            (usize::BITS - 1 - (len).leading_zeros()) as usize
        };
        self.buckets[bucket.min(32)] += 1;
    }

    /// Count of requests whose size falls in `[2^k, 2^(k+1))`.
    pub fn bucket(&self, k: usize) -> u64 {
        self.buckets.get(k).copied().unwrap_or(0)
    }

    /// Total requests recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Count of requests with size `<= limit` (approximated at bucket
    /// granularity: buckets entirely at or below `limit`).
    pub fn at_or_below(&self, limit: usize) -> u64 {
        let mut sum = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            // Bucket k spans [2^k, 2^(k+1)); its largest member is
            // 2^(k+1) - 1, so include it only when that still fits.
            let largest = 1u64
                .checked_shl(k as u32 + 1)
                .map(|u| u - 1)
                .unwrap_or(u64::MAX);
            if largest <= limit as u64 {
                sum += c;
            }
        }
        sum
    }
}

/// Live counters shared by a [`CountingDev`] and its observers.
#[derive(Debug)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    read_bytes: AtomicU64,
    write_bytes: AtomicU64,
    flushes: AtomicU64,
    run_reads: AtomicU64,
    run_writes: AtomicU64,
    run_read_bytes: AtomicU64,
    run_write_bytes: AtomicU64,
    read_hist: Mutex<SizeHistogram>,
    write_hist: Mutex<SizeHistogram>,
}

impl Default for IoStats {
    fn default() -> Self {
        let read_hist = Mutex::new(SizeHistogram::default());
        read_hist.set_rank(lockrank::DEV_COUNTING);
        // snapshot() holds both histogram locks at once (read first), so the
        // pair gets two ascending ranks within the dev.counting class.
        let write_hist = Mutex::new(SizeHistogram::default());
        write_hist.set_rank(lockrank::DEV_COUNTING_W);
        Self {
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            read_bytes: AtomicU64::new(0),
            write_bytes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            run_reads: AtomicU64::new(0),
            run_writes: AtomicU64::new(0),
            run_read_bytes: AtomicU64::new(0),
            run_write_bytes: AtomicU64::new(0),
            read_hist,
            write_hist,
        }
    }
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Total bytes read.
    pub read_bytes: u64,
    /// Total bytes written.
    pub write_bytes: u64,
    /// Number of flush operations.
    pub flushes: u64,
    /// Reads that arrived through [`BlockDev::read_run_at`] — coalesced
    /// extents issued as one operation. A subset of `reads`.
    pub run_reads: u64,
    /// Writes that arrived through [`BlockDev::write_run_at`]. A subset of
    /// `writes`.
    pub run_writes: u64,
    /// Bytes moved by run reads. A subset of `read_bytes`.
    pub run_read_bytes: u64,
    /// Bytes moved by run writes. A subset of `write_bytes`.
    pub run_write_bytes: u64,
    /// Request-size histogram for reads.
    pub read_hist: SizeHistogram,
    /// Request-size histogram for writes.
    pub write_hist: SizeHistogram,
}

impl IoStatsSnapshot {
    /// Total transferred bytes in both directions — the paper's "observed
    /// traffic" metric.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Total data operations (reads + writes) — the per-op overhead metric
    /// the extent-coalescing work drives down while `total_bytes` stays put.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes
    }
}

impl IoStats {
    fn record_read(&self, len: usize) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.read_bytes.fetch_add(len as u64, Ordering::Relaxed);
        self.read_hist.lock().record(len);
    }

    fn record_write(&self, len: usize) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.write_bytes.fetch_add(len as u64, Ordering::Relaxed);
        self.write_hist.lock().record(len);
    }

    fn record_run_read(&self, len: usize) {
        self.record_read(len);
        self.run_reads.fetch_add(1, Ordering::Relaxed);
        self.run_read_bytes.fetch_add(len as u64, Ordering::Relaxed);
    }

    fn record_run_write(&self, len: usize) {
        self.record_write(len);
        self.run_writes.fetch_add(1, Ordering::Relaxed);
        self.run_write_bytes
            .fetch_add(len as u64, Ordering::Relaxed);
    }

    /// Copy the current counter values.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            read_bytes: self.read_bytes.load(Ordering::Relaxed),
            write_bytes: self.write_bytes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            run_reads: self.run_reads.load(Ordering::Relaxed),
            run_writes: self.run_writes.load(Ordering::Relaxed),
            run_read_bytes: self.run_read_bytes.load(Ordering::Relaxed),
            run_write_bytes: self.run_write_bytes.load(Ordering::Relaxed),
            read_hist: self.read_hist.lock().clone(),
            write_hist: self.write_hist.lock().clone(),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.read_bytes.store(0, Ordering::Relaxed);
        self.write_bytes.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.run_reads.store(0, Ordering::Relaxed);
        self.run_writes.store(0, Ordering::Relaxed);
        self.run_read_bytes.store(0, Ordering::Relaxed);
        self.run_write_bytes.store(0, Ordering::Relaxed);
        *self.read_hist.lock() = SizeHistogram::default();
        *self.write_hist.lock() = SizeHistogram::default();
    }
}

/// Transparent I/O-accounting wrapper around any [`BlockDev`].
///
/// Thread-safety: counters are lone atomics (`Relaxed` — totals, not
/// ordering) and the size histograms sit behind their own mutexes, so
/// concurrent ops account correctly; a snapshot taken during a racing op
/// may be mid-update across *different* counters (reads bumped, bytes not
/// yet), which is fine for statistics.
pub struct CountingDev {
    inner: SharedDev,
    stats: Arc<IoStats>,
}

impl CountingDev {
    /// Wrap `inner`, creating fresh counters.
    pub fn new(inner: SharedDev) -> Self {
        Self {
            inner,
            stats: Arc::new(IoStats::default()),
        }
    }

    /// Wrap `inner`, recording into an existing shared `stats` (so multiple
    /// devices — e.g. every export of one storage node — aggregate into a
    /// single set of counters).
    pub fn with_stats(inner: SharedDev, stats: Arc<IoStats>) -> Self {
        Self { inner, stats }
    }

    /// Handle to the live counters.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// The wrapped device.
    pub fn inner(&self) -> &SharedDev {
        &self.inner
    }
}

impl BlockDev for CountingDev {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.inner.read_at(buf, off)?;
        self.stats.record_read(buf.len());
        Ok(())
    }

    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        self.inner.write_at(buf, off)?;
        self.stats.record_write(buf.len());
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.inner.set_len(len)
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()?;
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn read_run_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.inner.read_run_at(buf, off)?;
        self.stats.record_run_read(buf.len());
        Ok(())
    }

    fn write_run_at(&self, buf: &[u8], off: u64) -> Result<()> {
        self.inner.write_run_at(buf, off)?;
        self.stats.record_run_write(buf.len());
        Ok(())
    }

    fn inner_dev(&self) -> Option<&SharedDev> {
        Some(&self.inner)
    }

    fn describe(&self) -> String {
        format!("counting({})", self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDev;

    #[test]
    fn counts_reads_writes_flushes() {
        let dev = CountingDev::new(Arc::new(MemDev::new()));
        dev.write_at(&[0u8; 512], 0).unwrap();
        dev.write_at(&[0u8; 4096], 512).unwrap();
        let mut buf = [0u8; 1024];
        dev.read_at(&mut buf, 0).unwrap();
        dev.flush().unwrap();
        let s = dev.stats().snapshot();
        assert_eq!(s.writes, 2);
        assert_eq!(s.write_bytes, 4608);
        assert_eq!(s.reads, 1);
        assert_eq!(s.read_bytes, 1024);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.total_bytes(), 5632);
    }

    #[test]
    fn run_ops_count_once_and_classify() {
        let dev = CountingDev::new(Arc::new(MemDev::new()));
        dev.write_run_at(&[7u8; 4096], 0).unwrap();
        let mut buf = [0u8; 2048];
        dev.read_run_at(&mut buf, 0).unwrap();
        dev.read_at(&mut buf[..512], 0).unwrap();
        let s = dev.stats().snapshot();
        // A run op is exactly one device op...
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.read_bytes, 2048 + 512);
        assert_eq!(s.write_bytes, 4096);
        // ...and is additionally classified as a run.
        assert_eq!(s.run_writes, 1);
        assert_eq!(s.run_reads, 1);
        assert_eq!(s.run_write_bytes, 4096);
        assert_eq!(s.run_read_bytes, 2048);
        // Histograms see run ops at full run size.
        assert_eq!(s.write_hist.bucket(12), 1);
        assert_eq!(s.read_hist.bucket(11), 1);
    }

    #[test]
    fn failed_ops_are_not_counted() {
        let dev = CountingDev::new(Arc::new(MemDev::with_len(4)));
        let mut buf = [0u8; 8];
        assert!(dev.read_at(&mut buf, 0).is_err());
        assert_eq!(dev.stats().snapshot().reads, 0);
    }

    #[test]
    fn shared_stats_aggregate_across_devices() {
        let stats = Arc::new(IoStats::default());
        let a = CountingDev::with_stats(Arc::new(MemDev::new()), Arc::clone(&stats));
        let b = CountingDev::with_stats(Arc::new(MemDev::new()), Arc::clone(&stats));
        a.write_at(&[1; 100], 0).unwrap();
        b.write_at(&[2; 200], 0).unwrap();
        assert_eq!(stats.snapshot().write_bytes, 300);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = SizeHistogram::default();
        h.record(512);
        h.record(512);
        h.record(65536);
        assert_eq!(h.total(), 3);
        assert_eq!(h.bucket(9), 2); // 512 = 2^9 -> bucket 9 [2^9, 2^10)
        assert_eq!(h.bucket(16), 1); // 65536 = 2^16 -> bucket 16
        assert_eq!(h.at_or_below(1024), 2);
    }

    #[test]
    fn histogram_boundary_sizes() {
        let mut h = SizeHistogram::default();
        h.record(1); // 2^0        -> bucket 0
        h.record(512); // 2^9      -> bucket 9
        h.record(513); // 2^9 + 1  -> still bucket 9
        h.record(65536); // 2^16   -> bucket 16
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(9), 2, "512 and 513 share bucket 9: [512, 1024)");
        assert_eq!(h.bucket(10), 0, "513 must not spill into bucket 10");
        assert_eq!(h.bucket(16), 1);
        assert_eq!(h.total(), 4);
        // at_or_below counts whole buckets: [512, 1024) fits under 1023 but a
        // 600-byte limit cannot include it (the bucket holds sizes up to 1023).
        assert_eq!(h.at_or_below(511), 1);
        assert_eq!(h.at_or_below(600), 1);
        assert_eq!(h.at_or_below(1023), 3);
        assert_eq!(h.at_or_below(65536), 3);
        assert_eq!(h.at_or_below(131071), 4);
        assert_eq!(h.at_or_below(usize::MAX), 4);
    }

    #[test]
    fn reset_clears_everything() {
        let dev = CountingDev::new(Arc::new(MemDev::new()));
        dev.write_at(&[0; 64], 0).unwrap();
        dev.stats().reset();
        let s = dev.stats().snapshot();
        assert_eq!(s, IoStatsSnapshot::default());
    }
}
