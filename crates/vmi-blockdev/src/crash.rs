//! Deterministic power-cut injection for crash-consistency tests.
//!
//! [`CrashDev`] models the one failure [`super::FaultDev`] cannot: the
//! machine dying *mid-operation* and never coming back on this handle. At a
//! seeded cut point the decorator lands a torn prefix of the in-flight write
//! (whole 8-byte units only — the driver's metadata entries are 8 bytes, so
//! this is the analogue of sector-atomicity scaled to the format), drops
//! everything after it, and **poisons** the device: every subsequent
//! operation fails. Recovery then happens on a *fresh* handle of the
//! underlying medium, exactly like a node rebooting and re-opening its local
//! cache file.
//!
//! Two durability models:
//!
//! * **write-through** ([`CrashDev::new`]) — every write is durable the
//!   moment it returns; a cut tears the in-flight write only.
//! * **write-back** ([`CrashDev::new_writeback`]) — writes land in a
//!   volatile buffer and only become durable when [`BlockDev::flush`] drains
//!   them, FIFO by default. A cut loses the entire un-drained buffer: acked
//!   but unflushed writes vanish, which is precisely the contract `vmi-qcow`
//!   must survive. [`CrashDev::set_drain_shuffle`] additionally reorders each
//!   drain epoch with a seeded RNG, modelling a disk scheduler that commits
//!   queued writes out of order — this is what makes the qcow write barriers
//!   load-bearing rather than decorative.
//!
//! All cut points are deterministic: the same plan, seed, and workload
//! produce the same crash state.

use parking_lot::{lockrank, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{BlockDev, BlockError, BlockErrorKind, Result, SharedDev};

/// Write atomicity unit: a torn write lands a prefix that is a whole number
/// of 8-byte units. QCOW-style table entries are 8 bytes, so an entry is
/// atomically old-or-new — the format-scaled analogue of 512 B sector
/// atomicity.
pub const ATOMIC_UNIT: usize = 8;

/// A programmed power cut. Mirrors the [`super::FaultPlan`] API shape; all
/// counting starts when the plan is armed and refers to *durable* writes —
/// in write-back mode that means drain-time at flush, not buffer-time.
#[derive(Debug, Clone)]
pub enum CrashPlan {
    /// Cut power during the `n`th durable write (0-based). The first `keep`
    /// bytes of that write land (rounded down to [`ATOMIC_UNIT`]); the rest
    /// of it — and everything after — is lost. `keep: 0` loses the whole
    /// write; `keep >= len` lands it fully and cuts just after. With a
    /// mid-run `keep` this is the byte-offset-within-run tear for coalesced
    /// `write_run_at` I/O.
    NthWrite {
        /// 0-based index among durable writes after arming.
        n: u64,
        /// Bytes of the in-flight write that survive (unit-truncated).
        keep: usize,
    },
    /// Cut power during the `n`th flush (0-based). In write-back mode the
    /// first `drain` buffered operations of that flush epoch become durable
    /// before the cut; the rest of the buffer is lost. In write-through mode
    /// nothing is in flight, so the cut merely poisons the device at that
    /// flush.
    NthFlush {
        /// 0-based index among flushes after arming.
        n: u64,
        /// Buffered ops of the cut epoch that drain durably first.
        drain: usize,
    },
    /// Cut power at each durable write independently with probability `p`,
    /// drawn from a [`StdRng`] seeded with `seed` at arming time; the torn
    /// write keeps `keep` bytes as in [`CrashPlan::NthWrite`].
    Probabilistic {
        /// Per-write cut probability in `[0, 1]`.
        p: f64,
        /// RNG seed; the cut point is a pure function of it.
        seed: u64,
        /// Bytes of the in-flight write that survive (unit-truncated).
        keep: usize,
    },
}

/// One armed plan plus its private progress state.
#[derive(Debug)]
struct ArmedCut {
    plan: CrashPlan,
    writes_seen: u64,
    flushes_seen: u64,
    rng: Option<StdRng>,
}

/// One acked-but-volatile write sitting in the write-back buffer.
#[derive(Debug, Clone)]
struct BufWrite {
    off: u64,
    data: Vec<u8>,
    run: bool,
}

#[derive(Debug, Default)]
struct State {
    plan: Option<ArmedCut>,
    crashed: bool,
    buffer: Vec<BufWrite>,
    shuffle_seed: Option<u64>,
    epochs: u64,
    durable_writes: u64,
    flushes: u64,
}

/// Power-cut-injecting decorator around any [`BlockDev`]. See the module
/// docs for the crash model.
///
/// Thread-safety: all crash state (armed plan, crashed latch, write-back
/// buffer, counters) lives under one mutex; every decision-plus-mutation —
/// including applying a buffered write or draining an epoch — happens in a
/// single lock hold, so concurrent ops observe each cut point atomically.
/// Write-through *reads* drop the lock before delegating; a cut firing
/// concurrently counts the read as started before the cut.
pub struct CrashDev {
    inner: SharedDev,
    writeback: bool,
    state: Mutex<State>,
}

impl CrashDev {
    /// Wrap `inner` in write-through mode: every write is durable when it
    /// returns, and a cut tears only the in-flight write.
    pub fn new(inner: SharedDev) -> Self {
        let state = Mutex::new(State::default());
        state.set_rank(lockrank::DEV_CRASH);
        Self {
            inner,
            writeback: false,
            state,
        }
    }

    /// Wrap `inner` in write-back mode: writes are acked into a volatile
    /// buffer and only become durable when `flush` drains them. A cut
    /// discards the un-drained buffer.
    pub fn new_writeback(inner: SharedDev) -> Self {
        let state = Mutex::new(State::default());
        state.set_rank(lockrank::DEV_CRASH);
        Self {
            inner,
            writeback: true,
            state,
        }
    }

    /// Program the power cut. At most one plan is armed at a time; arming
    /// replaces any previous plan and restarts its sequence counting.
    pub fn arm(&self, plan: CrashPlan) {
        let rng = match &plan {
            CrashPlan::Probabilistic { seed, .. } => Some(StdRng::seed_from_u64(*seed)),
            _ => None,
        };
        let mut st = self.state.lock();
        st.plan = Some(ArmedCut {
            plan,
            writes_seen: 0,
            flushes_seen: 0,
            rng,
        });
    }

    /// Reorder each write-back drain epoch with a seeded shuffle (a disk
    /// scheduler committing queued writes out of order). Deterministic per
    /// seed and epoch index. No effect in write-through mode.
    pub fn set_drain_shuffle(&self, seed: u64) {
        self.state.lock().shuffle_seed = Some(seed);
    }

    /// `true` once the cut has fired; every operation fails from then on.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Durable writes performed so far (drain-time in write-back mode).
    /// The crash sweep uses this to enumerate every cut point of a workload.
    pub fn durable_writes(&self) -> u64 {
        self.state.lock().durable_writes
    }

    /// Flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.state.lock().flushes
    }

    fn poisoned() -> BlockError {
        BlockError::new(BlockErrorKind::Io, "power cut: device poisoned")
    }

    fn cut_error() -> BlockError {
        BlockError::new(BlockErrorKind::Io, "power cut")
    }

    /// Decide whether the cut fires on this durable write; if so return the
    /// unit-truncated number of bytes that land.
    fn check_write(st: &mut State, len: usize) -> Option<usize> {
        let armed = st.plan.as_mut()?;
        let fired = match &armed.plan {
            CrashPlan::NthWrite { n, keep } => {
                let seq = armed.writes_seen;
                armed.writes_seen += 1;
                (seq == *n).then_some(*keep)
            }
            CrashPlan::NthFlush { .. } => None,
            CrashPlan::Probabilistic { p, keep, .. } => {
                let hit = armed
                    .rng
                    .as_mut()
                    .map(|rng| rng.gen_bool(p.clamp(0.0, 1.0)))
                    .unwrap_or(false);
                hit.then_some(*keep)
            }
        };
        fired.map(|keep| keep.min(len) / ATOMIC_UNIT * ATOMIC_UNIT)
    }

    /// Decide whether the cut fires on this flush; if so return how many
    /// buffered ops drain before the cut.
    fn check_flush(st: &mut State) -> Option<usize> {
        let armed = st.plan.as_mut()?;
        match &armed.plan {
            CrashPlan::NthFlush { n, drain } => {
                let seq = armed.flushes_seen;
                armed.flushes_seen += 1;
                (seq == *n).then_some(*drain)
            }
            _ => None,
        }
    }

    /// Land one durable write on the inner device, honouring an armed cut.
    /// Returns `Err` (and poisons) when the cut fires.
    fn durable_write(&self, st: &mut State, buf: &[u8], off: u64, run: bool) -> Result<()> {
        if let Some(keep) = Self::check_write(st, buf.len()) {
            if keep > 0 {
                // Land the torn prefix; a failure here is still a crash.
                let _ = if run {
                    self.inner.write_run_at(&buf[..keep], off)
                } else {
                    self.inner.write_at(&buf[..keep], off)
                };
            }
            st.crashed = true;
            st.buffer.clear();
            return Err(Self::cut_error());
        }
        st.durable_writes += 1;
        if run {
            self.inner.write_run_at(buf, off)
        } else {
            self.inner.write_at(buf, off)
        }
    }

    /// Virtual device length: the inner length extended by any buffered
    /// (acked-but-volatile) writes.
    fn virtual_len(&self, st: &State) -> u64 {
        let mut len = self.inner.len();
        for w in &st.buffer {
            len = len.max(w.off + w.data.len() as u64);
        }
        len
    }

    fn buffered_write(&self, buf: &[u8], off: u64, run: bool) -> Result<()> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(Self::poisoned());
        }
        st.buffer.push(BufWrite {
            off,
            data: buf.to_vec(),
            run,
        });
        Ok(())
    }

    fn overlay_read(&self, buf: &mut [u8], off: u64) -> Result<()> {
        let st = self.state.lock();
        if st.crashed {
            return Err(Self::poisoned());
        }
        crate::dev::check_bounds(off, buf.len(), self.virtual_len(&st))?;
        // Base content from the durable layer, zero-filled past its end.
        self.inner.read_at_zero_pad(buf, off)?;
        // Overlay acked-but-volatile writes in program order.
        let (start, end) = (off, off + buf.len() as u64);
        for w in &st.buffer {
            let (ws, we) = (w.off, w.off + w.data.len() as u64);
            let (s, e) = (ws.max(start), we.min(end));
            if s < e {
                buf[(s - start) as usize..(e - start) as usize]
                    .copy_from_slice(&w.data[(s - ws) as usize..(e - ws) as usize]);
            }
        }
        Ok(())
    }

    fn do_flush(&self) -> Result<()> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(Self::poisoned());
        }
        st.flushes += 1;
        let cut_after = Self::check_flush(&mut st);
        if !self.writeback {
            if cut_after.is_some() {
                st.crashed = true;
                return Err(Self::cut_error());
            }
            return self.inner.flush();
        }
        // Drain this epoch, FIFO or seeded-shuffled.
        let mut pending = std::mem::take(&mut st.buffer);
        if let Some(seed) = st.shuffle_seed {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(st.epochs));
            // Fisher–Yates, deterministic per (seed, epoch).
            for i in (1..pending.len()).rev() {
                pending.swap(i, rng.gen_range(0..=i));
            }
        }
        st.epochs += 1;
        let limit = cut_after.unwrap_or(pending.len());
        for (i, w) in pending.iter().enumerate() {
            if i >= limit {
                st.crashed = true;
                return Err(Self::cut_error());
            }
            self.durable_write(&mut st, &w.data, w.off, w.run)?;
        }
        if cut_after.is_some() {
            // The cut epoch drained fully before the cut landed.
            st.crashed = true;
            return Err(Self::cut_error());
        }
        self.inner.flush()
    }
}

impl BlockDev for CrashDev {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        if self.writeback {
            return self.overlay_read(buf, off);
        }
        let st = self.state.lock();
        if st.crashed {
            return Err(Self::poisoned());
        }
        drop(st);
        self.inner.read_at(buf, off)
    }

    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        if self.writeback {
            return self.buffered_write(buf, off, false);
        }
        let mut st = self.state.lock();
        if st.crashed {
            return Err(Self::poisoned());
        }
        self.durable_write(&mut st, buf, off, false)
    }

    fn len(&self) -> u64 {
        if self.writeback {
            let st = self.state.lock();
            self.virtual_len(&st)
        } else {
            self.inner.len()
        }
    }

    fn set_len(&self, len: u64) -> Result<()> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(Self::poisoned());
        }
        if self.writeback {
            // Trim acked writes past the new end; they can no longer be
            // observed and must not resurrect on drain.
            st.buffer.retain_mut(|w| {
                if w.off >= len {
                    return false;
                }
                let keep = ((len - w.off) as usize).min(w.data.len());
                w.data.truncate(keep);
                !w.data.is_empty()
            });
        }
        self.inner.set_len(len)
    }

    fn flush(&self) -> Result<()> {
        self.do_flush()
    }

    fn read_run_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        if self.writeback {
            return self.overlay_read(buf, off);
        }
        let st = self.state.lock();
        if st.crashed {
            return Err(Self::poisoned());
        }
        drop(st);
        self.inner.read_run_at(buf, off)
    }

    fn write_run_at(&self, buf: &[u8], off: u64) -> Result<()> {
        if self.writeback {
            return self.buffered_write(buf, off, true);
        }
        let mut st = self.state.lock();
        if st.crashed {
            return Err(Self::poisoned());
        }
        self.durable_write(&mut st, buf, off, true)
    }

    fn inner_dev(&self) -> Option<&SharedDev> {
        Some(&self.inner)
    }

    fn describe(&self) -> String {
        let mode = if self.writeback { "wb" } else { "wt" };
        format!("crash[{mode}]({})", self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDev;
    use std::sync::Arc;

    fn mem(len: u64) -> Arc<MemDev> {
        Arc::new(MemDev::with_len(len))
    }

    #[test]
    fn nth_write_tears_and_poisons() {
        let inner = mem(64);
        let dev = CrashDev::new(inner.clone());
        dev.arm(CrashPlan::NthWrite { n: 1, keep: 8 });
        dev.write_at(&[1u8; 16], 0).unwrap(); // #0 lands fully
        let err = dev.write_at(&[2u8; 16], 16).unwrap_err(); // #1 torn
        assert_eq!(err.kind(), BlockErrorKind::Io);
        assert!(dev.crashed());
        // Everything afterwards is poisoned.
        let mut buf = [0u8; 8];
        assert!(dev.read_at(&mut buf, 0).is_err());
        assert!(dev.write_at(&[3u8; 8], 32).is_err());
        assert!(dev.flush().is_err());
        // The underlying medium holds write #0 and the 8-byte torn prefix.
        inner.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [1; 8]);
        inner.read_at(&mut buf, 16).unwrap();
        assert_eq!(buf, [2; 8]);
        inner.read_at(&mut buf, 24).unwrap();
        assert_eq!(buf, [0; 8], "torn tail never landed");
    }

    #[test]
    fn torn_prefix_rounds_down_to_atomic_units() {
        let inner = mem(64);
        let dev = CrashDev::new(inner.clone());
        dev.arm(CrashPlan::NthWrite { n: 0, keep: 13 });
        dev.write_at(&[7u8; 32], 0).unwrap_err();
        let mut buf = [0u8; 32];
        inner.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf[..8], &[7; 8], "one whole unit landed");
        assert_eq!(&buf[8..], &[0; 24], "partial unit discarded");
    }

    #[test]
    fn writeback_buffers_until_flush() {
        let inner = mem(64);
        let dev = CrashDev::new_writeback(inner.clone());
        dev.write_at(&[5u8; 8], 0).unwrap();
        let mut buf = [0u8; 8];
        dev.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [5; 8], "acked write visible through the buffer");
        inner.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [0; 8], "not durable before flush");
        dev.flush().unwrap();
        inner.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [5; 8], "durable after flush");
        assert_eq!(dev.durable_writes(), 1);
    }

    #[test]
    fn writeback_overlay_respects_program_order_and_growth() {
        let inner = mem(8);
        let dev = CrashDev::new_writeback(inner);
        dev.write_at(&[1u8; 16], 0).unwrap();
        dev.write_at(&[2u8; 8], 4).unwrap();
        assert_eq!(dev.len(), 16, "buffered writes extend the virtual length");
        let mut buf = [0u8; 16];
        dev.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf[..4], &[1; 4]);
        assert_eq!(&buf[4..12], &[2; 8], "later write wins the overlap");
        assert_eq!(&buf[12..], &[1; 4]);
    }

    #[test]
    fn nth_flush_drops_undrained_buffer() {
        let inner = mem(64);
        let dev = CrashDev::new_writeback(inner.clone());
        dev.write_at(&[1u8; 8], 0).unwrap();
        dev.write_at(&[2u8; 8], 8).unwrap();
        dev.write_at(&[3u8; 8], 16).unwrap();
        dev.arm(CrashPlan::NthFlush { n: 0, drain: 2 });
        assert!(dev.flush().is_err(), "cut at flush");
        assert!(dev.crashed());
        let mut buf = [0u8; 8];
        inner.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [1; 8], "drained before the cut");
        inner.read_at(&mut buf, 8).unwrap();
        assert_eq!(buf, [2; 8], "drained before the cut");
        inner.read_at(&mut buf, 16).unwrap();
        assert_eq!(buf, [0; 8], "lost with the buffer");
    }

    #[test]
    fn writeback_cut_counts_drain_time_writes() {
        let inner = mem(64);
        let dev = CrashDev::new_writeback(inner.clone());
        dev.arm(CrashPlan::NthWrite { n: 1, keep: 0 });
        dev.write_at(&[1u8; 8], 0).unwrap(); // buffered: not a durable write
        dev.write_at(&[2u8; 8], 8).unwrap();
        dev.write_at(&[3u8; 8], 16).unwrap();
        assert!(dev.flush().is_err(), "cut at drain of the second op");
        let mut buf = [0u8; 8];
        inner.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [1; 8]);
        inner.read_at(&mut buf, 8).unwrap();
        assert_eq!(buf, [0; 8], "cut write lost entirely (keep: 0)");
    }

    #[test]
    fn drain_shuffle_is_deterministic_per_seed() {
        let order = |seed: u64| -> Vec<u8> {
            let inner = mem(64);
            let dev = CrashDev::new_writeback(inner.clone());
            dev.set_drain_shuffle(seed);
            // Tag each op; cut after draining 2 so the landed set reveals
            // the drain order.
            for i in 0..4u8 {
                dev.write_at(&[i + 1; 8], u64::from(i) * 8).unwrap();
            }
            dev.arm(CrashPlan::NthFlush { n: 0, drain: 2 });
            dev.flush().unwrap_err();
            let mut out = vec![0u8; 32];
            inner.read_at(&mut out, 0).unwrap();
            (0..4).map(|i| out[i * 8]).collect()
        };
        assert_eq!(order(11), order(11), "same seed, same drain order");
        let distinct: std::collections::BTreeSet<Vec<u8>> = (0..8).map(order).collect();
        assert!(distinct.len() > 1, "shuffle actually reorders some epoch");
    }

    #[test]
    fn probabilistic_cut_is_deterministic_per_seed() {
        let cut_at = |seed: u64| -> u64 {
            let dev = CrashDev::new(mem(1 << 16));
            dev.arm(CrashPlan::Probabilistic {
                p: 0.2,
                seed,
                keep: 0,
            });
            let mut n = 0;
            while dev.write_at(&[9u8; 8], n * 8).is_ok() {
                n += 1;
                assert!(n < 1000, "p=0.2 must cut well before 1000 writes");
            }
            n
        };
        assert_eq!(cut_at(3), cut_at(3));
    }

    #[test]
    fn set_len_trims_buffered_writes() {
        let inner = mem(8);
        let dev = CrashDev::new_writeback(inner.clone());
        dev.write_at(&[4u8; 24], 0).unwrap();
        dev.set_len(12).unwrap();
        assert_eq!(dev.len(), 12);
        dev.flush().unwrap();
        assert_eq!(inner.len(), 12, "truncated write does not resurrect");
        let mut buf = [0u8; 12];
        inner.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [4; 12]);
    }

    #[test]
    fn unarmed_crashdev_is_transparent() {
        let dev = CrashDev::new_writeback(mem(0));
        dev.write_at(b"hello-world!!!!!", 0).unwrap();
        dev.flush().unwrap();
        let mut buf = [0u8; 16];
        dev.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"hello-world!!!!!");
        assert!(!dev.crashed());
        assert_eq!(dev.flushes(), 1);
    }
}
