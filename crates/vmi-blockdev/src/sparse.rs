//! Sparse in-memory device for multi-GiB virtual images.
//!
//! A base VMI is "typically sized at several GB" while a boot touches less
//! than 200 MB of it (paper §1). Backing such an image with a contiguous
//! allocation would waste gigabytes per simulated node; [`SparseDev`] stores
//! only pages that have ever been written, reading untouched pages as zero.

use std::collections::HashMap;

use parking_lot::{lockrank, RwLock};

use crate::dev::check_bounds;
use crate::{BlockDev, Result};

/// Power-of-two page size used by the sparse store (64 KiB, matching the
/// default QCOW2 cluster size so aligned cluster I/O touches one page).
pub const SPARSE_PAGE: usize = 64 * 1024;

#[derive(Debug, Default)]
struct Inner {
    pages: HashMap<u64, Box<[u8; SPARSE_PAGE]>>,
    len: u64,
}

/// A sparse, page-table-backed memory device.
///
/// Unwritten regions read as zeroes. The logical length is tracked
/// explicitly so the device behaves like a file of that size regardless of
/// how many pages are materialized.
#[derive(Debug)]
pub struct SparseDev {
    inner: RwLock<Inner>,
}

impl Default for SparseDev {
    fn default() -> Self {
        Self::new()
    }
}

impl SparseDev {
    /// An empty device of length zero.
    pub fn new() -> Self {
        Self::with_len(0)
    }

    /// A zero device of logical size `len` with no materialized pages.
    pub fn with_len(len: u64) -> Self {
        Self::from_inner(Inner {
            pages: HashMap::new(),
            len,
        })
    }

    fn from_inner(content: Inner) -> Self {
        let inner = RwLock::new(content);
        inner.set_rank(lockrank::DEV_LEAF);
        Self { inner }
    }

    /// Number of pages actually materialized (resident footprint /
    /// `SPARSE_PAGE`).
    pub fn resident_pages(&self) -> usize {
        self.inner.read().pages.len()
    }

    /// Resident bytes (materialized pages × page size).
    pub fn resident_bytes(&self) -> u64 {
        (self.resident_pages() * SPARSE_PAGE) as u64
    }

    /// Deep-copy the device: an independent device with identical content.
    ///
    /// Cheap when the content is mostly zero (only materialized pages are
    /// copied) — used to give every compute node its own private copy of a
    /// warm cache image.
    pub fn fork(&self) -> Self {
        let inner = self.inner.read();
        Self::from_inner(Inner {
            pages: inner.pages.clone(),
            len: inner.len,
        })
    }
}

impl BlockDev for SparseDev {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        let inner = self.inner.read();
        check_bounds(off, buf.len(), inner.len)?;
        let mut done = 0usize;
        while done < buf.len() {
            let pos = off + done as u64;
            let page_idx = pos / SPARSE_PAGE as u64;
            let in_page = (pos % SPARSE_PAGE as u64) as usize;
            let n = (SPARSE_PAGE - in_page).min(buf.len() - done);
            match inner.pages.get(&page_idx) {
                Some(p) => buf[done..done + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
        }
        Ok(())
    }

    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.write();
        let end = off + buf.len() as u64;
        if end > inner.len {
            inner.len = end;
        }
        let mut done = 0usize;
        while done < buf.len() {
            let pos = off + done as u64;
            let page_idx = pos / SPARSE_PAGE as u64;
            let in_page = (pos % SPARSE_PAGE as u64) as usize;
            let n = (SPARSE_PAGE - in_page).min(buf.len() - done);
            let chunk = &buf[done..done + n];
            // Writing zeroes onto a page that was never materialized is a
            // no-op for content: skip the allocation. This keeps cluster-scale
            // experiments with synthetic all-zero image content at a near-zero
            // resident footprint.
            if !inner.pages.contains_key(&page_idx) && chunk.iter().all(|&b| b == 0) {
                done += n;
                continue;
            }
            let page = inner
                .pages
                .entry(page_idx)
                .or_insert_with(|| Box::new([0u8; SPARSE_PAGE]));
            page[in_page..in_page + n].copy_from_slice(chunk);
            done += n;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.read().len
    }

    fn set_len(&self, len: u64) -> Result<()> {
        let mut inner = self.inner.write();
        if len < inner.len {
            // Drop whole pages past the new end and zero the tail of the
            // boundary page so re-growth exposes zeroes, like a file.
            let boundary_page = len / SPARSE_PAGE as u64;
            let keep_in_boundary = (len % SPARSE_PAGE as u64) as usize;
            inner.pages.retain(|&idx, _| idx <= boundary_page);
            if keep_in_boundary == 0 {
                inner.pages.remove(&boundary_page);
            } else if let Some(p) = inner.pages.get_mut(&boundary_page) {
                p[keep_in_boundary..].fill(0);
            }
        }
        inner.len = len;
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    fn describe(&self) -> String {
        format!(
            "sparse({} B, {} pages resident)",
            self.len(),
            self.resident_pages()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_regions_read_zero() {
        let dev = SparseDev::with_len(10 << 30); // 10 GiB logical, 0 resident
        assert_eq!(dev.resident_pages(), 0);
        let mut buf = [1u8; 128];
        dev.read_at(&mut buf, 5 << 30).unwrap();
        assert_eq!(buf, [0u8; 128]);
        assert_eq!(dev.resident_pages(), 0, "reads must not materialize pages");
    }

    #[test]
    fn write_spanning_pages_roundtrips() {
        let dev = SparseDev::new();
        let off = SPARSE_PAGE as u64 - 10;
        let data: Vec<u8> = (0..40).map(|i| i as u8 + 1).collect();
        dev.write_at(&data, off).unwrap();
        assert_eq!(dev.resident_pages(), 2);
        let mut back = vec![0u8; 40];
        dev.read_at(&mut back, off).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn shrink_then_grow_exposes_zeroes() {
        let dev = SparseDev::new();
        dev.write_at(&[0xAA; 100], 0).unwrap();
        dev.set_len(50).unwrap();
        dev.set_len(100).unwrap();
        let mut buf = [1u8; 100];
        dev.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf[..50], &[0xAA; 50]);
        assert_eq!(&buf[50..], &[0; 50]);
    }

    #[test]
    fn shrink_to_page_boundary_drops_page() {
        let dev = SparseDev::new();
        dev.write_at(&[1; 8], SPARSE_PAGE as u64).unwrap();
        assert_eq!(dev.resident_pages(), 1);
        dev.set_len(SPARSE_PAGE as u64).unwrap();
        assert_eq!(dev.resident_pages(), 0);
    }

    #[test]
    fn big_image_small_footprint() {
        let dev = SparseDev::with_len(8 << 30);
        // Touch 100 spots of 4 KiB each, like a boot's scattered reads-as-writes.
        for i in 0..100u64 {
            dev.write_at(&[7u8; 4096], i * (64 << 20)).unwrap();
        }
        assert!(dev.resident_bytes() <= 200 * SPARSE_PAGE as u64);
        assert_eq!(dev.len(), 8 << 30);
    }

    #[test]
    fn fork_is_independent() {
        let a = SparseDev::with_len(1 << 20);
        a.write_at(&[5; 100], 0).unwrap();
        let b = a.fork();
        b.write_at(&[9; 100], 0).unwrap();
        let mut buf = [0u8; 100];
        a.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [5; 100], "fork must not alias the original");
        b.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [9; 100]);
        assert_eq!(b.len(), 1 << 20);
    }

    #[test]
    fn zero_writes_do_not_materialize_pages() {
        let dev = SparseDev::new();
        dev.write_at(&[0u8; 4096], 0).unwrap();
        assert_eq!(dev.resident_pages(), 0);
        assert_eq!(dev.len(), 4096);
        // A later nonzero write to the same page still works.
        dev.write_at(&[3u8; 16], 100).unwrap();
        assert_eq!(dev.resident_pages(), 1);
        let mut buf = [9u8; 120];
        dev.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf[..100], &[0; 100]);
        assert_eq!(&buf[100..116], &[3; 16]);
    }

    #[test]
    fn read_past_logical_end_errors() {
        let dev = SparseDev::with_len(100);
        let mut buf = [0u8; 8];
        assert!(dev.read_at(&mut buf, 96).is_err());
    }
}
