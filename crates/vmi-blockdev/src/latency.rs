//! Cost-model decorator: the bridge between real image I/O and simulated time.
//!
//! The `vmi-sim` crate implements [`CostHook`]s that charge each operation
//! against a simulated resource (a disk's queue, a network link's share).
//! Wrapping an image's backend in a [`LatencyDev`] makes every byte the
//! format code actually moves show up on the simulated timeline — so the
//! experiments measure the *real* access pattern of the real image chain,
//! priced by the model of the medium it would have crossed.

use crate::{BlockDev, Result, SharedDev};

/// Operation classification passed to a [`CostHook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A read of `len` bytes.
    Read,
    /// A write of `len` bytes.
    Write,
    /// A flush / barrier.
    Flush,
}

/// A pluggable per-operation cost model.
///
/// `charge` is called *after* the wrapped operation succeeds, with the byte
/// range it covered. Implementations typically advance a simulated clock or
/// enqueue work on a simulated resource.
pub trait CostHook: Send + Sync {
    /// Account for one operation of `kind` covering `[off, off + len)`.
    fn charge(&self, kind: OpKind, off: u64, len: usize);
}

/// A cost hook that charges nothing. Useful as a default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopCost;

impl CostHook for NoopCost {
    fn charge(&self, _kind: OpKind, _off: u64, _len: usize) {}
}

/// Decorator that reports every successful operation to a [`CostHook`].
pub struct LatencyDev<H: CostHook> {
    inner: SharedDev,
    hook: H,
}

impl<H: CostHook> LatencyDev<H> {
    /// Wrap `inner`, pricing operations with `hook`.
    pub fn new(inner: SharedDev, hook: H) -> Self {
        Self { inner, hook }
    }

    /// The cost hook.
    pub fn hook(&self) -> &H {
        &self.hook
    }
}

impl<H: CostHook> BlockDev for LatencyDev<H> {
    fn inner_dev(&self) -> Option<&SharedDev> {
        Some(&self.inner)
    }

    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.inner.read_at(buf, off)?;
        self.hook.charge(OpKind::Read, off, buf.len());
        Ok(())
    }

    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        self.inner.write_at(buf, off)?;
        self.hook.charge(OpKind::Write, off, buf.len());
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.inner.set_len(len)
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()?;
        self.hook.charge(OpKind::Flush, 0, 0);
        Ok(())
    }

    // A coalesced run is one operation: the hook is charged once with the
    // full run length, so per-op overhead is paid once while per-byte cost
    // still covers every byte moved. Run-ness is forwarded so inner
    // decorators classify the op the same way.
    fn read_run_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.inner.read_run_at(buf, off)?;
        self.hook.charge(OpKind::Read, off, buf.len());
        Ok(())
    }

    fn write_run_at(&self, buf: &[u8], off: u64) -> Result<()> {
        self.inner.write_run_at(buf, off)?;
        self.hook.charge(OpKind::Write, off, buf.len());
        Ok(())
    }

    fn describe(&self) -> String {
        format!("latency({})", self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDev;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[derive(Default)]
    struct Recorder(Mutex<Vec<(OpKind, u64, usize)>>);

    impl CostHook for Arc<Recorder> {
        fn charge(&self, kind: OpKind, off: u64, len: usize) {
            self.0.lock().push((kind, off, len));
        }
    }

    #[test]
    fn charges_successful_ops_in_order() {
        let rec = Arc::new(Recorder::default());
        let dev = LatencyDev::new(Arc::new(MemDev::new()), Arc::clone(&rec));
        dev.write_at(&[0; 100], 5).unwrap();
        let mut buf = [0u8; 50];
        dev.read_at(&mut buf, 10).unwrap();
        dev.flush().unwrap();
        let log = rec.0.lock();
        assert_eq!(
            *log,
            vec![
                (OpKind::Write, 5, 100),
                (OpKind::Read, 10, 50),
                (OpKind::Flush, 0, 0)
            ]
        );
    }

    #[test]
    fn run_op_is_charged_once_at_full_length() {
        let rec = Arc::new(Recorder::default());
        let dev = LatencyDev::new(Arc::new(MemDev::new()), Arc::clone(&rec));
        dev.write_run_at(&[0; 4096], 0).unwrap();
        let mut buf = [0u8; 4096];
        dev.read_run_at(&mut buf, 0).unwrap();
        let log = rec.0.lock();
        assert_eq!(
            *log,
            vec![(OpKind::Write, 0, 4096), (OpKind::Read, 0, 4096)]
        );
    }

    #[test]
    fn failed_op_is_not_charged() {
        let rec = Arc::new(Recorder::default());
        let dev = LatencyDev::new(Arc::new(MemDev::with_len(4)), Arc::clone(&rec));
        let mut buf = [0u8; 16];
        assert!(dev.read_at(&mut buf, 0).is_err());
        assert!(rec.0.lock().is_empty());
    }

    #[test]
    fn noop_cost_compiles_and_runs() {
        let dev = LatencyDev::new(Arc::new(MemDev::new()), NoopCost);
        dev.write_at(b"x", 0).unwrap();
        assert_eq!(dev.len(), 1);
    }
}
