//! Null device: reads as zeroes, swallows writes.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{BlockDev, Result};

/// A device of fixed logical size whose content is all zeroes.
///
/// Used as a stand-in base image when an experiment only cares about I/O
/// volume and timing, not data content, and as the cheapest possible
/// multi-GiB "pristine disk".
#[derive(Debug, Default)]
pub struct ZeroDev {
    len: AtomicU64,
}

impl ZeroDev {
    /// A zero device of `len` bytes.
    pub fn new(len: u64) -> Self {
        Self {
            len: AtomicU64::new(len),
        }
    }
}

impl BlockDev for ZeroDev {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        crate::dev::check_bounds(off, buf.len(), self.len())?;
        buf.fill(0);
        Ok(())
    }

    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        // Accept and discard; grow logical length like a file would.
        let end = off + buf.len() as u64;
        self.len.fetch_max(end, Ordering::SeqCst);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len.load(Ordering::SeqCst)
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.len.store(len, Ordering::SeqCst);
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    fn describe(&self) -> String {
        format!("zero({} B)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_zero_within_bounds() {
        let dev = ZeroDev::new(100);
        let mut buf = [7u8; 10];
        dev.read_at(&mut buf, 90).unwrap();
        assert_eq!(buf, [0; 10]);
        assert!(dev.read_at(&mut buf, 95).is_err());
    }

    #[test]
    fn writes_discard_but_grow() {
        let dev = ZeroDev::new(10);
        dev.write_at(&[1; 5], 20).unwrap();
        assert_eq!(dev.len(), 25);
        let mut buf = [9u8; 5];
        dev.read_at(&mut buf, 20).unwrap();
        assert_eq!(buf, [0; 5], "writes are discarded");
    }
}
