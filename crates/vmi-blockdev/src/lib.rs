//! # vmi-blockdev — block device abstractions for VM image storage
//!
//! This crate provides the byte-addressable storage substrate that the rest
//! of the `vmcache` workspace builds on. Every VM image format object
//! (`vmi-qcow`'s images, caches and CoW layers) and every simulated medium
//! (compute-node disk, storage-node memory, NFS-exported file) is ultimately
//! a [`BlockDev`].
//!
//! The design follows the paper's requirement that a VMI cache can be
//! "created/stored on any desired medium (i.e., disk, memory) at any desired
//! location (i.e., storage node, compute node)" (§3): the cache code is
//! written once against the [`BlockDev`] trait and the medium is chosen by
//! the caller.
//!
//! ## Backends
//!
//! * [`MemDev`] — contiguous heap memory; models `tmpfs` / node RAM.
//! * [`SparseDev`] — page-table backed sparse memory for multi-GiB virtual
//!   images whose content is mostly untouched (a base VMI is "several GB"
//!   but a boot reads < 200 MB of it).
//! * [`FileDev`] — a real file on the host filesystem.
//! * [`ZeroDev`] — reads as zeroes, discards writes; a null medium.
//!
//! ## Decorators
//!
//! * [`CountingDev`] — transparent I/O accounting; used to measure the
//!   "observed traffic at the storage node" series of the paper (Fig. 9/10).
//! * [`ReadOnlyDev`] — enforces the read-only backing-image discipline.
//! * [`FaultDev`] — deterministic failure injection for tests.
//! * [`CrashDev`] — seeded power-cut injection: torn-write prefixes,
//!   dropped write-back buffers, and a poisoned device afterwards; the
//!   substrate for crash-consistency sweeps.
//! * [`RetryDev`] — retries transient faults with deterministic backoff
//!   driven by a [`RetryPolicy`]; the robustness layer for NFS-backed bases.
//! * [`LatencyDev`] — charges a pluggable cost model per operation; the
//!   simulator uses it to put devices "behind" a disk or network resource.
//!
//! All devices are `Send + Sync` and take `&self`; concurrency is handled
//! with internal `parking_lot` locks so that device handles can be shared
//! across image-chain layers and simulator actors via `Arc`.

#![forbid(unsafe_code)]

mod counting;
mod crash;
mod dev;
mod error;
mod fault;
mod file;
mod latency;
mod mem;
mod readonly;
mod retry;
mod sparse;
mod zero;

pub use counting::{CountingDev, IoStats, IoStatsSnapshot, SizeHistogram};
pub use crash::{CrashDev, CrashPlan, ATOMIC_UNIT};
pub use dev::{BlockDev, ByteRange, SharedDev};
pub use error::{BlockError, BlockErrorKind, Result};
pub use fault::{FaultDev, FaultPlan, FaultSite};
pub use file::FileDev;
pub use latency::{CostHook, LatencyDev, NoopCost, OpKind};
pub use mem::MemDev;
pub use readonly::ReadOnlyDev;
pub use retry::{RetryDev, RetryPolicy};
pub use sparse::SparseDev;
pub use zero::ZeroDev;

/// Decode a big-endian `u32` from the first 4 bytes of `b`.
///
/// Centralizes the byte-slice conversions that on-disk format parsers do in
/// bulk (QCOW2 integers are big-endian); callers pass slices produced by
/// `chunks_exact` or fixed-offset indexing, so the length is statically
/// guaranteed by the call site.
#[inline]
pub fn be_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_be_bytes(a)
}

/// Decode a big-endian `u64` from the first 8 bytes of `b`; see [`be_u32`].
#[inline]
pub fn be_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_be_bytes(a)
}

/// Copy the entire visible content of `src` into `dst`, growing `dst` as
/// needed. Used e.g. when a cache image is transferred from compute-node
/// memory back to the storage node (paper Fig. 13).
///
/// Copies in 1 MiB chunks to bound peak allocation. Returns the number of
/// bytes copied.
pub fn copy_dev(src: &dyn BlockDev, dst: &dyn BlockDev) -> Result<u64> {
    const CHUNK: usize = 1 << 20;
    let total = src.len();
    dst.set_len(total)?;
    let mut buf = vec![0u8; CHUNK.min(total.max(1) as usize)];
    let mut off = 0u64;
    while off < total {
        let n = CHUNK.min((total - off) as usize);
        src.read_at(&mut buf[..n], off)?;
        dst.write_at(&buf[..n], off)?;
        off += n as u64;
    }
    dst.flush()?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_dev_roundtrip() {
        let src = MemDev::with_len(3 << 20);
        let pattern: Vec<u8> = (0..(3usize << 20)).map(|i| (i % 251) as u8).collect();
        src.write_at(&pattern, 0).unwrap();
        let dst = MemDev::new();
        let n = copy_dev(&src, &dst).unwrap();
        assert_eq!(n, 3 << 20);
        let mut back = vec![0u8; 3 << 20];
        dst.read_at(&mut back, 0).unwrap();
        assert_eq!(back, pattern);
    }

    #[test]
    fn copy_dev_empty() {
        let src = MemDev::new();
        let dst = MemDev::new();
        assert_eq!(copy_dev(&src, &dst).unwrap(), 0);
    }
}
