//! Deterministic failure injection for tests.
//!
//! The cache read path must degrade gracefully when the cache fill fails
//! mid-boot (quota space errors are the designed case; transient I/O errors
//! the undesigned one). [`FaultDev`] lets tests fail the Nth read or write
//! deterministically, or fail every operation touching a byte range.

use parking_lot::Mutex;

use crate::{BlockDev, BlockError, BlockErrorKind, ByteRange, Result, SharedDev};

/// Which operation class a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Fail reads only.
    Read,
    /// Fail writes only.
    Write,
    /// Fail both reads and writes.
    Any,
}

/// A programmed fault.
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Fail the `n`th matching operation (0-based) counted *from the moment
    /// the plan is armed*, once.
    NthOp {
        /// Which op class counts toward and triggers the fault.
        site: FaultSite,
        /// 0-based index (among matching ops after arming) to fail.
        n: u64,
        /// Error kind to return.
        kind: BlockErrorKind,
    },
    /// Fail every matching operation that intersects `range`.
    Range {
        /// Which op class the fault applies to.
        site: FaultSite,
        /// Byte range that triggers the fault.
        range: ByteRange,
        /// Error kind to return.
        kind: BlockErrorKind,
    },
}

impl FaultPlan {
    fn site(&self) -> FaultSite {
        match self {
            FaultPlan::NthOp { site, .. } | FaultPlan::Range { site, .. } => *site,
        }
    }

    fn matches_site(&self, is_read: bool) -> bool {
        matches!(
            (self.site(), is_read),
            (FaultSite::Any, _) | (FaultSite::Read, true) | (FaultSite::Write, false)
        )
    }
}

/// One armed plan plus its private progress counter.
#[derive(Debug)]
struct Armed {
    plan: FaultPlan,
    matched: u64,
}

/// Fault-injecting decorator around any [`BlockDev`].
pub struct FaultDev {
    inner: SharedDev,
    plans: Mutex<Vec<Armed>>,
}

impl FaultDev {
    /// Wrap `inner` with no faults programmed.
    pub fn new(inner: SharedDev) -> Self {
        Self {
            inner,
            plans: Mutex::new(Vec::new()),
        }
    }

    /// Program a fault. Faults are checked in insertion order; `NthOp`
    /// counting starts at this call.
    pub fn inject(&self, plan: FaultPlan) {
        self.plans.lock().push(Armed { plan, matched: 0 });
    }

    /// Remove all programmed faults.
    pub fn clear(&self) {
        self.plans.lock().clear();
    }

    fn check(&self, is_read: bool, off: u64, len: usize) -> Result<()> {
        let mut plans = self.plans.lock();
        let mut fired: Option<(usize, BlockErrorKind, u64)> = None;
        for (i, armed) in plans.iter_mut().enumerate() {
            if !armed.plan.matches_site(is_read) {
                continue;
            }
            match &armed.plan {
                FaultPlan::NthOp { n, kind, .. } => {
                    let seq = armed.matched;
                    armed.matched += 1;
                    if seq == *n {
                        fired = Some((i, *kind, seq));
                        break;
                    }
                }
                FaultPlan::Range { range, kind, .. } => {
                    let op = ByteRange::at(off, len as u64);
                    if range.intersect(&op).is_some() {
                        return Err(BlockError::new(*kind, "injected range fault"));
                    }
                }
            }
        }
        if let Some((i, kind, seq)) = fired {
            plans.remove(i); // one-shot
            return Err(BlockError::new(
                kind,
                format!("injected fault at op #{seq}"),
            ));
        }
        Ok(())
    }
}

impl BlockDev for FaultDev {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.check(true, off, buf.len())?;
        self.inner.read_at(buf, off)
    }

    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        self.check(false, off, buf.len())?;
        self.inner.write_at(buf, off)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.inner.set_len(len)
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()
    }

    fn describe(&self) -> String {
        format!("fault({})", self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDev;
    use std::sync::Arc;

    #[test]
    fn nth_read_fails_once() {
        let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
        dev.inject(FaultPlan::NthOp {
            site: FaultSite::Read,
            n: 1,
            kind: BlockErrorKind::Injected,
        });
        let mut buf = [0u8; 8];
        assert!(dev.read_at(&mut buf, 0).is_ok()); // #0
        assert!(dev.read_at(&mut buf, 0).is_err()); // #1 fires
        assert!(dev.read_at(&mut buf, 0).is_ok()); // one-shot: cleared
    }

    #[test]
    fn writes_do_not_consume_read_sequence() {
        let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
        dev.inject(FaultPlan::NthOp {
            site: FaultSite::Read,
            n: 0,
            kind: BlockErrorKind::Injected,
        });
        dev.write_at(&[1; 8], 0).unwrap(); // unaffected
        let mut buf = [0u8; 8];
        assert!(dev.read_at(&mut buf, 0).is_err());
    }

    #[test]
    fn range_fault_fires_on_overlap_only() {
        let dev = FaultDev::new(Arc::new(MemDev::with_len(1024)));
        dev.inject(FaultPlan::Range {
            site: FaultSite::Write,
            range: ByteRange::at(100, 50),
            kind: BlockErrorKind::Io,
        });
        assert!(dev.write_at(&[0; 10], 0).is_ok());
        assert!(dev.write_at(&[0; 10], 95).is_err()); // overlaps [100,150)
        assert!(dev.write_at(&[0; 10], 150).is_ok()); // adjacent, no overlap
        let mut buf = [0u8; 64];
        assert!(dev.read_at(&mut buf, 100).is_ok(), "read site not armed");
    }

    #[test]
    fn clear_removes_all_plans() {
        let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
        dev.inject(FaultPlan::Range {
            site: FaultSite::Any,
            range: ByteRange::at(0, 64),
            kind: BlockErrorKind::Io,
        });
        dev.clear();
        let mut buf = [0u8; 8];
        assert!(dev.read_at(&mut buf, 0).is_ok());
    }
}
