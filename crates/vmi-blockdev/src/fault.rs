//! Deterministic failure injection for tests.
//!
//! The cache read path must degrade gracefully when the cache fill fails
//! mid-boot (quota space errors are the designed case; transient I/O errors
//! the undesigned one). [`FaultDev`] lets tests fail the Nth read, write or
//! flush deterministically, fail every operation touching a byte range, or
//! model flaky media: every-Nth failures, K-consecutive-failures-then-
//! recover, and seeded probabilistic faults. All plans are deterministic —
//! the probabilistic plan draws from a seeded [`rand::rngs::StdRng`], so the
//! same seed reproduces the same fault sequence.

use parking_lot::{lockrank, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{BlockDev, BlockError, BlockErrorKind, ByteRange, Result, SharedDev};

/// Which operation class a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Fail reads only.
    Read,
    /// Fail writes — both scalar `write_at` and coalesced `write_run_at`
    /// (back-compat: plans written before runs existed keep firing on them).
    Write,
    /// Fail coalesced `write_run_at` operations only, leaving scalar writes
    /// alone. Lets tests target the extent-coalesced path specifically.
    WriteRun,
    /// Fail flushes only (models a torn cache flush at VM shutdown).
    Flush,
    /// Fail reads, writes and flushes alike.
    Any,
}

/// Operation class of one call into the device (the thing a [`FaultSite`]
/// filter is matched against).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Read,
    Write,
    WriteRun,
    Flush,
}

impl FaultSite {
    fn matches(self, op: OpClass) -> bool {
        matches!(
            (self, op),
            (FaultSite::Any, _)
                | (FaultSite::Read, OpClass::Read)
                | (FaultSite::Write, OpClass::Write | OpClass::WriteRun)
                | (FaultSite::WriteRun, OpClass::WriteRun)
                | (FaultSite::Flush, OpClass::Flush)
        )
    }
}

/// A programmed fault.
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Fail the `n`th matching operation (0-based) counted *from the moment
    /// the plan is armed*, once.
    NthOp {
        /// Which op class counts toward and triggers the fault.
        site: FaultSite,
        /// 0-based index (among matching ops after arming) to fail.
        n: u64,
        /// Error kind to return.
        kind: BlockErrorKind,
    },
    /// Fail every matching operation that intersects `range`. Flush
    /// operations carry no byte range and never match a `Range` plan.
    Range {
        /// Which op class the fault applies to.
        site: FaultSite,
        /// Byte range that triggers the fault.
        range: ByteRange,
        /// Error kind to return.
        kind: BlockErrorKind,
    },
    /// Fail every `n`th matching operation, persistently: ops with 1-based
    /// sequence number divisible by `n` fail. `EveryNth { n: 1 }` fails
    /// every matching op; `n: 3` fails ops #3, #6, #9, ... A flaky medium
    /// whose failure pattern is exactly periodic — the canonical workload
    /// for exercising retry loops deterministically.
    EveryNth {
        /// Which op class counts toward and triggers the fault.
        site: FaultSite,
        /// Period: every `n`th matching op fails (`n >= 1`).
        n: u64,
        /// Error kind to return.
        kind: BlockErrorKind,
    },
    /// Fail the next `k` matching operations consecutively, then recover
    /// (the plan removes itself). Models a brownout: a medium that is down
    /// for a bounded window and then heals — a retry policy with at least
    /// `k + 1` attempts rides it out.
    FailK {
        /// Which op class counts toward and triggers the fault.
        site: FaultSite,
        /// Number of consecutive matching ops to fail before recovering.
        k: u64,
        /// Error kind to return.
        kind: BlockErrorKind,
    },
    /// Fail each matching operation independently with probability `p`,
    /// drawn from a [`StdRng`] seeded with `seed` at arming time. Two
    /// `FaultDev`s armed with the same seed fail the same op sequence.
    Probabilistic {
        /// Which op class the fault applies to.
        site: FaultSite,
        /// Per-op failure probability in `[0, 1]`.
        p: f64,
        /// RNG seed; the fault sequence is a pure function of it.
        seed: u64,
        /// Error kind to return.
        kind: BlockErrorKind,
    },
}

impl FaultPlan {
    fn site(&self) -> FaultSite {
        match self {
            FaultPlan::NthOp { site, .. }
            | FaultPlan::Range { site, .. }
            | FaultPlan::EveryNth { site, .. }
            | FaultPlan::FailK { site, .. }
            | FaultPlan::Probabilistic { site, .. } => *site,
        }
    }
}

/// One armed plan plus its private progress state.
#[derive(Debug)]
struct Armed {
    plan: FaultPlan,
    matched: u64,
    rng: Option<StdRng>,
}

/// What `check` decided for one plan.
enum Verdict {
    Pass,
    Fire { kind: BlockErrorKind, msg: String },
    FireAndRemove { kind: BlockErrorKind, msg: String },
}

/// Fault-injecting decorator around any [`BlockDev`].
///
/// Thread-safety: the armed plans (including their sequence counters and
/// per-plan RNGs) live under one mutex, and [`FaultDev::check`] runs the
/// whole match-count-fire decision in a single lock hold — concurrent ops
/// draw distinct sequence numbers, so an `NthOp` plan fires exactly once
/// no matter how many threads race it. The order in which racing ops draw
/// numbers is whichever serialization the lock gives.
pub struct FaultDev {
    inner: SharedDev,
    plans: Mutex<Vec<Armed>>,
}

impl FaultDev {
    /// Wrap `inner` with no faults programmed.
    pub fn new(inner: SharedDev) -> Self {
        Self {
            inner,
            plans: {
                let plans = Mutex::new(Vec::new());
                plans.set_rank(lockrank::DEV_FAULT);
                plans
            },
        }
    }

    /// Program a fault. Faults are checked in insertion order; sequence
    /// counting (`NthOp`, `EveryNth`, `FailK`, `Probabilistic`) starts at
    /// this call.
    pub fn inject(&self, plan: FaultPlan) {
        let rng = match &plan {
            FaultPlan::Probabilistic { seed, .. } => Some(StdRng::seed_from_u64(*seed)),
            _ => None,
        };
        self.plans.lock().push(Armed {
            plan,
            matched: 0,
            rng,
        });
    }

    /// Remove all programmed faults.
    pub fn clear(&self) {
        self.plans.lock().clear();
    }

    fn check(&self, op: OpClass, off: u64, len: usize) -> Result<()> {
        let mut plans = self.plans.lock();
        let mut fired: Option<(usize, BlockErrorKind, String, bool)> = None;
        for (i, armed) in plans.iter_mut().enumerate() {
            if !armed.plan.site().matches(op) {
                continue;
            }
            let verdict = match &armed.plan {
                FaultPlan::NthOp { n, kind, .. } => {
                    let seq = armed.matched;
                    armed.matched += 1;
                    if seq == *n {
                        Verdict::FireAndRemove {
                            kind: *kind,
                            msg: format!("injected fault at op #{seq}"),
                        }
                    } else {
                        Verdict::Pass
                    }
                }
                FaultPlan::Range { range, kind, .. } => {
                    // Flush carries no byte range and cannot intersect one.
                    let overlaps = op != OpClass::Flush
                        && range.intersect(&ByteRange::at(off, len as u64)).is_some();
                    if overlaps {
                        Verdict::Fire {
                            kind: *kind,
                            msg: "injected range fault".into(),
                        }
                    } else {
                        Verdict::Pass
                    }
                }
                FaultPlan::EveryNth { n, kind, .. } => {
                    let n = (*n).max(1);
                    armed.matched += 1;
                    if armed.matched % n == 0 {
                        Verdict::Fire {
                            kind: *kind,
                            msg: format!("injected periodic fault (every {n}th op)"),
                        }
                    } else {
                        Verdict::Pass
                    }
                }
                FaultPlan::FailK { k, kind, .. } => {
                    let seq = armed.matched;
                    armed.matched += 1;
                    if seq + 1 < *k {
                        Verdict::Fire {
                            kind: *kind,
                            msg: format!("injected brownout fault #{seq}"),
                        }
                    } else if seq + 1 == *k {
                        // Last failure of the brownout: recover afterwards.
                        Verdict::FireAndRemove {
                            kind: *kind,
                            msg: format!("injected brownout fault #{seq} (recovering)"),
                        }
                    } else {
                        Verdict::Pass
                    }
                }
                FaultPlan::Probabilistic { p, kind, .. } => {
                    let hit = armed
                        .rng
                        .as_mut()
                        .map(|rng| rng.gen_bool(p.clamp(0.0, 1.0)))
                        .unwrap_or(false);
                    if hit {
                        Verdict::Fire {
                            kind: *kind,
                            msg: "injected probabilistic fault".into(),
                        }
                    } else {
                        Verdict::Pass
                    }
                }
            };
            match verdict {
                Verdict::Pass => {}
                Verdict::Fire { kind, msg } => {
                    fired = Some((i, kind, msg, false));
                    break;
                }
                Verdict::FireAndRemove { kind, msg } => {
                    fired = Some((i, kind, msg, true));
                    break;
                }
            }
        }
        if let Some((i, kind, msg, remove)) = fired {
            if remove {
                plans.remove(i);
            }
            return Err(BlockError::new(kind, msg));
        }
        Ok(())
    }
}

impl BlockDev for FaultDev {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.check(OpClass::Read, off, buf.len())?;
        self.inner.read_at(buf, off)
    }

    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        self.check(OpClass::Write, off, buf.len())?;
        self.inner.write_at(buf, off)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.inner.set_len(len)
    }

    fn flush(&self) -> Result<()> {
        self.check(OpClass::Flush, 0, 0)?;
        self.inner.flush()
    }

    // A coalesced run consumes exactly one sequence slot per plan and is
    // range-matched against the whole run, so fault schedules stay
    // deterministic regardless of how callers batch their clusters.
    fn read_run_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.check(OpClass::Read, off, buf.len())?;
        self.inner.read_run_at(buf, off)
    }

    fn write_run_at(&self, buf: &[u8], off: u64) -> Result<()> {
        self.check(OpClass::WriteRun, off, buf.len())?;
        self.inner.write_run_at(buf, off)
    }

    fn inner_dev(&self) -> Option<&SharedDev> {
        Some(&self.inner)
    }

    fn describe(&self) -> String {
        format!("fault({})", self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDev;
    use std::sync::Arc;

    #[test]
    fn nth_read_fails_once() {
        let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
        dev.inject(FaultPlan::NthOp {
            site: FaultSite::Read,
            n: 1,
            kind: BlockErrorKind::Injected,
        });
        let mut buf = [0u8; 8];
        assert!(dev.read_at(&mut buf, 0).is_ok()); // #0
        assert!(dev.read_at(&mut buf, 0).is_err()); // #1 fires
        assert!(dev.read_at(&mut buf, 0).is_ok()); // one-shot: cleared
    }

    #[test]
    fn writes_do_not_consume_read_sequence() {
        let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
        dev.inject(FaultPlan::NthOp {
            site: FaultSite::Read,
            n: 0,
            kind: BlockErrorKind::Injected,
        });
        dev.write_at(&[1; 8], 0).unwrap(); // unaffected
        let mut buf = [0u8; 8];
        assert!(dev.read_at(&mut buf, 0).is_err());
    }

    #[test]
    fn range_fault_fires_on_overlap_only() {
        let dev = FaultDev::new(Arc::new(MemDev::with_len(1024)));
        dev.inject(FaultPlan::Range {
            site: FaultSite::Write,
            range: ByteRange::at(100, 50),
            kind: BlockErrorKind::Io,
        });
        assert!(dev.write_at(&[0; 10], 0).is_ok());
        assert!(dev.write_at(&[0; 10], 95).is_err()); // overlaps [100,150)
        assert!(dev.write_at(&[0; 10], 150).is_ok()); // adjacent, no overlap
        let mut buf = [0u8; 64];
        assert!(dev.read_at(&mut buf, 100).is_ok(), "read site not armed");
    }

    #[test]
    fn clear_removes_all_plans() {
        let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
        dev.inject(FaultPlan::Range {
            site: FaultSite::Any,
            range: ByteRange::at(0, 64),
            kind: BlockErrorKind::Io,
        });
        dev.clear();
        let mut buf = [0u8; 8];
        assert!(dev.read_at(&mut buf, 0).is_ok());
    }

    #[test]
    fn flush_site_faults_flush_only() {
        let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
        dev.inject(FaultPlan::NthOp {
            site: FaultSite::Flush,
            n: 0,
            kind: BlockErrorKind::Io,
        });
        let mut buf = [0u8; 8];
        dev.read_at(&mut buf, 0).unwrap();
        dev.write_at(&[1; 8], 0).unwrap();
        assert!(dev.flush().is_err(), "first flush faults");
        assert!(dev.flush().is_ok(), "one-shot");
    }

    #[test]
    fn any_site_includes_flush() {
        let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
        dev.inject(FaultPlan::NthOp {
            site: FaultSite::Any,
            n: 2,
            kind: BlockErrorKind::Io,
        });
        let mut buf = [0u8; 8];
        dev.read_at(&mut buf, 0).unwrap(); // #0
        dev.write_at(&[1; 8], 0).unwrap(); // #1
        assert!(dev.flush().is_err(), "flush is op #2 under Any");
    }

    #[test]
    fn range_plans_never_match_flush() {
        let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
        dev.inject(FaultPlan::Range {
            site: FaultSite::Any,
            range: ByteRange::at(0, 64),
            kind: BlockErrorKind::Io,
        });
        assert!(dev.flush().is_ok(), "flush has no byte range");
    }

    #[test]
    fn every_nth_is_periodic_and_persistent() {
        let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
        dev.inject(FaultPlan::EveryNth {
            site: FaultSite::Read,
            n: 3,
            kind: BlockErrorKind::Injected,
        });
        let mut buf = [0u8; 8];
        let results: Vec<bool> = (0..9).map(|_| dev.read_at(&mut buf, 0).is_ok()).collect();
        assert_eq!(
            results,
            vec![true, true, false, true, true, false, true, true, false]
        );
    }

    #[test]
    fn fail_k_recovers_after_k_failures() {
        let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
        dev.inject(FaultPlan::FailK {
            site: FaultSite::Read,
            k: 3,
            kind: BlockErrorKind::Injected,
        });
        let mut buf = [0u8; 8];
        for i in 0..3 {
            assert!(dev.read_at(&mut buf, 0).is_err(), "brownout op #{i}");
        }
        for _ in 0..4 {
            assert!(dev.read_at(&mut buf, 0).is_ok(), "recovered");
        }
        assert!(dev.plans.lock().is_empty(), "plan removed itself");
    }

    #[test]
    fn write_run_site_matrix() {
        // Pin the FaultSite × OpClass matrix for the run/scalar write split:
        // Write matches both (back-compat), WriteRun matches runs only, Any
        // matches everything, Read/Flush match neither kind of write.
        let hits = |site: FaultSite| -> (bool, bool) {
            let scalar = {
                let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
                dev.inject(FaultPlan::EveryNth {
                    site,
                    n: 1,
                    kind: BlockErrorKind::Injected,
                });
                dev.write_at(&[0; 8], 0).is_err()
            };
            let run = {
                let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
                dev.inject(FaultPlan::EveryNth {
                    site,
                    n: 1,
                    kind: BlockErrorKind::Injected,
                });
                dev.write_run_at(&[0; 8], 0).is_err()
            };
            (scalar, run)
        };
        assert_eq!(hits(FaultSite::Write), (true, true), "Write matches both");
        assert_eq!(hits(FaultSite::WriteRun), (false, true), "WriteRun: runs");
        assert_eq!(hits(FaultSite::Any), (true, true), "Any matches both");
        assert_eq!(hits(FaultSite::Read), (false, false), "Read matches none");
        assert_eq!(hits(FaultSite::Flush), (false, false), "Flush: none");
    }

    #[test]
    fn write_run_consumes_write_site_sequence() {
        // A coalesced run counts toward a Write-site sequence plan exactly
        // like a scalar write (one slot per run).
        let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
        dev.inject(FaultPlan::NthOp {
            site: FaultSite::Write,
            n: 1,
            kind: BlockErrorKind::Injected,
        });
        assert!(dev.write_run_at(&[0; 8], 0).is_ok()); // #0
        assert!(dev.write_at(&[0; 8], 8).is_err()); // #1 fires
    }

    #[test]
    fn probabilistic_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
            dev.inject(FaultPlan::Probabilistic {
                site: FaultSite::Read,
                p: 0.5,
                seed,
                kind: BlockErrorKind::Injected,
            });
            let mut buf = [0u8; 8];
            (0..64).map(|_| dev.read_at(&mut buf, 0).is_ok()).collect()
        };
        assert_eq!(run(42), run(42), "same seed, same fault sequence");
        assert_ne!(run(42), run(43), "different seeds diverge");
        let oks = run(42).iter().filter(|&&ok| ok).count();
        assert!((16..=48).contains(&oks), "p=0.5 over 64 ops: got {oks} oks");
    }

    #[test]
    fn probabilistic_extremes() {
        let dev = FaultDev::new(Arc::new(MemDev::with_len(64)));
        dev.inject(FaultPlan::Probabilistic {
            site: FaultSite::Write,
            p: 1.0,
            seed: 7,
            kind: BlockErrorKind::Io,
        });
        assert!(dev.write_at(&[0; 8], 0).is_err(), "p=1 always fires");
        dev.clear();
        dev.inject(FaultPlan::Probabilistic {
            site: FaultSite::Write,
            p: 0.0,
            seed: 7,
            kind: BlockErrorKind::Io,
        });
        assert!(dev.write_at(&[0; 8], 0).is_ok(), "p=0 never fires");
    }
}
