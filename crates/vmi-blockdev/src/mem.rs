//! Contiguous in-memory device — models `tmpfs` and node RAM.

use parking_lot::{lockrank, RwLock};

use crate::dev::check_bounds;
use crate::{BlockDev, Result};

/// A heap-backed block device.
///
/// This is the "memory" medium of the paper: caches created on compute-node
/// memory to keep cache writes off the boot critical path (§5.1, Fig. 7),
/// and the storage node's `tmpfs` exports (§5). Writes past the current end
/// grow the buffer, zero-filling any gap, like a POSIX file.
#[derive(Debug)]
pub struct MemDev {
    data: RwLock<Vec<u8>>,
}

impl Default for MemDev {
    fn default() -> Self {
        Self::new()
    }
}

impl MemDev {
    /// An empty device of length zero.
    pub fn new() -> Self {
        Self::from_vec(Vec::new())
    }

    /// A zero-filled device of `len` bytes.
    pub fn with_len(len: u64) -> Self {
        Self::from_vec(vec![0; len as usize])
    }

    /// A device initialized with `content`.
    pub fn from_vec(content: Vec<u8>) -> Self {
        let data = RwLock::new(content);
        data.set_rank(lockrank::DEV_LEAF);
        Self { data }
    }

    /// Clone out the full contents (test/diagnostic helper).
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.read().clone()
    }
}

impl BlockDev for MemDev {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        let data = self.data.read();
        check_bounds(off, buf.len(), data.len() as u64)?;
        let off = off as usize;
        buf.copy_from_slice(&data[off..off + buf.len()]);
        Ok(())
    }

    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        let mut data = self.data.write();
        let end = off as usize + buf.len();
        if end > data.len() {
            data.resize(end, 0);
        }
        let off = off as usize;
        data[off..end].copy_from_slice(buf);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.data.read().len() as u64
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.data.write().resize(len as usize, 0);
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    fn describe(&self) -> String {
        format!("mem({} B)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockErrorKind;

    #[test]
    fn write_grows_and_zero_fills_gap() {
        let dev = MemDev::new();
        dev.write_at(b"xy", 10).unwrap();
        assert_eq!(dev.len(), 12);
        let mut buf = [1u8; 12];
        dev.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf[..10], &[0; 10]);
        assert_eq!(&buf[10..], b"xy");
    }

    #[test]
    fn read_past_end_errors() {
        let dev = MemDev::with_len(4);
        let mut buf = [0u8; 8];
        let err = dev.read_at(&mut buf, 0).unwrap_err();
        assert_eq!(err.kind(), BlockErrorKind::OutOfBounds);
    }

    #[test]
    fn empty_write_is_noop_even_past_end() {
        let dev = MemDev::new();
        dev.write_at(&[], 1000).unwrap();
        assert_eq!(dev.len(), 0);
        assert!(dev.is_empty());
    }

    #[test]
    fn set_len_shrinks_and_grows() {
        let dev = MemDev::from_vec(vec![5; 8]);
        dev.set_len(4).unwrap();
        assert_eq!(dev.to_vec(), vec![5; 4]);
        dev.set_len(6).unwrap();
        assert_eq!(dev.to_vec(), vec![5, 5, 5, 5, 0, 0]);
    }

    #[test]
    fn overwrite_in_place() {
        let dev = MemDev::from_vec(vec![0; 8]);
        dev.write_at(&[1, 2, 3], 2).unwrap();
        assert_eq!(dev.to_vec(), vec![0, 0, 1, 2, 3, 0, 0, 0]);
        assert_eq!(dev.len(), 8);
    }

    #[test]
    fn describe_mentions_medium() {
        assert!(MemDev::new().describe().starts_with("mem("));
    }
}
