//! Event recorders: where emitted [`Event`]s go.
//!
//! [`JsonlSink`] buffers one JSON line per event — a replayable stream that
//! tests and tools can parse back with [`Event::parse_line`]. [`NullRecorder`]
//! drops everything and exists to measure instrumentation overhead.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::Event;

/// Consumer of emitted events. `t_ns` is the [`Clock`](crate::Clock)
/// timestamp at emission.
pub trait Recorder: Send + Sync {
    /// Handle one event.
    fn record(&self, t_ns: u64, ev: &Event);
}

/// Buffers events as JSON lines (one object per line, see
/// [`Event::to_json_line`]).
///
/// The default ([`JsonlSink::new`]) keeps every line in memory — right for
/// tests and short experiments. Long simulations use
/// [`JsonlSink::with_writer`]: every line streams to a `Write` target and
/// only a bounded tail stays in memory, so the sink's footprint is constant
/// no matter how long the run.
pub struct JsonlSink {
    /// In-memory lines; bounded to the most recent `tail_cap` when set.
    lines: Mutex<VecDeque<String>>,
    /// `None` = unbounded (buffer-everything mode).
    tail_cap: Option<usize>,
    /// Streaming target receiving every line (plus newline) as it is
    /// recorded.
    writer: Option<Mutex<Box<dyn Write + Send>>>,
    /// Lines recorded over the sink's lifetime (≥ the buffered tail).
    total: AtomicU64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("total", &self.total.load(Ordering::Relaxed))
            .field("tail_cap", &self.tail_cap)
            .field("streaming", &self.writer.is_some())
            .finish()
    }
}

impl Default for JsonlSink {
    fn default() -> Self {
        Self {
            lines: Mutex::new(VecDeque::new()),
            tail_cap: None,
            writer: None,
            total: AtomicU64::new(0),
        }
    }
}

impl JsonlSink {
    /// A fresh, shareable sink buffering every line in memory.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A streaming sink: every recorded line is written (newline-terminated)
    /// to `w` immediately, and only the most recent `tail_cap` lines are
    /// kept in memory for inspection ([`lines`](Self::lines) /
    /// [`events`](Self::events) see just that tail;
    /// [`len`](Self::len) still counts the whole stream). Write errors are
    /// swallowed — recording is infallible by contract — but the in-memory
    /// tail keeps working regardless.
    pub fn with_writer(w: impl Write + Send + 'static, tail_cap: usize) -> Arc<Self> {
        Arc::new(Self {
            lines: Mutex::new(VecDeque::with_capacity(tail_cap.min(4096))),
            tail_cap: Some(tail_cap),
            writer: Some(Mutex::new(Box::new(w))),
            total: AtomicU64::new(0),
        })
    }

    /// Copy of the buffered lines, in emission order (the full stream in
    /// buffering mode, the bounded tail in streaming mode).
    pub fn lines(&self) -> Vec<String> {
        self.lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Number of events recorded over this sink's lifetime.
    pub fn len(&self) -> usize {
        self.total.load(Ordering::Relaxed) as usize
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The buffered lines as one newline-terminated JSONL document.
    pub fn dump(&self) -> String {
        let lines = self.lines.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for l in lines.iter() {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Parse every buffered line back into `(t_ns, Event)` pairs.
    pub fn events(&self) -> Vec<(u64, Event)> {
        self.lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter_map(|l| Event::parse_line(l).ok())
            .collect()
    }

    /// Flush the streaming writer, if any.
    pub fn flush(&self) {
        if let Some(w) = &self.writer {
            let _ = w.lock().unwrap_or_else(|e| e.into_inner()).flush();
        }
    }
}

impl Recorder for JsonlSink {
    fn record(&self, t_ns: u64, ev: &Event) {
        let line = ev.to_json_line(t_ns);
        if let Some(w) = &self.writer {
            let mut w = w.lock().unwrap_or_else(|e| e.into_inner());
            let _ = w.write_all(line.as_bytes());
            let _ = w.write_all(b"\n");
        }
        let mut lines = self.lines.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cap) = self.tail_cap {
            while lines.len() >= cap.max(1) {
                lines.pop_front();
            }
            if cap == 0 {
                self.total.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        lines.push_back(line);
        self.total.fetch_add(1, Ordering::Relaxed);
    }
}

/// Discards every event. Useful for benchmarking the cost of an *enabled*
/// pipeline without I/O.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _t_ns: u64, _ev: &Event) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_buffers_and_replays() {
        let sink = JsonlSink::new();
        assert!(sink.is_empty());
        sink.record(7, &Event::CacheHit { bytes: 512 });
        sink.record(9, &Event::CacheMiss { bytes: 64 });
        assert_eq!(sink.len(), 2);
        let evs = sink.events();
        assert_eq!(evs[0], (7, Event::CacheHit { bytes: 512 }));
        assert_eq!(evs[1], (9, Event::CacheMiss { bytes: 64 }));
        assert_eq!(sink.dump().lines().count(), 2);
    }

    #[test]
    fn null_recorder_discards() {
        NullRecorder.record(1, &Event::CacheHit { bytes: 1 });
    }

    /// `Write` target backed by a shared buffer, so the test can read back
    /// what the sink streamed out.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streaming_sink_bounds_memory_but_writes_everything() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::with_writer(buf.clone(), 3);
        for i in 0..10 {
            sink.record(i, &Event::CacheHit { bytes: i });
        }
        sink.flush();
        // The writer saw all ten lines...
        let streamed = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(streamed.lines().count(), 10);
        assert!(streamed.starts_with(r#"{"t":0,"ev":"cache_hit","bytes":0}"#));
        // ...while memory holds only the 3-line tail, and len() counts all.
        assert_eq!(sink.len(), 10);
        let tail = sink.events();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0], (7, Event::CacheHit { bytes: 7 }));
        assert_eq!(tail[2], (9, Event::CacheHit { bytes: 9 }));
        assert_eq!(sink.dump().lines().count(), 3);
        let dbg = format!("{sink:?}");
        assert!(
            dbg.contains("total: 10") && dbg.contains("streaming: true"),
            "{dbg}"
        );
    }

    #[test]
    fn zero_cap_tail_keeps_nothing_but_counts() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::with_writer(buf.clone(), 0);
        sink.record(1, &Event::CacheMiss { bytes: 2 });
        sink.record(2, &Event::CacheMiss { bytes: 3 });
        assert_eq!(sink.len(), 2);
        assert!(sink.lines().is_empty());
        assert_eq!(
            String::from_utf8(buf.0.lock().unwrap().clone())
                .unwrap()
                .lines()
                .count(),
            2
        );
    }
}
