//! Event recorders: where emitted [`Event`]s go.
//!
//! [`JsonlSink`] buffers one JSON line per event — a replayable stream that
//! tests and tools can parse back with [`Event::parse_line`]. [`NullRecorder`]
//! drops everything and exists to measure instrumentation overhead.

use std::sync::{Arc, Mutex};

use crate::event::Event;

/// Consumer of emitted events. `t_ns` is the [`Clock`](crate::Clock)
/// timestamp at emission.
pub trait Recorder: Send + Sync {
    /// Handle one event.
    fn record(&self, t_ns: u64, ev: &Event);
}

/// Buffers events as JSON lines (one object per line, see
/// [`Event::to_json_line`]).
#[derive(Debug, Default)]
pub struct JsonlSink {
    lines: Mutex<Vec<String>>,
}

impl JsonlSink {
    /// A fresh, shareable sink.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Copy of all buffered lines, in emission order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole stream as one newline-terminated JSONL document.
    pub fn dump(&self) -> String {
        let lines = self.lines.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for l in lines.iter() {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Parse every buffered line back into `(t_ns, Event)` pairs.
    pub fn events(&self) -> Vec<(u64, Event)> {
        self.lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter_map(|l| Event::parse_line(l).ok())
            .collect()
    }
}

impl Recorder for JsonlSink {
    fn record(&self, t_ns: u64, ev: &Event) {
        let line = ev.to_json_line(t_ns);
        self.lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(line);
    }
}

/// Discards every event. Useful for benchmarking the cost of an *enabled*
/// pipeline without I/O.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _t_ns: u64, _ev: &Event) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_buffers_and_replays() {
        let sink = JsonlSink::new();
        assert!(sink.is_empty());
        sink.record(7, &Event::CacheHit { bytes: 512 });
        sink.record(9, &Event::CacheMiss { bytes: 64 });
        assert_eq!(sink.len(), 2);
        let evs = sink.events();
        assert_eq!(evs[0], (7, Event::CacheHit { bytes: 512 }));
        assert_eq!(evs[1], (9, Event::CacheMiss { bytes: 64 }));
        assert_eq!(sink.dump().lines().count(), 2);
    }

    #[test]
    fn null_recorder_discards() {
        NullRecorder.record(1, &Event::CacheHit { bytes: 1 });
    }
}
