//! Typed observability events and their JSONL wire form.
//!
//! Every event serializes to one flat JSON object per line:
//!
//! ```text
//! {"t":1234,"ev":"cache_hit","bytes":512}
//! ```
//!
//! `t` is the recorder's clock in nanoseconds (simulated time inside
//! experiments, wall time for live servers), `ev` names the variant in
//! snake_case, and the remaining keys are the variant's fields. The format
//! is hand-rolled (this crate is dependency-free) but round-trips exactly:
//! [`Event::to_json_line`] ∘ [`Event::parse_line`] is the identity, which
//! is what makes recorded streams replayable by tests and tools.

use std::fmt::Write as _;

/// One structured observability event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An image (or chain layer) was opened. `kind` is `base`, `cow`,
    /// `cache` or `raw`; `depth` is the layer's distance from the chain top.
    ChainOpen {
        /// Backing-file name or a caller-supplied label.
        image: String,
        /// Layer kind: `base` / `cow` / `cache` / `raw`.
        kind: String,
        /// Whether the layer was opened writable (the §4.3 flag dance).
        writable: bool,
        /// Distance from the top of the chain (top = 0).
        depth: u64,
    },
    /// Guest bytes served from a cache image's own clusters.
    CacheHit {
        /// Bytes served locally.
        bytes: u64,
    },
    /// Guest bytes a cache image had to fetch from its backing chain.
    CacheMiss {
        /// Bytes fetched from the backing chain.
        bytes: u64,
    },
    /// Bytes written into a cache by one copy-on-read cluster fill.
    CorFill {
        /// Bytes written into the cache layer.
        bytes: u64,
    },
    /// Copy-on-read hit the quota and latched off (emitted exactly once
    /// per latch transition).
    SpaceErrorLatched {
        /// Cache bytes used at the moment of the space error.
        used: u64,
        /// The configured quota.
        quota: u64,
    },
    /// A discard freed quota and re-armed copy-on-read.
    QuotaRearmed {
        /// Cache bytes used after the discard.
        used: u64,
        /// The configured quota.
        quota: u64,
    },
    /// A VM boot crossed a phase boundary.
    BootPhase {
        /// VM index within its experiment.
        vm: u64,
        /// Phase label (e.g. `issue`, `connect_back`).
        phase: String,
    },
    /// The cache-aware scheduler placed a VM.
    SchedPlace {
        /// VMI name requested.
        vmi: String,
        /// Chosen node id.
        node: u64,
        /// Whether the node held a warm cache for the VMI.
        cache_hit: bool,
    },
    /// A cache pool evicted an entry to admit a new cache.
    CacheEvict {
        /// Node owning the pool.
        node: u64,
        /// Evicted VMI name.
        vmi: String,
        /// Size of the evicted cache image.
        bytes: u64,
    },
    /// A transient block-device fault triggered one retry.
    RetryAttempt {
        /// Operation class: `read`, `write`, `set_len` or `flush`.
        op: String,
        /// 1-based retry number within the failing operation.
        attempt: u64,
        /// Backoff delay charged before this retry, ns.
        delay_ns: u64,
    },
    /// A cache image latched into degraded mode (emitted exactly once per
    /// latch transition): fills stop, the chain keeps serving from backing.
    CacheDegraded {
        /// What latched the cache: `fill_failed` or `read_failed`.
        reason: String,
        /// Cache bytes used at the moment of the transition.
        used: u64,
    },
    /// A crash-consistency scrub of a cache image finished.
    ScrubResult {
        /// Outcome: `clean`, `repaired` or `discarded`.
        verdict: String,
        /// Cache bytes actually referenced by the mapping tables.
        used: u64,
        /// The configured quota.
        quota: u64,
    },
    /// The invariant checker (`vmi-audit`) found one broken invariant.
    AuditViolation {
        /// Stable violation-kind label, e.g. `used_size_mismatch`.
        kind: String,
        /// `warning` (repairable) or `error` (structural).
        severity: String,
        /// Human-readable specifics (offsets, indices, expected vs. found).
        detail: String,
    },
    /// A cluster node failed (injected or detected).
    NodeFailed {
        /// Failed node id.
        node: u64,
    },
    /// A boot was re-placed on another node after its node failed.
    BootRescheduled {
        /// VM index within its experiment / cloud run.
        vm: u64,
        /// Node the boot was originally placed on.
        from_node: u64,
        /// Node the boot was retried on.
        to_node: u64,
    },
    /// The crash-recovery engine finished one image (superseding scrubs for
    /// cache opens after PR 7).
    RecoveryResult {
        /// Outcome: `clean`, `repaired` or `refetch`.
        verdict: String,
        /// Repairs applied across all recovery passes.
        repairs: u64,
        /// Cache bytes recorded as used after recovery (0 on refetch).
        used: u64,
        /// The configured quota (0 on refetch).
        quota: u64,
    },
    /// A failed cluster node came back after its seeded downtime, ran
    /// recovery over its local cache set and rejoined the fleet.
    NodeRestarted {
        /// Restarted node id.
        node: u64,
        /// Caches re-adopted warm (recovery said clean/repaired).
        readopted: u64,
        /// Caches dropped for a cold refetch (recovery said refetch).
        refetched: u64,
    },
    /// The extent-coalescing I/O engine served a multi-cluster run as one
    /// device operation (emitted only for runs of 2+ clusters — single
    /// clusters are indistinguishable from the scalar path).
    RunCoalesced {
        /// Operation class: `read`, `fill` or `write`.
        op: String,
        /// Clusters covered by the run.
        clusters: u64,
        /// Bytes moved by the single device op.
        bytes: u64,
    },
    /// A causal span opened. Spans form per-request trace trees: `id` is
    /// unique within one recorded stream (a per-`Obs` sequence, offset by a
    /// per-node base under the parallel runner), `parent` links to the
    /// enclosing span (`0` = root). The matching [`Event::SpanEnd`] carries
    /// the same `id`; the two timestamps bound the span's duration.
    SpanStart {
        /// Stream-unique span id (never 0).
        id: u64,
        /// Enclosing span id, or 0 for a root span.
        parent: u64,
        /// Span kind, dot-namespaced: `boot.vm`, `qcow.read`, `dev.write`,
        /// `l2.lookup`, `cor.fill`, `retry.backoff`, ...
        kind: String,
        /// Free-form `k=v` attributes (e.g. `layer=cache bytes=4096`).
        detail: String,
    },
    /// A causal span closed; `id` matches the opening [`Event::SpanStart`].
    SpanEnd {
        /// Id of the span being closed.
        id: u64,
    },
}

impl Event {
    /// The snake_case wire name of this variant (the `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ChainOpen { .. } => "chain_open",
            Event::CacheHit { .. } => "cache_hit",
            Event::CacheMiss { .. } => "cache_miss",
            Event::CorFill { .. } => "cor_fill",
            Event::SpaceErrorLatched { .. } => "space_error_latched",
            Event::QuotaRearmed { .. } => "quota_rearmed",
            Event::BootPhase { .. } => "boot_phase",
            Event::SchedPlace { .. } => "sched_place",
            Event::CacheEvict { .. } => "cache_evict",
            Event::RetryAttempt { .. } => "retry_attempt",
            Event::CacheDegraded { .. } => "cache_degraded",
            Event::ScrubResult { .. } => "scrub_result",
            Event::AuditViolation { .. } => "audit_violation",
            Event::NodeFailed { .. } => "node_failed",
            Event::BootRescheduled { .. } => "boot_rescheduled",
            Event::RecoveryResult { .. } => "recovery_result",
            Event::NodeRestarted { .. } => "node_restarted",
            Event::RunCoalesced { .. } => "run_coalesced",
            Event::SpanStart { .. } => "span_start",
            Event::SpanEnd { .. } => "span_end",
        }
    }

    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_json_line(&self, t: u64) -> String {
        let mut s = String::with_capacity(64);
        let _ = write!(s, "{{\"t\":{t},\"ev\":\"{}\"", self.kind());
        match self {
            Event::ChainOpen {
                image,
                kind,
                writable,
                depth,
            } => {
                push_str_field(&mut s, "image", image);
                push_str_field(&mut s, "kind", kind);
                let _ = write!(s, ",\"writable\":{writable},\"depth\":{depth}");
            }
            Event::CacheHit { bytes } | Event::CacheMiss { bytes } | Event::CorFill { bytes } => {
                let _ = write!(s, ",\"bytes\":{bytes}");
            }
            Event::SpaceErrorLatched { used, quota } | Event::QuotaRearmed { used, quota } => {
                let _ = write!(s, ",\"used\":{used},\"quota\":{quota}");
            }
            Event::BootPhase { vm, phase } => {
                let _ = write!(s, ",\"vm\":{vm}");
                push_str_field(&mut s, "phase", phase);
            }
            Event::SchedPlace {
                vmi,
                node,
                cache_hit,
            } => {
                push_str_field(&mut s, "vmi", vmi);
                let _ = write!(s, ",\"node\":{node},\"cache_hit\":{cache_hit}");
            }
            Event::CacheEvict { node, vmi, bytes } => {
                let _ = write!(s, ",\"node\":{node}");
                push_str_field(&mut s, "vmi", vmi);
                let _ = write!(s, ",\"bytes\":{bytes}");
            }
            Event::RetryAttempt {
                op,
                attempt,
                delay_ns,
            } => {
                push_str_field(&mut s, "op", op);
                let _ = write!(s, ",\"attempt\":{attempt},\"delay_ns\":{delay_ns}");
            }
            Event::CacheDegraded { reason, used } => {
                push_str_field(&mut s, "reason", reason);
                let _ = write!(s, ",\"used\":{used}");
            }
            Event::ScrubResult {
                verdict,
                used,
                quota,
            } => {
                push_str_field(&mut s, "verdict", verdict);
                let _ = write!(s, ",\"used\":{used},\"quota\":{quota}");
            }
            Event::AuditViolation {
                kind,
                severity,
                detail,
            } => {
                push_str_field(&mut s, "kind", kind);
                push_str_field(&mut s, "severity", severity);
                push_str_field(&mut s, "detail", detail);
            }
            Event::NodeFailed { node } => {
                let _ = write!(s, ",\"node\":{node}");
            }
            Event::BootRescheduled {
                vm,
                from_node,
                to_node,
            } => {
                let _ = write!(
                    s,
                    ",\"vm\":{vm},\"from_node\":{from_node},\"to_node\":{to_node}"
                );
            }
            Event::RecoveryResult {
                verdict,
                repairs,
                used,
                quota,
            } => {
                push_str_field(&mut s, "verdict", verdict);
                let _ = write!(
                    s,
                    ",\"repairs\":{repairs},\"used\":{used},\"quota\":{quota}"
                );
            }
            Event::NodeRestarted {
                node,
                readopted,
                refetched,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{node},\"readopted\":{readopted},\"refetched\":{refetched}"
                );
            }
            Event::RunCoalesced {
                op,
                clusters,
                bytes,
            } => {
                push_str_field(&mut s, "op", op);
                let _ = write!(s, ",\"clusters\":{clusters},\"bytes\":{bytes}");
            }
            Event::SpanStart {
                id,
                parent,
                kind,
                detail,
            } => {
                let _ = write!(s, ",\"id\":{id},\"parent\":{parent}");
                push_str_field(&mut s, "kind", kind);
                push_str_field(&mut s, "detail", detail);
            }
            Event::SpanEnd { id } => {
                let _ = write!(s, ",\"id\":{id}");
            }
        }
        s.push('}');
        s
    }

    /// Parse one JSONL line back into `(t, Event)`.
    pub fn parse_line(line: &str) -> Result<(u64, Event), ParseError> {
        let fields = parse_flat_object(line)?;
        let t = fields.u64("t")?;
        let ev = match fields.str("ev")? {
            "chain_open" => Event::ChainOpen {
                image: fields.str("image")?.to_string(),
                kind: fields.str("kind")?.to_string(),
                writable: fields.bool("writable")?,
                depth: fields.u64("depth")?,
            },
            "cache_hit" => Event::CacheHit {
                bytes: fields.u64("bytes")?,
            },
            "cache_miss" => Event::CacheMiss {
                bytes: fields.u64("bytes")?,
            },
            "cor_fill" => Event::CorFill {
                bytes: fields.u64("bytes")?,
            },
            "space_error_latched" => Event::SpaceErrorLatched {
                used: fields.u64("used")?,
                quota: fields.u64("quota")?,
            },
            "quota_rearmed" => Event::QuotaRearmed {
                used: fields.u64("used")?,
                quota: fields.u64("quota")?,
            },
            "boot_phase" => Event::BootPhase {
                vm: fields.u64("vm")?,
                phase: fields.str("phase")?.to_string(),
            },
            "sched_place" => Event::SchedPlace {
                vmi: fields.str("vmi")?.to_string(),
                node: fields.u64("node")?,
                cache_hit: fields.bool("cache_hit")?,
            },
            "cache_evict" => Event::CacheEvict {
                node: fields.u64("node")?,
                vmi: fields.str("vmi")?.to_string(),
                bytes: fields.u64("bytes")?,
            },
            "retry_attempt" => Event::RetryAttempt {
                op: fields.str("op")?.to_string(),
                attempt: fields.u64("attempt")?,
                delay_ns: fields.u64("delay_ns")?,
            },
            "cache_degraded" => Event::CacheDegraded {
                reason: fields.str("reason")?.to_string(),
                used: fields.u64("used")?,
            },
            "scrub_result" => Event::ScrubResult {
                verdict: fields.str("verdict")?.to_string(),
                used: fields.u64("used")?,
                quota: fields.u64("quota")?,
            },
            "audit_violation" => Event::AuditViolation {
                kind: fields.str("kind")?.to_string(),
                severity: fields.str("severity")?.to_string(),
                detail: fields.str("detail")?.to_string(),
            },
            "node_failed" => Event::NodeFailed {
                node: fields.u64("node")?,
            },
            "boot_rescheduled" => Event::BootRescheduled {
                vm: fields.u64("vm")?,
                from_node: fields.u64("from_node")?,
                to_node: fields.u64("to_node")?,
            },
            "recovery_result" => Event::RecoveryResult {
                verdict: fields.str("verdict")?.to_string(),
                repairs: fields.u64("repairs")?,
                used: fields.u64("used")?,
                quota: fields.u64("quota")?,
            },
            "node_restarted" => Event::NodeRestarted {
                node: fields.u64("node")?,
                readopted: fields.u64("readopted")?,
                refetched: fields.u64("refetched")?,
            },
            "run_coalesced" => Event::RunCoalesced {
                op: fields.str("op")?.to_string(),
                clusters: fields.u64("clusters")?,
                bytes: fields.u64("bytes")?,
            },
            "span_start" => Event::SpanStart {
                id: fields.u64("id")?,
                parent: fields.u64("parent")?,
                kind: fields.str("kind")?.to_string(),
                detail: fields.str("detail")?.to_string(),
            },
            "span_end" => Event::SpanEnd {
                id: fields.u64("id")?,
            },
            other => return Err(ParseError(format!("unknown event kind {other:?}"))),
        };
        Ok((t, ev))
    }
}

fn push_str_field(out: &mut String, key: &str, val: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    for c in val.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Malformed JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// A parsed flat JSON object (string / integer / bool values only).
struct Fields(Vec<(String, FieldVal)>);

enum FieldVal {
    Str(String),
    Num(u64),
    Bool(bool),
}

impl Fields {
    fn get(&self, key: &str) -> Result<&FieldVal, ParseError> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| ParseError(format!("missing field {key:?}")))
    }

    fn u64(&self, key: &str) -> Result<u64, ParseError> {
        match self.get(key)? {
            FieldVal::Num(n) => Ok(*n),
            _ => Err(ParseError(format!("field {key:?} is not a number"))),
        }
    }

    fn str(&self, key: &str) -> Result<&str, ParseError> {
        match self.get(key)? {
            FieldVal::Str(s) => Ok(s),
            _ => Err(ParseError(format!("field {key:?} is not a string"))),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, ParseError> {
        match self.get(key)? {
            FieldVal::Bool(b) => Ok(*b),
            _ => Err(ParseError(format!("field {key:?} is not a bool"))),
        }
    }
}

fn parse_flat_object(line: &str) -> Result<Fields, ParseError> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = Vec::new();
    if chars.next() != Some('{') {
        return Err(ParseError("expected '{'".into()));
    }
    loop {
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some(',') => {
                chars.next();
            }
            Some('"') => {}
            Some(c) => return Err(ParseError(format!("unexpected char {c:?}"))),
            None => return Err(ParseError("unterminated object".into())),
        }
        if chars.peek() == Some(&'"') {
            let key = parse_string(&mut chars)?;
            if chars.next() != Some(':') {
                return Err(ParseError(format!("missing ':' after key {key:?}")));
            }
            let val = match chars.peek() {
                Some('"') => FieldVal::Str(parse_string(&mut chars)?),
                Some('t') | Some('f') => {
                    let word: String = chars
                        .by_ref()
                        .take_while(|c| c.is_ascii_alphabetic())
                        .collect();
                    // take_while consumed the delimiter (',' or '}'); put the
                    // object back on track by re-checking below via remainder.
                    match word.as_str() {
                        "true" => FieldVal::Bool(true),
                        "false" => FieldVal::Bool(false),
                        w => return Err(ParseError(format!("bad literal {w:?}"))),
                    }
                }
                Some(c) if c.is_ascii_digit() || *c == '-' => {
                    let mut num = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_digit() || c == '-' {
                            num.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    FieldVal::Num(
                        num.parse::<u64>()
                            .map_err(|_| ParseError(format!("bad number {num:?}")))?,
                    )
                }
                other => return Err(ParseError(format!("unexpected value start {other:?}"))),
            };
            let consumed_delim = matches!(val, FieldVal::Bool(_));
            fields.push((key, val));
            if consumed_delim {
                // take_while already ate one ',' or '}'. If the line is
                // exhausted the object is closed; otherwise continue parsing
                // from the next key.
                if chars.peek().is_none() {
                    break;
                }
            }
        }
    }
    Ok(Fields(fields))
}

fn parse_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<String, ParseError> {
    if chars.next() != Some('"') {
        return Err(ParseError("expected '\"'".into()));
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| ParseError(format!("bad \\u escape {hex:?}")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| ParseError(format!("bad codepoint {code:#x}")))?,
                    );
                }
                other => return Err(ParseError(format!("bad escape {other:?}"))),
            },
            Some(c) => out.push(c),
            None => return Err(ParseError("unterminated string".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: u64, ev: Event) {
        let line = ev.to_json_line(t);
        let (t2, ev2) = Event::parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(t, t2, "{line}");
        assert_eq!(ev, ev2, "{line}");
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(
            0,
            Event::ChainOpen {
                image: "base.img".into(),
                kind: "base".into(),
                writable: false,
                depth: 2,
            },
        );
        roundtrip(1, Event::CacheHit { bytes: 512 });
        roundtrip(2, Event::CacheMiss { bytes: 65536 });
        roundtrip(3, Event::CorFill { bytes: 512 });
        roundtrip(
            4,
            Event::SpaceErrorLatched {
                used: 9999,
                quota: 10000,
            },
        );
        roundtrip(
            5,
            Event::QuotaRearmed {
                used: 100,
                quota: 10000,
            },
        );
        roundtrip(
            6,
            Event::BootPhase {
                vm: 3,
                phase: "connect_back".into(),
            },
        );
        roundtrip(
            7,
            Event::SchedPlace {
                vmi: "vmi-1".into(),
                node: 4,
                cache_hit: true,
            },
        );
        roundtrip(
            u64::MAX,
            Event::CacheEvict {
                node: 0,
                vmi: "centos".into(),
                bytes: 1 << 30,
            },
        );
        roundtrip(
            8,
            Event::RetryAttempt {
                op: "read".into(),
                attempt: 2,
                delay_ns: 200_000,
            },
        );
        roundtrip(
            9,
            Event::CacheDegraded {
                reason: "fill_failed".into(),
                used: 4096,
            },
        );
        roundtrip(
            10,
            Event::ScrubResult {
                verdict: "repaired".into(),
                used: 8192,
                quota: 1 << 20,
            },
        );
        roundtrip(
            11,
            Event::AuditViolation {
                kind: "used_size_mismatch".into(),
                severity: "warning".into(),
                detail: "recorded used 1024 != referenced 2048 (torn flush)".into(),
            },
        );
        roundtrip(11, Event::NodeFailed { node: 3 });
        roundtrip(
            12,
            Event::BootRescheduled {
                vm: 7,
                from_node: 3,
                to_node: 1,
            },
        );
        roundtrip(
            12,
            Event::RecoveryResult {
                verdict: "repaired".into(),
                repairs: 3,
                used: 8192,
                quota: 1 << 20,
            },
        );
        roundtrip(
            13,
            Event::NodeRestarted {
                node: 2,
                readopted: 4,
                refetched: 1,
            },
        );
        roundtrip(
            13,
            Event::RunCoalesced {
                op: "read".into(),
                clusters: 2048,
                bytes: 1 << 20,
            },
        );
        roundtrip(
            14,
            Event::SpanStart {
                id: (3 << 40) + 17,
                parent: 3 << 40,
                kind: "qcow.read".into(),
                detail: "layer=cache bytes=4096".into(),
            },
        );
        roundtrip(15, Event::SpanEnd { id: (3 << 40) + 17 });
    }

    #[test]
    fn strings_with_special_chars_roundtrip() {
        roundtrip(
            9,
            Event::ChainOpen {
                image: "we\"ird\\name\n\u{1}".into(),
                kind: "cow".into(),
                writable: true,
                depth: 0,
            },
        );
    }

    #[test]
    fn wire_form_is_stable() {
        let line = Event::CacheHit { bytes: 512 }.to_json_line(1234);
        assert_eq!(line, r#"{"t":1234,"ev":"cache_hit","bytes":512}"#);
        let line = Event::SpanStart {
            id: 2,
            parent: 1,
            kind: "dev.read".into(),
            detail: "bytes=512".into(),
        }
        .to_json_line(7);
        assert_eq!(
            line,
            r#"{"t":7,"ev":"span_start","id":2,"parent":1,"kind":"dev.read","detail":"bytes=512"}"#
        );
        let line = Event::SpanEnd { id: 2 }.to_json_line(9);
        assert_eq!(line, r#"{"t":9,"ev":"span_end","id":2}"#);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Event::parse_line("not json").is_err());
        assert!(Event::parse_line(r#"{"t":1,"ev":"martian"}"#).is_err());
        assert!(
            Event::parse_line(r#"{"t":1,"ev":"cache_hit"}"#).is_err(),
            "missing bytes"
        );
    }
}
