//! # vmi-obs — zero-cost-when-disabled observability for the VMI-cache stack
//!
//! Structured events plus lock-free metrics, designed so that production code
//! can be instrumented unconditionally:
//!
//! * [`Obs`] is the handle threaded through every layer. A **disabled** `Obs`
//!   (the default) is a `None` — every instrumentation call is a single
//!   branch, no allocation, no clock read, no event construction (events are
//!   built inside closures that never run when disabled).
//! * An **enabled** `Obs` couples a [`Clock`] (wall time, a manual test
//!   clock, or the simulator's operation clock), a [`MetricsRegistry`] of
//!   relaxed-atomic counters/gauges/log2-histograms, and a [`Recorder`] that
//!   receives typed [`Event`]s — usually a [`JsonlSink`] buffering one JSON
//!   line per event for later replay.
//! * [`RecorderHandle`] is the config-friendly wrapper: it is `Clone +
//!   Default + Debug` so it can sit in experiment config structs, and it is
//!   turned into an `Obs` with [`RecorderHandle::attach`] once the clock
//!   exists.
//!
//! ```
//! use vmi_obs::{Event, ManualClock, RecorderHandle};
//! use std::sync::Arc;
//!
//! let (handle, sink) = RecorderHandle::jsonl();
//! let clock = Arc::new(ManualClock::new(1_000));
//! let obs = handle.attach(clock.clone());
//!
//! obs.emit(|| Event::CacheHit { bytes: 512 });
//! obs.count(vmi_obs::met::CACHE_HIT_BYTES, 512);
//! clock.advance(500);
//! obs.emit(|| Event::CacheMiss { bytes: 64 });
//!
//! let evs = sink.events();
//! assert_eq!(evs[0], (1_000, Event::CacheHit { bytes: 512 }));
//! assert_eq!(evs[1], (1_500, Event::CacheMiss { bytes: 64 }));
//! assert_eq!(obs.counter_value(vmi_obs::met::CACHE_HIT_BYTES), 512);
//! ```

#![forbid(unsafe_code)]

mod event;
mod metrics;
mod sink;

pub use event::{Event, ParseError};
pub use metrics::met;
pub use metrics::{Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use sink::{JsonlSink, NullRecorder, Recorder};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Source of event timestamps, in nanoseconds from an arbitrary origin.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds.
    fn now_ns(&self) -> u64;
}

/// A hand-driven clock for tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock reading `now` nanoseconds.
    pub fn new(now: u64) -> Self {
        Self {
            now: AtomicU64::new(now),
        }
    }

    /// Jump to an absolute time.
    pub fn set(&self, now: u64) {
        self.now.store(now, Ordering::Relaxed);
    }

    /// Move forward by `delta` nanoseconds.
    pub fn advance(&self, delta: u64) {
        self.now.fetch_add(delta, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// Real elapsed time since the clock was created.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl WallClock {
    /// A clock starting at zero now.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

struct ObsInner {
    clock: Arc<dyn Clock>,
    metrics: MetricsRegistry,
    rec: Arc<dyn Recorder>,
}

/// The observability handle threaded through instrumented code.
///
/// Cheap to clone (an `Option<Arc>`); the default is **disabled**, which
/// reduces every method to one branch on `None`.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Obs(enabled)"
        } else {
            "Obs(disabled)"
        })
    }
}

impl Obs {
    /// The no-op handle. All instrumentation is a single branch.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle recording events to `rec`, stamped by `clock`.
    pub fn new(clock: Arc<dyn Clock>, rec: Arc<dyn Recorder>) -> Self {
        Self {
            inner: Some(Arc::new(ObsInner {
                clock,
                metrics: MetricsRegistry::new(),
                rec,
            })),
        }
    }

    /// Whether instrumentation is live.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit one event. `make` runs only when enabled, so building the event
    /// (string clones etc.) costs nothing when observability is off.
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            let ev = make();
            inner.rec.record(inner.clock.now_ns(), &ev);
        }
    }

    /// Add `n` to counter `id`.
    pub fn count(&self, id: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter_add(id, n);
        }
    }

    /// Set gauge `id` to `v`.
    pub fn gauge(&self, id: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.gauge_set(id, v);
        }
    }

    /// Record `v` into histogram `id`.
    pub fn observe(&self, id: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(id, v);
        }
    }

    /// Snapshot of every metric, or `None` when disabled.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.metrics.snapshot())
    }

    /// Current value of counter `id` (0 when disabled or untouched).
    pub fn counter_value(&self, id: &'static str) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.metrics.counter(id))
            .unwrap_or(0)
    }

    /// Snapshot of histogram `id`, if enabled and observed.
    pub fn histogram(&self, id: &'static str) -> Option<HistogramSnapshot> {
        self.inner.as_ref().and_then(|i| i.metrics.histogram(id))
    }

    /// The clock stamping this handle's events, if enabled.
    pub fn clock(&self) -> Option<Arc<dyn Clock>> {
        self.inner.as_ref().map(|i| Arc::clone(&i.clock))
    }
}

/// A recorder choice that can live inside config structs: `Clone`, `Default`
/// (= no recording), `Debug`. Becomes an [`Obs`] once a clock is available
/// via [`RecorderHandle::attach`].
#[derive(Clone, Default)]
pub struct RecorderHandle {
    rec: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.rec.is_some() {
            "RecorderHandle(set)"
        } else {
            "RecorderHandle(none)"
        })
    }
}

impl RecorderHandle {
    /// No recording: [`attach`](Self::attach) yields a disabled [`Obs`].
    pub fn none() -> Self {
        Self::default()
    }

    /// Record to the given recorder.
    pub fn of(rec: Arc<dyn Recorder>) -> Self {
        Self { rec: Some(rec) }
    }

    /// A handle paired with a fresh [`JsonlSink`] to read events back from.
    pub fn jsonl() -> (Self, Arc<JsonlSink>) {
        let sink = JsonlSink::new();
        (Self::of(sink.clone()), sink)
    }

    /// Whether a recorder was configured.
    pub fn is_set(&self) -> bool {
        self.rec.is_some()
    }

    /// Build the [`Obs`] handle: enabled iff a recorder was configured.
    pub fn attach(&self, clock: Arc<dyn Clock>) -> Obs {
        match &self.rec {
            Some(rec) => Obs::new(clock, Arc::clone(rec)),
            None => Obs::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        let mut ran = false;
        obs.emit(|| {
            ran = true;
            Event::CacheHit { bytes: 1 }
        });
        assert!(!ran, "event closure must not run when disabled");
        obs.count(met::CACHE_HIT_BYTES, 5);
        obs.observe(met::VM_OP_NS, 5);
        assert_eq!(obs.counter_value(met::CACHE_HIT_BYTES), 0);
        assert!(obs.metrics_snapshot().is_none());
        assert!(obs.histogram(met::VM_OP_NS).is_none());
        assert_eq!(format!("{obs:?}"), "Obs(disabled)");
    }

    #[test]
    fn enabled_obs_records_and_stamps() {
        let clock = Arc::new(ManualClock::new(42));
        let sink = JsonlSink::new();
        let obs = Obs::new(clock.clone(), sink.clone());
        assert!(obs.enabled());
        obs.emit(|| Event::CorFill { bytes: 4096 });
        clock.advance(8);
        obs.emit(|| Event::QuotaRearmed { used: 1, quota: 2 });
        obs.count(met::COR_FILL_BYTES, 4096);
        obs.observe(met::VM_OP_NS, 100);
        let evs = sink.events();
        assert_eq!(evs[0], (42, Event::CorFill { bytes: 4096 }));
        assert_eq!(evs[1], (50, Event::QuotaRearmed { used: 1, quota: 2 }));
        assert_eq!(obs.counter_value(met::COR_FILL_BYTES), 4096);
        assert_eq!(obs.histogram(met::VM_OP_NS).unwrap().count, 1);
        assert_eq!(format!("{obs:?}"), "Obs(enabled)");
    }

    #[test]
    fn recorder_handle_roundtrip() {
        let none = RecorderHandle::none();
        assert!(!none.is_set());
        assert!(!none.attach(Arc::new(ManualClock::default())).enabled());
        assert_eq!(format!("{none:?}"), "RecorderHandle(none)");

        let (handle, sink) = RecorderHandle::jsonl();
        assert!(handle.is_set());
        let obs = handle.attach(Arc::new(ManualClock::new(3)));
        obs.emit(|| Event::BootPhase {
            vm: 1,
            phase: "issue".into(),
        });
        assert_eq!(sink.len(), 1);
        // The handle survives cloning into a second, independent Obs.
        let obs2 = handle.clone().attach(Arc::new(ManualClock::new(4)));
        obs2.emit(|| Event::BootPhase {
            vm: 2,
            phase: "issue".into(),
        });
        assert_eq!(sink.len(), 2, "clones share the sink");
    }

    #[test]
    fn wall_clock_advances() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
