//! # vmi-obs — zero-cost-when-disabled observability for the VMI-cache stack
//!
//! Structured events plus lock-free metrics, designed so that production code
//! can be instrumented unconditionally:
//!
//! * [`Obs`] is the handle threaded through every layer. A **disabled** `Obs`
//!   (the default) is a `None` — every instrumentation call is a single
//!   branch, no allocation, no clock read, no event construction (events are
//!   built inside closures that never run when disabled).
//! * An **enabled** `Obs` couples a [`Clock`] (wall time, a manual test
//!   clock, or the simulator's operation clock), a [`MetricsRegistry`] of
//!   relaxed-atomic counters/gauges/log2-histograms, and a [`Recorder`] that
//!   receives typed [`Event`]s — usually a [`JsonlSink`] buffering one JSON
//!   line per event for later replay.
//! * [`RecorderHandle`] is the config-friendly wrapper: it is `Clone +
//!   Default + Debug` so it can sit in experiment config structs, and it is
//!   turned into an `Obs` with [`RecorderHandle::attach`] once the clock
//!   exists.
//! * [`Obs::span`] / [`Obs::span_in`] open **causal spans** — RAII guards
//!   emitting [`Event::SpanStart`]/[`Event::SpanEnd`] pairs with
//!   deterministic ids and explicit parent links (no thread-locals), from
//!   which tools reconstruct per-request trace trees.
//!
//! ```
//! use vmi_obs::{Event, ManualClock, RecorderHandle};
//! use std::sync::Arc;
//!
//! let (handle, sink) = RecorderHandle::jsonl();
//! let clock = Arc::new(ManualClock::new(1_000));
//! let obs = handle.attach(clock.clone());
//!
//! obs.emit(|| Event::CacheHit { bytes: 512 });
//! obs.count(vmi_obs::met::CACHE_HIT_BYTES, 512);
//! clock.advance(500);
//! obs.emit(|| Event::CacheMiss { bytes: 64 });
//!
//! let evs = sink.events();
//! assert_eq!(evs[0], (1_000, Event::CacheHit { bytes: 512 }));
//! assert_eq!(evs[1], (1_500, Event::CacheMiss { bytes: 64 }));
//! assert_eq!(obs.counter_value(vmi_obs::met::CACHE_HIT_BYTES), 512);
//! ```

#![forbid(unsafe_code)]

mod event;
mod metrics;
mod sink;

pub use event::{Event, ParseError};
pub use metrics::met;
pub use metrics::{Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use sink::{JsonlSink, NullRecorder, Recorder};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Source of event timestamps, in nanoseconds from an arbitrary origin.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds.
    fn now_ns(&self) -> u64;
}

/// A hand-driven clock for tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock reading `now` nanoseconds.
    pub fn new(now: u64) -> Self {
        Self {
            now: AtomicU64::new(now),
        }
    }

    /// Jump to an absolute time.
    pub fn set(&self, now: u64) {
        self.now.store(now, Ordering::Relaxed);
    }

    /// Move forward by `delta` nanoseconds.
    pub fn advance(&self, delta: u64) {
        self.now.fetch_add(delta, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// Real elapsed time since the clock was created.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl WallClock {
    /// A clock starting at zero now.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

struct ObsInner {
    clock: Arc<dyn Clock>,
    metrics: MetricsRegistry,
    rec: Arc<dyn Recorder>,
    /// Next span id minus the base; see [`Obs::span`]. Monotonic per `Obs`,
    /// so a fixed seed fully determines every span id in a recorded stream.
    span_seq: AtomicU64,
    /// High-bits namespace OR-ed into every issued span id
    /// ([`RecorderHandle::attach_with_span_base`]).
    span_base: u64,
}

/// The observability handle threaded through instrumented code.
///
/// Cheap to clone (an `Option<Arc>`); the default is **disabled**, which
/// reduces every method to one branch on `None`.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Obs(enabled)"
        } else {
            "Obs(disabled)"
        })
    }
}

impl Obs {
    /// The no-op handle. All instrumentation is a single branch.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle recording events to `rec`, stamped by `clock`.
    pub fn new(clock: Arc<dyn Clock>, rec: Arc<dyn Recorder>) -> Self {
        Self::with_span_base(clock, rec, 0)
    }

    /// [`Obs::new`] with a span-id namespace: every span id issued by this
    /// handle is `base | seq` (seq starting at 1). The parallel experiment
    /// runner gives node *i* the base `i << 48` so per-node id sequences are
    /// deterministic in isolation and never collide once streams merge.
    pub fn with_span_base(clock: Arc<dyn Clock>, rec: Arc<dyn Recorder>, base: u64) -> Self {
        Self {
            inner: Some(Arc::new(ObsInner {
                clock,
                metrics: MetricsRegistry::new(),
                rec,
                span_seq: AtomicU64::new(0),
                span_base: base,
            })),
        }
    }

    /// Whether instrumentation is live.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit one event. `make` runs only when enabled, so building the event
    /// (string clones etc.) costs nothing when observability is off.
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            let ev = make();
            inner.rec.record(inner.clock.now_ns(), &ev);
        }
    }

    /// Add `n` to counter `id`.
    pub fn count(&self, id: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter_add(id, n);
        }
    }

    /// Set gauge `id` to `v`.
    pub fn gauge(&self, id: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.gauge_set(id, v);
        }
    }

    /// Record `v` into histogram `id`.
    pub fn observe(&self, id: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(id, v);
        }
    }

    /// Snapshot of every metric, or `None` when disabled.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.metrics.snapshot())
    }

    /// Current value of counter `id` (0 when disabled or untouched).
    pub fn counter_value(&self, id: &'static str) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.metrics.counter(id))
            .unwrap_or(0)
    }

    /// Snapshot of histogram `id`, if enabled and observed.
    pub fn histogram(&self, id: &'static str) -> Option<HistogramSnapshot> {
        self.inner.as_ref().and_then(|i| i.metrics.histogram(id))
    }

    /// The clock stamping this handle's events, if enabled.
    pub fn clock(&self) -> Option<Arc<dyn Clock>> {
        self.inner.as_ref().map(|i| Arc::clone(&i.clock))
    }

    /// Open a root span of `kind`. Emits [`Event::SpanStart`] now and
    /// [`Event::SpanEnd`] when the returned guard drops; `detail` runs only
    /// when enabled (build attribute strings inside it). When disabled this
    /// is one branch: no allocation, no clock read, no id issued.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, kind: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
        self.span_in(None, kind, detail)
    }

    /// Open a span as a child of `parent` (pass `None` for a root). This is
    /// the explicit — no thread-local — way child operations attach to the
    /// request that caused them: the parent's [`SpanGuard::id`] travels down
    /// the call chain as a plain value.
    #[must_use = "the span closes when the guard drops"]
    pub fn span_in(
        &self,
        parent: Option<SpanId>,
        kind: &'static str,
        detail: impl FnOnce() -> String,
    ) -> SpanGuard {
        match &self.inner {
            Some(inner) => {
                let id = inner.span_base | (inner.span_seq.fetch_add(1, Ordering::Relaxed) + 1);
                let parent = parent.map_or(0, |p| p.0);
                inner.rec.record(
                    inner.clock.now_ns(),
                    &Event::SpanStart {
                        id,
                        parent,
                        kind: kind.to_string(),
                        detail: detail(),
                    },
                );
                SpanGuard {
                    obs: self.clone(),
                    id,
                }
            }
            None => SpanGuard {
                obs: Obs::disabled(),
                id: 0,
            },
        }
    }
}

/// Identity of an open span, used to parent child spans explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// RAII guard for one span: created by [`Obs::span`] / [`Obs::span_in`],
/// emits the matching [`Event::SpanEnd`] on drop. A guard from a disabled
/// `Obs` is inert (id 0, nothing emitted).
#[derive(Debug)]
pub struct SpanGuard {
    obs: Obs,
    id: u64,
}

impl SpanGuard {
    /// This span's id, to parent children under it — `None` when tracing is
    /// disabled (children then become unparented no-ops too).
    pub fn id(&self) -> Option<SpanId> {
        (self.id != 0).then_some(SpanId(self.id))
    }

    /// Open a child span of this one.
    #[must_use = "the span closes when the guard drops"]
    pub fn child(&self, kind: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
        self.obs.span_in(self.id(), kind, detail)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id != 0 {
            let id = self.id;
            self.obs.emit(|| Event::SpanEnd { id });
        }
    }
}

/// A recorder choice that can live inside config structs: `Clone`, `Default`
/// (= no recording), `Debug`. Becomes an [`Obs`] once a clock is available
/// via [`RecorderHandle::attach`].
#[derive(Clone, Default)]
pub struct RecorderHandle {
    rec: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.rec.is_some() {
            "RecorderHandle(set)"
        } else {
            "RecorderHandle(none)"
        })
    }
}

impl RecorderHandle {
    /// No recording: [`attach`](Self::attach) yields a disabled [`Obs`].
    pub fn none() -> Self {
        Self::default()
    }

    /// Record to the given recorder.
    pub fn of(rec: Arc<dyn Recorder>) -> Self {
        Self { rec: Some(rec) }
    }

    /// A handle paired with a fresh [`JsonlSink`] to read events back from.
    pub fn jsonl() -> (Self, Arc<JsonlSink>) {
        let sink = JsonlSink::new();
        (Self::of(sink.clone()), sink)
    }

    /// Whether a recorder was configured.
    pub fn is_set(&self) -> bool {
        self.rec.is_some()
    }

    /// Build the [`Obs`] handle: enabled iff a recorder was configured.
    pub fn attach(&self, clock: Arc<dyn Clock>) -> Obs {
        self.attach_with_span_base(clock, 0)
    }

    /// [`attach`](Self::attach) with a span-id namespace (see
    /// [`Obs::with_span_base`]): ids issued by the resulting handle are
    /// `base | seq`, keeping per-thread sequences deterministic and
    /// collision-free when several handles feed one recorder.
    pub fn attach_with_span_base(&self, clock: Arc<dyn Clock>, base: u64) -> Obs {
        match &self.rec {
            Some(rec) => Obs::with_span_base(clock, Arc::clone(rec), base),
            None => Obs::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        let mut ran = false;
        obs.emit(|| {
            ran = true;
            Event::CacheHit { bytes: 1 }
        });
        assert!(!ran, "event closure must not run when disabled");
        obs.count(met::CACHE_HIT_BYTES, 5);
        obs.observe(met::VM_OP_NS, 5);
        assert_eq!(obs.counter_value(met::CACHE_HIT_BYTES), 0);
        assert!(obs.metrics_snapshot().is_none());
        assert!(obs.histogram(met::VM_OP_NS).is_none());
        assert_eq!(format!("{obs:?}"), "Obs(disabled)");
    }

    #[test]
    fn enabled_obs_records_and_stamps() {
        let clock = Arc::new(ManualClock::new(42));
        let sink = JsonlSink::new();
        let obs = Obs::new(clock.clone(), sink.clone());
        assert!(obs.enabled());
        obs.emit(|| Event::CorFill { bytes: 4096 });
        clock.advance(8);
        obs.emit(|| Event::QuotaRearmed { used: 1, quota: 2 });
        obs.count(met::COR_FILL_BYTES, 4096);
        obs.observe(met::VM_OP_NS, 100);
        let evs = sink.events();
        assert_eq!(evs[0], (42, Event::CorFill { bytes: 4096 }));
        assert_eq!(evs[1], (50, Event::QuotaRearmed { used: 1, quota: 2 }));
        assert_eq!(obs.counter_value(met::COR_FILL_BYTES), 4096);
        assert_eq!(obs.histogram(met::VM_OP_NS).unwrap().count, 1);
        assert_eq!(format!("{obs:?}"), "Obs(enabled)");
    }

    #[test]
    fn recorder_handle_roundtrip() {
        let none = RecorderHandle::none();
        assert!(!none.is_set());
        assert!(!none.attach(Arc::new(ManualClock::default())).enabled());
        assert_eq!(format!("{none:?}"), "RecorderHandle(none)");

        let (handle, sink) = RecorderHandle::jsonl();
        assert!(handle.is_set());
        let obs = handle.attach(Arc::new(ManualClock::new(3)));
        obs.emit(|| Event::BootPhase {
            vm: 1,
            phase: "issue".into(),
        });
        assert_eq!(sink.len(), 1);
        // The handle survives cloning into a second, independent Obs.
        let obs2 = handle.clone().attach(Arc::new(ManualClock::new(4)));
        obs2.emit(|| Event::BootPhase {
            vm: 2,
            phase: "issue".into(),
        });
        assert_eq!(sink.len(), 2, "clones share the sink");
    }

    #[test]
    fn wall_clock_advances() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn disabled_span_is_inert() {
        let obs = Obs::disabled();
        let mut ran = false;
        let sp = obs.span("qcow.read", || {
            ran = true;
            String::from("never built")
        });
        assert!(!ran, "detail closure must not run when disabled");
        assert_eq!(sp.id(), None);
        let child = sp.child("dev.read", || unreachable!("disabled child detail"));
        assert_eq!(child.id(), None);
        drop(child);
        drop(sp);
    }

    #[test]
    fn spans_nest_and_balance() {
        let clock = Arc::new(ManualClock::new(100));
        let sink = JsonlSink::new();
        let obs = Obs::new(clock.clone(), sink.clone());
        {
            let root = obs.span("boot.vm", || "vm=0".into());
            clock.advance(10);
            {
                let read = root.child("qcow.read", || "bytes=512".into());
                clock.advance(5);
                let dev = obs.span_in(read.id(), "dev.read", String::new);
                clock.advance(1);
                drop(dev);
            }
            clock.advance(4);
        }
        let evs = sink.events();
        assert_eq!(
            evs[0],
            (
                100,
                Event::SpanStart {
                    id: 1,
                    parent: 0,
                    kind: "boot.vm".into(),
                    detail: "vm=0".into(),
                }
            )
        );
        assert_eq!(
            evs[1],
            (
                110,
                Event::SpanStart {
                    id: 2,
                    parent: 1,
                    kind: "qcow.read".into(),
                    detail: "bytes=512".into(),
                }
            )
        );
        assert_eq!(
            evs[2],
            (
                115,
                Event::SpanStart {
                    id: 3,
                    parent: 2,
                    kind: "dev.read".into(),
                    detail: String::new(),
                }
            )
        );
        assert_eq!(evs[3], (116, Event::SpanEnd { id: 3 }));
        assert_eq!(evs[4], (116, Event::SpanEnd { id: 2 }));
        assert_eq!(evs[5], (120, Event::SpanEnd { id: 1 }));
    }

    #[test]
    fn span_base_namespaces_ids() {
        let (handle, sink) = RecorderHandle::jsonl();
        let obs = handle.attach_with_span_base(Arc::new(ManualClock::new(0)), 5 << 48);
        let sp = obs.span("vm.op", String::new);
        assert_eq!(sp.id(), Some(SpanId((5 << 48) | 1)));
        drop(sp);
        let sp2 = obs.span("vm.op", String::new);
        assert_eq!(sp2.id(), Some(SpanId((5 << 48) | 2)));
        drop(sp2);
        let ids: Vec<u64> = sink
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                Event::SpanStart { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![(5 << 48) | 1, (5 << 48) | 2]);
    }
}
