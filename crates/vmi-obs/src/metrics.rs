//! Lock-free metrics: counters, gauges and log2-bucket histograms keyed by
//! `&'static str` metric ids.
//!
//! The hot path is pure relaxed atomics: updating a metric scans a small
//! fixed slot array for its id (pointer comparison first, string fallback)
//! and `fetch_add`s. Registration happens implicitly on first use via a
//! `OnceLock` per slot, so there is no setup phase, no allocation, and no
//! mutex anywhere on the update path. Snapshots are point-in-time copies
//! taken with relaxed loads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Canonical metric ids used across the stack. Any `&'static str` works as
/// an id; these constants keep producers and consumers in sync.
pub mod met {
    /// Guest bytes served from a cache image's own clusters (counter).
    pub const CACHE_HIT_BYTES: &str = "qcow.cache.hit_bytes";
    /// Guest bytes fetched from the backing chain by cache images (counter).
    pub const CACHE_MISS_BYTES: &str = "qcow.cache.miss_bytes";
    /// Bytes written into caches by copy-on-read fills (counter).
    pub const COR_FILL_BYTES: &str = "qcow.cache.fill_bytes";
    /// Quota space errors that latched copy-on-read off (counter).
    pub const SPACE_ERRORS: &str = "qcow.cache.space_errors";
    /// Quota re-arms after discards freed space (counter).
    pub const QUOTA_REARMS: &str = "qcow.cache.quota_rearms";
    /// Image-chain layers opened (counter).
    pub const CHAIN_OPENS: &str = "qcow.chain.opens";
    /// Internal snapshots created (counter).
    pub const SNAPSHOT_CREATES: &str = "qcow.snapshot.creates";
    /// Internal snapshots applied / reverted to (counter).
    pub const SNAPSHOT_APPLIES: &str = "qcow.snapshot.applies";
    /// Internal snapshots deleted (counter).
    pub const SNAPSHOT_DELETES: &str = "qcow.snapshot.deletes";
    /// Scheduler placement decisions (counter).
    pub const SCHED_PLACEMENTS: &str = "cluster.sched.placements";
    /// Cache-pool evictions across the fleet (counter).
    pub const CACHE_EVICTIONS: &str = "cluster.cache.evictions";
    /// VM boots completed (counter).
    pub const BOOTS_DONE: &str = "cluster.vm.boots";
    /// Live cache used-bytes of the most recently updated cache (gauge).
    pub const CACHE_USED_BYTES: &str = "qcow.cache.used_bytes";
    /// Per-guest-request latency through an image chain, ns (histogram).
    pub const VM_OP_NS: &str = "cluster.vm.op_ns";
    /// Per-request NBD server latency, wall ns (histogram).
    pub const NBD_REQUEST_NS: &str = "nbd.request_ns";
    /// Retries of transient block-device faults (counter).
    pub const RETRY_ATTEMPTS: &str = "blockdev.retry.attempts";
    /// Operations that failed even after the full retry budget (counter).
    pub const RETRY_EXHAUSTED: &str = "blockdev.retry.exhausted";
    /// Cache images latched into degraded mode (counter).
    pub const CACHE_DEGRADED: &str = "qcow.cache.degraded";
    /// Guest bytes served from backing because the cache was degraded (counter).
    pub const DEGRADED_READ_BYTES: &str = "qcow.cache.degraded_read_bytes";
    /// Crash-consistency scrubs run on cache open (counter).
    pub const SCRUB_RUNS: &str = "qcow.scrub.runs";
    /// Scrubs that repaired a torn header in place (counter).
    pub const SCRUB_REPAIRS: &str = "qcow.scrub.repairs";
    /// Scrubs that discarded an unrecoverable cache (counter).
    pub const SCRUB_DISCARDS: &str = "qcow.scrub.discards";
    /// Invariant-checker (fsck) runs (counter).
    pub const AUDIT_RUNS: &str = "audit.runs";
    /// Invariant violations reported by the checker (counter).
    pub const AUDIT_VIOLATIONS: &str = "audit.violations";
    /// Cluster node failures, injected or detected (counter).
    pub const NODE_FAILURES: &str = "cluster.node.failures";
    /// Boots re-placed on another node after a node failure (counter).
    pub const BOOT_RESCHEDULES: &str = "cluster.vm.reschedules";
    /// Multi-cluster extents served/filled as a single device op (counter).
    pub const COALESCED_RUNS: &str = "qcow.io.coalesced_runs";
    /// Bytes moved by coalesced multi-cluster extents (counter).
    pub const COALESCED_BYTES: &str = "qcow.io.coalesced_bytes";
    /// L2 mapping tables evicted from the bounded in-memory cache (counter).
    pub const L2_EVICTIONS: &str = "qcow.l2.evictions";
    /// Crash-recovery runs on cache images (counter).
    pub const RECOVERY_RUNS: &str = "qcow.recovery.runs";
    /// Individual repairs applied by the recovery engine (counter).
    pub const RECOVERY_REPAIRS: &str = "qcow.recovery.repairs";
    /// Recoveries that gave up and demanded a refetch (counter).
    pub const RECOVERY_REFETCHES: &str = "qcow.recovery.refetches";
    /// Cluster nodes restarted after a failure (counter).
    pub const NODE_RESTARTS: &str = "cluster.node.restarts";
    /// Caches re-adopted warm after node restart recovery (counter).
    pub const CACHES_READOPTED: &str = "cluster.cache.readopted";
    /// Caches found unrecoverable at restart and refetched cold (counter).
    pub const CACHES_REFETCHED: &str = "cluster.cache.refetched";
}

/// Slots per metric kind. Overflowing ids are dropped silently (the
/// registry never fails, it just stops learning new names).
const SLOTS: usize = 64;

#[derive(Debug, Default)]
struct Slot {
    name: OnceLock<&'static str>,
    value: AtomicU64,
}

#[derive(Debug, Default)]
struct HistSlot {
    name: OnceLock<&'static str>,
    hist: Histogram,
}

fn slot_array<T: Default>() -> [T; SLOTS] {
    std::array::from_fn(|_| T::default())
}

/// A log2-bucket histogram: bucket `k` counts samples in `[2^k, 2^(k+1))`
/// (sample 0 lands in bucket 0). Tracks count and sum for exact means.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        let bucket = if v == 0 {
            0
        } else {
            (63 - v.leading_zeros()) as usize
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(k, c)| {
                    let n = c.load(Ordering::Relaxed);
                    (n > 0).then_some((k as u32, n))
                })
                .collect(),
        }
    }
}

/// A copied histogram: only non-empty buckets, as `(log2_bucket, count)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (for exact means).
    pub sum: u64,
    /// Non-empty `(bucket_index, count)` pairs, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0..=1.0`). Resolution is one log2
    /// bucket; the estimate returned is the bucket's inclusive upper edge
    /// `2^(k+1) - 1`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(k, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return 2u64.saturating_pow(k + 1) - 1;
            }
        }
        2u64.saturating_pow(self.buckets.last().map(|&(k, _)| k + 1).unwrap_or(0)) - 1
    }

    /// Exact mean of all recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The registry: fixed slot arrays for counters, gauges, histograms.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [Slot; SLOTS],
    gauges: [Slot; SLOTS],
    histograms: [HistSlot; SLOTS],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self {
            counters: slot_array(),
            gauges: slot_array(),
            histograms: slot_array(),
        }
    }
}

/// Find (or claim) the slot for `name`. Lock-free: an unclaimed slot is
/// claimed with `OnceLock::set`; losing a registration race to the *same*
/// name still resolves to that slot, losing to a different name moves on.
fn find_slot<'a, T>(
    slots: &'a [T],
    name: &'static str,
    slot_name: impl Fn(&T) -> &OnceLock<&'static str>,
) -> Option<&'a T> {
    for s in slots {
        match slot_name(s).get() {
            Some(n) => {
                if std::ptr::eq(n.as_ptr(), name.as_ptr()) || *n == name {
                    return Some(s);
                }
            }
            None => {
                if slot_name(s).set(name).is_ok() || slot_name(s).get().copied() == Some(name) {
                    return Some(s);
                }
            }
        }
    }
    None
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `id`.
    pub fn counter_add(&self, id: &'static str, delta: u64) {
        if let Some(s) = find_slot(&self.counters, id, |s| &s.name) {
            s.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value of counter `id` (0 if never touched).
    pub fn counter(&self, id: &'static str) -> u64 {
        self.counters
            .iter()
            .find(|s| s.name.get().is_some_and(|n| *n == id))
            .map(|s| s.value.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Set gauge `id` to `value`.
    pub fn gauge_set(&self, id: &'static str, value: u64) {
        if let Some(s) = find_slot(&self.gauges, id, |s| &s.name) {
            s.value.store(value, Ordering::Relaxed);
        }
    }

    /// Current value of gauge `id` (0 if never set).
    pub fn gauge(&self, id: &'static str) -> u64 {
        self.gauges
            .iter()
            .find(|s| s.name.get().is_some_and(|n| *n == id))
            .map(|s| s.value.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Record `sample` into histogram `id`.
    pub fn observe(&self, id: &'static str, sample: u64) {
        if let Some(s) = find_slot(&self.histograms, id, |s| &s.name) {
            s.hist.record(sample);
        }
    }

    /// Snapshot of histogram `id`, if it has ever been observed.
    pub fn histogram(&self, id: &'static str) -> Option<HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|s| s.name.get().is_some_and(|n| *n == id))
            .map(|s| s.hist.snapshot())
    }

    /// Copy every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let copy_slots = |slots: &[Slot]| {
            slots
                .iter()
                .filter_map(|s| s.name.get().map(|&n| (n, s.value.load(Ordering::Relaxed))))
                .collect()
        };
        MetricsSnapshot {
            counters: copy_slots(&self.counters),
            gauges: copy_slots(&self.gauges),
            histograms: self
                .histograms
                .iter()
                .filter_map(|s| s.name.get().map(|&n| (n, s.hist.snapshot())))
                .collect(),
        }
    }
}

/// Point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(id, value)` for every touched counter, registration order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(id, value)` for every set gauge.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(id, snapshot)` for every observed histogram.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of counter `id` in this snapshot (0 if absent).
    pub fn counter(&self, id: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == id)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Histogram `id` in this snapshot.
    pub fn histogram(&self, id: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == id)
            .map(|(_, h)| h)
    }

    /// Render the snapshot in the Prometheus text exposition format.
    ///
    /// Metric ids are mapped to Prometheus names by replacing `.` with `_`
    /// (`qcow.cache.hit_bytes` → `qcow_cache_hit_bytes`). Histograms expose
    /// the standard cumulative `_bucket{le="..."}` series (the upper edge of
    /// log2 bucket `k` is `2^(k+1)-1`), `_sum` and `_count`, plus derived
    /// `_p50` / `_p99` gauges so a scrape shows tail latency without
    /// server-side quantile math.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        fn prom_name(id: &str) -> String {
            id.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for &(id, v) in &self.counters {
            let name = prom_name(id);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for &(id, v) in &self.gauges {
            let name = prom_name(id);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (id, h) in &self.histograms {
            let name = prom_name(id);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for &(k, n) in &h.buckets {
                cum += n;
                let le = 2u64.saturating_pow(k + 1) - 1;
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
            let _ = writeln!(out, "# TYPE {name}_p50 gauge");
            let _ = writeln!(out, "{name}_p50 {}", h.quantile(0.5));
            let _ = writeln!(out, "# TYPE {name}_p99 gauge");
            let _ = writeln!(out, "{name}_p99 {}", h.quantile(0.99));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let m = MetricsRegistry::new();
        m.counter_add(met::CACHE_HIT_BYTES, 512);
        m.counter_add(met::CACHE_HIT_BYTES, 512);
        m.counter_add(met::CACHE_MISS_BYTES, 64);
        m.gauge_set(met::CACHE_USED_BYTES, 9000);
        m.gauge_set(met::CACHE_USED_BYTES, 7000);
        assert_eq!(m.counter(met::CACHE_HIT_BYTES), 1024);
        assert_eq!(m.counter(met::CACHE_MISS_BYTES), 64);
        assert_eq!(m.counter("never.touched"), 0);
        assert_eq!(m.gauge(met::CACHE_USED_BYTES), 7000);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(100); // bucket 6 [64,128)
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket 19
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.buckets, vec![(6, 90), (19, 10)]);
        assert_eq!(s.quantile(0.5), (1 << 7) - 1, "p50 in the small bucket");
        assert_eq!(s.quantile(0.99), (1 << 20) - 1, "p99 in the big bucket");
        assert!((s.mean() - (90.0 * 100.0 + 10.0 * 1e6) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
        assert_eq!(HistogramSnapshot::default().mean(), 0.0);
    }

    #[test]
    fn zero_sample_lands_in_bucket_zero() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        assert_eq!(h.snapshot().buckets, vec![(0, 2)]);
    }

    #[test]
    fn snapshot_collects_everything() {
        let m = MetricsRegistry::new();
        m.counter_add("a", 1);
        m.gauge_set("b", 2);
        m.observe("c", 3);
        let s = m.snapshot();
        assert_eq!(s.counter("a"), 1);
        assert_eq!(s.gauges, vec![("b", 2)]);
        assert_eq!(s.histogram("c").unwrap().count, 1);
    }

    #[test]
    fn concurrent_hammer_from_eight_threads() {
        let m = std::sync::Arc::new(MetricsRegistry::new());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let m = m.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        m.counter_add(met::CACHE_HIT_BYTES, 1);
                        m.counter_add(met::COR_FILL_BYTES, 2);
                        m.observe(met::VM_OP_NS, (t as u64 + 1) * 1000 + i % 7);
                        m.gauge_set(met::CACHE_USED_BYTES, i);
                    }
                });
            }
        });
        assert_eq!(m.counter(met::CACHE_HIT_BYTES), THREADS as u64 * PER_THREAD);
        assert_eq!(
            m.counter(met::COR_FILL_BYTES),
            2 * THREADS as u64 * PER_THREAD
        );
        let h = m.histogram(met::VM_OP_NS).unwrap();
        assert_eq!(h.count, THREADS as u64 * PER_THREAD);
        assert!(m.gauge(met::CACHE_USED_BYTES) < PER_THREAD);
    }

    #[test]
    fn prometheus_exposition_format() {
        let m = MetricsRegistry::new();
        m.counter_add(met::CACHE_HIT_BYTES, 1024);
        m.gauge_set(met::CACHE_USED_BYTES, 4096);
        for _ in 0..90 {
            m.observe(met::VM_OP_NS, 100); // bucket 6, le=127
        }
        for _ in 0..10 {
            m.observe(met::VM_OP_NS, 1_000_000); // bucket 19, le=2^20-1
        }
        let text = m.snapshot().to_prometheus();
        let has = |l: &str| text.lines().any(|x| x == l);
        assert!(has("# TYPE qcow_cache_hit_bytes counter"), "{text}");
        assert!(has("qcow_cache_hit_bytes 1024"), "{text}");
        assert!(has("# TYPE qcow_cache_used_bytes gauge"), "{text}");
        assert!(has("qcow_cache_used_bytes 4096"), "{text}");
        assert!(has("# TYPE cluster_vm_op_ns histogram"), "{text}");
        assert!(has("cluster_vm_op_ns_bucket{le=\"127\"} 90"), "{text}");
        assert!(
            has("cluster_vm_op_ns_bucket{le=\"1048575\"} 100"),
            "buckets are cumulative: {text}"
        );
        assert!(has("cluster_vm_op_ns_bucket{le=\"+Inf\"} 100"), "{text}");
        assert!(has("cluster_vm_op_ns_count 100"), "{text}");
        assert!(
            has(&format!(
                "cluster_vm_op_ns_sum {}",
                90 * 100 + 10 * 1_000_000
            )),
            "{text}"
        );
        assert!(has("cluster_vm_op_ns_p50 127"), "{text}");
        assert!(has("cluster_vm_op_ns_p99 1048575"), "{text}");
    }

    #[test]
    fn registration_overflow_is_silent() {
        // Leak names to get 'static strs beyond the slot count.
        let m = MetricsRegistry::new();
        for i in 0..(SLOTS + 8) {
            let name: &'static str = Box::leak(format!("metric-{i}").into_boxed_str());
            m.counter_add(name, 1);
        }
        assert_eq!(m.snapshot().counters.len(), SLOTS);
    }
}
