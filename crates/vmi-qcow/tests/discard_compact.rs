//! Discard (TRIM), cluster reuse, leak accounting, and compaction.

use std::sync::Arc;

use vmi_blockdev::{BlockDev, MemDev, SharedDev};
use vmi_qcow::{check, compact, CreateOpts, QcowImage};

const VSIZE: u64 = 8 << 20;

fn base_with_content() -> (SharedDev, Vec<u8>) {
    let content: Vec<u8> = (0..VSIZE as usize).map(|i| (i % 251) as u8).collect();
    (Arc::new(MemDev::from_vec(content.clone())), content)
}

#[test]
fn discard_unmaps_and_falls_back_to_backing() {
    let (base, content) = base_with_content();
    let cow = QcowImage::create(
        Arc::new(MemDev::new()),
        CreateOpts::cow(VSIZE, "b"),
        Some(Arc::new(vmi_blockdev::ReadOnlyDev::new(base)) as SharedDev),
    )
    .unwrap();
    cow.write_at(&[0xFF; 65536], 0).unwrap();
    let mut buf = [0u8; 65536];
    cow.read_at(&mut buf, 0).unwrap();
    assert_eq!(buf, [0xFF; 65536]);
    // Discard the whole overlay cluster: the base shows through again.
    let n = cow.discard(0, 65536).unwrap();
    assert_eq!(n, 1);
    cow.read_at(&mut buf, 0).unwrap();
    assert_eq!(&buf[..], &content[..65536]);
}

#[test]
fn discard_without_backing_reads_zero() {
    let img = QcowImage::create(Arc::new(MemDev::new()), CreateOpts::plain(VSIZE), None).unwrap();
    img.write_at(&[7; 65536], 65536).unwrap();
    img.discard(65536, 65536).unwrap();
    let mut buf = [0u8; 65536];
    img.read_at(&mut buf, 65536).unwrap();
    assert_eq!(buf, [0; 65536]);
}

#[test]
fn partial_cluster_discard_is_ignored() {
    let img = QcowImage::create(Arc::new(MemDev::new()), CreateOpts::plain(VSIZE), None).unwrap();
    img.write_at(&[9; 65536], 0).unwrap();
    // Range covers only half the cluster: nothing may be unmapped.
    assert_eq!(img.discard(0, 32768).unwrap(), 0);
    let mut buf = [0u8; 65536];
    img.read_at(&mut buf, 0).unwrap();
    assert_eq!(buf, [9; 65536]);
}

#[test]
fn freed_clusters_are_reused_not_grown() {
    let img = QcowImage::create(Arc::new(MemDev::new()), CreateOpts::plain(VSIZE), None).unwrap();
    img.write_at(&[1; 65536], 0).unwrap();
    let size_before = img.file_size();
    img.discard(0, 65536).unwrap();
    assert_eq!(img.free_cluster_count(), 1);
    // A new allocation must reuse the freed cluster: file does not grow.
    img.write_at(&[2; 65536], 1 << 20).unwrap();
    assert_eq!(
        img.file_size(),
        size_before,
        "allocator must reuse freed space"
    );
    assert_eq!(img.free_cluster_count(), 0);
    let mut buf = [0u8; 65536];
    img.read_at(&mut buf, 1 << 20).unwrap();
    assert_eq!(buf, [2; 65536]);
}

#[test]
fn discard_reenables_cache_fills() {
    let (base, content) = base_with_content();
    let g = vmi_qcow::Geometry::new(9, VSIZE).unwrap();
    let quota = g.cluster_size() + g.l1_table_bytes() + 600 * 512;
    let cache = QcowImage::create(
        Arc::new(MemDev::new()),
        CreateOpts::cache(VSIZE, "b", quota),
        Some(base),
    )
    .unwrap();
    // Exhaust the quota.
    let mut buf = vec![0u8; 4096];
    let mut off = 0;
    while cache.fill_enabled() {
        cache.read_at(&mut buf, off).unwrap();
        off += 4096;
    }
    assert!(!cache.fill_enabled());
    let used_at_latch = cache.cache_used();
    // Discard the first 128 KiB of cached data: quota space frees up and
    // copy-on-read resumes.
    let freed = cache.discard(0, 128 * 1024).unwrap();
    assert!(freed > 0);
    assert!(cache.cache_used() < used_at_latch);
    assert!(cache.fill_enabled(), "fills must re-arm after discard");
    // And the discarded range still reads correctly (re-fetched from base).
    cache.read_at(&mut buf, 0).unwrap();
    assert_eq!(&buf[..], &content[..4096]);
}

#[test]
fn leaked_clusters_reported_after_reopen_and_reclaimed_by_compact() {
    let dev: SharedDev = Arc::new(MemDev::new());
    {
        let img = QcowImage::create(dev.clone(), CreateOpts::plain(VSIZE), None).unwrap();
        img.write_at(&[3; 256 * 1024], 0).unwrap();
        img.discard(0, 128 * 1024).unwrap();
        // In-session: freed clusters are on the free list, not leaked.
        let rep = check(&img).unwrap();
        assert_eq!(rep.leaked_clusters, 0);
        assert!(rep.is_clean());
        img.close().unwrap();
    }
    // After reopen the free list is gone: the space is leaked.
    let img = QcowImage::open(dev, None, false).unwrap();
    let rep = check(&img).unwrap();
    assert_eq!(rep.leaked_clusters, 2, "two 64 KiB clusters were discarded");
    assert!(rep.is_clean(), "leaks are not errors");
    // Compact into a fresh container: leaks gone, data intact, file smaller.
    let old_size = img.file_size();
    let compacted = compact(&img, Arc::new(MemDev::new()), None).unwrap();
    let rep2 = check(&compacted).unwrap();
    assert_eq!(rep2.leaked_clusters, 0);
    assert!(compacted.file_size() < old_size);
    let mut buf = vec![0u8; 128 * 1024];
    compacted.read_at(&mut buf, 128 * 1024).unwrap();
    assert!(buf.iter().all(|&b| b == 3), "surviving data intact");
    compacted.read_at(&mut buf, 0).unwrap();
    assert!(buf.iter().all(|&b| b == 0), "discarded range reads zero");
}

#[test]
fn compact_preserves_cache_semantics() {
    let (base, content) = base_with_content();
    let cache = QcowImage::create(
        Arc::new(MemDev::new()),
        CreateOpts::cache(VSIZE, "b", 4 << 20),
        Some(base.clone()),
    )
    .unwrap();
    let mut buf = vec![0u8; 256 * 1024];
    cache.read_at(&mut buf, 0).unwrap(); // warm 256 KiB
    cache.discard(0, 64 * 1024).unwrap();
    let compacted = compact(&cache, Arc::new(MemDev::new()), Some(base)).unwrap();
    assert!(compacted.is_cache());
    assert_eq!(compacted.cache_quota(), 4 << 20);
    // Warm part survives; discarded part re-fetches from base on read.
    let s0 = compacted.cor_stats();
    compacted.read_at(&mut buf[..64 * 1024], 64 * 1024).unwrap();
    assert_eq!(compacted.cor_stats().miss_bytes, s0.miss_bytes, "warm read");
    compacted.read_at(&mut buf[..4096], 0).unwrap();
    assert!(
        compacted.cor_stats().miss_bytes > s0.miss_bytes,
        "cold read re-fills"
    );
    assert_eq!(&buf[..4096], &content[..4096]);
    let rep = check(&compacted).unwrap();
    assert!(rep.is_clean(), "{:?}", rep.errors);
}

#[test]
fn discard_on_read_only_rejected() {
    let dev: SharedDev = Arc::new(MemDev::new());
    QcowImage::create(dev.clone(), CreateOpts::plain(VSIZE), None)
        .unwrap()
        .close()
        .unwrap();
    let img = QcowImage::open(dev, None, true).unwrap();
    assert!(img.discard(0, 65536).is_err());
}

#[test]
fn discard_out_of_bounds_rejected() {
    let img = QcowImage::create(Arc::new(MemDev::new()), CreateOpts::plain(VSIZE), None).unwrap();
    assert!(img.discard(VSIZE - 1024, 4096).is_err());
}

#[test]
fn bounded_l2_cache_evicts_and_rereads_correctly() {
    let (base, content) = base_with_content();
    let cache = QcowImage::create(
        Arc::new(MemDev::new()),
        CreateOpts::cache(VSIZE, "b", VSIZE),
        Some(base),
    )
    .unwrap();
    cache.set_l2_cache_limit(Some(4));
    // Warm a range spanning far more than 4 L2 tables (512 B clusters →
    // one table covers 32 KiB; 1 MiB spans 32 tables).
    let mut buf = vec![0u8; 4096];
    for i in 0..256u64 {
        cache.read_at(&mut buf, i * 4096).unwrap();
    }
    assert!(
        cache.l2_cache_len() <= 4,
        "cache bounded: {}",
        cache.l2_cache_len()
    );
    // Random revisits still return correct data (tables re-read on demand).
    for i in [0u64, 131, 17, 255, 64] {
        cache.read_at(&mut buf, i * 4096).unwrap();
        assert_eq!(
            &buf[..],
            &content[(i * 4096) as usize..(i * 4096 + 4096) as usize]
        );
    }
    let rep = check(&cache).unwrap();
    assert!(rep.is_clean(), "{:?}", rep.errors);
}

#[test]
fn shrinking_l2_limit_evicts_immediately() {
    let img = QcowImage::create(Arc::new(MemDev::new()), CreateOpts::plain(VSIZE), None).unwrap();
    // Touch many clusters across distinct L2 ranges (64 KiB clusters → one
    // table covers 512 MiB; use a small-cluster image instead).
    let img = {
        drop(img);
        QcowImage::create(
            Arc::new(MemDev::new()),
            CreateOpts::plain(VSIZE).with_cluster_bits(9),
            None,
        )
        .unwrap()
    };
    for i in 0..64u64 {
        img.write_at(&[1; 512], i * 32 * 1024).unwrap(); // one table each
    }
    assert!(img.l2_cache_len() >= 32);
    img.set_l2_cache_limit(Some(8));
    assert!(img.l2_cache_len() <= 8);
}
