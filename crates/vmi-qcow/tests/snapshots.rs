//! Internal-snapshot semantics: create, copy-on-write isolation, apply
//! (revert), delete, persistence, and interaction with chains and `check`.

use std::sync::Arc;

use vmi_blockdev::{BlockDev, MemDev, SharedDev};
use vmi_qcow::{check, CreateOpts, QcowImage};

const MB: u64 = 1 << 20;

fn img() -> (SharedDev, Arc<QcowImage>) {
    let dev: SharedDev = Arc::new(MemDev::new());
    let img = QcowImage::create(dev.clone(), CreateOpts::plain(8 * MB), None).unwrap();
    (dev, img)
}

#[test]
fn snapshot_isolates_later_writes() {
    let (_dev, img) = img();
    img.write_at(&[1u8; 65536], 0).unwrap();
    let id = img.create_snapshot("clean").unwrap();
    // Overwrite the same cluster: must copy-on-write, not clobber.
    img.write_at(&[2u8; 65536], 0).unwrap();
    let mut buf = [0u8; 65536];
    img.read_at(&mut buf, 0).unwrap();
    assert_eq!(buf, [2u8; 65536], "live view sees the new data");
    // Revert: the snapshot still holds the old bytes.
    img.apply_snapshot(id).unwrap();
    img.read_at(&mut buf, 0).unwrap();
    assert_eq!(buf, [1u8; 65536], "revert restores the frozen bytes");
}

#[test]
fn revert_then_diverge_repeatedly() {
    let (_dev, img) = img();
    img.write_at(b"base state", 0).unwrap();
    let id = img.create_snapshot("s").unwrap();
    for round in 0..3u8 {
        img.write_at(&[round + 10; 4096], 0).unwrap();
        img.write_at(&[round + 20; 4096], 2 * MB).unwrap();
        img.apply_snapshot(id).unwrap();
        let mut buf = [0u8; 10];
        img.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"base state", "round {round}");
        let mut far = [9u8; 16];
        img.read_at(&mut far, 2 * MB).unwrap();
        assert_eq!(far, [0u8; 16], "round {round}: divergent write gone");
    }
    let rep = check(&img).unwrap();
    assert!(rep.is_clean(), "{:?}", rep.errors);
}

#[test]
fn multiple_snapshots_layer_correctly() {
    let (_dev, img) = img();
    img.write_at(&[1; 4096], 0).unwrap();
    let s1 = img.create_snapshot("one").unwrap();
    img.write_at(&[2; 4096], 0).unwrap();
    let s2 = img.create_snapshot("two").unwrap();
    img.write_at(&[3; 4096], 0).unwrap();

    let mut buf = [0u8; 4096];
    img.apply_snapshot(s1).unwrap();
    img.read_at(&mut buf, 0).unwrap();
    assert_eq!(buf, [1; 4096]);
    img.apply_snapshot(s2).unwrap();
    img.read_at(&mut buf, 0).unwrap();
    assert_eq!(buf, [2; 4096]);
    assert_eq!(img.list_snapshots().len(), 2);
}

#[test]
fn snapshots_persist_across_reopen() {
    let dev: SharedDev = Arc::new(MemDev::new());
    let id;
    {
        let img = QcowImage::create(dev.clone(), CreateOpts::plain(8 * MB), None).unwrap();
        img.write_at(&[7; 8192], MB).unwrap();
        id = img.create_snapshot("persisted").unwrap();
        img.write_at(&[8; 8192], MB).unwrap();
        img.close().unwrap();
    }
    let img = QcowImage::open(dev, None, false).unwrap();
    let snaps = img.list_snapshots();
    assert_eq!(snaps.len(), 1);
    assert_eq!(snaps[0].name, "persisted");
    let mut buf = [0u8; 8192];
    img.read_at(&mut buf, MB).unwrap();
    assert_eq!(buf, [8; 8192], "live state survived");
    // COW still enforced after reopen: writing must not corrupt the
    // snapshot.
    img.write_at(&[9; 8192], MB).unwrap();
    img.apply_snapshot(id).unwrap();
    img.read_at(&mut buf, MB).unwrap();
    assert_eq!(buf, [7; 8192]);
}

#[test]
fn delete_snapshot_frees_logically() {
    let (_dev, img) = img();
    img.write_at(&[1; 65536], 0).unwrap();
    let id = img.create_snapshot("gone-soon").unwrap();
    img.delete_snapshot(id).unwrap();
    assert!(img.list_snapshots().is_empty());
    assert!(
        img.apply_snapshot(id).is_err(),
        "deleted snapshot cannot be applied"
    );
    // After deletion the cluster is no longer frozen: in-place writes work
    // again (no new allocation needed).
    let size_before = img.file_size();
    img.write_at(&[2; 65536], 0).unwrap();
    assert_eq!(
        img.file_size(),
        size_before,
        "write-in-place after unfreeze"
    );
}

#[test]
fn snapshot_on_cow_chain_preserves_backing_reads() {
    let base: SharedDev = Arc::new(MemDev::from_vec(
        (0..(8 * MB) as usize).map(|i| (i % 211) as u8).collect(),
    ));
    let cow = QcowImage::create(
        Arc::new(MemDev::new()),
        CreateOpts::cow(8 * MB, "b"),
        Some(Arc::new(vmi_blockdev::ReadOnlyDev::new(base)) as SharedDev),
    )
    .unwrap();
    cow.write_at(&[0xAA; 4096], 0).unwrap();
    let id = cow.create_snapshot("overlay-state").unwrap();
    cow.write_at(&[0xBB; 4096], 0).unwrap();
    cow.apply_snapshot(id).unwrap();
    let mut buf = [0u8; 4096];
    cow.read_at(&mut buf, 0).unwrap();
    assert_eq!(buf, [0xAA; 4096]);
    // Unallocated regions still read through to the base after revert.
    cow.read_at(&mut buf, 4 * MB).unwrap();
    assert_eq!(buf[0], ((4 * MB) % 211) as u8);
}

#[test]
fn cache_images_reject_snapshots() {
    let base: SharedDev = Arc::new(MemDev::from_vec(vec![0u8; (8 * MB) as usize]));
    let cache = QcowImage::create(
        Arc::new(MemDev::new()),
        CreateOpts::cache(8 * MB, "b", 4 * MB),
        Some(base),
    )
    .unwrap();
    assert!(cache.create_snapshot("nope").is_err());
}

#[test]
fn duplicate_names_and_bad_ids_rejected() {
    let (_dev, img) = img();
    img.create_snapshot("a").unwrap();
    assert!(img.create_snapshot("a").is_err());
    assert!(img.apply_snapshot(999).is_err());
    assert!(img.delete_snapshot(999).is_err());
}

#[test]
fn compact_refuses_with_snapshots_then_works_after_delete() {
    let (_dev, img) = img();
    img.write_at(&[1; 65536], 0).unwrap();
    let id = img.create_snapshot("s").unwrap();
    assert!(vmi_qcow::compact(&img, Arc::new(MemDev::new()), None).is_err());
    img.delete_snapshot(id).unwrap();
    let compacted = vmi_qcow::compact(&img, Arc::new(MemDev::new()), None).unwrap();
    let mut buf = [0u8; 65536];
    compacted.read_at(&mut buf, 0).unwrap();
    assert_eq!(buf, [1; 65536]);
}

#[test]
fn check_is_clean_with_shared_clusters() {
    let (_dev, img) = img();
    img.write_at(&[1; 256 * 1024], 0).unwrap();
    img.create_snapshot("s1").unwrap();
    img.write_at(&[2; 4096], 0).unwrap(); // COW one cluster
    img.create_snapshot("s2").unwrap();
    img.write_at(&[3; 4096], 128 * 1024).unwrap();
    let rep = check(&img).unwrap();
    assert!(rep.is_clean(), "{:?}", rep.errors);
    assert_eq!(rep.leaked_clusters, 0, "shared clusters are not leaks");
}

#[test]
fn deleted_snapshot_clusters_become_leaks() {
    let dev: SharedDev = Arc::new(MemDev::new());
    let img = QcowImage::create(dev.clone(), CreateOpts::plain(8 * MB), None).unwrap();
    img.write_at(&[1; 65536], 0).unwrap();
    let id = img.create_snapshot("s").unwrap();
    img.write_at(&[2; 65536], 0).unwrap(); // COW: snapshot keeps old cluster
    img.delete_snapshot(id).unwrap();
    img.close().unwrap();
    drop(img);
    let img = QcowImage::open(dev, None, false).unwrap();
    let rep = check(&img).unwrap();
    assert!(rep.is_clean());
    assert!(
        rep.leaked_clusters > 0,
        "orphaned snapshot clusters are leaks: {rep:?}"
    );
}

#[test]
fn resize_with_snapshots_rejected() {
    let (_dev, img) = img();
    img.create_snapshot("s").unwrap();
    assert!(img.resize(16 * MB).is_err());
}

#[test]
fn discard_does_not_reuse_frozen_clusters() {
    let (_dev, img) = img();
    img.write_at(&[1; 65536], 0).unwrap();
    let id = img.create_snapshot("s").unwrap();
    // Discard the live mapping: the cluster is shared with the snapshot and
    // must not enter the free list.
    img.discard(0, 65536).unwrap();
    assert_eq!(img.free_cluster_count(), 0);
    let mut buf = [0u8; 65536];
    img.read_at(&mut buf, 0).unwrap();
    assert_eq!(buf, [0; 65536], "discarded region reads zero");
    img.apply_snapshot(id).unwrap();
    img.read_at(&mut buf, 0).unwrap();
    assert_eq!(buf, [1; 65536], "snapshot content intact after discard");
}
