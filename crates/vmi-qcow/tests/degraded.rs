//! Degraded-mode copy-on-read: cache I/O failures must never fail a guest
//! read as long as the backing chain still holds the data. A failed fill or
//! a failed cache-cluster read latches the cache degraded (once), stops
//! further fills, and serves everything from the backing layer.

use std::sync::Arc;

use vmi_blockdev::{BlockDev, BlockErrorKind, FaultDev, FaultPlan, FaultSite, MemDev, SharedDev};
use vmi_obs::{met, Event, ManualClock, Obs, RecorderHandle};
use vmi_qcow::{CreateOpts, QcowImage};

const VSIZE: u64 = 8 << 20;

fn base_with_content() -> (SharedDev, Vec<u8>) {
    let content: Vec<u8> = (0..VSIZE as usize).map(|i| (i % 251) as u8).collect();
    (Arc::new(MemDev::from_vec(content.clone())), content)
}

/// A cache whose own container sits on a `FaultDev`, so cache-side I/O can
/// be failed on demand while the base stays healthy.
fn cache_over_faults(obs: Obs) -> (Arc<QcowImage>, Arc<FaultDev>, Vec<u8>) {
    let (base, content) = base_with_content();
    let faults = Arc::new(FaultDev::new(Arc::new(MemDev::new())));
    let cache = QcowImage::create_with_obs(
        faults.clone() as SharedDev,
        CreateOpts::cache(VSIZE, "b", VSIZE),
        Some(base),
        obs,
    )
    .unwrap();
    (cache, faults, content)
}

#[test]
fn fill_failure_serves_guest_read_and_latches_degraded() {
    let (cache, faults, content) = cache_over_faults(Obs::disabled());
    // The next write into the cache container dies: the copy-on-read fill
    // for the first cold read cannot land.
    faults.inject(FaultPlan::NthOp {
        site: FaultSite::Write,
        n: 0,
        kind: BlockErrorKind::Io,
    });
    let mut buf = vec![0u8; 4096];
    cache.read_at(&mut buf, 0).unwrap();
    assert_eq!(
        &buf[..],
        &content[..4096],
        "guest data must survive the fill failure"
    );
    assert!(cache.is_degraded(), "failed fill latches degraded mode");
    // Degraded caches stop filling entirely: further cold reads stay
    // correct but never grow the cache.
    let used = cache.cache_used();
    cache.read_at(&mut buf, 1 << 20).unwrap();
    assert_eq!(&buf[..], &content[1 << 20..(1 << 20) + 4096]);
    assert_eq!(cache.cache_used(), used, "degraded cache must not fill");
    // The space-error latch is a separate mechanism and never fired here.
    assert!(cache.fill_enabled(), "quota latch untouched by degradation");
}

#[test]
fn cluster_read_failure_falls_back_to_backing() {
    let (cache, faults, content) = cache_over_faults(Obs::disabled());
    // Warm one run so offset 0 is served from the cache container.
    let mut buf = vec![0u8; 4096];
    cache.read_at(&mut buf, 0).unwrap();
    assert!(cache.cache_used() > 0);
    assert!(!cache.is_degraded());
    // Now every read of the cache container fails: the mapped cluster is
    // unreadable, but the block is (by CoR invariant) a copy of base data.
    faults.inject(FaultPlan::EveryNth {
        site: FaultSite::Read,
        n: 1,
        kind: BlockErrorKind::Io,
    });
    buf.fill(0);
    cache.read_at(&mut buf, 0).unwrap();
    assert_eq!(
        &buf[..],
        &content[..4096],
        "read must be re-served from base"
    );
    assert!(cache.is_degraded());
    assert_eq!(cache.degraded_read_bytes(), 4096);
}

#[test]
fn degraded_latch_fires_exactly_once() {
    let (rec, sink) = RecorderHandle::jsonl();
    let obs = rec.attach(Arc::new(ManualClock::new(0)));
    let (cache, faults, _content) = cache_over_faults(obs.clone());
    // Two independent fill failures: only the first may emit the event.
    faults.inject(FaultPlan::NthOp {
        site: FaultSite::Write,
        n: 0,
        kind: BlockErrorKind::Io,
    });
    let mut buf = vec![0u8; 4096];
    cache.read_at(&mut buf, 0).unwrap();
    cache.read_at(&mut buf, 1 << 20).unwrap();
    assert!(cache.is_degraded());
    assert_eq!(obs.counter_value(met::CACHE_DEGRADED), 1);
    let degraded_lines: Vec<_> = sink
        .lines()
        .into_iter()
        .filter(|l| l.contains("\"cache_degraded\""))
        .collect();
    assert_eq!(degraded_lines.len(), 1, "{degraded_lines:?}");
    assert!(degraded_lines[0].contains("\"reason\":\"fill_failed\""));
    // And the typed event round-trips from the recorded line.
    match Event::parse_line(&degraded_lines[0]) {
        Ok((_, Event::CacheDegraded { reason, .. })) => assert_eq!(reason, "fill_failed"),
        other => panic!("expected cache_degraded event, got {other:?}"),
    }
}

#[test]
fn degraded_read_fallback_counts_bytes_in_metrics() {
    let (rec, _sink) = RecorderHandle::jsonl();
    let obs = rec.attach(Arc::new(ManualClock::new(0)));
    let (cache, faults, _content) = cache_over_faults(obs.clone());
    let mut buf = vec![0u8; 8192];
    cache.read_at(&mut buf, 0).unwrap();
    faults.inject(FaultPlan::EveryNth {
        site: FaultSite::Read,
        n: 1,
        kind: BlockErrorKind::Io,
    });
    cache.read_at(&mut buf, 0).unwrap();
    assert_eq!(obs.counter_value(met::CACHE_DEGRADED), 1);
    assert_eq!(obs.counter_value(met::DEGRADED_READ_BYTES), 8192);
    assert_eq!(cache.degraded_read_bytes(), 8192);
}

#[test]
fn cow_overlay_read_failure_still_propagates() {
    // CoW images have no guarantee their clusters mirror backing data
    // (guest writes live only in the overlay), so a read failure there is
    // fatal — no silent wrong-data fallback.
    let (base, _content) = base_with_content();
    let faults = Arc::new(FaultDev::new(Arc::new(MemDev::new())));
    let cow = QcowImage::create(
        faults.clone() as SharedDev,
        CreateOpts::cow(VSIZE, "b"),
        Some(base),
    )
    .unwrap();
    cow.write_at(&[0xAB; 4096], 0).unwrap();
    faults.inject(FaultPlan::EveryNth {
        site: FaultSite::Read,
        n: 1,
        kind: BlockErrorKind::Io,
    });
    let mut buf = vec![0u8; 4096];
    let err = cow.read_at(&mut buf, 0).unwrap_err();
    assert_eq!(err.kind(), BlockErrorKind::Io);
    assert!(!cow.is_degraded());
}
