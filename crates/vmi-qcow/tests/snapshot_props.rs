//! Property test: arbitrary interleavings of writes, snapshots, reverts and
//! deletes must match a pure in-memory reference model, and the image must
//! always check clean.

use std::sync::Arc;

use proptest::prelude::*;
use vmi_blockdev::{BlockDev, MemDev, SharedDev};
use vmi_qcow::{check, CreateOpts, QcowImage};

const VSIZE: u64 = 2 << 20;

#[derive(Debug, Clone)]
enum Op {
    Write {
        off: u64,
        byte: u8,
        len: usize,
    },
    Snapshot,
    /// Revert to the k-th live snapshot (mod count).
    Apply(usize),
    /// Delete the k-th live snapshot (mod count).
    Delete(usize),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        4 => (0..VSIZE - 70_000, any::<u8>(), 1usize..70_000)
            .prop_map(|(off, byte, len)| Op::Write { off, byte, len }),
        2 => Just(Op::Snapshot),
        1 => (0usize..8).prop_map(Op::Apply),
        1 => (0usize..8).prop_map(Op::Delete),
    ];
    proptest::collection::vec(op, 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn snapshots_match_reference_model(ops in ops_strategy()) {
        let dev: SharedDev = Arc::new(MemDev::new());
        let img = QcowImage::create(dev, CreateOpts::plain(VSIZE), None).unwrap();
        // Reference: live state + saved states by snapshot id.
        let mut live = vec![0u8; VSIZE as usize];
        let mut saved: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut name_seq = 0u32;

        for op in &ops {
            match op {
                Op::Write { off, byte, len } => {
                    img.write_at(&vec![*byte; *len], *off).unwrap();
                    live[*off as usize..*off as usize + len].fill(*byte);
                }
                Op::Snapshot => {
                    name_seq += 1;
                    let id = img.create_snapshot(format!("s{name_seq}")).unwrap();
                    saved.push((id, live.clone()));
                }
                Op::Apply(k) => {
                    if saved.is_empty() {
                        continue;
                    }
                    let (id, state) = &saved[k % saved.len()];
                    img.apply_snapshot(*id).unwrap();
                    live = state.clone();
                }
                Op::Delete(k) => {
                    if saved.is_empty() {
                        continue;
                    }
                    let idx = k % saved.len();
                    let (id, _) = saved.remove(idx);
                    img.delete_snapshot(id).unwrap();
                }
            }
        }

        // Full-image equivalence with the reference.
        let mut buf = vec![0u8; VSIZE as usize];
        img.read_at(&mut buf, 0).unwrap();
        prop_assert_eq!(&buf, &live);
        // Every surviving snapshot still restores its exact state.
        for (id, state) in &saved {
            img.apply_snapshot(*id).unwrap();
            img.read_at(&mut buf, 0).unwrap();
            prop_assert_eq!(&buf, state, "snapshot {} diverged", id);
        }
        let rep = check(&img).unwrap();
        prop_assert!(rep.is_clean(), "{:?}", rep.errors);
    }

    /// Persistence: the same sequence, closed and reopened mid-way, ends in
    /// the same state.
    #[test]
    fn snapshots_survive_reopen_mid_sequence(ops in ops_strategy()) {
        let run = |split: bool| -> (Vec<u8>, usize) {
            let dev: SharedDev = Arc::new(MemDev::new());
            let mut img =
                QcowImage::create(dev.clone(), CreateOpts::plain(VSIZE), None).unwrap();
            let mut snap_ids: Vec<u32> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                if split && i == ops.len() / 2 {
                    img.close().unwrap();
                    drop(img);
                    img = QcowImage::open(dev.clone(), None, false).unwrap();
                }
                match op {
                    Op::Write { off, byte, len } => {
                        img.write_at(&vec![*byte; *len], *off).unwrap()
                    }
                    Op::Snapshot => {
                        snap_ids.push(img.create_snapshot(format!("s{i}")).unwrap());
                    }
                    Op::Apply(k) => {
                        if !snap_ids.is_empty() {
                            img.apply_snapshot(snap_ids[k % snap_ids.len()]).unwrap();
                        }
                    }
                    Op::Delete(k) => {
                        if !snap_ids.is_empty() {
                            let id = snap_ids.remove(k % snap_ids.len());
                            img.delete_snapshot(id).unwrap();
                        }
                    }
                }
            }
            let mut buf = vec![0u8; VSIZE as usize];
            img.read_at(&mut buf, 0).unwrap();
            (buf, img.list_snapshots().len())
        };
        let (a, na) = run(false);
        let (b, nb) = run(true);
        prop_assert_eq!(na, nb);
        prop_assert_eq!(a, b);
    }
}
