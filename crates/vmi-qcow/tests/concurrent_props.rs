//! PR-8 equivalence property: N threads hammer one [`ConcurrentImage`]
//! with random reads and writes; replaying the same operations *serially*,
//! on a fresh image, in completion-stamp order, must reproduce every
//! concurrent read's bytes, the final guest image, and — because copy-on-
//! read fills and write allocations bump the container in stamp order —
//! the raw cache container bit-for-bit.
//!
//! This is the whole correctness story of the sharded driver in one
//! property: range locks serialize overlapping ops deterministically, the
//! stamp order is that serialization, and nothing the warm path does is
//! observable outside it.

use std::sync::Arc;

use proptest::prelude::*;
use vmi_blockdev::{BlockDev, MemDev, SharedDev};
use vmi_qcow::{ConcurrentImage, CreateOpts, QcowImage};

const VSIZE: u64 = 512 << 10;
const QUOTA: u64 = 64 << 20; // ample: the space latch must never trip

/// One guest operation, pre-clamped to the virtual size by the strategy.
#[derive(Debug, Clone)]
enum Op {
    Read { off: u64, len: usize },
    Write { off: u64, len: usize, fill: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let span = (0u64..VSIZE, 1usize..16 << 10);
    prop_oneof![
        span.clone().prop_map(|(off, len)| Op::Read { off, len }),
        (span, any::<u8>()).prop_map(|((off, len), fill)| Op::Write { off, len, fill }),
    ]
}

fn base_strategy() -> impl Strategy<Value = Vec<(u64, usize, u8)>> {
    proptest::collection::vec((0u64..VSIZE, 1usize..16 << 10, 1u8..=255), 0..5)
}

/// Build the base ← cache pair exactly the same way for both executions.
fn build_chain(cluster_bits: u32, base_segs: &[(u64, usize, u8)]) -> (Arc<MemDev>, Arc<QcowImage>) {
    let base = QcowImage::create(
        Arc::new(MemDev::new()) as SharedDev,
        CreateOpts::plain(VSIZE),
        None,
    )
    .unwrap();
    for &(off, len, fill) in base_segs {
        let len = len.min((VSIZE - off) as usize);
        base.write_at(&vec![fill; len], off).unwrap();
    }
    let cache_mem = Arc::new(MemDev::new());
    let cache = QcowImage::create(
        cache_mem.clone() as SharedDev,
        CreateOpts::cache(VSIZE, "b", QUOTA).with_cluster_bits(cluster_bits),
        Some(base as SharedDev),
    )
    .unwrap();
    (cache_mem, cache)
}

/// What one concurrent op observed: its completion stamp, the op itself,
/// and (for reads) the bytes it returned.
struct Event {
    stamp: u64,
    op: Op,
    data: Option<Vec<u8>>,
}

fn clamp(off: u64, len: usize) -> usize {
    len.min((VSIZE - off) as usize)
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// 2–4 threads of arbitrary interleaved ops ≡ their stamp-order serial
    /// replay, down to the container bytes.
    #[test]
    fn concurrent_execution_matches_serial_replay(
        cluster_bits in 9u32..=12,
        base_segs in base_strategy(),
        threads in 2usize..=4,
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        // --- concurrent execution ---------------------------------------
        let (conc_mem, img) = build_chain(cluster_bits, &base_segs);
        let conc = ConcurrentImage::new(img);
        let mut events: Vec<Event> = std::thread::scope(|s| {
            let conc = &conc;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    // Round-robin assignment: thread t runs ops t, t+T, …
                    let mine: Vec<Op> =
                        ops.iter().skip(t).step_by(threads).cloned().collect();
                    s.spawn(move || {
                        let mut out = Vec::with_capacity(mine.len());
                        for op in mine {
                            match op {
                                Op::Read { off, len } => {
                                    let mut buf = vec![0u8; clamp(off, len)];
                                    let stamp = conc
                                        .read_stamped(&mut buf, off, None)
                                        .expect("concurrent read");
                                    out.push(Event { stamp, op: Op::Read { off, len }, data: Some(buf) });
                                }
                                Op::Write { off, len, fill } => {
                                    let buf = vec![fill; clamp(off, len)];
                                    let stamp = conc
                                        .write_stamped(&buf, off, None)
                                        .expect("concurrent write");
                                    out.push(Event { stamp, op: Op::Write { off, len, fill }, data: None });
                                }
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });

        // Stamps are the claimed serialization: they must be unique.
        events.sort_by_key(|e| e.stamp);
        for pair in events.windows(2) {
            prop_assert!(pair[0].stamp != pair[1].stamp, "duplicate completion stamp");
        }

        // Stats before the final readback (which may itself fill). Only the
        // fill/miss side is comparable: warm hits served by the sharded fast
        // path intentionally bypass the image's hit accounting.
        let conc_stats = conc.image().cor_stats();
        let mut conc_image = vec![0u8; VSIZE as usize];
        conc.read_at(&mut conc_image, 0).unwrap();
        conc.image().close().unwrap();

        // --- serial replay in stamp order --------------------------------
        let (ser_mem, ser) = build_chain(cluster_bits, &base_segs);
        for ev in &events {
            match ev.op {
                Op::Read { off, len } => {
                    let mut buf = vec![0u8; clamp(off, len)];
                    ser.read_at(&mut buf, off).expect("replay read");
                    prop_assert_eq!(
                        ev.data.as_ref().unwrap(),
                        &buf,
                        "read at {} (stamp {}) saw different bytes than its replay slot",
                        off,
                        ev.stamp
                    );
                }
                Op::Write { off, len, fill } => {
                    ser.write_at(&vec![fill; clamp(off, len)], off).expect("replay write");
                }
            }
        }
        let ser_stats = ser.cor_stats();
        let mut ser_image = vec![0u8; VSIZE as usize];
        ser.read_at(&mut ser_image, 0).unwrap();
        ser.close().unwrap();

        prop_assert_eq!(conc_image, ser_image, "final guest images differ");
        prop_assert_eq!(conc_stats.miss_bytes, ser_stats.miss_bytes, "backing fetch bytes differ");
        prop_assert_eq!(conc_stats.fill_bytes, ser_stats.fill_bytes, "copy-on-read fill bytes differ");
        prop_assert_eq!(conc_stats.fill_rejects, ser_stats.fill_rejects, "fill reject counts differ");
        prop_assert_eq!(
            conc_mem.to_vec(),
            ser_mem.to_vec(),
            "cache containers differ after close"
        );
    }
}
