//! Property tests for crash consistency: arbitrary guest write/flush
//! sequences on arbitrary cluster sizes, cut by a seeded power cut at an
//! arbitrary point (torn write or partial flush drain, optionally with an
//! out-of-order drain), must always leave a medium that [`recover`] makes
//! usable — and every byte that was *not* rewritten after the last
//! successful guest flush must read back exactly as flushed.
//!
//! This is the generative counterpart of the exhaustive `crash_sweep`
//! campaign in `vmi-bench`: the sweep enumerates every cut point of two
//! fixed workloads; these properties fix the cut and randomize the
//! workload.

use std::sync::Arc;

use proptest::prelude::*;
use vmi_blockdev::{BlockDev, CrashDev, CrashPlan, MemDev, SharedDev};
use vmi_qcow::{recover, CreateOpts, QcowImage, RecoveryVerdict};

const VSIZE: u64 = 1 << 20;

/// One scripted guest step: a write, optionally followed by a flush.
#[derive(Debug, Clone)]
struct Step {
    off: u64,
    len: usize,
    fill: u8,
    flush: bool,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (0u64..VSIZE, 1usize..32 << 10, any::<u8>(), any::<bool>()).prop_map(
        |(off, len, fill, flush)| Step {
            off,
            len,
            fill,
            flush,
        },
    )
}

/// A seeded cut point: tear the n-th durable write, or cut the n-th flush
/// mid-drain. `n` is taken modulo the workload's actual op counts so every
/// drawn cut lands somewhere inside the run.
#[derive(Debug, Clone)]
enum Cut {
    Write { n: u64, keep: usize },
    Flush { n: u64, drain: usize },
}

fn cut_strategy() -> impl Strategy<Value = Cut> {
    prop_oneof![
        (any::<u64>(), 0usize..4096).prop_map(|(n, keep)| Cut::Write { n, keep }),
        (any::<u64>(), 0usize..12).prop_map(|(n, drain)| Cut::Flush { n, drain }),
    ]
}

/// Guest-side ground truth maintained alongside the crashing run.
struct Oracle {
    /// Content as of every acked write.
    acked: Vec<u8>,
    /// Content as of the last successful guest flush.
    flushed: Vec<u8>,
    /// Bytes rewritten since that flush (unconstrained after a crash).
    dirty: Vec<bool>,
    /// Whether any guest flush succeeded.
    flush_succeeded: bool,
}

impl Oracle {
    fn new() -> Self {
        Self {
            acked: vec![0; VSIZE as usize],
            flushed: vec![0; VSIZE as usize],
            dirty: vec![false; VSIZE as usize],
            flush_succeeded: false,
        }
    }
}

/// Run the workload on a write-back [`CrashDev`] armed per `cut`, then
/// recover and check the contract. Returns a violation description.
fn run_case(
    cluster_bits: u32,
    steps: &[Step],
    cut: &Cut,
    shuffle: Option<u64>,
) -> Result<(), String> {
    // Dry pass on a plain MemDev to learn the op counts so the drawn cut
    // index can be folded into range.
    let (writes, flushes) = {
        let dev: SharedDev = Arc::new(MemDev::new());
        let crash = Arc::new(CrashDev::new_writeback(dev));
        let counted: SharedDev = crash.clone();
        run_steps(cluster_bits, steps, &counted, &mut Oracle::new())
            .map_err(|e| format!("crash-free run failed: {e}"))?;
        (crash.durable_writes().max(1), crash.flushes().max(1))
    };
    let plan = match cut {
        Cut::Write { n, keep } => CrashPlan::NthWrite {
            n: n % writes,
            keep: *keep,
        },
        Cut::Flush { n, drain } => CrashPlan::NthFlush {
            n: n % flushes,
            drain: *drain,
        },
    };

    let inner: SharedDev = Arc::new(MemDev::new());
    let crash = Arc::new(CrashDev::new_writeback(inner.clone()));
    if let Some(seed) = shuffle {
        crash.set_drain_shuffle(seed);
    }
    crash.arm(plan);
    let mut oracle = Oracle::new();
    let crash_dev: SharedDev = crash.clone();
    let _ = run_steps(cluster_bits, steps, &crash_dev, &mut oracle);

    let rep = recover(&inner);
    if let RecoveryVerdict::Refetch = rep.verdict {
        if oracle.flush_succeeded {
            return Err(format!(
                "refetch verdict after a successful guest flush (report: {})",
                rep.to_json()
            ));
        }
        return Ok(());
    }

    // A usable verdict must be stable: a second recovery finds nothing.
    let again = recover(&inner);
    if !matches!(again.verdict, RecoveryVerdict::Clean) {
        return Err(format!(
            "recovery is not idempotent: second pass returned {}",
            again.verdict.as_str()
        ));
    }

    let img = QcowImage::open(inner.clone(), None, true)
        .map_err(|e| format!("usable verdict but open failed: {e}"))?;
    let mut got = vec![0u8; VSIZE as usize];
    img.read_at(&mut got, 0)
        .map_err(|e| format!("full readback failed: {e}"))?;
    for (i, &b) in got.iter().enumerate() {
        if !oracle.dirty[i] && b != oracle.flushed[i] {
            return Err(format!(
                "byte {i} reads {b:#04x}, flushed value was {:#04x}",
                oracle.flushed[i]
            ));
        }
    }
    Ok(())
}

/// Create the image and apply the steps, maintaining the oracle. Errors
/// out at the power cut.
fn run_steps(
    cluster_bits: u32,
    steps: &[Step],
    dev: &SharedDev,
    oracle: &mut Oracle,
) -> vmi_blockdev::Result<()> {
    let img = QcowImage::create(
        dev.clone(),
        CreateOpts::plain(VSIZE).with_cluster_bits(cluster_bits),
        None,
    )?;
    for s in steps {
        let len = s.len.min((VSIZE - s.off) as usize);
        let (off, end) = (s.off as usize, s.off as usize + len);
        // Dirty from the moment the write is in flight: a cut mid-write
        // may land any prefix of it durably, so until the next successful
        // flush these bytes are unconstrained.
        oracle.dirty[off..end].fill(true);
        img.write_at(&vec![s.fill; len], s.off)?;
        oracle.acked[off..end].fill(s.fill);
        if s.flush {
            img.flush()?;
            oracle.flushed.copy_from_slice(&oracle.acked);
            oracle.dirty.fill(false);
            oracle.flush_succeeded = true;
        }
    }
    img.close()?;
    oracle.flushed.copy_from_slice(&oracle.acked);
    oracle.dirty.fill(false);
    oracle.flush_succeeded = true;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FIFO drain: every seeded cut recovers, and flushed-and-untouched
    /// bytes survive bit-exactly.
    #[test]
    fn seeded_cuts_recover_and_keep_flushed_data(
        cluster_bits in 9u32..=12,
        steps in proptest::collection::vec(step_strategy(), 1..8),
        cut in cut_strategy(),
    ) {
        if let Err(v) = run_case(cluster_bits, &steps, &cut, None) {
            prop_assert!(false, "{v}");
        }
    }

    /// Out-of-order drain: a seeded shuffle reorders each flush epoch, so
    /// only the barrier placement (never FIFO luck) carries recovery.
    #[test]
    fn shuffled_drain_cuts_recover_too(
        cluster_bits in 9u32..=12,
        steps in proptest::collection::vec(step_strategy(), 1..8),
        cut in cut_strategy(),
        seed in any::<u64>(),
    ) {
        if let Err(v) = run_case(cluster_bits, &steps, &cut, Some(seed)) {
            prop_assert!(false, "{v}");
        }
    }
}
