//! `resize` (grow) and `rebase -u` semantics.

use std::sync::Arc;

use vmi_blockdev::{BlockDev, MemDev, SharedDev};
use vmi_qcow::{check, CreateOpts, QcowImage};

const MB: u64 = 1 << 20;

#[test]
fn resize_grows_and_preserves_data() {
    let dev: SharedDev = Arc::new(MemDev::new());
    let img = QcowImage::create(dev.clone(), CreateOpts::plain(4 * MB), None).unwrap();
    img.write_at(&[7u8; 4096], MB).unwrap();
    // Grow far enough to force an L1 relocation (4 MiB → 8 GiB at 64 KiB
    // clusters: 1 L1 entry → 16).
    let big = img.resize(8 << 30).unwrap();
    assert_eq!(big.virtual_size(), 8 << 30);
    let mut buf = [0u8; 4096];
    big.read_at(&mut buf, MB).unwrap();
    assert_eq!(buf, [7u8; 4096], "old data survives the resize");
    // The new space is writable and reads back.
    big.write_at(&[9u8; 512], 6 << 30).unwrap();
    big.read_at(&mut buf[..512], 6 << 30).unwrap();
    assert_eq!(&buf[..512], &[9u8; 512]);
    let rep = check(&big).unwrap();
    assert!(rep.is_clean(), "{:?}", rep.errors);
}

#[test]
fn resize_persists_across_reopen() {
    let dev: SharedDev = Arc::new(MemDev::new());
    {
        let img = QcowImage::create(dev.clone(), CreateOpts::plain(4 * MB), None).unwrap();
        img.write_at(&[5u8; 100], 0).unwrap();
        let big = img.resize(64 * MB).unwrap();
        drop(img); // detached: must not clobber the new header
        big.write_at(&[6u8; 100], 32 * MB).unwrap();
        big.close().unwrap();
    }
    let back = QcowImage::open(dev, None, true).unwrap();
    assert_eq!(back.virtual_size(), 64 * MB);
    let mut buf = [0u8; 100];
    back.read_at(&mut buf, 0).unwrap();
    assert_eq!(buf, [5u8; 100]);
    back.read_at(&mut buf, 32 * MB).unwrap();
    assert_eq!(buf, [6u8; 100]);
}

#[test]
fn resize_rejects_shrink_and_read_only() {
    let dev: SharedDev = Arc::new(MemDev::new());
    let img = QcowImage::create(dev.clone(), CreateOpts::plain(4 * MB), None).unwrap();
    assert!(img.resize(2 * MB).is_err());
    img.close().unwrap();
    drop(img);
    let ro = QcowImage::open(dev, None, true).unwrap();
    assert!(ro.resize(8 * MB).is_err());
}

#[test]
fn resize_same_size_is_identity() {
    let img = QcowImage::create(Arc::new(MemDev::new()), CreateOpts::plain(4 * MB), None).unwrap();
    let same = img.resize(4 * MB).unwrap();
    assert_eq!(same.virtual_size(), 4 * MB);
}

#[test]
fn rebase_switches_backing_content() {
    // The Algorithm 1 re-chaining flow: a CoW overlay moved from chaining
    // directly to the base onto chaining to a (content-identical) cache.
    let content: Vec<u8> = (0..(4 * MB) as usize).map(|i| (i % 199) as u8).collect();
    let base_a: SharedDev = Arc::new(MemDev::from_vec(content.clone()));
    let base_b: SharedDev = Arc::new(MemDev::from_vec(content.clone()));
    let cow = QcowImage::create(
        Arc::new(MemDev::new()),
        CreateOpts::cow(4 * MB, "a"),
        Some(Arc::new(vmi_blockdev::ReadOnlyDev::new(base_a)) as SharedDev),
    )
    .unwrap();
    cow.write_at(&[1u8; 512], 0).unwrap();
    let rebased = cow
        .rebase_unsafe(
            Some("b".into()),
            Some(Arc::new(vmi_blockdev::ReadOnlyDev::new(base_b)) as SharedDev),
        )
        .unwrap();
    assert_eq!(rebased.header().backing_file.as_deref(), Some("b"));
    // Local data and pass-through both intact.
    let mut buf = [0u8; 512];
    rebased.read_at(&mut buf, 0).unwrap();
    assert_eq!(buf, [1u8; 512]);
    rebased.read_at(&mut buf, MB).unwrap();
    assert_eq!(&buf[..], &content[(MB) as usize..(MB) as usize + 512]);
}

#[test]
fn rebase_to_standalone_drops_backing() {
    let base: SharedDev = Arc::new(MemDev::from_vec(vec![3u8; (4 * MB) as usize]));
    let cow = QcowImage::create(
        Arc::new(MemDev::new()),
        CreateOpts::cow(4 * MB, "b"),
        Some(Arc::new(vmi_blockdev::ReadOnlyDev::new(base)) as SharedDev),
    )
    .unwrap();
    cow.write_at(&[1u8; 512], 0).unwrap();
    let standalone = cow.rebase_unsafe(None, None).unwrap();
    assert!(standalone.backing().is_none());
    let mut buf = [0u8; 512];
    standalone.read_at(&mut buf, 0).unwrap();
    assert_eq!(buf, [1u8; 512], "local data kept");
    standalone.read_at(&mut buf, MB).unwrap();
    assert_eq!(
        buf, [0u8; 512],
        "unallocated now reads zero (backing dropped)"
    );
}

#[test]
fn rebase_cache_without_backing_rejected() {
    let base: SharedDev = Arc::new(MemDev::from_vec(vec![0u8; (4 * MB) as usize]));
    let cache = QcowImage::create(
        Arc::new(MemDev::new()),
        CreateOpts::cache(4 * MB, "b", 2 * MB),
        Some(base),
    )
    .unwrap();
    assert!(cache.rebase_unsafe(None, None).is_err());
}

#[test]
fn rebase_preserves_cache_accounting() {
    let content: Vec<u8> = (0..(4 * MB) as usize).map(|i| (i % 197) as u8).collect();
    let base_a: SharedDev = Arc::new(MemDev::from_vec(content.clone()));
    let base_b: SharedDev = Arc::new(MemDev::from_vec(content));
    let cache = QcowImage::create(
        Arc::new(MemDev::new()),
        CreateOpts::cache(4 * MB, "a", 2 * MB),
        Some(base_a),
    )
    .unwrap();
    let mut buf = vec![0u8; 65536];
    cache.read_at(&mut buf, 0).unwrap();
    let used = cache.cache_used();
    let rebased = cache.rebase_unsafe(Some("b".into()), Some(base_b)).unwrap();
    assert_eq!(
        rebased.cache_used(),
        used,
        "accounting carried through rebase"
    );
    assert!(rebased.is_cache());
    // Warm reads still warm.
    rebased.read_at(&mut buf, 0).unwrap();
    assert_eq!(rebased.cor_stats().miss_bytes, 0);
}
