//! Property tests for the image format: header round-trips, geometry
//! invariants, and data-race-free concurrent access.

use std::sync::Arc;

use proptest::prelude::*;
use vmi_blockdev::{BlockDev, MemDev, SharedDev};
use vmi_qcow::{CacheExt, CreateOpts, Geometry, Header, QcowImage};

proptest! {
    /// Every encodable header decodes back to itself.
    #[test]
    fn header_roundtrip(
        cluster_bits in 9u32..=21,
        size_mb in 1u64..4096,
        l1_size in 1u32..100_000,
        backing in proptest::option::of("[a-zA-Z0-9._/-]{1,64}"),
        cache in proptest::option::of((1u64..u64::MAX, 0u64..u64::MAX)),
        snaptab in proptest::option::of((0u64..u64::MAX, 0u32..u32::MAX, 0u32..1000)),
    ) {
        let h = Header {
            version: 3,
            cluster_bits,
            size: size_mb << 20,
            l1_table_offset: 1 << cluster_bits,
            l1_size,
            backing_file: backing,
            cache: cache.map(|(quota, used)| CacheExt { quota, used }),
            snaptab: snaptab.map(|(offset, len, count)| vmi_qcow::header::SnapTabExt {
                offset,
                len,
                count,
            }),
        };
        let dev = MemDev::new();
        dev.write_at(&h.encode(), 0).unwrap();
        let back = Header::decode(&dev).unwrap();
        prop_assert_eq!(back, h);
    }

    /// Random byte blobs never panic the decoder — they produce errors.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let dev = MemDev::from_vec(bytes);
        let _ = Header::decode(&dev); // must not panic
    }

    /// Geometry invariants: the n/m/d split always partitions 64 bits, and
    /// index arithmetic reconstructs every address.
    #[test]
    fn geometry_split_partitions_address(
        cluster_bits in 9u32..=21,
        size_kb in 64u64..(1 << 24),
        addr_frac in 0.0f64..1.0,
    ) {
        let size = size_kb << 10;
        let Ok(g) = Geometry::new(cluster_bits, size) else {
            return Ok(()); // oversized for cluster: rejection is fine
        };
        prop_assert_eq!(g.d_bits() + g.m_bits() + g.n_bits(), 64);
        let vba = ((size - 1) as f64 * addr_frac) as u64;
        let rebuilt = ((g.l1_index(vba) as u64) << (g.d_bits() + g.m_bits()))
            | ((g.l2_index(vba) as u64) << g.d_bits())
            | g.in_cluster(vba);
        prop_assert_eq!(rebuilt, vba);
        prop_assert!((g.l1_index(vba) as u64) < g.l1_entries());
    }

    /// Segments of any request tile it exactly without crossing clusters.
    #[test]
    fn segments_tile_requests(
        cluster_bits in 9u32..=16,
        off in 0u64..(1 << 20),
        len in 1usize..300_000,
    ) {
        let g = Geometry::new(cluster_bits, 4 << 20).unwrap();
        let mut expect = off;
        let mut total = 0usize;
        for seg in g.segments(off, len) {
            prop_assert_eq!(seg.vba, expect);
            prop_assert_eq!(seg.in_cluster, g.in_cluster(seg.vba));
            prop_assert!(seg.in_cluster + seg.len as u64 <= g.cluster_size());
            expect += seg.len as u64;
            total += seg.len;
        }
        prop_assert_eq!(total, len);
    }

    /// Sparse writes at random offsets read back correctly after reopen.
    #[test]
    fn persistence_roundtrip(
        writes in proptest::collection::vec((0u64..(4 << 20) - 4096, any::<u8>()), 1..20),
    ) {
        let dev: SharedDev = Arc::new(MemDev::new());
        {
            let img = QcowImage::create(dev.clone(), CreateOpts::plain(4 << 20), None).unwrap();
            for &(off, byte) in &writes {
                img.write_at(&[byte; 4096], off).unwrap();
            }
            img.close().unwrap();
        }
        let img = QcowImage::open(dev, None, true).unwrap();
        // Later writes win; replay forward over a reference model.
        let mut reference = std::collections::BTreeMap::new();
        for &(off, byte) in &writes {
            for i in 0..4096u64 {
                reference.insert(off + i, byte);
            }
        }
        for (&addr, &byte) in reference.iter().take(2000) {
            let mut b = [0u8; 1];
            img.read_at(&mut b, addr).unwrap();
            prop_assert_eq!(b[0], byte);
        }
    }
}

/// Concurrent readers on a shared warm cache image: data-race freedom and
/// correctness (the image is `Sync`; this exercises the lock discipline).
#[test]
fn concurrent_warm_readers_see_consistent_data() {
    let base_content: Vec<u8> = (0..(2usize << 20)).map(|i| (i % 239) as u8).collect();
    let base: SharedDev = Arc::new(MemDev::from_vec(base_content.clone()));
    let cache = QcowImage::create(
        Arc::new(MemDev::new()),
        CreateOpts::cache(2 << 20, "b", 8 << 20),
        Some(base),
    )
    .unwrap();
    // Warm it fully.
    let mut buf = vec![0u8; 1 << 20];
    cache.read_at(&mut buf, 0).unwrap();
    cache.read_at(&mut buf, 1 << 20).unwrap();

    crossbeam::thread::scope(|s| {
        for t in 0..4 {
            let cache = &cache;
            let content = &base_content;
            s.spawn(move |_| {
                let mut buf = vec![0u8; 8192];
                for i in 0..64u64 {
                    let off = ((i * 7919 + t * 131) % ((2 << 20) - 8192)) & !511;
                    cache.read_at(&mut buf, off).unwrap();
                    assert_eq!(&buf[..], &content[off as usize..off as usize + 8192]);
                }
            });
        }
    })
    .unwrap();
}

/// Concurrent cold readers racing to fill the same cache: every read must
/// return correct data and the final structure must check clean.
#[test]
fn concurrent_cold_readers_fill_safely() {
    let base_content: Vec<u8> = (0..(2usize << 20)).map(|i| (i % 241) as u8).collect();
    let base: SharedDev = Arc::new(MemDev::from_vec(base_content.clone()));
    let cache = QcowImage::create(
        Arc::new(MemDev::new()),
        CreateOpts::cache(2 << 20, "b", 8 << 20),
        Some(base),
    )
    .unwrap();
    crossbeam::thread::scope(|s| {
        for t in 0..4 {
            let cache = &cache;
            let content = &base_content;
            s.spawn(move |_| {
                let mut buf = vec![0u8; 4096];
                for i in 0..128u64 {
                    let off = ((i * 4096 + t * 1024) % ((2 << 20) - 4096)) & !511;
                    cache.read_at(&mut buf, off).unwrap();
                    assert_eq!(&buf[..], &content[off as usize..off as usize + 4096]);
                }
            });
        }
    })
    .unwrap();
    let rep = vmi_qcow::check(&cache).unwrap();
    assert!(rep.is_clean(), "{:?}", rep.errors);
}
