//! Property tests pinning the extent-coalesced I/O engine to the scalar
//! per-cluster path: for arbitrary sparse base layouts, cluster sizes, op
//! sequences, and quota latch points, both modes must produce bit-identical
//! guest data, identical copy-on-read accounting, and — because fresh
//! images allocate with the same bump sequence either way — byte-identical
//! cache containers.

use std::sync::Arc;

use proptest::prelude::*;
use vmi_blockdev::{BlockDev, MemDev, SharedDev};
use vmi_qcow::{CorStats, CreateOpts, QcowImage};

const VSIZE: u64 = 1 << 20;

/// One guest operation against the cache layer.
#[derive(Debug, Clone)]
enum Op {
    Read { off: u64, len: usize },
    Write { off: u64, len: usize, fill: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let span = (0u64..VSIZE, 1usize..64 << 10);
    prop_oneof![
        span.clone().prop_map(|(off, len)| Op::Read { off, len }),
        (span, any::<u8>()).prop_map(|((off, len), fill)| Op::Write { off, len, fill }),
    ]
}

/// Sparse base content: a handful of patterned segments over zeroes.
fn base_strategy() -> impl Strategy<Value = Vec<(u64, usize, u8)>> {
    proptest::collection::vec((0u64..VSIZE, 1usize..16 << 10, 1u8..=255), 0..6)
}

/// What one mode observed: per-op outcomes, final image, and accounting.
#[derive(Debug, PartialEq)]
struct Observed {
    /// Per-op result: read data, or the error kind as a string.
    ops: Vec<std::result::Result<Vec<u8>, String>>,
    /// Full guest readback after the sequence.
    image: Vec<u8>,
    stats: CorStats,
    cache_used: u64,
    fill_enabled: bool,
    /// Raw container bytes after close.
    container: Vec<u8>,
}

fn run_mode(
    coalesce: bool,
    cluster_bits: u32,
    base_segs: &[(u64, usize, u8)],
    quota: u64,
    ops: &[Op],
) -> Observed {
    let base = QcowImage::create(
        Arc::new(MemDev::new()) as SharedDev,
        CreateOpts::plain(VSIZE),
        None,
    )
    .unwrap();
    for &(off, len, fill) in base_segs {
        let len = len.min((VSIZE - off) as usize);
        base.write_at(&vec![fill; len], off).unwrap();
    }
    let cache_mem = Arc::new(MemDev::new());
    let cache = QcowImage::create(
        cache_mem.clone() as SharedDev,
        CreateOpts::cache(VSIZE, "b", quota).with_cluster_bits(cluster_bits),
        Some(base as SharedDev),
    )
    .unwrap();
    cache.set_coalescing(coalesce);
    let mut results = Vec::with_capacity(ops.len());
    for op in ops {
        let res = match op {
            Op::Read { off, len } => {
                let len = (*len).min((VSIZE - off) as usize);
                let mut buf = vec![0u8; len];
                cache
                    .read_at(&mut buf, *off)
                    .map(|()| buf)
                    .map_err(|e| format!("{:?}", e.kind()))
            }
            Op::Write { off, len, fill } => {
                let len = (*len).min((VSIZE - off) as usize);
                cache
                    .write_at(&vec![*fill; len], *off)
                    .map(|()| Vec::new())
                    .map_err(|e| format!("{:?}", e.kind()))
            }
        };
        results.push(res);
    }
    let mut image = vec![0u8; VSIZE as usize];
    cache.read_at(&mut image, 0).unwrap();
    let stats = cache.cor_stats();
    let cache_used = cache.cache_used();
    let fill_enabled = cache.fill_enabled();
    cache.close().unwrap();
    Observed {
        ops: results,
        image,
        stats,
        cache_used,
        fill_enabled,
        container: cache_mem.to_vec(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Arbitrary sparse layouts and op sequences with an ample quota:
    /// everything down to the container bytes must match.
    #[test]
    fn coalesced_matches_scalar_on_sparse_layouts(
        cluster_bits in 9u32..=12,
        base_segs in base_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let quota = 4 * VSIZE; // never latches
        let scalar = run_mode(false, cluster_bits, &base_segs, quota, &ops);
        let coalesced = run_mode(true, cluster_bits, &base_segs, quota, &ops);
        prop_assert_eq!(&scalar.ops, &coalesced.ops, "per-op outcomes diverged");
        prop_assert_eq!(&scalar.image, &coalesced.image, "guest data diverged");
        prop_assert_eq!(scalar.stats, coalesced.stats);
        prop_assert_eq!(scalar.cache_used, coalesced.cache_used);
        prop_assert_eq!(
            &scalar.container,
            &coalesced.container,
            "container bytes diverged"
        );
    }

    /// Quota latch points: a tight quota hits `no_space` mid-sequence. The
    /// latch must trip at the same byte count and leave identical caches —
    /// coalescing must not fill more (or less) than the scalar path before
    /// rejecting.
    #[test]
    fn quota_latch_is_mode_independent(
        cluster_bits in 9u32..=11,
        quota_clusters in 1u64..64,
        base_segs in base_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let quota = quota_clusters << cluster_bits;
        let scalar = run_mode(false, cluster_bits, &base_segs, quota, &ops);
        let coalesced = run_mode(true, cluster_bits, &base_segs, quota, &ops);
        prop_assert_eq!(
            scalar.fill_enabled,
            coalesced.fill_enabled,
            "latch state diverged"
        );
        prop_assert_eq!(&scalar.ops, &coalesced.ops, "per-op outcomes diverged");
        prop_assert_eq!(&scalar.image, &coalesced.image, "guest data diverged");
        prop_assert_eq!(scalar.stats, coalesced.stats);
        prop_assert_eq!(scalar.cache_used, coalesced.cache_used);
        prop_assert_eq!(&scalar.container, &coalesced.container);
    }
}
