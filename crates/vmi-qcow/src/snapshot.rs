//! Internal snapshots: record format and table (de)serialization.
//!
//! A snapshot freezes the guest-visible state of an image at a point in
//! time: the active L1 table is copied into fresh clusters and every
//! cluster reachable from it becomes copy-on-write — later guest writes
//! allocate new clusters instead of overwriting shared ones. The snapshot
//! table lives out of line in allocated clusters; the header's `SNAP`
//! extension points at it (see [`crate::header::SnapTabExt`]).
//!
//! This is the mechanism behind the §8 future-work direction of starting
//! VMs "from memory snapshots of already booted virtual machines": a booted
//! image can be snapshotted once and reverted per VM start.

use bytes::{Buf, BufMut};
use vmi_blockdev::{BlockError, Result};
use vmi_obs::{met, Obs};

/// Bump the snapshot-create counter for an image's observability handle.
pub(crate) fn note_create(obs: &Obs) {
    obs.count(met::SNAPSHOT_CREATES, 1);
}

/// Bump the snapshot-apply (revert) counter.
pub(crate) fn note_apply(obs: &Obs) {
    obs.count(met::SNAPSHOT_APPLIES, 1);
}

/// Bump the snapshot-delete counter.
pub(crate) fn note_delete(obs: &Obs) {
    obs.count(met::SNAPSHOT_DELETES, 1);
}

/// One snapshot record as stored in the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRec {
    /// Unique id within the image (monotonically assigned).
    pub id: u32,
    /// Human-readable name.
    pub name: String,
    /// Container offset of this snapshot's frozen L1 copy.
    pub l1_offset: u64,
    /// Number of L1 entries in the copy.
    pub l1_entries: u32,
}

/// Public view of a snapshot (what `list` returns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Snapshot id.
    pub id: u32,
    /// Snapshot name.
    pub name: String,
}

/// Maximum snapshot-name length accepted.
pub const MAX_SNAPSHOT_NAME: usize = 255;

/// Encode the snapshot table.
pub fn encode_table(recs: &[SnapshotRec]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in recs {
        debug_assert!(r.name.len() <= MAX_SNAPSHOT_NAME);
        out.put_u32(r.id);
        out.put_u64(r.l1_offset);
        out.put_u32(r.l1_entries);
        out.put_u16(r.name.len() as u16);
        out.extend_from_slice(r.name.as_bytes());
    }
    out
}

/// Decode a snapshot table of `count` records.
pub fn decode_table(mut raw: &[u8], count: u32) -> Result<Vec<SnapshotRec>> {
    let mut recs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        if raw.len() < 18 {
            return Err(BlockError::corrupt("truncated snapshot table"));
        }
        let id = raw.get_u32();
        let l1_offset = raw.get_u64();
        let l1_entries = raw.get_u32();
        let name_len = raw.get_u16() as usize;
        if name_len > MAX_SNAPSHOT_NAME || raw.len() < name_len {
            return Err(BlockError::corrupt("bad snapshot name length"));
        }
        let name = String::from_utf8(raw[..name_len].to_vec())
            .map_err(|_| BlockError::corrupt("snapshot name not UTF-8"))?;
        raw.advance(name_len);
        recs.push(SnapshotRec {
            id,
            name,
            l1_offset,
            l1_entries,
        });
    }
    Ok(recs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let recs = vec![
            SnapshotRec {
                id: 1,
                name: "clean-install".into(),
                l1_offset: 65536,
                l1_entries: 16,
            },
            SnapshotRec {
                id: 7,
                name: "booted".into(),
                l1_offset: 131072,
                l1_entries: 16,
            },
        ];
        let raw = encode_table(&recs);
        let back = decode_table(&raw, 2).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn empty_table() {
        assert!(decode_table(&[], 0).unwrap().is_empty());
        assert!(encode_table(&[]).is_empty());
    }

    #[test]
    fn truncated_table_rejected() {
        let recs = vec![SnapshotRec {
            id: 1,
            name: "x".into(),
            l1_offset: 0,
            l1_entries: 1,
        }];
        let raw = encode_table(&recs);
        assert!(decode_table(&raw[..raw.len() - 1], 1).is_err());
        assert!(decode_table(&raw, 2).is_err(), "count beyond data");
    }
}
