//! Crash-recovery engine: replay `vmi-audit` repair hints until the
//! container audits clean (supersedes the PR-2 [`crate::scrub`] for cache
//! opens).
//!
//! The write barriers in [`crate::image`] guarantee that any crash prefix of
//! a mutation sequence decomposes into exactly three artifact classes:
//!
//! 1. **Leaked clusters** — data or table clusters written (or allocated)
//!    whose publishing entry never became durable. Invisible to readers;
//!    only the recomputed used-size disagrees with the recorded one.
//!    Repair: rewrite the used field ([`RepairHint::RewriteUsedSize`]).
//! 2. **Garbage table entries** — an L1/L2 entry torn or landed without its
//!    referent (only possible for pre-barrier images or reordering media).
//!    By the barrier argument such an entry was never flush-acknowledged,
//!    so zeroing it loses no acked data.
//!    Repair: [`RepairHint::ClearL1Entry`] / [`RepairHint::ClearL2Entry`].
//! 3. **Garbage header** — the crash hit image creation or the header
//!    cluster itself. Nothing can be trusted: verdict
//!    [`RecoveryVerdict::Refetch`], and the deploy layer fetches a cold
//!    copy from the storage node.
//!
//! Recovery loops audit → apply-hints → re-audit until the image is clean
//! (each pass strictly reduces the number of nonzero table entries or fixes
//! the used field, so the loop terminates). It operates on the **raw
//! container device before open** — [`QcowImage::open`] rejects invalid L1
//! entries outright, so repair must come first. Every run counts
//! [`met::RECOVERY_RUNS`] / [`met::RECOVERY_REPAIRS`] /
//! [`met::RECOVERY_REFETCHES`] and emits an [`Event::RecoveryResult`].

use std::sync::Arc;

use vmi_audit::{audit_image_with_obs, AuditOpts, RepairHint, ViolationKind};
use vmi_blockdev::{be_u64, BlockDev, Result, SharedDev};
use vmi_obs::{met, Event, Obs};

use crate::header::Header;
use crate::image::QcowImage;

/// Upper bound on audit→repair passes. Progress is monotone (every pass
/// zeroes at least one nonzero entry or rewrites the used field once), so
/// hitting the cap means the image is adversarial, not torn: refetch.
const MAX_PASSES: u32 = 64;

/// Outcome class of one recovery run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryVerdict {
    /// Container was already consistent; nothing written.
    Clean,
    /// Container audits clean after `repairs` in-place fixes.
    Repaired {
        /// Individual repairs applied across all passes.
        repairs: u32,
    },
    /// Unrepairable damage; drop the container and fetch a cold copy.
    Refetch,
}

impl RecoveryVerdict {
    /// Wire label used in the `recovery_result` event.
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryVerdict::Clean => "clean",
            RecoveryVerdict::Repaired { .. } => "repaired",
            RecoveryVerdict::Refetch => "refetch",
        }
    }

    /// Repairs applied (0 unless `Repaired`).
    pub fn repairs(self) -> u32 {
        match self {
            RecoveryVerdict::Repaired { repairs } => repairs,
            _ => 0,
        }
    }

    /// `true` unless the verdict demands a refetch.
    pub fn is_usable(self) -> bool {
        !matches!(self, RecoveryVerdict::Refetch)
    }
}

/// Result of [`recover`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Outcome class.
    pub verdict: RecoveryVerdict,
    /// Bytes referenced by header + tables + data clusters after recovery
    /// (0 when the container was too damaged to walk).
    pub used: u64,
    /// Quota recorded in the header (0 for non-cache containers or when
    /// unreadable).
    pub quota: u64,
    /// Audit→repair passes performed (1 for a clean image).
    pub passes: u32,
    /// Human-readable log of every repair applied, in order.
    pub repairs: Vec<String>,
    /// Violations left standing when the verdict is `Refetch` (empty
    /// otherwise — clean and repaired images audit clean).
    pub remaining: Vec<String>,
}

impl RecoveryReport {
    /// `true` unless the verdict demands a refetch.
    pub fn is_usable(&self) -> bool {
        self.verdict.is_usable()
    }

    /// One-line JSON object (hand-rolled, mirrors `Violation::to_json`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"verdict\":\"{}\",\"repairs\":{},\"passes\":{},\"used\":{},\"quota\":{}",
            self.verdict.as_str(),
            self.verdict.repairs(),
            self.passes,
            self.used,
            self.quota
        );
        let join = |items: &[String]| {
            items
                .iter()
                .map(|r| format!("\"{}\"", json_escape(r)))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = write!(s, ",\"applied\":[{}]", join(&self.repairs));
        let _ = write!(s, ",\"remaining\":[{}]}}", join(&self.remaining));
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Violation kinds that condemn the whole container: if the header cannot
/// be trusted there is nothing to repair against.
fn is_header_level(kind: ViolationKind) -> bool {
    matches!(
        kind,
        ViolationKind::UnreadableHeader
            | ViolationKind::BadMagic
            | ViolationKind::BadVersion
            | ViolationKind::BadHeaderLength
            | ViolationKind::OversizedExtension
            | ViolationKind::MalformedExtension
            | ViolationKind::ZeroQuota
            | ViolationKind::BackingNameInvalid
    )
}

/// Run crash recovery on the container in `dev` (cache or plain image).
/// Read-only when the image is already consistent.
pub fn recover(dev: &SharedDev) -> RecoveryReport {
    recover_with_obs(dev, &Obs::disabled())
}

/// [`recover`] with an observability handle: counts recovery metrics and
/// emits a typed [`Event::RecoveryResult`].
pub fn recover_with_obs(dev: &SharedDev, obs: &Obs) -> RecoveryReport {
    obs.count(met::RECOVERY_RUNS, 1);
    let report = recover_inner(dev, obs);
    match report.verdict {
        RecoveryVerdict::Refetch => obs.count(met::RECOVERY_REFETCHES, 1),
        v => obs.count(met::RECOVERY_REPAIRS, u64::from(v.repairs())),
    }
    let (verdict, used, quota) = (report.verdict, report.used, report.quota);
    obs.emit(|| Event::RecoveryResult {
        verdict: verdict.as_str().to_string(),
        repairs: u64::from(verdict.repairs()),
        used,
        quota,
    });
    report
}

fn recover_inner(dev: &SharedDev, obs: &Obs) -> RecoveryReport {
    let mut applied: Vec<String> = Vec::new();
    let mut passes = 0u32;
    loop {
        passes += 1;
        let audit = audit_image_with_obs(dev.as_ref() as &dyn BlockDev, &AuditOpts::default(), obs);
        if audit.violations.iter().any(|v| is_header_level(v.kind)) || passes > MAX_PASSES {
            return refetch(audit, passes, applied);
        }
        if audit.is_clean() {
            return RecoveryReport {
                verdict: if applied.is_empty() {
                    RecoveryVerdict::Clean
                } else {
                    RecoveryVerdict::Repaired {
                        repairs: applied.len() as u32,
                    }
                },
                used: audit.recomputed_used,
                quota: audit.quota,
                passes,
                repairs: applied,
                remaining: Vec::new(),
            };
        }
        // Apply this pass's repairs. Entry clears first — they change the
        // referenced-cluster walk, so a used-size rewrite computed alongside
        // them would be stale; the next pass recomputes it.
        let header = match Header::decode(dev) {
            Ok(h) => h,
            Err(_) => return refetch(audit, passes, applied),
        };
        let mut cleared = 0usize;
        let mut unrepairable = false;
        for v in &audit.violations {
            match v.repair {
                RepairHint::ClearL1Entry { index } => {
                    let pos = header.l1_table_offset + index * 8;
                    if dev.write_at(&[0u8; 8], pos).is_err() {
                        return refetch(audit, passes, applied);
                    }
                    applied.push(format!("cleared L1[{index}]"));
                    cleared += 1;
                }
                RepairHint::ClearL2Entry { l1_index, l2_index } => {
                    let mut raw = [0u8; 8];
                    let l1_pos = header.l1_table_offset + l1_index * 8;
                    if dev.read_at(&mut raw, l1_pos).is_err() {
                        return refetch(audit, passes, applied);
                    }
                    let l2_off = be_u64(&raw);
                    if dev.write_at(&[0u8; 8], l2_off + l2_index * 8).is_err() {
                        return refetch(audit, passes, applied);
                    }
                    applied.push(format!("cleared L2[{l1_index}][{l2_index}]"));
                    cleared += 1;
                }
                RepairHint::RewriteUsedSize(_) => {} // second phase, below
                RepairHint::None | RepairHint::DiscardCache | RepairHint::RebuildChain => {
                    unrepairable = true;
                }
            }
        }
        if cleared == 0 {
            if unrepairable {
                return refetch(audit, passes, applied);
            }
            if let Some(recomputed) = audit.used_repair() {
                let wrote = Header::update_cache_used(dev.as_ref() as &dyn BlockDev, recomputed)
                    .and_then(|()| dev.flush()); // lint:allow(qcow-barrier)
                if wrote.is_err() {
                    return refetch(audit, passes, applied);
                }
                applied.push(format!("rewrote used-size to {recomputed}"));
                continue;
            }
            // Violations but no applicable hint at all.
            return refetch(audit, passes, applied);
        }
        let flushed = dev.flush(); // lint:allow(qcow-barrier)
        if flushed.is_err() {
            return refetch(audit, passes, applied);
        }
    }
}

fn refetch(audit: vmi_audit::AuditReport, passes: u32, applied: Vec<String>) -> RecoveryReport {
    RecoveryReport {
        verdict: RecoveryVerdict::Refetch,
        used: 0,
        quota: audit.quota,
        passes,
        repairs: applied,
        remaining: audit.violations.iter().map(|v| v.to_string()).collect(),
    }
}

/// Recover `dev` and, when the verdict allows it, open the cache image —
/// the restart-time warm-open path (supersedes
/// [`crate::scrub::open_cache_scrubbed`]).
///
/// Returns `Ok(None)` on a `Refetch` verdict — the caller deploys without
/// the cache (plain-QCOW2 fallback / cold refetch). A `Repaired` container
/// opens like a clean one.
pub fn open_cache_recovered(
    dev: SharedDev,
    backing: Option<SharedDev>,
    read_only: bool,
    obs: Obs,
) -> Result<Option<Arc<QcowImage>>> {
    let report = recover_with_obs(&dev, &obs);
    if !report.is_usable() {
        return Ok(None);
    }
    QcowImage::open_with_obs(dev, backing, read_only, obs).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::CreateOpts;
    use std::sync::Arc;
    use vmi_blockdev::MemDev;

    const MB: u64 = 1 << 20;

    fn mem() -> SharedDev {
        Arc::new(MemDev::new())
    }

    /// A closed cache container with some copied-on-read data in it.
    fn warmed_cache_dev() -> (SharedDev, SharedDev) {
        let base_dev = mem();
        let base = QcowImage::create(base_dev.clone(), CreateOpts::plain(8 * MB), None).unwrap();
        base.write_at(&[7u8; 65536], 0).unwrap();
        base.close().unwrap();
        drop(base);
        let base = QcowImage::open(base_dev.clone(), None, true).unwrap();
        let cache_dev = mem();
        let cache = QcowImage::create(
            cache_dev.clone(),
            CreateOpts::cache(8 * MB, "base", 4 * MB),
            Some(base as SharedDev),
        )
        .unwrap();
        let mut buf = vec![0u8; 65536];
        cache.read_at(&mut buf, 0).unwrap();
        cache.close().unwrap();
        drop(cache);
        (cache_dev, base_dev)
    }

    #[test]
    fn clean_cache_recovers_clean() {
        let (cache_dev, _base) = warmed_cache_dev();
        let rep = recover(&cache_dev);
        assert_eq!(rep.verdict, RecoveryVerdict::Clean, "{rep:?}");
        assert_eq!(rep.passes, 1);
        assert!(rep.used > 0);
        assert_eq!(rep.quota, 4 * MB);
    }

    #[test]
    fn torn_used_field_is_repaired_in_one_extra_pass() {
        let (cache_dev, _base) = warmed_cache_dev();
        let truth = Header::decode(&cache_dev).unwrap().cache.unwrap().used;
        Header::update_cache_used(&cache_dev, 1024).unwrap();
        let rep = recover(&cache_dev);
        assert_eq!(rep.verdict, RecoveryVerdict::Repaired { repairs: 1 });
        assert_eq!(rep.used, truth);
        assert_eq!(
            Header::decode(&cache_dev).unwrap().cache.unwrap().used,
            truth,
            "header rewritten in place"
        );
    }

    #[test]
    fn garbage_l1_entry_is_cleared_then_used_rewritten() {
        let (cache_dev, base_dev) = warmed_cache_dev();
        let header = Header::decode(&cache_dev).unwrap();
        // Land a torn (unaligned, nonsense) L1 entry in an unused slot: the
        // crash artifact of an L1 publish that never completed its epoch.
        let l1_len = u64::from(header.l1_size);
        let slot = l1_len - 1;
        cache_dev
            .write_at(
                &0xdead_beefu64.to_be_bytes(),
                header.l1_table_offset + slot * 8,
            )
            .unwrap();
        let rep = recover(&cache_dev);
        assert!(
            matches!(rep.verdict, RecoveryVerdict::Repaired { .. }),
            "{rep:?}"
        );
        assert!(
            rep.repairs.iter().any(|r| r.contains("cleared L1")),
            "{rep:?}"
        );
        // The recovered cache opens and still serves its warm data.
        let base = QcowImage::open(base_dev, None, true).unwrap();
        let img = open_cache_recovered(cache_dev, Some(base as SharedDev), false, Obs::disabled())
            .unwrap()
            .expect("repaired cache is usable");
        let mut buf = [0u8; 512];
        img.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [7u8; 512]);
    }

    #[test]
    fn garbage_l2_entry_is_cleared() {
        let (cache_dev, _base) = warmed_cache_dev();
        let header = Header::decode(&cache_dev).unwrap();
        // Find the first allocated L2 table and splat an unaligned entry
        // into one of its unused slots.
        let mut raw = [0u8; 8];
        let mut l2_off = 0;
        for i in 0..u64::from(header.l1_size) {
            cache_dev
                .read_at(&mut raw, header.l1_table_offset + i * 8)
                .unwrap();
            if be_u64(&raw) != 0 {
                l2_off = be_u64(&raw);
                break;
            }
        }
        assert_ne!(l2_off, 0, "warmed cache must have an L2 table");
        // Entry slots near the end of the table are unused by the 64 KiB
        // fill at vba 0.
        let cs = 1u64 << header.cluster_bits;
        let last_slot = cs / 8 - 1;
        cache_dev
            .write_at(&0x1357_9bdfu64.to_be_bytes(), l2_off + last_slot * 8)
            .unwrap();
        let rep = recover(&cache_dev);
        assert!(
            matches!(rep.verdict, RecoveryVerdict::Repaired { .. }),
            "{rep:?}"
        );
        assert!(
            rep.repairs.iter().any(|r| r.contains("cleared L2")),
            "{rep:?}"
        );
        // Idempotent: a second run is clean.
        assert_eq!(recover(&cache_dev).verdict, RecoveryVerdict::Clean);
    }

    #[test]
    fn smashed_magic_refetches() {
        let (cache_dev, _base) = warmed_cache_dev();
        cache_dev.write_at(&[0u8; 4], 0).unwrap();
        let rep = recover(&cache_dev);
        assert_eq!(rep.verdict, RecoveryVerdict::Refetch);
        assert!(!rep.remaining.is_empty());
        let opened = open_cache_recovered(cache_dev, None, false, Obs::disabled()).unwrap();
        assert!(opened.is_none(), "refetch verdict does not open");
    }

    #[test]
    fn plain_images_recover_too() {
        let dev = mem();
        let img = QcowImage::create(dev.clone(), CreateOpts::plain(MB), None).unwrap();
        img.write_at(&[3u8; 4096], 0).unwrap();
        img.close().unwrap();
        drop(img);
        assert_eq!(recover(&dev).verdict, RecoveryVerdict::Clean);
        // Splat a garbage L1 entry; plain images get entry clears as well.
        let header = Header::decode(&dev).unwrap();
        let slot = u64::from(header.l1_size) - 1;
        dev.write_at(&0x55u64.to_be_bytes(), header.l1_table_offset + slot * 8)
            .unwrap();
        let rep = recover(&dev);
        assert!(
            matches!(rep.verdict, RecoveryVerdict::Repaired { .. }),
            "{rep:?}"
        );
    }

    #[test]
    fn recovery_emits_events_and_metrics() {
        use vmi_obs::{ManualClock, RecorderHandle};
        let (cache_dev, _base) = warmed_cache_dev();
        Header::update_cache_used(&cache_dev, 777 * 512).unwrap();
        let (rec, sink) = RecorderHandle::jsonl();
        let obs = rec.attach(Arc::new(ManualClock::new(0)));
        let rep = recover_with_obs(&cache_dev, &obs);
        assert_eq!(rep.verdict, RecoveryVerdict::Repaired { repairs: 1 });
        assert_eq!(obs.counter_value(met::RECOVERY_RUNS), 1);
        assert_eq!(obs.counter_value(met::RECOVERY_REPAIRS), 1);
        let lines = sink.lines();
        assert!(
            lines.iter().any(
                |l| l.contains("\"recovery_result\"") && l.contains("\"verdict\":\"repaired\"")
            ),
            "{lines:?}"
        );
    }

    #[test]
    fn report_json_is_parseable_shape() {
        let (cache_dev, _base) = warmed_cache_dev();
        let rep = recover(&cache_dev);
        let j = rep.to_json();
        assert!(j.starts_with("{\"verdict\":\"clean\""), "{j}");
        assert!(j.contains("\"applied\":[]"), "{j}");
    }
}
