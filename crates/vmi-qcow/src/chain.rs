//! Image-chain construction: the `qemu-img` workflows of §4.4 and the
//! backing-file "flag dance" of §4.3.
//!
//! With plain QCOW2 the deployment flow is: create a CoW image backed by the
//! base, boot from the CoW image. With VMI caches there is one more step:
//! first create a *cache* image (quota, 512 B clusters) backed by the base,
//! then create the CoW image backed by the cache (Fig. 4). This module
//! automates both flows over an abstract [`DevResolver`] so the same code
//! works on host files, in-memory media and simulator-instrumented devices.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use vmi_blockdev::{BlockDev, BlockError, MemDev, ReadOnlyDev, Result, SharedDev};
use vmi_obs::{met, Event, Obs};

use crate::header::Header;
use crate::image::{CreateOpts, QcowImage};

/// Record one layer open/create: bump the counter and emit a
/// [`Event::ChainOpen`]. No-op on a disabled handle.
fn note_open(obs: &Obs, image: &str, kind: &str, writable: bool, depth: usize) {
    obs.count(met::CHAIN_OPENS, 1);
    obs.emit(|| Event::ChainOpen {
        image: image.to_string(),
        kind: kind.to_string(),
        writable,
        depth: depth as u64,
    });
}

/// Classify a decoded header for [`Event::ChainOpen`].
fn layer_kind(header: &Header) -> &'static str {
    if header.is_cache() {
        "cache"
    } else if header.backing_file.is_some() {
        "cow"
    } else {
        "base"
    }
}

/// Maps a backing-file *name* (as stored in a header) to a container device.
///
/// This stands in for the filesystem/NFS namespace: the cluster layer
/// registers each image file under its name (local path or NFS path) and
/// chains resolve through it.
pub trait DevResolver {
    /// Resolve `name` to the device holding that image file.
    fn resolve(&self, name: &str) -> Result<SharedDev>;
}

/// A simple in-memory name → device map (the test/simulation namespace).
pub struct MapResolver {
    map: Mutex<HashMap<String, SharedDev>>,
}

impl Default for MapResolver {
    fn default() -> Self {
        let map = Mutex::new(HashMap::new());
        map.set_rank(parking_lot::lockrank::QCOW_CHAIN);
        Self { map }
    }
}

impl MapResolver {
    /// An empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `dev` under `name`, replacing any previous registration.
    pub fn insert(&self, name: impl Into<String>, dev: SharedDev) {
        self.map.lock().insert(name.into(), dev);
    }

    /// Remove a registration, returning the device if it existed.
    pub fn remove(&self, name: &str) -> Option<SharedDev> {
        self.map.lock().remove(name)
    }

    /// Register a fresh empty [`MemDev`] under `name` and return it.
    pub fn create_mem(&self, name: impl Into<String>) -> SharedDev {
        let dev: SharedDev = Arc::new(MemDev::new());
        self.insert(name, dev.clone());
        dev
    }

    /// Names currently registered (sorted, for deterministic iteration).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.lock().keys().cloned().collect();
        v.sort();
        v
    }
}

impl DevResolver for MapResolver {
    fn resolve(&self, name: &str) -> Result<SharedDev> {
        self.map
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| BlockError::unsupported(format!("unknown backing file {name:?}")))
    }
}

/// Open the image stored under `name`, recursively opening its backing
/// chain, applying the §4.3 permission dance at every level:
///
/// > "we first open the backing image with read and write permissions, and
/// > then if we detect that the image is not a cache image, we re-open the
/// > image with read-only permission."
///
/// The top-level image is opened read-write unless `read_only`. Backing
/// levels are opened read-write only when they are cache images (they need
/// write permission for copy-on-read warming); everything else is wrapped
/// read-only.
pub fn open_chain(
    resolver: &dyn DevResolver,
    name: &str,
    read_only: bool,
) -> Result<Arc<QcowImage>> {
    open_chain_with_obs(resolver, name, read_only, &Obs::disabled())
}

/// [`open_chain`] with an observability handle: every opened layer emits a
/// [`Event::ChainOpen`] and the handle is attached to each image for
/// read/CoR instrumentation.
pub fn open_chain_with_obs(
    resolver: &dyn DevResolver,
    name: &str,
    read_only: bool,
    obs: &Obs,
) -> Result<Arc<QcowImage>> {
    let dev = resolver.resolve(name)?;
    open_chain_dev(resolver, name, dev, read_only, 0, obs)
}

/// Depth guard: a backing loop would otherwise recurse forever.
const MAX_CHAIN_DEPTH: usize = 16;

fn open_chain_dev(
    resolver: &dyn DevResolver,
    name: &str,
    dev: SharedDev,
    read_only: bool,
    depth: usize,
    obs: &Obs,
) -> Result<Arc<QcowImage>> {
    if depth > MAX_CHAIN_DEPTH {
        return Err(BlockError::corrupt("backing chain too deep (loop?)"));
    }
    let header = Header::decode(dev.as_ref() as &dyn BlockDev)?;
    let backing: Option<SharedDev> = match &header.backing_file {
        None => None,
        Some(bname) => {
            let bdev = resolver.resolve(bname)?;
            // The flag dance: peek at the backing header to decide RW vs RO.
            // A raw (non-image) backing device is treated as a base: RO.
            match Header::decode(bdev.as_ref() as &dyn BlockDev) {
                Ok(bh) if bh.is_cache() => {
                    // Cache backing: opened read-write so CoR can warm it.
                    Some(open_chain_dev(resolver, bname, bdev, false, depth + 1, obs)? as SharedDev)
                }
                Ok(_) => {
                    // Plain image backing: "re-open … with read-only".
                    Some(open_chain_dev(resolver, bname, bdev, true, depth + 1, obs)? as SharedDev)
                }
                Err(_) => {
                    // Raw base content (not our format): read-only view.
                    note_open(obs, bname, "raw", false, depth + 1);
                    Some(Arc::new(ReadOnlyDev::new(bdev)) as SharedDev)
                }
            }
        }
    };
    note_open(obs, name, layer_kind(&header), !read_only, depth);
    QcowImage::open_with_obs(dev, backing, read_only, obs.clone())
}

/// Create the classic two-layer arrangement: `base ← CoW` (§2, Fig. 1).
/// Returns the opened CoW image ready to hand to a VM.
pub fn create_cow_chain(
    resolver: &dyn DevResolver,
    base_name: &str,
    cow_dev: SharedDev,
    virtual_size: u64,
) -> Result<Arc<QcowImage>> {
    create_cow_chain_with_obs(resolver, base_name, cow_dev, virtual_size, &Obs::disabled())
}

/// [`create_cow_chain`] with an observability handle.
pub fn create_cow_chain_with_obs(
    resolver: &dyn DevResolver,
    base_name: &str,
    cow_dev: SharedDev,
    virtual_size: u64,
    obs: &Obs,
) -> Result<Arc<QcowImage>> {
    let base = open_backing(resolver, base_name, obs)?;
    note_open(obs, "cow", "cow", true, 0);
    QcowImage::create_with_obs(
        cow_dev,
        CreateOpts::cow(virtual_size, base_name),
        Some(base),
        obs.clone(),
    )
}

/// Create the paper's three-layer arrangement (§4.4):
/// `base ← cache(quota, 512 B clusters) ← CoW`.
///
/// Step 1: "qemu-img is invoked with a cache quota and pointing to the base
/// image as its backing file." Step 2: "qemu-img is invoked with no cache
/// quota and pointing to the cache image as its backing file."
#[allow(clippy::too_many_arguments)] // mirrors the §4.4 qemu-img invocation
pub fn create_cached_chain(
    resolver: &dyn DevResolver,
    base_name: &str,
    cache_name: &str,
    cache_dev: SharedDev,
    cow_dev: SharedDev,
    virtual_size: u64,
    quota: u64,
    cache_cluster_bits: u32,
) -> Result<Arc<QcowImage>> {
    create_cached_chain_with_obs(
        resolver,
        base_name,
        cache_name,
        cache_dev,
        cow_dev,
        virtual_size,
        quota,
        cache_cluster_bits,
        &Obs::disabled(),
    )
}

/// [`create_cached_chain`] with an observability handle threaded through
/// every created/opened layer.
#[allow(clippy::too_many_arguments)] // mirrors the §4.4 qemu-img invocation
pub fn create_cached_chain_with_obs(
    resolver: &dyn DevResolver,
    base_name: &str,
    cache_name: &str,
    cache_dev: SharedDev,
    cow_dev: SharedDev,
    virtual_size: u64,
    quota: u64,
    cache_cluster_bits: u32,
    obs: &Obs,
) -> Result<Arc<QcowImage>> {
    let base = open_backing(resolver, base_name, obs)?;
    note_open(obs, cache_name, "cache", true, 1);
    let cache = QcowImage::create_with_obs(
        cache_dev,
        CreateOpts::cache(virtual_size, base_name, quota).with_cluster_bits(cache_cluster_bits),
        Some(base),
        obs.clone(),
    )?;
    note_open(obs, "cow", "cow", true, 0);
    QcowImage::create_with_obs(
        cow_dev,
        CreateOpts::cow(virtual_size, cache_name),
        Some(cache as SharedDev),
        obs.clone(),
    )
}

/// Create a CoW image on top of an *existing, already-warm* cache image
/// registered under `cache_name` (the warm-boot flow: "With a warm cache,
/// there is obviously no need to invoke qemu-img for creating the cache").
pub fn create_cow_over_cache(
    resolver: &dyn DevResolver,
    cache_name: &str,
    cow_dev: SharedDev,
    virtual_size: u64,
) -> Result<Arc<QcowImage>> {
    create_cow_over_cache_with_obs(
        resolver,
        cache_name,
        cow_dev,
        virtual_size,
        &Obs::disabled(),
    )
}

/// [`create_cow_over_cache`] with an observability handle.
pub fn create_cow_over_cache_with_obs(
    resolver: &dyn DevResolver,
    cache_name: &str,
    cow_dev: SharedDev,
    virtual_size: u64,
    obs: &Obs,
) -> Result<Arc<QcowImage>> {
    let cache = open_chain_with_obs(resolver, cache_name, false, obs)?;
    if !cache.is_cache() {
        return Err(BlockError::unsupported(format!(
            "{cache_name:?} is not a cache image"
        )));
    }
    note_open(obs, "cow", "cow", true, 0);
    QcowImage::create_with_obs(
        cow_dev,
        CreateOpts::cow(virtual_size, cache_name),
        Some(cache as SharedDev),
        obs.clone(),
    )
}

/// Resolve and open `name` as a backing layer: our image chains opened with
/// the flag dance, raw devices wrapped read-only.
fn open_backing(resolver: &dyn DevResolver, name: &str, obs: &Obs) -> Result<SharedDev> {
    let dev = resolver.resolve(name)?;
    match Header::decode(dev.as_ref() as &dyn BlockDev) {
        Ok(h) if h.is_cache() => Ok(open_chain_with_obs(resolver, name, false, obs)? as SharedDev),
        Ok(_) => Ok(open_chain_with_obs(resolver, name, true, obs)? as SharedDev),
        Err(_) => {
            note_open(obs, name, "raw", false, 1);
            Ok(Arc::new(ReadOnlyDev::new(dev)) as SharedDev)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn setup_base(resolver: &MapResolver, name: &str, size: u64) -> Arc<QcowImage> {
        let dev = resolver.create_mem(name);
        QcowImage::create(dev, CreateOpts::plain(size), None).unwrap()
    }

    #[test]
    fn map_resolver_basics() {
        let r = MapResolver::new();
        assert!(r.resolve("x").is_err());
        let d = r.create_mem("x");
        d.write_at(b"z", 0).unwrap();
        assert_eq!(r.resolve("x").unwrap().len(), 1);
        assert_eq!(r.names(), vec!["x".to_string()]);
        assert!(r.remove("x").is_some());
        assert!(r.resolve("x").is_err());
    }

    #[test]
    fn cow_chain_over_qcow_base() {
        let r = MapResolver::new();
        let base = setup_base(&r, "base.img", 8 * MB);
        base.write_at(&[0xC3; 1000], 5000).unwrap();
        base.close().unwrap();
        drop(base);
        let cow = create_cow_chain(&r, "base.img", Arc::new(MemDev::new()), 8 * MB).unwrap();
        let mut buf = [0u8; 1000];
        cow.read_at(&mut buf, 5000).unwrap();
        assert_eq!(buf, [0xC3; 1000]);
    }

    #[test]
    fn cow_chain_over_raw_base() {
        let r = MapResolver::new();
        let raw = r.create_mem("raw.img");
        raw.set_len(8 * MB).unwrap();
        raw.write_at(&[0x11; 100], 0).unwrap();
        let cow = create_cow_chain(&r, "raw.img", Arc::new(MemDev::new()), 8 * MB).unwrap();
        let mut buf = [0u8; 100];
        cow.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [0x11; 100]);
        // Guest write must not reach the raw base.
        cow.write_at(&[0x22; 100], 0).unwrap();
        let mut raw_buf = [0u8; 100];
        raw.read_at(&mut raw_buf, 0).unwrap();
        assert_eq!(raw_buf, [0x11; 100]);
    }

    #[test]
    fn cached_chain_cold_then_warm() {
        let r = MapResolver::new();
        let base = setup_base(&r, "base.img", 8 * MB);
        base.write_at(&[0x77; 4096], 100 * 1024).unwrap();
        base.close().unwrap();
        drop(base);

        let cache_dev = r.create_mem("cache.img");
        // Cold boot: full three-layer create.
        {
            let cow = create_cached_chain(
                &r,
                "base.img",
                "cache.img",
                cache_dev.clone(),
                Arc::new(MemDev::new()),
                8 * MB,
                4 * MB,
                9,
            )
            .unwrap();
            let mut buf = [0u8; 4096];
            cow.read_at(&mut buf, 100 * 1024).unwrap();
            assert_eq!(buf, [0x77; 4096]);
            // Dropping the chain closes the cache and persists `used`.
        }
        // Warm boot: new CoW over the existing cache; the read must be
        // served without touching the base.
        let base_before = {
            let h = Header::decode(r.resolve("base.img").unwrap().as_ref() as &dyn BlockDev);
            h.is_ok()
        };
        assert!(base_before);
        let cow2 = create_cow_over_cache(&r, "cache.img", Arc::new(MemDev::new()), 8 * MB).unwrap();
        let mut buf = [0u8; 4096];
        cow2.read_at(&mut buf, 100 * 1024).unwrap();
        assert_eq!(buf, [0x77; 4096]);
        // The cache layer below reports a pure hit.
        let cache_layer = cow2.backing().unwrap();
        // (stats live on the QcowImage; reach it via describe as a sanity
        // check that the layer is a cache)
        assert!(cache_layer.describe().contains("cache"));
    }

    #[test]
    fn open_chain_flag_dance_reopens_plain_backing_read_only() {
        let r = MapResolver::new();
        let base = setup_base(&r, "base.img", 4 * MB);
        base.close().unwrap();
        drop(base);
        let cow_dev = r.create_mem("cow.img");
        create_cow_chain(&r, "base.img", cow_dev, 4 * MB)
            .unwrap()
            .close()
            .unwrap();

        let cow = open_chain(&r, "cow.img", false).unwrap();
        assert!(!cow.is_read_only());
        // Its backing is a QcowImage opened read-only.
        let backing = cow.backing().unwrap();
        assert!(backing.describe().contains("qcow"));
        assert!(
            backing.write_at(&[1], 0).is_err(),
            "plain backing must be read-only"
        );
    }

    #[test]
    fn open_chain_keeps_cache_backing_writable() {
        let r = MapResolver::new();
        let base = setup_base(&r, "base.img", 4 * MB);
        base.write_at(&[5; 512], 0).unwrap();
        base.close().unwrap();
        drop(base);
        let cache_dev = r.create_mem("cache.img");
        let cow_dev = r.create_mem("cow.img");
        create_cached_chain(
            &r,
            "base.img",
            "cache.img",
            cache_dev.clone(),
            cow_dev,
            4 * MB,
            2 * MB,
            9,
        )
        .unwrap();

        let before = cache_dev.len();
        let cow = open_chain(&r, "cow.img", false).unwrap();
        let mut buf = [0u8; 512];
        cow.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [5; 512]);
        assert!(
            cache_dev.len() > before,
            "cache warming must write through reopened chain"
        );
    }

    #[test]
    fn open_chain_detects_backing_loop() {
        let r = MapResolver::new();
        // a backs b backs a.
        let da = r.create_mem("a");
        let db = r.create_mem("b");
        // Build headers by hand via create with placeholder backing, then
        // we simply create images that name each other. create() requires a
        // resolved backing device, so pass the raw dev of the other.
        QcowImage::create(da.clone(), CreateOpts::cow(MB, "b"), Some(db.clone())).unwrap();
        QcowImage::create(db, CreateOpts::cow(MB, "a"), Some(da)).unwrap();
        let err = open_chain(&r, "a", false).unwrap_err();
        assert!(err.to_string().contains("too deep"));
    }

    #[test]
    fn create_cow_over_non_cache_rejected() {
        let r = MapResolver::new();
        let base = setup_base(&r, "base.img", MB);
        base.close().unwrap();
        drop(base);
        let err = create_cow_over_cache(&r, "base.img", Arc::new(MemDev::new()), MB).unwrap_err();
        assert!(err.to_string().contains("not a cache"));
    }
}
