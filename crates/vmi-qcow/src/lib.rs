//! # vmi-qcow — a QCOW2-style image format with VMI-cache copy-on-read
//!
//! This crate is the paper's primary contribution, re-implemented as a
//! standalone Rust library rather than a QEMU patch:
//!
//! * a QCOW2-style container format (big-endian header, header extensions,
//!   two-level L1/L2 cluster mapping, bump cluster allocation, backing-file
//!   chains with copy-on-write) — see [`header`], [`layout`], [`image`];
//! * the **VMI cache extension** (§3–§4): a cache image is a regular image
//!   plus a header extension holding a *quota* and the *current used size*.
//!   Cold reads recurse to the base and are copied into the cache
//!   (copy-on-read) at cluster granularity until the quota is hit, after
//!   which fills latch off with a *space error* while reads keep flowing;
//! * `qemu-img`-style chain building (§4.4) and maintenance ops
//!   ([`ops::info`], [`ops::map`], [`ops::check`], [`ops::commit`],
//!   [`ops::compact`]);
//! * the §4.3 backing-file permission "flag dance" in [`chain::open_chain`];
//! * the rest of a production driver's surface: `discard` (TRIM) with
//!   cluster reuse and quota re-arming, grow-only `resize`, unsafe
//!   `rebase`, bounded L2-table caching, **internal snapshots**
//!   (copy-on-write freeze / revert / delete, [`snapshot`]), and
//!   content-dedup analysis across caches ([`dedup`]).
//!
//! ## The Fig. 4 arrangement
//!
//! ```text
//!   Base ←── Cache (quota, 512 B clusters) ←── CoW ←── VM
//!        read            read|write(CoR fill)      |write (guest)
//! ```
//!
//! ```
//! use std::sync::Arc;
//! use vmi_blockdev::{BlockDev, MemDev};
//! use vmi_qcow::chain::{create_cached_chain, MapResolver};
//!
//! let ns = MapResolver::new();
//! // A 64 MiB base VMI with some "OS data" in it.
//! let base_dev = ns.create_mem("base.img");
//! let base = vmi_qcow::QcowImage::create(
//!     base_dev, vmi_qcow::CreateOpts::plain(64 << 20), None).unwrap();
//! base.write_at(&[7u8; 4096], 1 << 20).unwrap();
//! base.close().unwrap();
//! drop(base);
//!
//! // base ← cache(8 MiB quota) ← cow, then boot-read through the chain.
//! let cache_dev = ns.create_mem("cache.img");
//! let cow = create_cached_chain(
//!     &ns, "base.img", "cache.img", cache_dev, Arc::new(MemDev::new()),
//!     64 << 20, 8 << 20, 9).unwrap();
//! let mut buf = [0u8; 4096];
//! cow.read_at(&mut buf, 1 << 20).unwrap();
//! assert_eq!(buf, [7u8; 4096]);
//! ```

#![forbid(unsafe_code)]

pub mod chain;
pub mod concurrent;
pub mod dedup;
pub mod engine;
pub mod header;
pub mod image;
pub mod layout;
pub mod ops;
pub mod recover;
pub mod scrub;
pub mod snapshot;

pub use chain::{
    create_cached_chain, create_cached_chain_with_obs, create_cow_chain, create_cow_chain_with_obs,
    create_cow_over_cache, create_cow_over_cache_with_obs, open_chain, open_chain_with_obs,
    DevResolver, MapResolver,
};
pub use concurrent::{share_concurrent, ConcStats, ConcurrentImage};
pub use dedup::{analyze as dedup_analyze, DedupReport};
pub use engine::{Completion, Request, RequestEngine};
pub use header::{CacheExt, Header};
pub use image::{CorStats, CreateOpts, QcowImage};
pub use layout::{Geometry, DEFAULT_CLUSTER_BITS, MIN_CLUSTER_BITS};
pub use ops::{check, commit, compact, info, map, CheckReport, ImageInfo, MapExtent};
pub use recover::{
    open_cache_recovered, recover, recover_with_obs, RecoveryReport, RecoveryVerdict,
};
pub use scrub::{open_cache_scrubbed, scrub_cache, ScrubReport, ScrubVerdict};
pub use snapshot::{SnapshotInfo, SnapshotRec};
