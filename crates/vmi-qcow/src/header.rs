//! On-device image header and header extensions.
//!
//! The layout mirrors QCOW2's (§4.1): a fixed header at offset 0 followed by
//! a sequence of framed header extensions. The paper's contribution adds a
//! *cache extension* carrying "two more fields … these new 8-byte fields
//! define the quota and the current size of the cache" (§4.3), implemented
//! "as an extension to the QCowHeader … to ensure backward compatibility
//! with normal QCOW2 images".
//!
//! All integers are big-endian, as in QCOW2.

use bytes::{Buf, BufMut};
use vmi_blockdev::{be_u32, BlockDev, BlockError, Result};

use crate::layout::Geometry;

/// Image magic: `"QFI\xfb"`, same as QCOW2.
pub const MAGIC: u32 = 0x5146_49fb;

/// Format version understood by this driver.
pub const VERSION: u32 = 3;

/// Byte length of the fixed header portion.
pub const FIXED_HEADER_LEN: u32 = 48;

/// Extension type id of the end-of-extensions marker.
pub const EXT_END: u32 = 0;

/// Extension type id of the VMI-cache extension (quota + used size).
pub const EXT_CACHE: u32 = 0xCAC8_E001;

/// Extension type id for an embedded backing-format hint (parity with
/// QCOW2's backing format extension; informational).
pub const EXT_BACKING_FORMAT: u32 = 0xE279_2ACA;

/// Extension type id of the snapshot-table pointer.
pub const EXT_SNAPTAB: u32 = 0x534E_4150; // "SNAP"

/// Maximum length of a backing-file name we accept.
pub const MAX_BACKING_NAME: usize = 1023;

/// The cache extension payload: the two 8-byte fields of §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheExt {
    /// Maximum bytes the cache image may occupy in its container
    /// (data clusters + metadata). 0 is never stored (a zero quota means
    /// "not a cache" and the extension is omitted).
    pub quota: u64,
    /// Bytes currently used, "written back to the image file" on close.
    pub used: u64,
}

/// Pointer to the internal-snapshot table (stored out of line in allocated
/// clusters, like QCOW2's). `count == 0` means no snapshots exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapTabExt {
    /// Container offset of the encoded snapshot table (0 when empty).
    pub offset: u64,
    /// Encoded table length in bytes.
    pub len: u32,
    /// Number of snapshot records.
    pub count: u32,
}

/// Parsed image header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Format version (currently always [`VERSION`]).
    pub version: u32,
    /// log2 of cluster size.
    pub cluster_bits: u32,
    /// Virtual disk size in bytes. For a cache or CoW image this "has to be
    /// the same as the base image's" (§4.3).
    pub size: u64,
    /// Offset of the L1 table in the container.
    pub l1_table_offset: u64,
    /// Number of L1 entries.
    pub l1_size: u32,
    /// Backing file name, if this image recurses to one.
    pub backing_file: Option<String>,
    /// The VMI-cache extension, present iff this image is a cache.
    pub cache: Option<CacheExt>,
    /// Snapshot-table pointer; `None` on images created before the feature
    /// (and on cache images, which do not support snapshots).
    pub snaptab: Option<SnapTabExt>,
}

impl Header {
    /// Geometry implied by this header.
    pub fn geometry(&self) -> Result<Geometry> {
        Geometry::new(self.cluster_bits, self.size)
    }

    /// `true` iff the image carries the cache extension.
    pub fn is_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// Serialize into a buffer laid out exactly as stored at offset 0.
    ///
    /// Layout:
    /// ```text
    /// 0  u32 magic            16 u32 backing_name_len
    /// 4  u32 version          20 u32 cluster_bits
    /// 8  u64 backing_name_off 24 u64 size
    ///                         32 u64 l1_table_offset
    ///                         40 u32 l1_size
    ///                         44 u32 header_length
    /// 48.. extensions, then the backing file name (if any)
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        let mut ext = Vec::new();
        if let Some(c) = &self.cache {
            put_ext(&mut ext, EXT_CACHE, &{
                let mut p = Vec::with_capacity(16);
                p.put_u64(c.quota);
                p.put_u64(c.used);
                p
            });
        }
        if let Some(t) = &self.snaptab {
            put_ext(&mut ext, EXT_SNAPTAB, &{
                let mut p = Vec::with_capacity(16);
                p.put_u64(t.offset);
                p.put_u32(t.len);
                p.put_u32(t.count);
                p
            });
        }
        put_ext(&mut ext, EXT_END, &[]);

        let name = self.backing_file.as_deref().unwrap_or("");
        let backing_off = if name.is_empty() {
            0
        } else {
            FIXED_HEADER_LEN as u64 + ext.len() as u64
        };

        let mut out = Vec::with_capacity(FIXED_HEADER_LEN as usize + ext.len() + name.len());
        out.put_u32(MAGIC);
        out.put_u32(self.version);
        out.put_u64(backing_off);
        out.put_u32(name.len() as u32);
        out.put_u32(self.cluster_bits);
        out.put_u64(self.size);
        out.put_u64(self.l1_table_offset);
        out.put_u32(self.l1_size);
        out.put_u32(FIXED_HEADER_LEN);
        debug_assert_eq!(out.len(), FIXED_HEADER_LEN as usize);
        out.extend_from_slice(&ext);
        out.extend_from_slice(name.as_bytes());
        out
    }

    /// Parse a header from the first bytes of a container device.
    pub fn decode(dev: &dyn BlockDev) -> Result<Header> {
        let mut fixed = [0u8; FIXED_HEADER_LEN as usize];
        dev.read_at(&mut fixed, 0)
            .map_err(|e| BlockError::corrupt(format!("short header read: {e}")))?;
        let mut b = &fixed[..];
        let magic = b.get_u32();
        if magic != MAGIC {
            return Err(BlockError::corrupt(format!("bad magic {magic:#010x}")));
        }
        let version = b.get_u32();
        if version != VERSION {
            return Err(BlockError::unsupported(format!(
                "unsupported version {version}"
            )));
        }
        let backing_off = b.get_u64();
        let backing_len = b.get_u32() as usize;
        let cluster_bits = b.get_u32();
        let size = b.get_u64();
        let l1_table_offset = b.get_u64();
        let l1_size = b.get_u32();
        let header_length = b.get_u32();
        if header_length != FIXED_HEADER_LEN {
            return Err(BlockError::unsupported(format!(
                "unexpected header length {header_length}"
            )));
        }
        if backing_len > MAX_BACKING_NAME {
            return Err(BlockError::corrupt(format!(
                "backing name too long: {backing_len}"
            )));
        }

        // Walk extensions.
        let mut cache = None;
        let mut snaptab = None;
        let mut pos = FIXED_HEADER_LEN as u64;
        loop {
            let mut frame = [0u8; 8];
            dev.read_at(&mut frame, pos)
                .map_err(|_| BlockError::corrupt("truncated extension area"))?;
            let ty = be_u32(&frame[..4]);
            let len = be_u32(&frame[4..]) as usize;
            pos += 8;
            if ty == EXT_END {
                break;
            }
            if len > 4096 {
                return Err(BlockError::corrupt(format!(
                    "oversized extension {ty:#x}: {len}"
                )));
            }
            let mut payload = vec![0u8; len];
            dev.read_at(&mut payload, pos)
                .map_err(|_| BlockError::corrupt("truncated extension payload"))?;
            pos += padded(len) as u64;
            // Unknown extension types are skipped for forward compatibility,
            // exactly the QCOW2 rule that keeps cache images readable by
            // drivers that predate the extension.
            if ty == EXT_CACHE {
                if len != 16 {
                    return Err(BlockError::corrupt(format!(
                        "cache extension wrong size {len}"
                    )));
                }
                let mut p = &payload[..];
                let quota = p.get_u64();
                let used = p.get_u64();
                if quota == 0 {
                    return Err(BlockError::corrupt("cache extension with zero quota"));
                }
                cache = Some(CacheExt { quota, used });
            } else if ty == EXT_SNAPTAB {
                if len != 16 {
                    return Err(BlockError::corrupt(format!(
                        "snapshot extension wrong size {len}"
                    )));
                }
                let mut p = &payload[..];
                snaptab = Some(SnapTabExt {
                    offset: p.get_u64(),
                    len: p.get_u32(),
                    count: p.get_u32(),
                });
            }
        }

        let backing_file = if backing_len == 0 {
            None
        } else {
            // Any in-bounds placement of the name is tolerated; just read it.
            let _ = pos;
            let mut name = vec![0u8; backing_len];
            dev.read_at(&mut name, backing_off)
                .map_err(|_| BlockError::corrupt("truncated backing name"))?;
            Some(
                String::from_utf8(name)
                    .map_err(|_| BlockError::corrupt("backing name not UTF-8"))?,
            )
        };

        Ok(Header {
            version,
            cluster_bits,
            size,
            l1_table_offset,
            l1_size,
            backing_file,
            cache,
            snaptab,
        })
    }

    /// Rewrite only the snapshot-table pointer in place on `dev` (the
    /// extension payload is fixed-size, so the header layout is unchanged).
    pub fn update_snaptab(dev: &dyn BlockDev, tab: SnapTabExt) -> Result<()> {
        let mut pos = FIXED_HEADER_LEN as u64;
        loop {
            let mut frame = [0u8; 8];
            dev.read_at(&mut frame, pos)
                .map_err(|_| BlockError::corrupt("truncated extension area"))?;
            let ty = be_u32(&frame[..4]);
            let len = be_u32(&frame[4..]) as usize;
            pos += 8;
            match ty {
                EXT_END => return Err(BlockError::corrupt("no snapshot extension to update")),
                EXT_SNAPTAB => {
                    let mut p = Vec::with_capacity(16);
                    p.put_u64(tab.offset);
                    p.put_u32(tab.len);
                    p.put_u32(tab.count);
                    dev.write_at(&p, pos)?;
                    return Ok(());
                }
                _ => pos += padded(len) as u64,
            }
        }
    }

    /// Rewrite only the cache extension's `used` field in place on `dev`.
    ///
    /// This is the §4.3 `close` behaviour: "the (new) current size of the
    /// cache is written back to the image file". The extension is found by
    /// walking the frames so unrelated bytes are untouched.
    pub fn update_cache_used(dev: &dyn BlockDev, used: u64) -> Result<()> {
        let mut pos = FIXED_HEADER_LEN as u64;
        loop {
            let mut frame = [0u8; 8];
            dev.read_at(&mut frame, pos)
                .map_err(|_| BlockError::corrupt("truncated extension area"))?;
            let ty = be_u32(&frame[..4]);
            let len = be_u32(&frame[4..]) as usize;
            pos += 8;
            match ty {
                EXT_END => return Err(BlockError::corrupt("no cache extension to update")),
                EXT_CACHE => {
                    dev.write_at(&used.to_be_bytes(), pos + 8)?;
                    return Ok(());
                }
                _ => pos += padded(len) as u64,
            }
        }
    }
}

fn padded(len: usize) -> usize {
    len.div_ceil(8) * 8
}

fn put_ext(out: &mut Vec<u8>, ty: u32, payload: &[u8]) {
    out.put_u32(ty);
    out.put_u32(payload.len() as u32);
    out.extend_from_slice(payload);
    out.resize(out.len() + (padded(payload.len()) - payload.len()), 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmi_blockdev::MemDev;

    fn sample(cache: Option<CacheExt>, backing: Option<&str>) -> Header {
        Header {
            version: VERSION,
            cluster_bits: 16,
            size: 8 << 30,
            l1_table_offset: 65536,
            l1_size: 16,
            backing_file: backing.map(str::to_string),
            cache,
            snaptab: None,
        }
    }

    fn roundtrip(h: &Header) -> Header {
        let dev = MemDev::new();
        dev.write_at(&h.encode(), 0).unwrap();
        Header::decode(&dev).unwrap()
    }

    #[test]
    fn plain_header_roundtrips() {
        let h = sample(None, None);
        assert_eq!(roundtrip(&h), h);
        assert!(!h.is_cache());
    }

    #[test]
    fn cache_header_roundtrips() {
        let h = sample(
            Some(CacheExt {
                quota: 200 << 20,
                used: 1234,
            }),
            Some("base.img"),
        );
        let back = roundtrip(&h);
        assert_eq!(back, h);
        assert!(back.is_cache());
        assert_eq!(back.backing_file.as_deref(), Some("base.img"));
    }

    #[test]
    fn bad_magic_rejected() {
        let dev = MemDev::new();
        dev.write_at(&[0u8; 64], 0).unwrap();
        let err = Header::decode(&dev).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn bad_version_rejected() {
        let h = sample(None, None);
        let mut bytes = h.encode();
        bytes[7] = 9; // version low byte
        let dev = MemDev::new();
        dev.write_at(&bytes, 0).unwrap();
        assert!(Header::decode(&dev).is_err());
    }

    #[test]
    fn truncated_header_rejected() {
        let dev = MemDev::new();
        dev.write_at(&sample(None, None).encode()[..20], 0).unwrap();
        assert!(Header::decode(&dev).is_err());
    }

    #[test]
    fn zero_quota_extension_rejected() {
        let h = sample(Some(CacheExt { quota: 1, used: 0 }), None);
        let mut bytes = h.encode();
        // quota u64 sits right after the 8-byte ext frame at FIXED_HEADER_LEN.
        let qoff = FIXED_HEADER_LEN as usize + 8;
        bytes[qoff..qoff + 8].copy_from_slice(&0u64.to_be_bytes());
        let dev = MemDev::new();
        dev.write_at(&bytes, 0).unwrap();
        assert!(Header::decode(&dev).is_err());
    }

    #[test]
    fn unknown_extension_skipped() {
        // Hand-build: fixed header + unknown ext + end marker.
        let h = sample(None, None);
        let mut bytes = h.encode();
        // Rebuild with an injected unknown extension before END by
        // re-encoding manually.
        let mut ext = Vec::new();
        put_ext(&mut ext, 0xDEAD_BEEF, &[1, 2, 3]); // padded to 8
        put_ext(&mut ext, EXT_END, &[]);
        bytes.truncate(FIXED_HEADER_LEN as usize);
        bytes.extend_from_slice(&ext);
        let dev = MemDev::new();
        dev.write_at(&bytes, 0).unwrap();
        let back = Header::decode(&dev).unwrap();
        assert_eq!(back.cache, None);
        assert_eq!(back.size, h.size);
    }

    #[test]
    fn update_cache_used_in_place() {
        let h = sample(
            Some(CacheExt {
                quota: 100,
                used: 5,
            }),
            Some("b"),
        );
        let dev = MemDev::new();
        dev.write_at(&h.encode(), 0).unwrap();
        Header::update_cache_used(&dev, 77).unwrap();
        let back = Header::decode(&dev).unwrap();
        assert_eq!(back.cache.unwrap().used, 77);
        assert_eq!(back.cache.unwrap().quota, 100);
        assert_eq!(
            back.backing_file.as_deref(),
            Some("b"),
            "name survives in-place update"
        );
    }

    #[test]
    fn update_cache_used_fails_on_plain_image() {
        let dev = MemDev::new();
        dev.write_at(&sample(None, None).encode(), 0).unwrap();
        assert!(Header::update_cache_used(&dev, 1).is_err());
    }

    #[test]
    fn header_fits_in_min_cluster() {
        // The whole encoded header (with cache ext and a reasonable backing
        // name) must fit in one 512 B cluster, since the L1 table starts at
        // cluster 1.
        let h = Header {
            cluster_bits: 9,
            ..sample(
                Some(CacheExt {
                    quota: 200 << 20,
                    used: 0,
                }),
                Some("images/centos-6.3.img"),
            )
        };
        assert!(
            h.encode().len() <= 512,
            "encoded header must fit in a sector cluster"
        );
    }
}
