//! Concurrent request layer over [`QcowImage`]: sharded L2 lookup cache +
//! per-extent range locks.
//!
//! [`QcowImage`] is internally consistent under concurrent callers, but it
//! serializes *everything* behind one state mutex held across container and
//! backing I/O — so a second reader stalls for the full device service time
//! of the first. That is exactly the bottleneck the paper's deployment
//! numbers assume away: many guests hammering one shared cache image.
//!
//! [`ConcurrentImage`] restructures the request path without touching the
//! on-disk format or the PR-7 barrier discipline:
//!
//! * **Warm reads run in parallel.** A read over fully-mapped clusters takes
//!   a *shared* range lock, resolves cluster→container mappings from a
//!   sharded, immutable-snapshot L2 cache (no `QcowImage` state lock at
//!   all), coalesces physically contiguous clusters into runs (the PR-5
//!   extent unit), and reads the container directly. Non-overlapping warm
//!   reads never contend.
//! * **Mutations serialize deterministically.** Writes, copy-on-read fills,
//!   and discards take an *exclusive* cluster-aligned range lock plus a
//!   global mutation-order lock, then delegate to the underlying
//!   [`QcowImage`] — whose own state mutex, allocation discipline, and
//!   single `barrier()` choke point are reused unchanged. Before the
//!   exclusive lock drops, the L1 mirror and affected L2 shards are
//!   refreshed so later warm reads see the new mapping.
//! * **Completion order is observable.** Every operation gets a stamp from
//!   one atomic counter, taken before its lock is released. Replaying the
//!   same operations serially in stamp order reproduces the guest bytes and
//!   the final container bit-for-bit (property-tested in
//!   `tests/concurrent_props.rs`).
//!
//! Lock ordering (deadlock-free because it is acyclic and each request
//! acquires exactly one range atomically): range lock → mutation-order lock
//! → `QcowImage` state mutex → shard `RwLock` / device. The authoritative
//! ranked form of this hierarchy — covering every lock in the workspace —
//! lives in `LOCK_ORDER.toml` at the repository root; it is enforced
//! statically by `vmi-lint lock-order` and dynamically by the
//! `parking_lot::lockrank` witness (ranks registered in
//! [`ConcurrentImage::new_with_obs`]).
//!
//! Not supported concurrently: snapshot create/apply/delete, `resize`, and
//! `rebase` swap whole tables out from under the mirror — quiesce the
//! `ConcurrentImage` (drop in-flight requests) and call those on the inner
//! [`QcowImage`] directly.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{lockrank, rank, Condvar, Mutex, RwLock};
use vmi_blockdev::{BlockDev, BlockError, ByteRange, Result, SharedDev};
use vmi_obs::{Obs, SpanId};

use crate::image::QcowImage;
use crate::layout::Geometry;

const UNALLOCATED: u64 = 0;

/// Number of independent L2-cache shards. Requests hash by L1 index, so
/// reads of different table regions never touch the same shard lock.
const SHARDS: usize = 16;

// ----------------------------------------------------------------------
// Range locks
// ----------------------------------------------------------------------

/// Lock mode for a byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Shared,
    Exclusive,
}

fn conflicts(a: &ByteRange, am: Mode, b: &ByteRange, bm: Mode) -> bool {
    (am == Mode::Exclusive || bm == Mode::Exclusive) && a.intersect(b).is_some()
}

#[derive(Debug, Default)]
struct LockState {
    /// Currently granted ranges.
    active: Vec<(ByteRange, Mode, u64)>,
    /// FIFO admission queue: `(ticket, range, mode)`.
    waiting: VecDeque<(u64, ByteRange, Mode)>,
    next_ticket: u64,
}

/// FIFO fair byte-range locks: shared ranges may overlap each other;
/// an exclusive range excludes every overlapping range. Conflicting
/// requests are granted strictly in ticket (arrival) order, which is what
/// makes overlapping mutations serialize *deterministically* rather than
/// by lock-acquisition race.
#[derive(Debug, Default)]
struct RangeLocks {
    st: Mutex<LockState>,
    cv: Condvar,
}

impl RangeLocks {
    fn acquire(&self, range: ByteRange, mode: Mode) -> RangeGuard<'_> {
        let mut st = self.st.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.waiting.push_back((ticket, range, mode));
        loop {
            let blocked_active = st
                .active
                .iter()
                .any(|(r, m, _)| conflicts(r, *m, &range, mode));
            let blocked_earlier = st
                .waiting
                .iter()
                .any(|(t, r, m)| *t < ticket && conflicts(r, *m, &range, mode));
            if !blocked_active && !blocked_earlier {
                st.waiting.retain(|(t, _, _)| *t != ticket);
                st.active.push((range, mode, ticket));
                break;
            }
            self.cv.wait(&mut st);
        }
        // The admission mutex (rank 32) must be released before the logical
        // range rank (30) joins the witness stack: ranks ascend range →
        // admission, because RangeGuard::drop re-enters the admission lock.
        drop(st);
        RangeGuard {
            locks: self,
            ticket,
            _token: rank::held_reentrant(lockrank::QCOW_RANGE),
        }
    }
}

/// Releases its range (and wakes waiters) on drop.
struct RangeGuard<'a> {
    locks: &'a RangeLocks,
    ticket: u64,
    /// Witness token for [`lockrank::QCOW_RANGE`]; re-entrant because one
    /// thread may legally hold several shared/disjoint range guards. Pops
    /// after `Drop::drop` releases the range under the admission lock.
    _token: rank::Held,
}

impl Drop for RangeGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.locks.st.lock();
        st.active.retain(|(_, _, t)| *t != self.ticket);
        drop(st);
        self.locks.cv.notify_all();
    }
}

// ----------------------------------------------------------------------
// Sharded L2 cache
// ----------------------------------------------------------------------

/// One shard of the L2 lookup cache: immutable table snapshots keyed by L1
/// index, plus an epoch that invalidation bumps so a concurrently-loaded
/// stale snapshot is never *cached* (it may still be *used* by the loader,
/// which is safe: a reader only consults entries inside its locked range,
/// and those cannot have changed while the lock is held).
#[derive(Debug, Default)]
struct Shard {
    epoch: AtomicU64,
    map: RwLock<HashMap<usize, Arc<Vec<u64>>>>,
}

// ----------------------------------------------------------------------
// ConcurrentImage
// ----------------------------------------------------------------------

/// Concurrency statistics (see [`ConcurrentImage::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConcStats {
    /// Reads served entirely from warm mappings without the image mutex.
    pub warm_reads: u64,
    /// Guest bytes moved by those warm reads.
    pub warm_bytes: u64,
    /// Reads that fell back to the serialized path (cold clusters → CoR,
    /// or a warm-path device hiccup retried authoritatively).
    pub slow_reads: u64,
    /// Serialized mutations (writes + discards).
    pub mutations: u64,
    /// L2 snapshot loads that were *not* cached because a concurrent
    /// invalidation raced the load (correctness backstop, see [`Shard`]).
    pub stale_loads: u64,
}

/// See the [module docs](self): a sharded, range-locked concurrency layer
/// that lets non-overlapping warm reads proceed in parallel over one shared
/// [`QcowImage`] while mutations keep their deterministic serial order.
///
/// Implements [`BlockDev`], so it can stand wherever the image could — in
/// particular as an NBD export device shared by many connections.
pub struct ConcurrentImage {
    img: Arc<QcowImage>,
    geom: Geometry,
    /// Lock-free-read mirror of the L1 table, refreshed under the
    /// mutation-order lock after every serialized mutation.
    l1: RwLock<Vec<u64>>,
    shards: Vec<Shard>,
    locks: RangeLocks,
    /// Serializes every mutating delegate call *and* the mirror refresh +
    /// stamp that follow it, so stamp order equals the image's internal
    /// mutation order.
    mut_order: Mutex<()>,
    stamp: AtomicU64,
    warm_reads: AtomicU64,
    warm_bytes: AtomicU64,
    slow_reads: AtomicU64,
    mutations: AtomicU64,
    stale_loads: AtomicU64,
    obs: Obs,
}

impl std::fmt::Debug for ConcurrentImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentImage")
            .field("img", &self.img)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl ConcurrentImage {
    /// Wrap `img`. The wrapper assumes it becomes the image's only mutator;
    /// reads/writes made directly on `img` afterwards are still *safe* but
    /// may be served stale by the warm path until the next wrapped mutation
    /// touches the same range.
    pub fn new(img: Arc<QcowImage>) -> Arc<Self> {
        let obs = img.obs_handle().clone();
        Self::new_with_obs(img, obs)
    }

    /// [`ConcurrentImage::new`] with an explicit observability handle for
    /// the warm path's spans (the serialized path keeps the image's own).
    pub fn new_with_obs(img: Arc<QcowImage>, obs: Obs) -> Arc<Self> {
        let geom = img.geometry();
        let l1 = RwLock::new(img.l1_snapshot());
        l1.set_rank(lockrank::QCOW_L1);
        let shards: Vec<Shard> = (0..SHARDS).map(|_| Shard::default()).collect();
        for s in &shards {
            s.map.set_rank(lockrank::QCOW_SHARD);
        }
        let locks = RangeLocks::default();
        locks.st.set_rank(lockrank::QCOW_RANGE_ADMISSION);
        let mut_order = Mutex::new(());
        mut_order.set_rank(lockrank::QCOW_MUT_ORDER);
        Arc::new(Self {
            img,
            geom,
            l1,
            shards,
            locks,
            mut_order,
            stamp: AtomicU64::new(0),
            warm_reads: AtomicU64::new(0),
            warm_bytes: AtomicU64::new(0),
            slow_reads: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            stale_loads: AtomicU64::new(0),
            obs,
        })
    }

    /// The wrapped image.
    pub fn image(&self) -> &Arc<QcowImage> {
        &self.img
    }

    /// Concurrency counters.
    pub fn stats(&self) -> ConcStats {
        ConcStats {
            warm_reads: self.warm_reads.load(Ordering::Relaxed),
            warm_bytes: self.warm_bytes.load(Ordering::Relaxed),
            slow_reads: self.slow_reads.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Relaxed),
            stale_loads: self.stale_loads.load(Ordering::Relaxed),
        }
    }

    /// Completion stamps handed out so far.
    pub fn completed_ops(&self) -> u64 {
        self.stamp.load(Ordering::Acquire)
    }

    fn next_stamp(&self) -> u64 {
        self.stamp.fetch_add(1, Ordering::AcqRel) + 1
    }

    fn check_bounds(&self, off: u64, len: usize) -> Result<()> {
        let vsize = self.geom.virtual_size;
        let end = off
            .checked_add(len as u64)
            .ok_or_else(|| BlockError::out_of_bounds(off, len, vsize))?;
        if end > vsize {
            return Err(BlockError::out_of_bounds(off, len, vsize));
        }
        Ok(())
    }

    /// Cluster-aligned lock span for a mutation over `[off, off+len)`:
    /// copy-on-read fills and write allocations only ever touch clusters
    /// intersecting the request, so this span bounds every mapping change.
    fn aligned(&self, off: u64, len: usize) -> ByteRange {
        let start = self.geom.cluster_start(off);
        let end = self.geom.align_up(off + len as u64);
        ByteRange { start, end }
    }

    // ------------------------------------------------------------------
    // warm mapping resolution
    // ------------------------------------------------------------------

    /// Container offset of the cluster holding `vba` in *this* layer, if
    /// mapped, using only the mirror + shard caches (never the image
    /// mutex). Caller must hold a range lock covering `vba`.
    fn mapping(&self, vba: u64) -> Result<Option<u64>> {
        let l1_idx = self.geom.l1_index(vba);
        let l2_off = match self.l1.read().get(l1_idx) {
            Some(&e) => e,
            None => return Ok(None),
        };
        if l2_off == UNALLOCATED {
            return Ok(None);
        }
        let table = self.l2_table(l1_idx, l2_off)?;
        let entry = table
            .get(self.geom.l2_index(vba))
            .copied()
            .unwrap_or(UNALLOCATED);
        if entry == UNALLOCATED {
            return Ok(None);
        }
        Ok(Some(entry))
    }

    fn l2_table(&self, l1_idx: usize, l2_off: u64) -> Result<Arc<Vec<u64>>> {
        let shard = &self.shards[l1_idx % SHARDS];
        let epoch = shard.epoch.load(Ordering::Acquire);
        if let Some(t) = shard.map.read().get(&l1_idx) {
            return Ok(Arc::clone(t));
        }
        let table = Arc::new(self.img.l2_snapshot(l2_off)?);
        let mut map = shard.map.write();
        if shard.epoch.load(Ordering::Acquire) == epoch {
            map.insert(l1_idx, Arc::clone(&table));
        } else {
            // An invalidation raced our load: the snapshot is fine for the
            // range we hold locked, but must not outlive this request.
            self.stale_loads.fetch_add(1, Ordering::Relaxed);
        }
        Ok(table)
    }

    /// Refresh the L1 mirror and drop shard entries for every L1 index the
    /// mutation span touches. Must run under `mut_order` *and* the span's
    /// exclusive range lock, before either is released.
    fn refresh(&self, span: ByteRange) {
        if span.is_empty() {
            return;
        }
        let first = self.geom.l1_index(span.start);
        let last = self.geom.l1_index(span.end - 1);
        {
            let mut l1 = self.l1.write();
            for idx in first..=last {
                if idx < l1.len() {
                    l1[idx] = self.img.l1_entry(idx);
                }
            }
        }
        for idx in first..=last {
            let shard = &self.shards[idx % SHARDS];
            shard.epoch.fetch_add(1, Ordering::AcqRel);
            shard.map.write().remove(&idx);
        }
    }

    // ------------------------------------------------------------------
    // request paths
    // ------------------------------------------------------------------

    /// Read returning the completion stamp (see the module docs for the
    /// replay-equivalence contract).
    pub fn read_stamped(&self, buf: &mut [u8], off: u64, parent: Option<SpanId>) -> Result<u64> {
        self.check_bounds(off, buf.len())?;
        if buf.is_empty() {
            return Ok(self.next_stamp());
        }
        {
            let _g = self
                .locks
                .acquire(ByteRange::at(off, buf.len() as u64), Mode::Shared);
            if let Ok(true) = self.try_warm_read(buf, off, parent) {
                // Stamp before the shared lock drops: any overlapping
                // mutation stamps strictly after us.
                return Ok(self.next_stamp());
            }
            // Unmapped cluster in range, or a warm-path device error: retry
            // below through the authoritative serialized path (which handles
            // CoR fills and degraded fallback).
        }
        self.slow_reads.fetch_add(1, Ordering::Relaxed);
        let span = self.aligned(off, buf.len());
        let _g = self.locks.acquire(span, Mode::Exclusive);
        let _om = self.mut_order.lock();
        let res = self.img.read_at_in(buf, off, parent);
        // A cold read may have filled clusters (copy-on-read): publish the
        // new mappings to the warm path before the locks drop.
        self.refresh(span);
        let stamp = self.next_stamp();
        res.map(|()| stamp)
    }

    /// Warm fast path: `Ok(true)` iff every cluster of the request is
    /// mapped in this layer and the container reads succeeded.
    fn try_warm_read(&self, buf: &mut [u8], off: u64, parent: Option<SpanId>) -> Result<bool> {
        let cs = self.geom.cluster_size();
        let end = off + buf.len() as u64;
        // Resolve to physically contiguous container runs (the PR-5 extent
        // unit, recovered here from cached tables instead of lookup_run).
        let mut runs: Vec<(u64, usize)> = Vec::new();
        let mut pos = off;
        while pos < end {
            let Some(cluster_off) = self.mapping(pos)? else {
                return Ok(false);
            };
            let in_c = self.geom.in_cluster(pos);
            let take = ((cs - in_c) as usize).min((end - pos) as usize);
            let cont = cluster_off + in_c;
            match runs.last_mut() {
                Some((roff, rlen)) if *roff + *rlen as u64 == cont => *rlen += take,
                _ => runs.push((cont, take)),
            }
            pos += take as u64;
        }
        let span = self.obs.span_in(parent, "qcow.read", || {
            format!("layer=warm off={off} len={} runs={}", buf.len(), runs.len())
        });
        let sid = span.id();
        let dev = self.img.container();
        let mut cursor = 0usize;
        for (cont, rlen) in &runs {
            dev.read_run_at_in(&mut buf[cursor..cursor + rlen], *cont, sid)?;
            cursor += rlen;
        }
        self.warm_reads.fetch_add(1, Ordering::Relaxed);
        self.warm_bytes
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(true)
    }

    /// Write returning the completion stamp.
    pub fn write_stamped(&self, buf: &[u8], off: u64, parent: Option<SpanId>) -> Result<u64> {
        self.check_bounds(off, buf.len())?;
        if buf.is_empty() {
            return Ok(self.next_stamp());
        }
        self.mutations.fetch_add(1, Ordering::Relaxed);
        let span = self.aligned(off, buf.len());
        let _g = self.locks.acquire(span, Mode::Exclusive);
        let _om = self.mut_order.lock();
        let res = self.img.write_at_in(buf, off, parent);
        self.refresh(span);
        let stamp = self.next_stamp();
        res.map(|()| stamp)
    }

    /// Discard (TRIM) under an exclusive range lock; see
    /// [`QcowImage::discard`] for semantics. Returns clusters discarded.
    pub fn discard(&self, off: u64, len: u64) -> Result<u64> {
        if len == 0 {
            return Ok(0);
        }
        self.mutations.fetch_add(1, Ordering::Relaxed);
        let span = self.aligned(off, len as usize);
        let _g = self.locks.acquire(span, Mode::Exclusive);
        let _om = self.mut_order.lock();
        let res = self.img.discard(off, len);
        self.refresh(span);
        let _ = self.next_stamp();
        res
    }
}

impl BlockDev for ConcurrentImage {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.read_stamped(buf, off, None).map(|_| ())
    }

    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        self.write_stamped(buf, off, None).map(|_| ())
    }

    fn read_at_in(&self, buf: &mut [u8], off: u64, parent: Option<SpanId>) -> Result<()> {
        self.read_stamped(buf, off, parent).map(|_| ())
    }

    fn write_at_in(&self, buf: &[u8], off: u64, parent: Option<SpanId>) -> Result<()> {
        self.write_stamped(buf, off, parent).map(|_| ())
    }

    fn len(&self) -> u64 {
        self.geom.virtual_size
    }

    fn set_len(&self, _len: u64) -> Result<()> {
        Err(BlockError::unsupported("images have a fixed virtual size"))
    }

    fn flush(&self) -> Result<()> {
        // Serialize with mutations so a flush observed "after" a write in
        // completion order really does cover that write's container I/O.
        let _om = self.mut_order.lock();
        // QcowImage::flush is itself the barrier() choke point, so the
        // discipline is preserved through this delegation.
        self.img.flush() // lint:allow(qcow-barrier)
    }

    fn describe(&self) -> String {
        format!("concurrent({})", self.img.describe())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// A `SharedDev` wrapper helper: wrap an image for concurrent sharing.
pub fn share_concurrent(img: Arc<QcowImage>) -> SharedDev {
    ConcurrentImage::new(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::CreateOpts;
    use vmi_blockdev::MemDev;

    fn mem() -> SharedDev {
        Arc::new(MemDev::new())
    }

    fn seeded_base(size: u64) -> SharedDev {
        let dev = MemDev::new();
        let data: Vec<u8> = (0..size).map(|i| (i * 31 % 251) as u8).collect();
        dev.write_at(&data, 0).unwrap();
        Arc::new(dev)
    }

    #[test]
    fn range_locks_shared_overlap_exclusive_excludes() {
        let locks = RangeLocks::default();
        let a = locks.acquire(ByteRange::at(0, 100), Mode::Shared);
        let _b = locks.acquire(ByteRange::at(50, 100), Mode::Shared);
        // Disjoint exclusive proceeds immediately.
        let c = locks.acquire(ByteRange::at(200, 10), Mode::Exclusive);
        drop(c);
        drop(a);
        // Overlapping exclusive waits for the last shared holder.
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _x = locks.acquire(ByteRange::at(60, 10), Mode::Exclusive);
                done.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(
                !done.load(Ordering::SeqCst),
                "exclusive jumped a shared lock"
            );
            drop(_b);
        });
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn warm_read_skips_image_mutex_and_matches() {
        let base = seeded_base(1 << 20);
        let img = QcowImage::create(
            mem(),
            CreateOpts::cache(1 << 20, "base", 4 << 20).with_cluster_bits(12),
            Some(base.clone()),
        )
        .unwrap();
        // Warm the whole image through the serialized path.
        let mut warm = vec![0u8; 1 << 20];
        img.read_at(&mut warm, 0).unwrap();

        let conc = ConcurrentImage::new(img);
        let mut buf = vec![0u8; 8192];
        conc.read_at(&mut buf, 4096).unwrap();
        assert_eq!(&buf[..], &warm[4096..4096 + 8192]);
        let st = conc.stats();
        assert_eq!(st.warm_reads, 1);
        assert_eq!(st.warm_bytes, 8192);
        assert_eq!(st.slow_reads, 0);
    }

    #[test]
    fn cold_read_falls_back_then_next_read_is_warm() {
        let base = seeded_base(1 << 20);
        let img = QcowImage::create(
            mem(),
            CreateOpts::cache(1 << 20, "base", 4 << 20).with_cluster_bits(12),
            Some(base),
        )
        .unwrap();
        let conc = ConcurrentImage::new(img);
        let mut buf = vec![0u8; 4096];
        conc.read_at(&mut buf, 64 * 1024).unwrap();
        assert_eq!(conc.stats().slow_reads, 1);
        // The CoR fill published its mapping: same range is now warm.
        let mut again = vec![0u8; 4096];
        conc.read_at(&mut again, 64 * 1024).unwrap();
        assert_eq!(again, buf);
        assert_eq!(conc.stats().warm_reads, 1);
    }

    #[test]
    fn write_invalidates_warm_mapping() {
        let img = QcowImage::create(
            mem(),
            CreateOpts::plain(1 << 20).with_cluster_bits(12),
            None,
        )
        .unwrap();
        let conc = ConcurrentImage::new(img);
        conc.write_at(&[1u8; 4096], 0).unwrap();
        let mut buf = [0u8; 4096];
        conc.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [1u8; 4096]);
        conc.write_at(&[2u8; 4096], 0).unwrap();
        conc.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [2u8; 4096]);
        assert_eq!(conc.stats().mutations, 2);
    }

    #[test]
    fn stamps_are_dense_and_ordered() {
        let img = QcowImage::create(
            mem(),
            CreateOpts::plain(1 << 20).with_cluster_bits(12),
            None,
        )
        .unwrap();
        let conc = ConcurrentImage::new(img);
        let s1 = conc.write_stamped(&[3u8; 512], 0, None).unwrap();
        let mut b = [0u8; 512];
        let s2 = conc.read_stamped(&mut b, 0, None).unwrap();
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(conc.completed_ops(), 2);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let img = QcowImage::create(
            mem(),
            CreateOpts::plain(1 << 20).with_cluster_bits(12),
            None,
        )
        .unwrap();
        let conc = ConcurrentImage::new(img);
        let mut b = [0u8; 16];
        assert!(conc.read_at(&mut b, (1 << 20) - 8).is_err());
        assert!(conc.write_at(&b, u64::MAX - 4).is_err());
    }

    #[test]
    fn discard_unmaps_and_rearms_warm_path() {
        let base = seeded_base(1 << 20);
        let img = QcowImage::create(
            mem(),
            CreateOpts::cache(1 << 20, "base", 4 << 20).with_cluster_bits(12),
            Some(base.clone()),
        )
        .unwrap();
        let conc = ConcurrentImage::new(img);
        let mut buf = [0u8; 4096];
        conc.read_at(&mut buf, 0).unwrap(); // fill
        conc.read_at(&mut buf, 0).unwrap(); // warm
        assert_eq!(conc.stats().warm_reads, 1);
        assert_eq!(conc.discard(0, 4096).unwrap(), 1);
        // Mapping gone: next read is slow (re-fills), not stale-warm.
        let mut after = [0u8; 4096];
        conc.read_at(&mut after, 0).unwrap();
        assert_eq!(after, buf);
        assert_eq!(conc.stats().slow_reads, 2);
    }

    #[test]
    fn parallel_disjoint_reads_are_consistent() {
        let base = seeded_base(1 << 20);
        let img = QcowImage::create(
            mem(),
            CreateOpts::cache(1 << 20, "base", 4 << 20).with_cluster_bits(12),
            Some(base.clone()),
        )
        .unwrap();
        let mut warm = vec![0u8; 1 << 20];
        img.read_at(&mut warm, 0).unwrap();
        let conc = ConcurrentImage::new(img);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let conc = &conc;
                let warm = &warm;
                s.spawn(move || {
                    for i in 0..32u64 {
                        let off = ((t * 32 + i) * 8192) % ((1 << 20) - 8192);
                        let mut buf = vec![0u8; 8192];
                        conc.read_at(&mut buf, off).unwrap();
                        assert_eq!(&buf[..], &warm[off as usize..off as usize + 8192]);
                    }
                });
            }
        });
        assert_eq!(conc.stats().warm_reads, 128);
    }
}
