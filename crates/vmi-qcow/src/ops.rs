//! `qemu-img`-style maintenance operations: `info`, `map`, `check`, `commit`.
//!
//! These are the manipulation entry points §4.2 describes (`qemu-img` "is
//! used for creating and/or manipulating virtualized images"), extended with
//! cache awareness: `info` reports quota/used, `check` validates the cache
//! accounting invariants.

use std::sync::Arc;

use vmi_blockdev::{BlockDev, BlockError, ByteRange, Result};

use crate::image::QcowImage;

/// Structured output of [`info`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageInfo {
    /// Virtual disk size in bytes.
    pub virtual_size: u64,
    /// Container file size in bytes (the Table 2 metric for caches).
    pub file_size: u64,
    /// Cluster size in bytes.
    pub cluster_size: u64,
    /// Backing file name if chained.
    pub backing_file: Option<String>,
    /// Cache quota (`None` for plain images).
    pub cache_quota: Option<u64>,
    /// Live cache used size (`None` for plain images).
    pub cache_used: Option<u64>,
    /// Bytes of guest data mapped in this layer.
    pub mapped_bytes: u64,
    /// Whether copy-on-read is still filling.
    pub fill_enabled: bool,
}

impl ImageInfo {
    /// Render in a `qemu-img info`-like textual form.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "virtual size: {} ({} bytes)\n",
            human(self.virtual_size),
            self.virtual_size
        ));
        s.push_str(&format!("disk size: {}\n", human(self.file_size)));
        s.push_str(&format!("cluster_size: {}\n", self.cluster_size));
        if let Some(b) = &self.backing_file {
            s.push_str(&format!("backing file: {b}\n"));
        }
        if let (Some(q), Some(u)) = (self.cache_quota, self.cache_used) {
            s.push_str(&format!(
                "cache quota: {} used: {} ({:.1}%) filling: {}\n",
                human(q),
                human(u),
                100.0 * u as f64 / q as f64,
                if self.fill_enabled { "yes" } else { "stopped" }
            ));
        }
        s.push_str(&format!("mapped: {}\n", human(self.mapped_bytes)));
        s
    }
}

fn human(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

/// Gather [`ImageInfo`] for an open image.
pub fn info(img: &QcowImage) -> ImageInfo {
    let h = img.header();
    ImageInfo {
        virtual_size: img.virtual_size(),
        file_size: img.file_size(),
        cluster_size: img.geometry().cluster_size(),
        backing_file: h.backing_file.clone(),
        cache_quota: h.cache.map(|c| c.quota),
        cache_used: h.cache.map(|_| img.cache_used()),
        mapped_bytes: img.mapped_bytes(),
        fill_enabled: img.fill_enabled(),
    }
}

/// One extent of the guest address space and where it is served from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapExtent {
    /// Guest byte range.
    pub range: ByteRange,
    /// Chain depth serving it: 0 = this image, 1 = first backing, …;
    /// `None` = unallocated anywhere (reads as zeroes).
    pub depth: Option<usize>,
}

/// Compute the allocation map of a chain, scanning cluster by cluster from
/// the top image. Adjacent clusters with the same source are merged.
pub fn map(img: &QcowImage) -> Result<Vec<MapExtent>> {
    let cs = img.geometry().cluster_size();
    let vsize = img.virtual_size();
    let mut extents: Vec<MapExtent> = Vec::new();
    let mut vba = 0u64;
    while vba < vsize {
        let depth = source_depth(img, vba)?;
        let end = (vba + cs).min(vsize);
        match extents.last_mut() {
            Some(last) if last.depth == depth && last.range.end == vba => {
                last.range.end = end;
            }
            _ => extents.push(MapExtent {
                range: ByteRange { start: vba, end },
                depth,
            }),
        }
        vba = end;
    }
    Ok(extents)
}

/// Depth of the chain layer that would serve `vba` (without triggering any
/// copy-on-read side effects — this probes metadata only).
fn source_depth(img: &QcowImage, vba: u64) -> Result<Option<usize>> {
    if img.is_mapped(vba)? {
        return Ok(Some(0));
    }
    let mut depth = 1usize;
    let mut backing = img.backing().cloned();
    // Walk down through QcowImage layers where possible; a raw backing
    // device is considered fully mapped.
    while let Some(dev) = backing {
        match dev.as_any().and_then(|a| a.downcast_ref::<QcowImage>()) {
            Some(q) => {
                if q.is_mapped(vba)? {
                    return Ok(Some(depth));
                }
                let next = q.backing().cloned();
                depth += 1;
                backing = next;
            }
            None => {
                // Raw base: serves everything within its length.
                return Ok(if vba < dev.len() { Some(depth) } else { None });
            }
        }
    }
    Ok(None)
}

/// Structural check report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Number of allocated L2 tables.
    pub l2_tables: u64,
    /// Number of allocated data clusters.
    pub data_clusters: u64,
    /// Container clusters that are neither referenced nor queued for reuse
    /// (space discarded in an earlier session; reclaim with
    /// [`compact`]). Leaks are not errors — `qemu-img check` reports them
    /// the same way.
    pub leaked_clusters: u64,
    /// Structural errors found (empty = clean).
    pub errors: Vec<String>,
}

impl CheckReport {
    /// `true` when no errors were found.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Validate the structural invariants of an image:
///
/// * every L1/L2 entry is cluster-aligned and inside the container file;
/// * no container cluster is referenced twice;
/// * for cache images, `used` accounting equals
///   header + L1 + (L2 tables + data clusters) × cluster size and never
///   exceeds the quota.
pub fn check(img: &QcowImage) -> Result<CheckReport> {
    let mut rep = CheckReport::default();
    let g = img.geometry();
    let cs = g.cluster_size();
    let file_len = img.file_size();
    let mut seen = std::collections::HashSet::new();
    let l1 = img.l1_snapshot();
    for (l1_idx, &l2_off) in l1.iter().enumerate() {
        if l2_off == 0 {
            continue;
        }
        rep.l2_tables += 1;
        if l2_off % cs != 0 {
            rep.errors
                .push(format!("L1[{l1_idx}] not cluster-aligned: {l2_off:#x}"));
            continue;
        }
        if l2_off + cs > g.align_up(file_len) {
            rep.errors
                .push(format!("L1[{l1_idx}] beyond file end: {l2_off:#x}"));
            continue;
        }
        if !seen.insert(l2_off) {
            rep.errors.push(format!(
                "cluster {l2_off:#x} multiply referenced (L2 table)"
            ));
        }
        let l2 = img.l2_snapshot(l2_off)?;
        for (l2_idx, &doff) in l2.iter().enumerate() {
            if doff == 0 {
                continue;
            }
            rep.data_clusters += 1;
            if doff % cs != 0 {
                rep.errors.push(format!(
                    "L2[{l1_idx}][{l2_idx}] not cluster-aligned: {doff:#x}"
                ));
            } else if doff + cs > g.align_up(file_len) {
                rep.errors
                    .push(format!("L2[{l1_idx}][{l2_idx}] beyond file end: {doff:#x}"));
            } else if !seen.insert(doff) {
                rep.errors
                    .push(format!("cluster {doff:#x} multiply referenced (data)"));
            }
        }
    }
    // Leak accounting: clusters in the data area that nothing references —
    // neither the active tree, nor any snapshot tree/metadata — and that
    // are not queued for reuse. Clusters shared between the active tree and
    // snapshots must not be double-counted.
    let data_area_start = cs + g.l1_table_bytes();
    let data_area_clusters = g.align_up(file_len).saturating_sub(data_area_start) / cs;
    let free = img.free_cluster_count() as u64;
    let snap_refs = img.snapshot_refs()?;
    let snap_only = snap_refs.iter().filter(|off| !seen.contains(*off)).count() as u64;
    rep.leaked_clusters = data_area_clusters
        .saturating_sub(rep.l2_tables + rep.data_clusters)
        .saturating_sub(snap_only)
        .saturating_sub(free);

    if img.is_cache() {
        let expected = cs /* header cluster */
            + g.l1_table_bytes()
            + (rep.l2_tables + rep.data_clusters) * cs;
        let used = img.cache_used();
        if used != expected {
            rep.errors
                .push(format!("cache used {used} != computed {expected}"));
        }
        let initial = cs + g.l1_table_bytes();
        if used > img.cache_quota().max(initial) {
            rep.errors.push(format!(
                "cache used {used} exceeds quota {}",
                img.cache_quota()
            ));
        }
    }
    Ok(rep)
}

/// Compact: rewrite `img` into a fresh container, dropping leaked clusters
/// (space discarded in earlier sessions) and packing data densely. The new
/// image keeps the same geometry, backing name and cache quota; its `used`
/// accounting reflects the compacted layout.
///
/// Returns the reopened, compacted image. `backing` must be the resolved
/// backing device (same as would be passed to [`QcowImage::open`]).
pub fn compact(
    img: &QcowImage,
    new_dev: vmi_blockdev::SharedDev,
    backing: Option<vmi_blockdev::SharedDev>,
) -> Result<Arc<QcowImage>> {
    if !img.list_snapshots().is_empty() {
        return Err(BlockError::unsupported(
            "compact would drop internal snapshots; delete them first",
        ));
    }
    let h = img.header();
    let opts = crate::image::CreateOpts {
        size: img.virtual_size(),
        cluster_bits: img.geometry().cluster_bits,
        backing_file: h.backing_file.clone(),
        cache_quota: h.cache.map(|c| c.quota).unwrap_or(0),
    };
    let fresh = QcowImage::create(new_dev, opts, backing)?;
    let g = img.geometry();
    let cs = g.cluster_size() as usize;
    let mut buf = vec![0u8; cs];
    let vsize = img.virtual_size();
    let mut vba = 0u64;
    while vba < vsize {
        if img.is_mapped(vba)? {
            let n = cs.min((vsize - vba) as usize);
            // Mapped ⇒ served locally; the write allocates densely in the
            // fresh container (quota-checked for cache images — the
            // compacted layout can only be smaller than the source).
            img.read_at(&mut buf[..n], vba)?;
            fresh.write_at(&buf[..n], vba)?;
        }
        vba += cs as u64;
    }
    fresh.close()?;
    Ok(fresh)
}

/// Commit: copy every cluster mapped in `img` down into its backing image,
/// which must be writable. Returns bytes committed.
pub fn commit(img: &QcowImage) -> Result<u64> {
    let backing = img
        .backing()
        .cloned()
        .ok_or_else(|| BlockError::unsupported("commit: image has no backing file"))?;
    let g = img.geometry();
    let cs = g.cluster_size() as usize;
    let mut buf = vec![0u8; cs];
    let mut committed = 0u64;
    let vsize = img.virtual_size();
    let mut vba = 0u64;
    while vba < vsize {
        if img.is_mapped(vba)? {
            let n = cs.min((vsize - vba) as usize);
            img.read_at(&mut buf[..n], vba)?;
            backing.write_at(&buf[..n], vba)?;
            committed += n as u64;
        }
        vba += cs as u64;
    }
    backing.flush()?;
    Ok(committed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::CreateOpts;
    use std::sync::Arc;
    use vmi_blockdev::MemDev;

    const MB: u64 = 1 << 20;

    fn mem() -> vmi_blockdev::SharedDev {
        Arc::new(MemDev::new())
    }

    #[test]
    fn info_reports_cache_fields() {
        let base = QcowImage::create(mem(), CreateOpts::plain(8 * MB), None).unwrap();
        base.write_at(&[1; 4096], 0).unwrap();
        let cache = QcowImage::create(
            mem(),
            CreateOpts::cache(8 * MB, "b", 4 * MB),
            Some(base as vmi_blockdev::SharedDev),
        )
        .unwrap();
        let mut buf = [0u8; 4096];
        cache.read_at(&mut buf, 0).unwrap();
        let i = info(&cache);
        assert_eq!(i.cache_quota, Some(4 * MB));
        assert!(i.cache_used.unwrap() > 0);
        assert!(i.fill_enabled);
        assert!(i.mapped_bytes >= 4096);
        let text = i.render();
        assert!(text.contains("cache quota"));
        assert!(text.contains("backing file: b"));
    }

    #[test]
    fn info_plain_image_has_no_cache_fields() {
        let img = QcowImage::create(mem(), CreateOpts::plain(MB), None).unwrap();
        let i = info(&img);
        assert_eq!(i.cache_quota, None);
        assert!(!i.render().contains("cache quota"));
    }

    #[test]
    fn check_clean_image() {
        let base = QcowImage::create(mem(), CreateOpts::plain(8 * MB), None).unwrap();
        base.write_at(&[1; 100_000], 50_000).unwrap();
        let rep = check(&base).unwrap();
        assert!(rep.is_clean(), "{:?}", rep.errors);
        assert!(rep.data_clusters >= 2);
    }

    #[test]
    fn check_clean_cache_accounting() {
        let base = QcowImage::create(mem(), CreateOpts::plain(8 * MB), None).unwrap();
        base.write_at(&[1; 300_000], 0).unwrap();
        let cache = QcowImage::create(
            mem(),
            CreateOpts::cache(8 * MB, "b", 4 * MB),
            Some(base as vmi_blockdev::SharedDev),
        )
        .unwrap();
        let mut buf = vec![0u8; 300_000];
        cache.read_at(&mut buf, 0).unwrap();
        let rep = check(&cache).unwrap();
        assert!(rep.is_clean(), "{:?}", rep.errors);
    }

    #[test]
    fn map_reports_layer_depths() {
        let base = QcowImage::create(mem(), CreateOpts::plain(4 * MB), None).unwrap();
        base.write_at(&[1; 65536], 0).unwrap(); // cluster 0 in base
        let cow = QcowImage::create(
            mem(),
            CreateOpts::cow(4 * MB, "b"),
            Some(base as vmi_blockdev::SharedDev),
        )
        .unwrap();
        cow.write_at(&[2; 65536], 65536).unwrap(); // cluster 1 in cow
        let extents = map(&cow).unwrap();
        // cluster 0 ← depth 1 (base), cluster 1 ← depth 0 (cow), rest zero.
        assert_eq!(extents.len(), 3);
        assert_eq!(extents[0].depth, Some(1));
        assert_eq!(extents[0].range.len(), 65536);
        assert_eq!(extents[1].depth, Some(0));
        assert_eq!(extents[2].depth, None);
        assert_eq!(extents[2].range.end, 4 * MB);
    }

    #[test]
    fn map_over_raw_base_marks_backing() {
        let raw: vmi_blockdev::SharedDev = Arc::new(MemDev::from_vec(vec![9u8; (4 * MB) as usize]));
        let cow = QcowImage::create(
            mem(),
            CreateOpts::cow(4 * MB, "raw"),
            Some(Arc::new(vmi_blockdev::ReadOnlyDev::new(raw)) as vmi_blockdev::SharedDev),
        )
        .unwrap();
        let extents = map(&cow).unwrap();
        assert_eq!(extents.len(), 1, "raw base serves everything at one depth");
        assert_eq!(extents[0].depth, Some(1));
    }

    #[test]
    fn commit_pushes_data_down() {
        let base_dev = mem();
        let base = QcowImage::create(base_dev.clone(), CreateOpts::plain(4 * MB), None).unwrap();
        base.write_at(&[1; 1024], 0).unwrap();
        let cow = QcowImage::create(
            mem(),
            CreateOpts::cow(4 * MB, "b"),
            Some(base.clone() as vmi_blockdev::SharedDev),
        )
        .unwrap();
        cow.write_at(&[2; 1024], 0).unwrap();
        cow.write_at(&[3; 512], 2 * MB).unwrap();
        let n = commit(&cow).unwrap();
        assert!(n >= 1024 + 512);
        let mut buf = [0u8; 1024];
        base.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [2; 1024], "committed data visible in backing");
    }

    #[test]
    fn commit_without_backing_fails() {
        let img = QcowImage::create(mem(), CreateOpts::plain(MB), None).unwrap();
        assert!(commit(&img).is_err());
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human(512), "512 B");
        assert_eq!(human(93 * MB), "93.0 MiB");
    }
}
