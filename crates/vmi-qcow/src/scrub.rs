//! Crash-consistent cache recovery: validate a cache container before open.
//!
//! The paper's in-memory caches are flushed back to their container only at
//! VM shutdown (Fig. 8/10), so a crash mid-flush leaves a *torn* image: data
//! clusters and mapping tables written, but the header's recorded used-size
//! stale (or the reverse). [`scrub_cache`] walks the container the way
//! `qemu-img check` would — header magic/version, L1/L2 alignment and
//! bounds, recorded used-size vs. the clusters actually referenced — and
//! returns one of three verdicts:
//!
//! * **Clean** — everything consistent; open it as-is.
//! * **Repaired** — the mapping tables are intact but the recorded used-size
//!   is wrong (the classic torn `close()`); the header is rewritten in place
//!   from the recomputed value and the cache is safe to open.
//! * **Discarded** — structural damage (bad magic, out-of-bounds tables,
//!   over-quota referenced data). The cache cannot be trusted; the deploy
//!   layer falls back to plain-QCOW2 deployment without it.
//!
//! Every scrub emits an [`Event::ScrubResult`] and counts
//! [`met::SCRUB_RUNS`] / [`met::SCRUB_REPAIRS`] / [`met::SCRUB_DISCARDS`].
//!
//! The validation itself lives in the `vmi-audit` crate — an independent,
//! driver-free reimplementation of the on-disk format — and this module is
//! a thin consumer mapping its typed [`Violation`]s onto the three
//! verdicts. Keeping the walk outside `vmi-qcow` means a driver bug cannot
//! blind the scrub that is supposed to catch it.

use std::sync::Arc;

use vmi_audit::{audit_image_with_obs, AuditOpts, Violation, ViolationKind};
use vmi_blockdev::{BlockDev, Result, SharedDev};
use vmi_obs::{met, Event, Obs};

use crate::header::Header;
use crate::image::QcowImage;

/// Outcome class of one scrub pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubVerdict {
    /// Container is consistent.
    Clean,
    /// Recorded used-size was wrong and has been rewritten in place.
    Repaired,
    /// Structural damage; the cache must not be opened.
    Discarded,
}

impl ScrubVerdict {
    /// Wire label used in the `scrub_result` event.
    pub fn as_str(self) -> &'static str {
        match self {
            ScrubVerdict::Clean => "clean",
            ScrubVerdict::Repaired => "repaired",
            ScrubVerdict::Discarded => "discarded",
        }
    }
}

/// Result of [`scrub_cache`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubReport {
    /// Outcome class.
    pub verdict: ScrubVerdict,
    /// Bytes actually referenced by header + tables + data clusters
    /// (recomputed; 0 when the container is too damaged to walk).
    pub used: u64,
    /// Quota recorded in the header (0 when unreadable).
    pub quota: u64,
    /// Human-readable findings (empty for a clean pass).
    pub findings: Vec<String>,
    /// The typed invariant violations behind `findings`, straight from the
    /// `vmi-audit` checker (same order).
    pub violations: Vec<Violation>,
}

impl ScrubReport {
    /// `true` unless the verdict is `Discarded`.
    pub fn is_usable(&self) -> bool {
        self.verdict != ScrubVerdict::Discarded
    }
}

/// Validate (and if needed repair) the cache container in `dev`.
///
/// Read-mostly: the only write a scrub ever performs is the in-place
/// rewrite of the cache extension's `used` field on a `Repaired` verdict.
/// Non-cache containers come back `Clean` untouched — scrubbing is a no-op
/// for them, so callers can scrub unconditionally before open.
pub fn scrub_cache(dev: &SharedDev, obs: &Obs) -> ScrubReport {
    obs.count(met::SCRUB_RUNS, 1);
    let report = scrub_inner(dev, obs);
    match report.verdict {
        ScrubVerdict::Clean => {}
        ScrubVerdict::Repaired => obs.count(met::SCRUB_REPAIRS, 1),
        ScrubVerdict::Discarded => obs.count(met::SCRUB_DISCARDS, 1),
    }
    let (verdict, used, quota) = (report.verdict, report.used, report.quota);
    obs.emit(|| Event::ScrubResult {
        verdict: verdict.as_str().to_string(),
        used,
        quota,
    });
    report
}

/// Violation kinds that condemn *any* container, cache or not: if the
/// header cannot be trusted, nothing can.
fn is_header_level(kind: ViolationKind) -> bool {
    matches!(
        kind,
        ViolationKind::UnreadableHeader
            | ViolationKind::BadMagic
            | ViolationKind::BadVersion
            | ViolationKind::BadHeaderLength
            | ViolationKind::OversizedExtension
            | ViolationKind::MalformedExtension
            | ViolationKind::ZeroQuota
            | ViolationKind::BackingNameInvalid
    )
}

fn scrub_inner(dev: &SharedDev, obs: &Obs) -> ScrubReport {
    let audit = audit_image_with_obs(dev.as_ref() as &dyn BlockDev, &AuditOpts::default(), obs);
    let findings: Vec<String> = audit.violations.iter().map(|v| v.to_string()).collect();

    if audit.violations.iter().any(|v| is_header_level(v.kind)) {
        return ScrubReport {
            verdict: ScrubVerdict::Discarded,
            used: 0,
            quota: audit.quota,
            findings,
            violations: audit.violations,
        };
    }
    if !audit.is_cache {
        // Not a cache image; the paper's scrub exists for the crash
        // consistency of cache flushes (§4.3), so plain containers pass
        // through untouched.
        return ScrubReport {
            verdict: ScrubVerdict::Clean,
            used: 0,
            quota: 0,
            findings: Vec::new(),
            violations: Vec::new(),
        };
    }
    let (used, quota) = (audit.recomputed_used, audit.quota);
    if audit.has_errors() {
        // Structural damage (bad tables, overlaps, over-quota data): the
        // cache must not be opened. The deploy layer falls back to
        // plain-QCOW2 deployment without it.
        return ScrubReport {
            verdict: ScrubVerdict::Discarded,
            used,
            quota,
            findings,
            violations: audit.violations,
        };
    }
    if let Some(recomputed) = audit.used_repair() {
        // The classic torn close: tables intact, recorded used-size stale.
        // Apply the checker's repair hint in place.
        let mut findings = findings;
        if Header::update_cache_used(dev.as_ref() as &dyn BlockDev, recomputed).is_err()
            || dev.flush().is_err()
        {
            findings.push("header rewrite failed".into());
            return ScrubReport {
                verdict: ScrubVerdict::Discarded,
                used,
                quota,
                findings,
                violations: audit.violations,
            };
        }
        return ScrubReport {
            verdict: ScrubVerdict::Repaired,
            used,
            quota,
            findings,
            violations: audit.violations,
        };
    }
    ScrubReport {
        verdict: ScrubVerdict::Clean,
        used,
        quota,
        findings,
        violations: audit.violations,
    }
}

/// Scrub `dev` and, when the verdict allows it, open the cache image.
///
/// Returns `Ok(None)` when the scrub discarded the cache — the caller
/// should deploy without it (plain-QCOW2 fallback). A `Repaired` container
/// opens like a clean one.
pub fn open_cache_scrubbed(
    dev: SharedDev,
    backing: Option<SharedDev>,
    read_only: bool,
    obs: Obs,
) -> Result<Option<Arc<QcowImage>>> {
    let report = scrub_cache(&dev, &obs);
    if !report.is_usable() {
        return Ok(None);
    }
    QcowImage::open_with_obs(dev, backing, read_only, obs).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::CreateOpts;
    use std::sync::Arc;
    use vmi_blockdev::MemDev;

    const MB: u64 = 1 << 20;

    fn mem() -> SharedDev {
        Arc::new(MemDev::new())
    }

    /// A closed cache container with some copied-on-read data in it.
    fn warmed_cache_dev() -> (SharedDev, SharedDev) {
        let base_dev = mem();
        let base = QcowImage::create(base_dev.clone(), CreateOpts::plain(8 * MB), None).unwrap();
        base.write_at(&[7u8; 65536], 0).unwrap();
        base.close().unwrap();
        drop(base);
        let base = QcowImage::open(base_dev.clone(), None, true).unwrap();
        let cache_dev = mem();
        let cache = QcowImage::create(
            cache_dev.clone(),
            CreateOpts::cache(8 * MB, "base", 4 * MB),
            Some(base as SharedDev),
        )
        .unwrap();
        let mut buf = vec![0u8; 65536];
        cache.read_at(&mut buf, 0).unwrap();
        cache.close().unwrap();
        drop(cache);
        (cache_dev, base_dev)
    }

    #[test]
    fn clean_cache_scrubs_clean() {
        let (cache_dev, _base) = warmed_cache_dev();
        let rep = scrub_cache(&cache_dev, &Obs::disabled());
        assert_eq!(rep.verdict, ScrubVerdict::Clean, "{:?}", rep.findings);
        assert!(rep.used > 0);
        assert_eq!(rep.quota, 4 * MB);
    }

    #[test]
    fn non_cache_container_is_a_noop() {
        let dev = mem();
        let img = QcowImage::create(dev.clone(), CreateOpts::plain(MB), None).unwrap();
        img.close().unwrap();
        drop(img);
        let rep = scrub_cache(&dev, &Obs::disabled());
        assert_eq!(rep.verdict, ScrubVerdict::Clean);
    }

    #[test]
    fn torn_used_field_is_repaired() {
        let (cache_dev, base_dev) = warmed_cache_dev();
        let truth = Header::decode(&cache_dev).unwrap().cache.unwrap().used;
        // Simulate the torn flush: the data clusters landed but the header's
        // used field still holds the pre-boot value.
        Header::update_cache_used(&cache_dev, 1024).unwrap();
        let rep = scrub_cache(&cache_dev, &Obs::disabled());
        assert_eq!(rep.verdict, ScrubVerdict::Repaired, "{:?}", rep.findings);
        assert_eq!(rep.used, truth, "recomputed from the tables");
        assert_eq!(
            Header::decode(&cache_dev).unwrap().cache.unwrap().used,
            truth,
            "header rewritten in place"
        );
        // And the repaired cache opens normally.
        let base = QcowImage::open(base_dev, None, true).unwrap();
        let img = open_cache_scrubbed(cache_dev, Some(base as SharedDev), false, Obs::disabled())
            .unwrap()
            .expect("repaired cache is usable");
        let mut buf = [0u8; 512];
        img.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [7u8; 512]);
    }

    #[test]
    fn smashed_magic_discards() {
        let (cache_dev, _base) = warmed_cache_dev();
        cache_dev.write_at(&[0u8; 4], 0).unwrap(); // clobber the magic
        let rep = scrub_cache(&cache_dev, &Obs::disabled());
        assert_eq!(rep.verdict, ScrubVerdict::Discarded);
        assert!(rep.findings[0].contains("header"));
        let opened = open_cache_scrubbed(cache_dev, None, false, Obs::disabled()).unwrap();
        assert!(opened.is_none(), "discarded cache does not open");
    }

    #[test]
    fn out_of_bounds_l1_discards() {
        let (cache_dev, _base) = warmed_cache_dev();
        let header = Header::decode(&cache_dev).unwrap();
        // Point L1[0] far past the end of the container.
        let bogus = (1u64 << 40).to_be_bytes();
        cache_dev.write_at(&bogus, header.l1_table_offset).unwrap();
        let rep = scrub_cache(&cache_dev, &Obs::disabled());
        assert_eq!(rep.verdict, ScrubVerdict::Discarded);
        assert!(rep.findings[0].contains("L1[0]"));
    }

    #[test]
    fn scrub_emits_events_and_metrics() {
        use vmi_obs::{ManualClock, RecorderHandle};
        let (cache_dev, _base) = warmed_cache_dev();
        Header::update_cache_used(&cache_dev, 777 * 512).unwrap();
        let (rec, sink) = RecorderHandle::jsonl();
        let obs = rec.attach(Arc::new(ManualClock::new(0)));
        let rep = scrub_cache(&cache_dev, &obs);
        assert_eq!(rep.verdict, ScrubVerdict::Repaired);
        assert_eq!(obs.counter_value(met::SCRUB_RUNS), 1);
        assert_eq!(obs.counter_value(met::SCRUB_REPAIRS), 1);
        let lines = sink.lines();
        assert!(
            lines
                .iter()
                .any(|l| l.contains("\"scrub_result\"") && l.contains("\"verdict\":\"repaired\"")),
            "{lines:?}"
        );
    }
}
