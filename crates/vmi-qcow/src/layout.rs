//! Cluster geometry: the paper's §4.1 virtual-block-address split.
//!
//! A 64-bit virtual block address (VBA) is split into three fields:
//!
//! ```text
//!   | n bits: L1 index | m bits: L2 index | d bits: offset in cluster |
//! ```
//!
//! with `d = cluster_bits`, `m = cluster_bits - 3` (an L2 table occupies one
//! cluster and each entry is 8 bytes), and `n = 64 - d - m`. For the default
//! 64 KiB cluster (16 bits — the paper's prose says 18 because it describes
//! a 256 KiB variant; the arithmetic is identical) this gives the familiar
//! two-level page-table shape.

use vmi_blockdev::{BlockError, Result};

/// Minimum cluster size: one 512-byte sector. The paper reduces the *cache*
/// image's cluster size to this value to kill cold-cache read amplification
/// (§5.1, Fig. 9).
pub const MIN_CLUSTER_BITS: u32 = 9;

/// Maximum cluster size: 2 MiB, as in QEMU.
pub const MAX_CLUSTER_BITS: u32 = 21;

/// Default cluster size: 64 KiB, QCOW2's default (§2).
pub const DEFAULT_CLUSTER_BITS: u32 = 16;

/// Derived address-split geometry for an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// log2 of the cluster size — the paper's `d`.
    pub cluster_bits: u32,
    /// Virtual disk size in bytes.
    pub virtual_size: u64,
}

impl Geometry {
    /// Validate and build a geometry.
    pub fn new(cluster_bits: u32, virtual_size: u64) -> Result<Self> {
        if !(MIN_CLUSTER_BITS..=MAX_CLUSTER_BITS).contains(&cluster_bits) {
            return Err(BlockError::unsupported(format!(
                "cluster_bits {cluster_bits} outside [{MIN_CLUSTER_BITS}, {MAX_CLUSTER_BITS}]"
            )));
        }
        if virtual_size == 0 {
            return Err(BlockError::unsupported("zero-sized image"));
        }
        // The L1 index must fit in the remaining bits.
        let g = Self {
            cluster_bits,
            virtual_size,
        };
        let max_vba = virtual_size - 1;
        if g.l1_index(max_vba) as u64 >= (1u64 << g.n_bits()) {
            return Err(BlockError::unsupported(
                "virtual size too large for cluster size",
            ));
        }
        Ok(g)
    }

    /// Cluster size in bytes (`1 << d`).
    #[inline]
    pub fn cluster_size(&self) -> u64 {
        1 << self.cluster_bits
    }

    /// The paper's `d`: offset-in-cluster bits.
    #[inline]
    pub fn d_bits(&self) -> u32 {
        self.cluster_bits
    }

    /// The paper's `m`: L2-index bits (`cluster_bits - 3`).
    #[inline]
    pub fn m_bits(&self) -> u32 {
        self.cluster_bits - 3
    }

    /// The paper's `n`: L1-index bits (`64 - d - m`).
    #[inline]
    pub fn n_bits(&self) -> u32 {
        64 - self.d_bits() - self.m_bits()
    }

    /// Entries per L2 table (one cluster of 8-byte entries).
    #[inline]
    pub fn l2_entries(&self) -> u64 {
        1 << self.m_bits()
    }

    /// Bytes of guest data covered by one fully-populated L2 table.
    #[inline]
    pub fn l2_coverage(&self) -> u64 {
        self.l2_entries() << self.cluster_bits
    }

    /// Number of L1 entries needed for the virtual size.
    #[inline]
    pub fn l1_entries(&self) -> u64 {
        self.virtual_size.div_ceil(self.l2_coverage())
    }

    /// Bytes occupied by the L1 table (entries × 8, rounded up to clusters).
    #[inline]
    pub fn l1_table_bytes(&self) -> u64 {
        let raw = self.l1_entries() * 8;
        raw.div_ceil(self.cluster_size()) * self.cluster_size()
    }

    /// L1 index of a VBA (the high `n` bits' low part).
    #[inline]
    pub fn l1_index(&self, vba: u64) -> usize {
        (vba >> (self.d_bits() + self.m_bits())) as usize
    }

    /// L2 index of a VBA (the middle `m` bits).
    #[inline]
    pub fn l2_index(&self, vba: u64) -> usize {
        ((vba >> self.d_bits()) & (self.l2_entries() - 1)) as usize
    }

    /// Offset of a VBA within its cluster (the low `d` bits).
    #[inline]
    pub fn in_cluster(&self, vba: u64) -> u64 {
        vba & (self.cluster_size() - 1)
    }

    /// The VBA of the start of the cluster containing `vba`.
    #[inline]
    pub fn cluster_start(&self, vba: u64) -> u64 {
        vba & !(self.cluster_size() - 1)
    }

    /// Round `len` starting at `vba` up to whole-cluster coverage:
    /// the aligned range `[start, end)` of clusters touched by `[vba, vba+len)`.
    ///
    /// This is exactly the *read-amplification* rule of the cold cache: a
    /// fill "need[s] to fetch more data from the base image to meet the
    /// cluster granularity" (§5.1). Clipped to the virtual size.
    pub fn cluster_span(&self, vba: u64, len: u64) -> (u64, u64) {
        let start = self.cluster_start(vba);
        let end_unaligned = vba + len;
        let end = self
            .cluster_start(end_unaligned + self.cluster_size() - 1)
            .min(self.virtual_size.div_ceil(self.cluster_size()) * self.cluster_size());
        (start, end.max(start))
    }

    /// Iterate the cluster-aligned segments of `[off, off+len)`: yields
    /// `(vba, in_cluster_offset, segment_len)` per touched cluster.
    pub fn segments(&self, off: u64, len: usize) -> SegmentIter {
        SegmentIter {
            geom: *self,
            pos: off,
            end: off + len as u64,
        }
    }

    /// Round a file offset up to the next cluster boundary.
    #[inline]
    pub fn align_up(&self, off: u64) -> u64 {
        off.div_ceil(self.cluster_size()) * self.cluster_size()
    }
}

/// Iterator over per-cluster segments of a guest I/O request.
#[derive(Debug, Clone)]
pub struct SegmentIter {
    geom: Geometry,
    pos: u64,
    end: u64,
}

/// One per-cluster piece of a guest request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Guest address where the segment starts.
    pub vba: u64,
    /// Offset of the segment within its cluster.
    pub in_cluster: u64,
    /// Segment length (never crosses a cluster boundary).
    pub len: usize,
}

impl Iterator for SegmentIter {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        if self.pos >= self.end {
            return None;
        }
        let in_cluster = self.geom.in_cluster(self.pos);
        let room = self.geom.cluster_size() - in_cluster;
        let len = room.min(self.end - self.pos) as usize;
        let seg = Segment {
            vba: self.pos,
            in_cluster,
            len,
        };
        self.pos += len as u64;
        Some(seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_split() {
        // 64 KiB clusters: d=16, m=13, n=35.
        let g = Geometry::new(16, 8 << 30).unwrap();
        assert_eq!(g.d_bits(), 16);
        assert_eq!(g.m_bits(), 13);
        assert_eq!(g.n_bits(), 35);
        assert_eq!(g.l2_entries(), 8192);
        assert_eq!(g.l2_coverage(), 512 << 20); // 8192 * 64 KiB
        assert_eq!(g.l1_entries(), 16); // 8 GiB / 512 MiB
    }

    #[test]
    fn paper_example_256k_cluster() {
        // The paper's §4.1 numeric example: cluster of 18 bits →
        // d=18, m=15, n=31.
        let g = Geometry::new(18, 1 << 30).unwrap();
        assert_eq!(g.d_bits(), 18);
        assert_eq!(g.m_bits(), 15);
        assert_eq!(g.n_bits(), 31);
    }

    #[test]
    fn sector_cluster_geometry() {
        // 512 B clusters (the cache's cluster size): d=9, m=6, n=49.
        let g = Geometry::new(9, 2 << 30).unwrap();
        assert_eq!(g.m_bits(), 6);
        assert_eq!(g.l2_entries(), 64);
        assert_eq!(g.l2_coverage(), 32 << 10);
        // 2 GiB / 32 KiB = 65536 L1 entries -> 512 KiB L1 table.
        assert_eq!(g.l1_entries(), 65536);
        assert_eq!(g.l1_table_bytes(), 512 << 10);
    }

    #[test]
    fn index_arithmetic_roundtrip() {
        let g = Geometry::new(12, 1 << 24).unwrap(); // 4 KiB clusters
        let vba = 0x0123_4567u64 % (1 << 24);
        let rebuilt = ((g.l1_index(vba) as u64) << (g.d_bits() + g.m_bits()))
            | ((g.l2_index(vba) as u64) << g.d_bits())
            | g.in_cluster(vba);
        assert_eq!(rebuilt, vba);
    }

    #[test]
    fn paper_l2_overhead_arithmetic() {
        // §5.1: "For a cache quota of 200 MB, only 3.1 MB is necessary for
        // L2-tables" at 512 B clusters. One L2 table (512 B) maps 64
        // clusters = 32 KiB, so 200 MB of data needs 200 MB / 32 KiB = 6400
        // tables = 3.125 MiB.
        let g = Geometry::new(9, 8 << 30).unwrap();
        let data = 200u64 << 20;
        let l2_tables = data / g.l2_coverage();
        let l2_bytes = l2_tables * g.cluster_size();
        assert_eq!(l2_tables, 6400);
        assert!((l2_bytes as f64 / (1 << 20) as f64 - 3.125).abs() < 0.01);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Geometry::new(8, 1 << 20).is_err());
        assert!(Geometry::new(22, 1 << 20).is_err());
        assert!(Geometry::new(12, 0).is_err());
    }

    #[test]
    fn cluster_span_rounds_to_cluster_granularity() {
        let g = Geometry::new(16, 1 << 30).unwrap(); // 64 KiB
                                                     // A 4 KiB read in the middle of a cluster spans the whole cluster.
        let (s, e) = g.cluster_span(70_000, 4096);
        assert_eq!(s, 65536);
        assert_eq!(e, 131072);
        // With 512 B clusters the same read spans only ~4.5 KiB.
        let g2 = Geometry::new(9, 1 << 30).unwrap();
        let (s2, e2) = g2.cluster_span(70_000, 4096);
        assert_eq!(s2, 69_632);
        assert_eq!(e2, 74_240);
        assert!(e2 - s2 < (e - s) / 10, "512B span must be far smaller");
    }

    #[test]
    fn cluster_span_clips_to_virtual_size() {
        let g = Geometry::new(9, 1000).unwrap(); // virtual size not cluster-multiple
        let (s, e) = g.cluster_span(900, 200);
        assert_eq!(s, 512);
        assert_eq!(e, 1024); // ceil(1000/512)*512
    }

    #[test]
    fn segments_cover_request_exactly() {
        let g = Geometry::new(9, 1 << 20).unwrap();
        let segs: Vec<_> = g.segments(500, 1040).collect();
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 1040);
        assert_eq!(
            segs[0],
            Segment {
                vba: 500,
                in_cluster: 500,
                len: 12
            }
        );
        assert!(segs.iter().all(|s| s.in_cluster + s.len as u64 <= 512));
        // Contiguity.
        for w in segs.windows(2) {
            assert_eq!(w[0].vba + w[0].len as u64, w[1].vba);
        }
    }

    #[test]
    fn segments_empty_request() {
        let g = Geometry::new(9, 1 << 20).unwrap();
        assert_eq!(g.segments(100, 0).count(), 0);
    }
}
