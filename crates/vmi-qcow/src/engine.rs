//! An explicit submission/completion request engine over any [`BlockDev`].
//!
//! The paper's deployment model has many guests in flight against one image
//! layer; the call-tree API (`read_at` blocks the caller for the full
//! device round trip) cannot express that. [`RequestEngine`] splits the two
//! halves: callers **submit** [`Request`]s (getting an id back immediately)
//! and **collect** [`Completion`]s in whatever order the device finishes
//! them. A pool of worker threads drains the submission queue against the
//! shared device — pair it with [`crate::ConcurrentImage`] and
//! non-overlapping requests genuinely overlap their device service time.
//!
//! Ordering contract: completions are unordered across requests. Callers
//! that need a barrier (e.g. an NBD `FLUSH` covering all prior writes)
//! call [`RequestEngine::wait_idle`] first — exactly what the vmi-nbd
//! pipelined front-end does.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{lockrank, Condvar, Mutex};
use vmi_blockdev::{BlockError, Result, SharedDev};
use vmi_obs::SpanId;

/// One queued I/O operation.
#[derive(Debug, Clone)]
pub enum Request {
    /// Read `len` bytes at `off`; the data arrives in [`Completion::data`].
    Read {
        /// Guest offset.
        off: u64,
        /// Bytes to read.
        len: usize,
    },
    /// Write `data` at `off`.
    Write {
        /// Guest offset.
        off: u64,
        /// Payload.
        data: Vec<u8>,
    },
    /// Flush the device (see the module docs for the ordering contract).
    Flush,
}

/// The result of one finished [`Request`].
#[derive(Debug)]
pub struct Completion {
    /// Id returned by [`RequestEngine::submit`].
    pub id: u64,
    /// Read payload (`Some` iff the request was a successful `Read`).
    pub data: Option<Vec<u8>>,
    /// Outcome.
    pub result: Result<()>,
}

#[derive(Default)]
struct EngineState {
    queue: VecDeque<(u64, Request, Option<SpanId>)>,
    done: VecDeque<Completion>,
    inflight: usize,
    stopping: bool,
}

struct Shared {
    dev: SharedDev,
    st: Mutex<EngineState>,
    /// Wakes workers on submit/shutdown.
    submit_cv: Condvar,
    /// Wakes collectors on completion / idle / worker exit.
    complete_cv: Condvar,
    next_id: AtomicU64,
}

/// See the [module docs](self).
pub struct RequestEngine {
    sh: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for RequestEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.sh.st.lock();
        f.debug_struct("RequestEngine")
            .field("workers", &self.workers.lock().len())
            .field("queued", &st.queue.len())
            .field("inflight", &st.inflight)
            .field("completed_pending", &st.done.len())
            .finish()
    }
}

impl RequestEngine {
    /// Spawn an engine with `workers` threads (clamped to ≥ 1) draining
    /// requests against `dev`.
    pub fn new(dev: SharedDev, workers: usize) -> Self {
        let sh = Arc::new(Shared {
            dev,
            st: Mutex::new(EngineState::default()),
            submit_cv: Condvar::new(),
            complete_cv: Condvar::new(),
            next_id: AtomicU64::new(0),
        });
        sh.st.set_rank(lockrank::ENGINE_QUEUE);
        let n = workers.max(1);
        let workers = (0..n)
            .map(|i| {
                let sh = Arc::clone(&sh);
                std::thread::Builder::new()
                    .name(format!("vmi-engine-{i}"))
                    .spawn(move || worker(&sh))
                    // Thread spawn fails only on resource exhaustion, at
                    // which point the process has no useful recovery path.
                    .expect("spawn engine worker") // lint:allow(no-unwrap)
            })
            .collect();
        let workers = Mutex::new(workers);
        workers.set_rank(lockrank::ENGINE_WORKERS);
        Self { sh, workers }
    }

    /// Queue a request; returns its completion id immediately.
    pub fn submit(&self, req: Request) -> u64 {
        self.submit_in(req, None)
    }

    /// [`RequestEngine::submit`] with a trace-span parent: the worker
    /// passes it down the `_in` device path so the request's spans hang
    /// off the submitter's tree even though another thread runs them.
    pub fn submit_in(&self, req: Request, parent: Option<SpanId>) -> u64 {
        let id = self.sh.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let mut st = self.sh.st.lock();
        if st.stopping {
            st.done.push_back(Completion {
                id,
                data: None,
                result: Err(BlockError::unsupported("engine is shut down")),
            });
            drop(st);
            self.sh.complete_cv.notify_all();
            return id;
        }
        st.queue.push_back((id, req, parent));
        drop(st);
        self.sh.submit_cv.notify_one();
        id
    }

    /// Pop a finished completion if one is ready.
    pub fn try_next(&self) -> Option<Completion> {
        self.sh.st.lock().done.pop_front()
    }

    /// Block for the next completion, in device-finish order. Returns
    /// `None` only after [`RequestEngine::shutdown`] once everything
    /// queued has been delivered.
    pub fn next_completion(&self) -> Option<Completion> {
        let mut st = self.sh.st.lock();
        loop {
            if let Some(c) = st.done.pop_front() {
                return Some(c);
            }
            if st.stopping && st.queue.is_empty() && st.inflight == 0 {
                return None;
            }
            self.sh.complete_cv.wait(&mut st);
        }
    }

    /// Block until nothing is queued or in flight (delivered-but-uncollected
    /// completions may remain). This is the barrier primitive.
    pub fn wait_idle(&self) {
        let mut st = self.sh.st.lock();
        while !(st.queue.is_empty() && st.inflight == 0) {
            self.sh.complete_cv.wait(&mut st);
        }
    }

    /// Requests submitted so far.
    pub fn submitted(&self) -> u64 {
        self.sh.next_id.load(Ordering::Relaxed)
    }

    /// Stop accepting work, finish what is queued, and join the workers.
    /// Uncollected completions stay retrievable via
    /// [`RequestEngine::try_next`] / [`RequestEngine::next_completion`].
    /// Idempotent and callable from any holder of a shared reference.
    pub fn shutdown(&self) {
        {
            let mut st = self.sh.st.lock();
            if st.stopping {
                return;
            }
            st.stopping = true;
        }
        self.sh.submit_cv.notify_all();
        let workers: Vec<_> = self.workers.lock().drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
        self.sh.complete_cv.notify_all();
    }
}

impl Drop for RequestEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker(sh: &Shared) {
    loop {
        let (id, req, parent) = {
            let mut st = sh.st.lock();
            loop {
                if let Some(item) = st.queue.pop_front() {
                    st.inflight += 1;
                    break item;
                }
                if st.stopping {
                    drop(st);
                    sh.complete_cv.notify_all();
                    return;
                }
                sh.submit_cv.wait(&mut st);
            }
        };
        let (data, result) = execute(&sh.dev, req, parent);
        let mut st = sh.st.lock();
        st.inflight -= 1;
        st.done.push_back(Completion { id, data, result });
        drop(st);
        sh.complete_cv.notify_all();
    }
}

fn execute(dev: &SharedDev, req: Request, parent: Option<SpanId>) -> (Option<Vec<u8>>, Result<()>) {
    match req {
        Request::Read { off, len } => {
            let mut buf = vec![0u8; len];
            match dev.read_at_in(&mut buf, off, parent) {
                Ok(()) => (Some(buf), Ok(())),
                Err(e) => (None, Err(e)),
            }
        }
        Request::Write { off, data } => (None, dev.write_at_in(&data, off, parent)),
        // An explicit client Flush against whatever device is being driven
        // (not necessarily an image); QcowImage routes it through barrier().
        Request::Flush => (None, dev.flush()), // lint:allow(qcow-barrier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmi_blockdev::{BlockDev, MemDev};

    fn dev_with(len: u64) -> SharedDev {
        let d = MemDev::new();
        d.set_len(len).unwrap();
        Arc::new(d)
    }

    #[test]
    fn submit_and_collect_roundtrip() {
        let dev = dev_with(4096);
        dev.write_at(&[7u8; 64], 128).unwrap();
        let engine = RequestEngine::new(dev, 2);
        let id = engine.submit(Request::Read { off: 128, len: 64 });
        let c = engine.next_completion().expect("one completion");
        assert_eq!(c.id, id);
        assert!(c.result.is_ok());
        assert_eq!(c.data.as_deref(), Some(&[7u8; 64][..]));
    }

    #[test]
    fn many_requests_all_complete_once() {
        let dev = dev_with(1 << 20);
        let engine = RequestEngine::new(dev.clone(), 4);
        let mut ids = std::collections::HashSet::new();
        for i in 0..64u64 {
            ids.insert(engine.submit(Request::Write {
                off: i * 512,
                data: vec![i as u8; 512],
            }));
        }
        engine.wait_idle();
        engine.shutdown();
        let mut seen = std::collections::HashSet::new();
        while let Some(c) = engine.next_completion() {
            assert!(c.result.is_ok());
            assert!(seen.insert(c.id), "duplicate completion {}", c.id);
        }
        assert_eq!(seen, ids);
        let mut b = [0u8; 512];
        dev.read_at(&mut b, 63 * 512).unwrap();
        assert_eq!(b, [63u8; 512]);
    }

    #[test]
    fn errors_surface_in_completions() {
        let dev = dev_with(1024);
        let engine = RequestEngine::new(dev, 1);
        engine.submit(Request::Read { off: 2048, len: 16 });
        let c = engine.next_completion().expect("completion");
        assert!(c.result.is_err());
        assert!(c.data.is_none());
    }

    #[test]
    fn wait_idle_is_a_barrier_for_flush() {
        let dev = dev_with(1 << 16);
        let engine = RequestEngine::new(dev, 4);
        for i in 0..16u64 {
            engine.submit(Request::Write {
                off: i * 1024,
                data: vec![1u8; 1024],
            });
        }
        engine.wait_idle();
        let fid = engine.submit(Request::Flush);
        loop {
            let c = engine.next_completion().expect("completion");
            if c.id == fid {
                assert!(c.result.is_ok());
                break;
            }
        }
    }

    #[test]
    fn submit_after_shutdown_errors_cleanly() {
        let dev = dev_with(1024);
        let engine = RequestEngine::new(dev, 1);
        engine.shutdown();
        engine.submit(Request::Flush);
        let c = engine.next_completion().expect("error completion");
        assert!(c.result.is_err());
        assert!(engine.next_completion().is_none());
    }
}
