//! Content-based deduplication analysis across cache images.
//!
//! §8 names this as future work: "we think it is worthwhile to investigate
//! data compression and deduplication techniques … in the context of VMI
//! caches", building on §7.3's observation that "VMIs created from the same
//! operating system distribution share content". This module measures that
//! opportunity: how many cache-image clusters are byte-identical across a
//! set of caches (or within one cache), i.e. how much cache-store capacity
//! a content-addressed pool would save.
//!
//! Hashing is FNV-1a over cluster contents, with full byte comparison on
//! hash collision (no false sharing is ever reported).

use std::collections::HashMap;

use vmi_blockdev::{BlockDev, Result};

use crate::image::QcowImage;

/// FNV-1a 64-bit.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Outcome of a dedup analysis over one or more images.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DedupReport {
    /// Total mapped clusters scanned across all images.
    pub total_clusters: u64,
    /// Distinct cluster contents.
    pub unique_clusters: u64,
    /// Cluster size used by the scan (bytes).
    pub cluster_size: u64,
    /// Clusters whose content is all zeroes (a content-addressed store
    /// would not store them at all).
    pub zero_clusters: u64,
}

impl DedupReport {
    /// Bytes stored without dedup.
    pub fn raw_bytes(&self) -> u64 {
        self.total_clusters * self.cluster_size
    }

    /// Bytes a content-addressed store would keep (unique, minus zeros).
    pub fn deduped_bytes(&self) -> u64 {
        self.unique_clusters
            .saturating_sub(self.zero_clusters.min(1))
            * self.cluster_size
    }

    /// Fraction of space saved by dedup (0.0–1.0).
    pub fn savings(&self) -> f64 {
        if self.total_clusters == 0 {
            0.0
        } else {
            1.0 - self.deduped_bytes() as f64 / self.raw_bytes() as f64
        }
    }
}

/// Analyze content sharing across `images` (typically the cache images of
/// several VMIs derived from the same distribution). All images must share
/// one cluster size.
pub fn analyze(images: &[&QcowImage]) -> Result<DedupReport> {
    let Some(first) = images.first() else {
        return Ok(DedupReport::default());
    };
    let cs = first.geometry().cluster_size();
    let mut rep = DedupReport {
        cluster_size: cs,
        ..Default::default()
    };
    // hash → representative content (for collision verification).
    let mut seen: HashMap<u64, Vec<Vec<u8>>> = HashMap::new();
    let mut buf = vec![0u8; cs as usize];
    for img in images {
        if img.geometry().cluster_size() != cs {
            return Err(vmi_blockdev::BlockError::unsupported(
                "dedup analysis requires a uniform cluster size",
            ));
        }
        let vsize = img.virtual_size();
        let mut vba = 0u64;
        while vba < vsize {
            if img.is_mapped(vba)? {
                let n = cs.min(vsize - vba) as usize;
                buf[n..].fill(0);
                img.read_at(&mut buf[..n], vba)?;
                rep.total_clusters += 1;
                if buf.iter().all(|&b| b == 0) {
                    rep.zero_clusters += 1;
                }
                let h = fnv1a(&buf);
                let bucket = seen.entry(h).or_default();
                if !bucket.iter().any(|c| c[..] == buf[..]) {
                    bucket.push(buf.clone());
                    rep.unique_clusters += 1;
                }
            }
            vba += cs;
        }
    }
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::CreateOpts;
    use std::sync::Arc;
    use vmi_blockdev::{BlockDev, MemDev, SharedDev};

    const VSIZE: u64 = 2 << 20;

    fn cache_over(content: &[u8], touch: &[(u64, usize)]) -> Arc<QcowImage> {
        let base: SharedDev = Arc::new(MemDev::from_vec(content.to_vec()));
        let img = QcowImage::create(
            Arc::new(MemDev::new()),
            CreateOpts::cache(VSIZE, "b", 8 << 20),
            Some(base),
        )
        .unwrap();
        let mut buf = vec![0u8; 1 << 20];
        for &(off, len) in touch {
            img.read_at(&mut buf[..len], off).unwrap();
        }
        img
    }

    #[test]
    fn identical_caches_dedup_to_one_copy() {
        // Aperiodic content so no two clusters are identical by accident.
        let content: Vec<u8> = (0..VSIZE as usize)
            .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 23) as u8)
            .collect();
        let a = cache_over(&content, &[(0, 64 * 1024)]);
        let b = cache_over(&content, &[(0, 64 * 1024)]);
        let rep = analyze(&[&a, &b]).unwrap();
        assert_eq!(rep.total_clusters, 2 * rep.unique_clusters);
        assert!(rep.savings() > 0.49);
    }

    #[test]
    fn disjoint_content_does_not_dedup() {
        let ca: Vec<u8> = (0..VSIZE as usize).map(|i| (i % 249) as u8).collect();
        // Different phase → different cluster contents.
        let cb: Vec<u8> = (0..VSIZE as usize).map(|i| ((i + 7) % 249) as u8).collect();
        let a = cache_over(&ca, &[(0, 32 * 1024)]);
        let b = cache_over(&cb, &[(0, 32 * 1024)]);
        let rep = analyze(&[&a, &b]).unwrap();
        assert_eq!(rep.unique_clusters, rep.total_clusters, "nothing shared");
        assert!(rep.savings() < 0.01);
    }

    #[test]
    fn zero_clusters_detected() {
        let content = vec![0u8; VSIZE as usize];
        let a = cache_over(&content, &[(0, 16 * 1024)]);
        let rep = analyze(&[&a]).unwrap();
        assert_eq!(rep.zero_clusters, rep.total_clusters);
        assert!(rep.savings() > 0.9, "all-zero caches nearly vanish");
    }

    #[test]
    fn empty_input_is_empty_report() {
        let rep = analyze(&[]).unwrap();
        assert_eq!(rep, DedupReport::default());
        assert_eq!(rep.savings(), 0.0);
    }

    #[test]
    fn partial_overlap_counts_correctly() {
        let content: Vec<u8> = (0..VSIZE as usize)
            .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 23) as u8)
            .collect();
        // a touches [0,64K); b touches [32K,96K): 32 KiB of shared content,
        // read at identical alignment.
        let a = cache_over(&content, &[(0, 64 * 1024)]);
        let b = cache_over(&content, &[(32 * 1024, 64 * 1024)]);
        let rep = analyze(&[&a, &b]).unwrap();
        let cs = rep.cluster_size;
        let shared = (32 * 1024) / cs;
        assert_eq!(rep.total_clusters, 2 * (64 * 1024) / cs);
        assert_eq!(rep.unique_clusters, rep.total_clusters - shared);
    }

    #[test]
    fn fnv_distinguishes_near_identical() {
        let a = vec![1u8; 512];
        let mut b = a.clone();
        b[511] = 2;
        assert_ne!(fnv1a(&a), fnv1a(&b));
    }
}
