//! The image object: open/create/read/write/close with copy-on-write,
//! backing-chain recursion, and the paper's copy-on-read cache extension.
//!
//! An open [`QcowImage`] is itself a [`BlockDev`], so chains compose
//! naturally: the CoW image's backing is the cache image, whose backing is
//! the base image (Fig. 4), and the guest only ever talks to the top layer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{lockrank, Mutex};
use vmi_blockdev::{be_u64, BlockDev, BlockError, Result, SharedDev};
use vmi_obs::{met, Event, Obs, SpanId};

use crate::header::{CacheExt, Header, VERSION};
use crate::layout::Geometry;

/// Sentinel L2/L1 value: unallocated.
const UNALLOCATED: u64 = 0;

/// Default memory budget for the in-memory L2 table cache, in bytes. The
/// per-image table limit is this budget divided by the cluster size (one
/// cached table occupies one cluster's worth of entries), floored at
/// [`MIN_L2_CACHE_TABLES`]. Mirrors QEMU's bounded `l2-cache-size` — an
/// unbounded table cache on a multi-TiB image is an OOM waiting to happen.
pub const DEFAULT_L2_CACHE_BYTES: u64 = 32 << 20;

/// Lower bound on the default L2 cache limit, so huge-cluster images keep a
/// useful working set.
pub const MIN_L2_CACHE_TABLES: usize = 64;

/// The default L2 table-cache limit for a given geometry.
fn default_l2_cache_limit(geom: &Geometry) -> usize {
    ((DEFAULT_L2_CACHE_BYTES / geom.cluster_size()) as usize).max(MIN_L2_CACHE_TABLES)
}

/// Options for [`QcowImage::create`].
#[derive(Debug, Clone)]
pub struct CreateOpts {
    /// Virtual disk size. For cache/CoW layers this must equal the base's
    /// virtual size (§4.3: the size field "has to be the same as the base
    /// image's").
    pub size: u64,
    /// log2 of the cluster size. The paper uses 64 KiB (16) for base/CoW
    /// images and 512 B (9) for cache images.
    pub cluster_bits: u32,
    /// Backing file name recorded in the header (resolution to an actual
    /// device happens at open time or via the `backing` field below).
    pub backing_file: Option<String>,
    /// Cache quota in bytes. Non-zero turns the new image into a *cache
    /// image* (§4.3: "If the quota passed to the create function is not
    /// zero, it is assumed that the new image will be used as a cache").
    pub cache_quota: u64,
}

impl CreateOpts {
    /// A plain (non-cache) image of `size` bytes with default clusters.
    pub fn plain(size: u64) -> Self {
        Self {
            size,
            cluster_bits: crate::layout::DEFAULT_CLUSTER_BITS,
            backing_file: None,
            cache_quota: 0,
        }
    }

    /// A CoW overlay of `size` bytes naming `backing` in its header.
    pub fn cow(size: u64, backing: impl Into<String>) -> Self {
        Self {
            backing_file: Some(backing.into()),
            ..Self::plain(size)
        }
    }

    /// A cache image: 512 B clusters (the paper's final arrangement) and a
    /// quota.
    pub fn cache(size: u64, backing: impl Into<String>, quota: u64) -> Self {
        Self {
            size,
            cluster_bits: crate::layout::MIN_CLUSTER_BITS,
            backing_file: Some(backing.into()),
            cache_quota: quota,
        }
    }

    /// Override the cluster size (used by the Fig. 9 experiment that shows
    /// why 64 KiB cache clusters amplify traffic).
    pub fn with_cluster_bits(mut self, bits: u32) -> Self {
        self.cluster_bits = bits;
        self
    }
}

/// Copy-on-read statistics, exposed for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorStats {
    /// Bytes served from this image's own clusters (warm hits).
    pub hit_bytes: u64,
    /// Bytes fetched from the backing chain on behalf of guest reads.
    pub miss_bytes: u64,
    /// Bytes written into the cache by copy-on-read fills (≥ miss bytes for
    /// large clusters — the amplification of Fig. 9).
    pub fill_bytes: u64,
    /// Number of fills rejected because the quota was exhausted.
    pub fill_rejects: u64,
}

#[derive(Debug)]
struct MutState {
    /// In-memory copy of the L1 table (write-through to the container).
    l1: Vec<u64>,
    /// Write-through read cache of L2 tables, keyed by L1 index.
    l2_cache: HashMap<usize, Vec<u64>>,
    /// Recency stamps for [`MutState::l2_cache`] (bounded-cache eviction).
    l2_ticks: HashMap<usize, u64>,
    /// Monotone counter feeding `l2_ticks`.
    l2_clock: u64,
    /// Maximum cached L2 tables (`None` = unbounded). Tables are
    /// write-through, so eviction never loses data — it only costs a
    /// re-read on the next touch, exactly like QEMU's `l2-cache-size`.
    l2_cache_limit: Option<usize>,
    /// Bump allocation pointer (end of container file).
    eof: u64,
    /// Bytes of container space used, tracked for cache images
    /// ("the current size of the cache", §4.3).
    cache_used: u64,
    /// Container offsets of discarded clusters, reused by the allocator
    /// before the file is grown. Session-local: clusters still on this list
    /// at close appear as *leaked* to `check` and are reclaimed by
    /// `compact` (mirroring `qemu-img check`'s leak accounting).
    free_clusters: Vec<u64>,
    /// Cluster offsets shared with at least one snapshot: writes to them
    /// must copy-on-write instead of updating in place.
    frozen: std::collections::HashSet<u64>,
    /// Internal snapshots, in table order.
    snapshots: Vec<crate::snapshot::SnapshotRec>,
    /// Live snapshot-table pointer (mirrors the header extension).
    snaptab: crate::header::SnapTabExt,
}

/// An open image.
///
/// Cheap to share: all mutable state lives behind a mutex, and the hot read
/// path takes it once per cluster segment.
pub struct QcowImage {
    dev: SharedDev,
    geom: Geometry,
    header: Header,
    backing: Option<SharedDev>,
    read_only: bool,
    /// Copy-on-read enabled (cache image with room left). Starts true for
    /// cache images and latches false on the first quota space error
    /// (§4.3: "we stop writing to the cache for the future cold reads").
    fill_enabled: AtomicBool,
    /// Degraded-mode latch: set once on the first cache I/O failure (a
    /// failed fill or a failed cluster read). A degraded cache stops
    /// filling and serves cluster-read failures from its backing chain;
    /// the guest never sees the fault. Mirrors the space-error latch.
    degraded: AtomicBool,
    /// Set when this handle has been superseded (resize/rebase reopened the
    /// container): Drop must not write back stale header state.
    detached: AtomicBool,
    /// Extent coalescing: serve/fill physically contiguous cluster runs with
    /// one device op instead of one per cluster. On by default; the scalar
    /// path is kept selectable so benches and equivalence tests can compare
    /// the two byte-for-byte.
    coalesce: AtomicBool,
    state: Mutex<MutState>,
    // CoR statistics.
    hit_bytes: AtomicU64,
    miss_bytes: AtomicU64,
    fill_bytes: AtomicU64,
    fill_rejects: AtomicU64,
    /// Guest bytes served from backing after a cache cluster-read failure.
    degraded_read_bytes: AtomicU64,
    /// Observability handle; disabled by default (single branch per call).
    obs: Obs,
}

impl std::fmt::Debug for QcowImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QcowImage")
            .field("geom", &self.geom)
            .field("is_cache", &self.is_cache())
            .field("read_only", &self.read_only)
            .field("has_backing", &self.backing.is_some())
            .finish_non_exhaustive()
    }
}

/// Witness rank for an image's state mutex. Ranks ascend front layer → base
/// along a backing chain (a front layer holds its state mutex across backing
/// reads, see `read_unmapped_run`), so an image ranks one *below* its backing
/// image, clamped to the supported chain depth. Standalone images and images
/// over raw (non-image) backing devices take the base rank.
fn state_rank_for(backing: Option<&SharedDev>) -> u32 {
    // Walk through pass-through decorators (counting, retry, read-only…)
    // to find the backing *image*, if there is one.
    let mut cur = backing;
    while let Some(d) = cur {
        if let Some(img) = d.as_any().and_then(|a| a.downcast_ref::<QcowImage>()) {
            return img.state.rank().saturating_sub(1).max(lockrank::QCOW_STATE);
        }
        cur = d.inner_dev();
    }
    lockrank::QCOW_STATE_TOP
}

impl QcowImage {
    // ------------------------------------------------------------------
    // create / open / close
    // ------------------------------------------------------------------

    /// Create a fresh image in `dev` (the container device) and open it.
    ///
    /// `backing` is the resolved device for the backing file named in
    /// `opts.backing_file` (pass `None` for a standalone image).
    pub fn create(
        dev: SharedDev,
        opts: CreateOpts,
        backing: Option<SharedDev>,
    ) -> Result<Arc<Self>> {
        Self::create_with_obs(dev, opts, backing, Obs::disabled())
    }

    /// [`QcowImage::create`] with an observability handle attached: events
    /// and metrics from this image's read/CoR path flow into `obs`.
    pub fn create_with_obs(
        dev: SharedDev,
        opts: CreateOpts,
        backing: Option<SharedDev>,
        obs: Obs,
    ) -> Result<Arc<Self>> {
        let geom = Geometry::new(opts.cluster_bits, opts.size)?;
        if opts.backing_file.is_some() != backing.is_some() {
            return Err(BlockError::unsupported(
                "backing name and backing device must be given together",
            ));
        }
        let l1_entries = geom.l1_entries();
        if l1_entries > (64 << 20) {
            return Err(BlockError::unsupported("L1 table too large (>64M entries)"));
        }
        let l1_table_offset = geom.cluster_size(); // cluster 1
        let header = Header {
            version: VERSION,
            cluster_bits: opts.cluster_bits,
            size: opts.size,
            l1_table_offset,
            l1_size: l1_entries as u32,
            backing_file: opts.backing_file,
            cache: (opts.cache_quota > 0).then_some(CacheExt {
                quota: opts.cache_quota,
                used: 0,
            }),
            // Cache images never carry snapshots (they are transparent
            // layers); every other image gets an (empty) snapshot table so
            // the pointer can later be updated in place.
            snaptab: (opts.cache_quota == 0).then_some(crate::header::SnapTabExt::default()),
        };
        let encoded = header.encode();
        if encoded.len() as u64 > geom.cluster_size() {
            return Err(BlockError::unsupported(
                "header (incl. backing name) does not fit in one cluster",
            ));
        }
        dev.set_len(0)?;
        dev.write_at(&encoded, 0)?;
        // Zero the L1 table region.
        let l1_bytes = geom.l1_table_bytes();
        let zeros = vec![0u8; (1usize << 20).min(l1_bytes as usize)];
        let mut off = l1_table_offset;
        let l1_end = l1_table_offset + l1_bytes;
        while off < l1_end {
            let n = zeros.len().min((l1_end - off) as usize);
            dev.write_at(&zeros[..n], off)?;
            off += n as u64;
        }
        let eof = l1_end;
        // "size of the header and initial tables" counts toward the quota.
        // A quota smaller than the initial metadata is allowed: the cache
        // simply rejects its first fill with a space error and serves
        // pass-through reads forever after.
        let initial_used = geom.cluster_size() + l1_bytes;
        if header.cache.is_some() {
            Header::update_cache_used(dev.as_ref() as &dyn BlockDev, initial_used)?;
        }
        let img = Arc::new(Self {
            geom,
            read_only: false,
            fill_enabled: AtomicBool::new(header.is_cache()),
            degraded: AtomicBool::new(false),
            detached: AtomicBool::new(false),
            coalesce: AtomicBool::new(true),
            state: Mutex::new(MutState {
                l1: vec![UNALLOCATED; l1_entries as usize],
                l2_cache: HashMap::new(),
                l2_ticks: HashMap::new(),
                l2_clock: 0,
                l2_cache_limit: Some(default_l2_cache_limit(&geom)),
                eof,
                cache_used: initial_used,
                free_clusters: Vec::new(),
                frozen: std::collections::HashSet::new(),
                snapshots: Vec::new(),
                snaptab: header.snaptab.unwrap_or_default(),
            }),
            header,
            backing,
            dev,
            hit_bytes: AtomicU64::new(0),
            miss_bytes: AtomicU64::new(0),
            fill_bytes: AtomicU64::new(0),
            fill_rejects: AtomicU64::new(0),
            degraded_read_bytes: AtomicU64::new(0),
            obs,
        });
        img.state.set_rank(state_rank_for(img.backing.as_ref()));
        // A freshly created image is durable before it is handed out: a
        // crash afterwards can tear later mutations but never the skeleton.
        img.barrier()?;
        Ok(img)
    }

    /// Open an existing image stored in `dev`.
    ///
    /// `backing` must be the resolved device for the header's backing file
    /// (or `None` if the header names none). `read_only` mirrors QEMU's
    /// open flag; the §4.3 "flag dance" lives in [`crate::chain`].
    pub fn open(dev: SharedDev, backing: Option<SharedDev>, read_only: bool) -> Result<Arc<Self>> {
        Self::open_with_obs(dev, backing, read_only, Obs::disabled())
    }

    /// [`QcowImage::open`] with an observability handle attached.
    pub fn open_with_obs(
        dev: SharedDev,
        backing: Option<SharedDev>,
        read_only: bool,
        obs: Obs,
    ) -> Result<Arc<Self>> {
        let header = Header::decode(dev.as_ref() as &dyn BlockDev)?;
        let geom = header.geometry()?;
        if header.backing_file.is_some() && backing.is_none() {
            return Err(BlockError::unsupported(format!(
                "image names backing file {:?} but no backing device was supplied",
                header.backing_file
            )));
        }
        if header.backing_file.is_none() && backing.is_some() {
            return Err(BlockError::unsupported(
                "backing device supplied for standalone image",
            ));
        }
        if header.l1_size as u64 != geom.l1_entries() {
            return Err(BlockError::corrupt(format!(
                "header l1_size {} does not match geometry {}",
                header.l1_size,
                geom.l1_entries()
            )));
        }
        // Load the L1 table.
        let mut l1_raw = vec![0u8; (header.l1_size as usize) * 8];
        dev.read_at(&mut l1_raw, header.l1_table_offset)
            .map_err(|_| BlockError::corrupt("truncated L1 table"))?;
        let l1: Vec<u64> = l1_raw.chunks_exact(8).map(be_u64).collect();
        let cluster_size = geom.cluster_size();
        for &e in &l1 {
            if e != UNALLOCATED && (e % cluster_size != 0 || e >= dev.len()) {
                return Err(BlockError::corrupt(format!("invalid L1 entry {e:#x}")));
            }
        }
        let eof = geom.align_up(dev.len());
        let cache_used = header.cache.map(|c| c.used).unwrap_or(0);
        if let Some(c) = &header.cache {
            // Fills never push `used` beyond the quota, but the initial
            // metadata may already exceed a tiny quota; anything beyond both
            // bounds is corruption.
            let initial = cluster_size + geom.l1_table_bytes();
            if c.used > c.quota.max(initial) {
                return Err(BlockError::corrupt("cache used exceeds quota"));
            }
        }
        let is_cache = header.is_cache();
        let has_room = header
            .cache
            .map(|c| c.used + 2 * cluster_size <= c.quota)
            .unwrap_or(false);
        // Load the snapshot table, if the image carries one.
        let snaptab = header.snaptab.unwrap_or_default();
        let snapshots = if snaptab.count > 0 {
            let mut raw = vec![0u8; snaptab.len as usize];
            dev.read_at(&mut raw, snaptab.offset)
                .map_err(|_| BlockError::corrupt("truncated snapshot table"))?;
            crate::snapshot::decode_table(&raw, snaptab.count)?
        } else {
            Vec::new()
        };
        let img = Arc::new(Self {
            geom,
            read_only,
            fill_enabled: AtomicBool::new(is_cache && !read_only && has_room),
            degraded: AtomicBool::new(false),
            detached: AtomicBool::new(false),
            coalesce: AtomicBool::new(true),
            state: Mutex::new(MutState {
                l1,
                l2_cache: HashMap::new(),
                l2_ticks: HashMap::new(),
                l2_clock: 0,
                l2_cache_limit: Some(default_l2_cache_limit(&geom)),
                eof,
                cache_used,
                free_clusters: Vec::new(),
                frozen: std::collections::HashSet::new(),
                snapshots,
                snaptab,
            }),
            header,
            backing,
            dev,
            hit_bytes: AtomicU64::new(0),
            miss_bytes: AtomicU64::new(0),
            fill_bytes: AtomicU64::new(0),
            fill_rejects: AtomicU64::new(0),
            degraded_read_bytes: AtomicU64::new(0),
            obs,
        });
        img.state.set_rank(state_rank_for(img.backing.as_ref()));
        if snaptab.count > 0 {
            let mut st = img.state.lock();
            img.recompute_frozen(&mut st)?;
        }
        Ok(img)
    }

    /// Close the image: flush, and for cache images write the current used
    /// size back into the header (§4.3 `close`).
    /// Grow the virtual disk to `new_size` (shrinking is not supported —
    /// it would orphan mapped clusters).
    ///
    /// The L1 table must cover the new size; if the existing table is too
    /// small, a larger one is allocated at end-of-file, entries are copied,
    /// and the header is rewritten to point at it (the old table's clusters
    /// become leaks reclaimable by `compact`). The cluster size is fixed at
    /// creation, exactly like `qemu-img resize`.
    pub fn resize(self: &Arc<Self>, new_size: u64) -> Result<Arc<Self>> {
        if self.read_only {
            return Err(BlockError::read_only("resize of read-only image"));
        }
        if new_size < self.geom.virtual_size {
            return Err(BlockError::unsupported(
                "shrinking an image is not supported",
            ));
        }
        if new_size == self.geom.virtual_size {
            return Ok(self.clone());
        }
        let new_geom = Geometry::new(self.geom.cluster_bits, new_size)?;
        let mut st = self.state.lock();
        if !st.snapshots.is_empty() {
            return Err(BlockError::unsupported(
                "resize with internal snapshots is not supported (delete them first)",
            ));
        }
        let old_entries = st.l1.len();
        let new_entries = new_geom.l1_entries() as usize;
        let mut header = self.header.clone();
        header.size = new_size;
        header.l1_size = new_entries as u32;
        header.snaptab = header.snaptab.map(|_| st.snaptab);
        if new_entries > old_entries {
            // Relocate the L1 table to a fresh region at end-of-file.
            let new_l1_bytes = new_geom.l1_table_bytes();
            let new_l1_off = st.eof;
            st.eof += new_l1_bytes;
            st.cache_used += new_l1_bytes;
            let mut raw = vec![0u8; new_l1_bytes as usize];
            for (i, &e) in st.l1.iter().enumerate() {
                raw[i * 8..i * 8 + 8].copy_from_slice(&e.to_be_bytes());
            }
            self.dev.write_at(&raw, new_l1_off)?;
            header.l1_table_offset = new_l1_off;
            st.l1.resize(new_entries, UNALLOCATED);
        }
        let encoded = header.encode();
        if encoded.len() as u64 > self.geom.cluster_size() {
            return Err(BlockError::unsupported(
                "resized header does not fit its cluster",
            ));
        }
        self.dev.write_at(&encoded, 0)?;
        drop(st);
        self.close()?;
        self.detached.store(true, Ordering::Release);
        // Reopen with the new geometry over the same container + backing.
        QcowImage::open(self.dev.clone(), self.backing.clone(), false)
    }

    /// Rewrite the backing-file *name* in the header without touching any
    /// data — `qemu-img rebase -u` (unsafe rebase). The caller asserts the
    /// new backing has identical content where this image is unallocated.
    ///
    /// Returns the image reopened against `new_backing`.
    pub fn rebase_unsafe(
        self: &Arc<Self>,
        new_name: Option<String>,
        new_backing: Option<SharedDev>,
    ) -> Result<Arc<Self>> {
        if self.read_only {
            return Err(BlockError::read_only("rebase of read-only image"));
        }
        if new_name.is_some() != new_backing.is_some() {
            return Err(BlockError::unsupported(
                "backing name and device must be given together",
            ));
        }
        if self.header.is_cache() && new_backing.is_none() {
            return Err(BlockError::unsupported(
                "a cache image requires a backing image (§3: it recurses to the base)",
            ));
        }
        let mut header = self.header.clone();
        header.backing_file = new_name;
        // Refresh persisted dynamic fields while we rewrite the header.
        if let Some(c) = &mut header.cache {
            c.used = self.cache_used();
        }
        header.snaptab = header.snaptab.map(|_| self.state.lock().snaptab);
        let encoded = header.encode();
        if encoded.len() as u64 > self.geom.cluster_size() {
            return Err(BlockError::unsupported(
                "rebased header does not fit its cluster",
            ));
        }
        self.dev.write_at(&encoded, 0)?;
        self.barrier()?;
        self.detached.store(true, Ordering::Release);
        QcowImage::open(self.dev.clone(), new_backing, false)
    }

    /// Paranoid self-check: re-audit the whole container with `vmi-audit`
    /// after a mutating op, comparing against the in-memory used counter
    /// (the on-disk field is stale mid-session by design — §4.3 writes it
    /// back at close). Active only with the `paranoid` feature in debug
    /// builds: it re-reads every mapping table, so it is deliberately unfit
    /// for release use. Degraded images are skipped — the latch already
    /// marks them as known-inconsistent.
    #[cfg(feature = "paranoid")]
    fn paranoid_audit(&self, st: &MutState, op: &str) {
        if !cfg!(debug_assertions) || self.is_degraded() {
            return;
        }
        let opts = vmi_audit::AuditOpts {
            expected_used: self.header.is_cache().then_some(st.cache_used),
            ..Default::default()
        };
        let report = vmi_audit::audit_image_opts(self.dev.as_ref(), &opts);
        if !report.is_clean() {
            panic!("paranoid audit failed after {op}: {:?}", report.violations) // lint:allow(no-unwrap)
        }
    }

    #[cfg(not(feature = "paranoid"))]
    #[inline(always)]
    fn paranoid_audit(&self, _st: &MutState, _op: &str) {}

    pub fn close(&self) -> Result<()> {
        if !self.read_only {
            if self.header.is_cache() {
                // All data and table writes durable before the used-size is
                // published — a crash between the two leaves a stale used
                // field, which `recover` rewrites from the tables.
                self.barrier()?;
                let used = self.state.lock().cache_used;
                Header::update_cache_used(self.dev.as_ref() as &dyn BlockDev, used)?;
            }
            self.barrier()?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    /// Virtual disk size in bytes.
    pub fn virtual_size(&self) -> u64 {
        self.geom.virtual_size
    }

    /// The image geometry (cluster math).
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// The parsed header (as of open; `cache.used` may be stale — use
    /// [`QcowImage::cache_used`] for the live value).
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// `true` iff this image carries the cache extension.
    pub fn is_cache(&self) -> bool {
        self.header.is_cache()
    }

    /// Quota in bytes, 0 for non-cache images.
    pub fn cache_quota(&self) -> u64 {
        self.header.cache.map(|c| c.quota).unwrap_or(0)
    }

    /// Live used-size accounting (header + tables + data clusters).
    pub fn cache_used(&self) -> u64 {
        self.state.lock().cache_used
    }

    /// Whether copy-on-read fills are still running (latches off on the
    /// first quota space error).
    pub fn fill_enabled(&self) -> bool {
        self.fill_enabled.load(Ordering::Acquire)
    }

    /// Whether this cache has latched into degraded mode (a fill or a
    /// cluster read failed). Degraded caches stop filling and serve
    /// everything they can from their backing chain; the latch never
    /// clears for the lifetime of the handle.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Guest bytes that were served from the backing chain because a
    /// cache cluster read failed.
    pub fn degraded_read_bytes(&self) -> u64 {
        self.degraded_read_bytes.load(Ordering::Relaxed)
    }

    /// Latch this image degraded, emitting the transition exactly once
    /// (the same `swap` discipline as the space-error latch).
    fn latch_degraded(&self, used: u64, reason: &'static str) {
        if !self.degraded.swap(true, Ordering::AcqRel) {
            self.obs.count(met::CACHE_DEGRADED, 1);
            self.obs.emit(|| Event::CacheDegraded {
                reason: reason.to_string(),
                used,
            });
        }
    }

    /// Container bytes used by the image file (the Table 2 metric).
    pub fn file_size(&self) -> u64 {
        self.dev.len()
    }

    /// The container device.
    pub fn container(&self) -> &SharedDev {
        &self.dev
    }

    /// The resolved backing device, if any.
    pub fn backing(&self) -> Option<&SharedDev> {
        self.backing.as_ref()
    }

    /// Whether this handle rejects guest writes.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Copy-on-read counters.
    pub fn cor_stats(&self) -> CorStats {
        CorStats {
            hit_bytes: self.hit_bytes.load(Ordering::Relaxed),
            miss_bytes: self.miss_bytes.load(Ordering::Relaxed),
            fill_bytes: self.fill_bytes.load(Ordering::Relaxed),
            fill_rejects: self.fill_rejects.load(Ordering::Relaxed),
        }
    }

    /// Count of guest bytes mapped in this layer (allocated data clusters ×
    /// cluster size). Diagnostic / `check` helper.
    pub fn mapped_bytes(&self) -> u64 {
        let st = self.state.lock();
        let mut clusters = 0u64;
        for (l1_idx, &l2_off) in st.l1.iter().enumerate() {
            if l2_off == UNALLOCATED {
                continue;
            }
            if let Some(l2) = st.l2_cache.get(&l1_idx) {
                clusters += l2.iter().filter(|&&e| e != UNALLOCATED).count() as u64;
            } else {
                // Read the table without caching to keep this cheap-ish.
                if let Ok(l2) = self.read_l2_table(l2_off) {
                    clusters += l2.iter().filter(|&&e| e != UNALLOCATED).count() as u64;
                }
            }
        }
        clusters * self.geom.cluster_size()
    }

    /// Discard (TRIM) the guest range `[off, off + len)`: every cluster
    /// *fully* covered by the range is unmapped from this layer and its
    /// container space queued for reuse. Partially covered edge clusters are
    /// left intact, like a real TRIM with sub-cluster alignment.
    ///
    /// Reads of discarded clusters fall back to the backing chain (or
    /// zeroes). For a cache image, discarding frees quota — if copy-on-read
    /// had latched off on a space error, it is re-armed.
    ///
    /// Returns the number of clusters discarded.
    pub fn discard(&self, off: u64, len: u64) -> Result<u64> {
        if self.read_only {
            return Err(BlockError::read_only("discard on read-only image"));
        }
        if off + len > self.geom.virtual_size {
            return Err(BlockError::out_of_bounds(
                off,
                len as usize,
                self.geom.virtual_size,
            ));
        }
        let cs = self.geom.cluster_size();
        let first = off.div_ceil(cs); // first fully-covered cluster index
        let last = (off + len) / cs; // one past the last fully-covered
        let mut st = self.state.lock();
        let mut discarded = 0u64;
        for cluster in first..last {
            let vba = cluster * cs;
            let l1_idx = self.geom.l1_index(vba);
            let l2_off = st.l1[l1_idx];
            if l2_off == UNALLOCATED {
                continue;
            }
            let _ = l2_off;
            if let Some(data_off) = self.lookup(&mut st, vba)? {
                self.set_l2_entry(&mut st, l1_idx, vba, UNALLOCATED)?;
                // Clusters shared with a snapshot stay allocated for it and
                // cannot be reused.
                if !st.frozen.contains(&data_off) {
                    st.free_clusters.push(data_off);
                    st.cache_used = st.cache_used.saturating_sub(cs);
                }
                discarded += 1;
            }
        }
        if discarded > 0 && self.header.is_cache() {
            // Freed quota: copy-on-read may resume (§4.3's latch is about
            // "future cold reads" having no room — now there is room again).
            let quota = self.header.cache.map(|c| c.quota).unwrap_or(0);
            if st.cache_used + 2 * cs <= quota {
                // swap: report the false->true transition exactly once.
                if !self.fill_enabled.swap(true, Ordering::Release) {
                    self.obs.count(met::QUOTA_REARMS, 1);
                    let used = st.cache_used;
                    self.obs.emit(|| Event::QuotaRearmed { used, quota });
                }
            }
            self.obs.gauge(met::CACHE_USED_BYTES, st.cache_used);
        }
        self.paranoid_audit(&st, "discard");
        Ok(discarded)
    }

    /// Container offsets currently queued for reuse (diagnostics).
    pub fn free_cluster_count(&self) -> usize {
        self.state.lock().free_clusters.len()
    }

    /// Whether the cluster containing `vba` is allocated in *this* layer
    /// (metadata probe; never triggers copy-on-read).
    pub fn is_mapped(&self, vba: u64) -> Result<bool> {
        if vba >= self.geom.virtual_size {
            return Err(BlockError::out_of_bounds(vba, 1, self.geom.virtual_size));
        }
        let mut st = self.state.lock();
        Ok(self.lookup(&mut st, vba)?.is_some())
    }

    /// Copy of the in-memory L1 table (for `check`/diagnostics).
    pub fn l1_snapshot(&self) -> Vec<u64> {
        self.state.lock().l1.clone()
    }

    /// A single live L1 entry (container offset of the L2 table for
    /// `idx`, or 0 if unallocated). Cheap: one brief state-lock hold.
    /// Out-of-range indexes read as unallocated. Used by
    /// [`crate::ConcurrentImage`] to refresh its lock-free L1 mirror
    /// after a serialized mutation.
    pub fn l1_entry(&self, idx: usize) -> u64 {
        self.state
            .lock()
            .l1
            .get(idx)
            .copied()
            .unwrap_or(UNALLOCATED)
    }

    /// Read an L2 table at a given container offset (for `check`).
    pub fn l2_snapshot(&self, l2_off: u64) -> Result<Vec<u64>> {
        self.read_l2_table(l2_off)
    }

    /// The observability handle attached at create/open time (shared so
    /// layered wrappers can emit into the same stream).
    pub(crate) fn obs_handle(&self) -> &Obs {
        &self.obs
    }

    // ------------------------------------------------------------------
    // internal snapshots
    // ------------------------------------------------------------------

    /// Create an internal snapshot of the current guest-visible state.
    ///
    /// The active L1 is copied into fresh clusters, the snapshot table is
    /// rewritten, and every currently-reachable cluster becomes
    /// copy-on-write. Not supported on cache images (they are transparent
    /// layers) or read-only handles. Returns the snapshot id.
    pub fn create_snapshot(&self, name: impl Into<String>) -> Result<u32> {
        let name = name.into();
        if self.read_only {
            return Err(BlockError::read_only("snapshot of read-only image"));
        }
        if self.header.is_cache() {
            return Err(BlockError::unsupported(
                "cache images do not support snapshots",
            ));
        }
        if self.header.snaptab.is_none() {
            return Err(BlockError::unsupported(
                "image predates snapshot support; run `compact` to upgrade it",
            ));
        }
        if name.len() > crate::snapshot::MAX_SNAPSHOT_NAME {
            return Err(BlockError::unsupported("snapshot name too long"));
        }
        let mut st = self.state.lock();
        if st.snapshots.iter().any(|r| r.name == name) {
            return Err(BlockError::unsupported(format!(
                "snapshot {name:?} already exists"
            )));
        }
        // Persist a frozen copy of the active L1 at end-of-file (contiguous
        // region, bypassing the free list).
        let l1_bytes = self.geom.l1_table_bytes();
        let copy_off = st.eof;
        st.eof += l1_bytes;
        st.cache_used += l1_bytes;
        let mut raw = vec![0u8; l1_bytes as usize];
        for (i, &e) in st.l1.iter().enumerate() {
            raw[i * 8..i * 8 + 8].copy_from_slice(&e.to_be_bytes());
        }
        self.dev.write_at(&raw, copy_off)?;
        let id = st.snapshots.iter().map(|r| r.id).max().unwrap_or(0) + 1;
        let l1_entries = st.l1.len() as u32;
        st.snapshots.push(crate::snapshot::SnapshotRec {
            id,
            name,
            l1_offset: copy_off,
            l1_entries,
        });
        self.persist_snapshot_table(&mut st)?;
        self.freeze_active_tree(&mut st)?;
        crate::snapshot::note_create(&self.obs);
        self.paranoid_audit(&st, "create_snapshot");
        Ok(id)
    }

    /// List snapshots in creation order.
    pub fn list_snapshots(&self) -> Vec<crate::snapshot::SnapshotInfo> {
        self.state
            .lock()
            .snapshots
            .iter()
            .map(|r| crate::snapshot::SnapshotInfo {
                id: r.id,
                name: r.name.clone(),
            })
            .collect()
    }

    /// Revert the guest-visible state to snapshot `id`. The snapshot itself
    /// is kept (revert again any time).
    pub fn apply_snapshot(&self, id: u32) -> Result<()> {
        if self.read_only {
            return Err(BlockError::read_only("revert on read-only image"));
        }
        let mut st = self.state.lock();
        let rec = st
            .snapshots
            .iter()
            .find(|r| r.id == id)
            .cloned()
            .ok_or_else(|| BlockError::unsupported(format!("no snapshot with id {id}")))?;
        if rec.l1_entries as usize != st.l1.len() {
            return Err(BlockError::unsupported(
                "snapshot predates a resize; apply is not supported across resizes",
            ));
        }
        // Load the frozen L1 and make it active (memory + container).
        let mut raw = vec![0u8; rec.l1_entries as usize * 8];
        self.dev.read_at(&mut raw, rec.l1_offset)?;
        let l1: Vec<u64> = raw.chunks_exact(8).map(be_u64).collect();
        self.dev.write_at(&raw, self.header.l1_table_offset)?;
        st.l1 = l1;
        st.l2_cache.clear();
        st.l2_ticks.clear();
        // The active tree is now shared with the snapshot: refreeze.
        self.recompute_frozen(&mut st)?;
        crate::snapshot::note_apply(&self.obs);
        self.paranoid_audit(&st, "apply_snapshot");
        Ok(())
    }

    /// Delete snapshot `id`. Clusters referenced only by it become leaks
    /// (report via `check`; reclaim with `compact` once no snapshots
    /// remain).
    pub fn delete_snapshot(&self, id: u32) -> Result<()> {
        if self.read_only {
            return Err(BlockError::read_only("delete on read-only image"));
        }
        let mut st = self.state.lock();
        let before = st.snapshots.len();
        st.snapshots.retain(|r| r.id != id);
        if st.snapshots.len() == before {
            return Err(BlockError::unsupported(format!("no snapshot with id {id}")));
        }
        self.persist_snapshot_table(&mut st)?;
        self.recompute_frozen(&mut st)?;
        crate::snapshot::note_delete(&self.obs);
        self.paranoid_audit(&st, "delete_snapshot");
        Ok(())
    }

    /// Count of container clusters referenced by snapshot metadata and
    /// trees (used by `check`'s leak accounting).
    pub fn snapshot_refs(&self) -> Result<std::collections::HashSet<u64>> {
        let mut st = self.state.lock();
        let mut refs = std::collections::HashSet::new();
        let cs = self.geom.cluster_size();
        let snapshots = st.snapshots.clone();
        for rec in &snapshots {
            // The L1 copy region itself.
            let l1_bytes = self.geom.l1_table_bytes();
            let mut off = rec.l1_offset;
            while off < rec.l1_offset + l1_bytes {
                refs.insert(off);
                off += cs;
            }
            // The tree it pins.
            self.walk_tree(rec.l1_offset, rec.l1_entries as usize, |cluster| {
                refs.insert(cluster);
            })?;
        }
        // The current snapshot table region.
        if let Some(tab) = self.snaptab_region(&st) {
            let (mut off, end) = tab;
            while off < end {
                refs.insert(off);
                off += cs;
            }
        }
        let _ = &mut st;
        Ok(refs)
    }

    /// Persist the snapshot table, reusing the existing table region when
    /// the new encoding fits (so table churn does not leak clusters); only
    /// growth allocates a new region (the old one then becomes a leak,
    /// reclaimable by `compact` once all snapshots are gone).
    fn persist_snapshot_table(&self, st: &mut MutState) -> Result<()> {
        let encoded = crate::snapshot::encode_table(&st.snapshots);
        let existing_region = self.geom.align_up(st.snaptab.len as u64);
        let (offset, len) = if encoded.is_empty() {
            // Keep the (empty) region for reuse by the next snapshot.
            (st.snaptab.offset, 0u32)
        } else if st.snaptab.offset != 0
            && self.geom.align_up(encoded.len() as u64)
                <= existing_region.max(self.geom.cluster_size())
        {
            self.dev.write_at(&encoded, st.snaptab.offset)?;
            (st.snaptab.offset, encoded.len() as u32)
        } else {
            let region = self
                .geom
                .align_up(encoded.len() as u64)
                .max(self.geom.cluster_size());
            let off = st.eof;
            st.eof += region;
            st.cache_used += region;
            self.dev.write_at(&encoded, off)?;
            (off, encoded.len() as u32)
        };
        let tab = crate::header::SnapTabExt {
            offset,
            len,
            count: st.snapshots.len() as u32,
        };
        Header::update_snaptab(self.dev.as_ref() as &dyn BlockDev, tab)?;
        st.snaptab = tab;
        Ok(())
    }

    /// Container byte range of the live snapshot-table region, if one was
    /// ever allocated (kept for reuse even when currently empty).
    fn snaptab_region(&self, st: &MutState) -> Option<(u64, u64)> {
        (st.snaptab.offset != 0).then(|| {
            (
                st.snaptab.offset,
                st.snaptab.offset
                    + self
                        .geom
                        .align_up(st.snaptab.len as u64)
                        .max(self.geom.cluster_size()),
            )
        })
    }

    /// Freeze every cluster reachable from the active L1.
    fn freeze_active_tree(&self, st: &mut MutState) -> Result<()> {
        let l1 = st.l1.clone();
        for &l2_off in l1.iter().filter(|&&e| e != UNALLOCATED) {
            st.frozen.insert(l2_off);
            for &doff in self
                .read_l2_table(l2_off)?
                .iter()
                .filter(|&&e| e != UNALLOCATED)
            {
                st.frozen.insert(doff);
            }
        }
        Ok(())
    }

    /// Rebuild the frozen set from the remaining snapshots' trees.
    fn recompute_frozen(&self, st: &mut MutState) -> Result<()> {
        st.frozen.clear();
        let snapshots = st.snapshots.clone();
        for rec in &snapshots {
            let mut frozen = std::mem::take(&mut st.frozen);
            self.walk_tree(rec.l1_offset, rec.l1_entries as usize, |cluster| {
                frozen.insert(cluster);
            })?;
            st.frozen = frozen;
        }
        Ok(())
    }

    /// Visit every L2-table and data cluster reachable from an L1 stored at
    /// `l1_offset`.
    fn walk_tree(
        &self,
        l1_offset: u64,
        l1_entries: usize,
        mut visit: impl FnMut(u64),
    ) -> Result<()> {
        let mut raw = vec![0u8; l1_entries * 8];
        self.dev.read_at(&mut raw, l1_offset)?;
        for e in raw.chunks_exact(8) {
            let l2_off = be_u64(e);
            if l2_off == UNALLOCATED {
                continue;
            }
            visit(l2_off);
            for &doff in self
                .read_l2_table(l2_off)?
                .iter()
                .filter(|&&d| d != UNALLOCATED)
            {
                visit(doff);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // table plumbing
    // ------------------------------------------------------------------

    /// Bound the number of cached L2 tables (`None` = unbounded). The
    /// default is [`DEFAULT_L2_CACHE_BYTES`] worth of tables. Mirrors QEMU's
    /// `l2-cache-size` tunable: a small cache costs re-reads of table
    /// clusters on workloads whose footprint exceeds the covered range —
    /// measurable with the `l2_cache` bench.
    pub fn set_l2_cache_limit(&self, limit: Option<usize>) {
        let mut st = self.state.lock();
        st.l2_cache_limit = limit.map(|l| l.max(1));
        self.l2_evict_to_limit(&mut st);
    }

    /// The current L2 table-cache limit (`None` = unbounded).
    pub fn l2_cache_limit(&self) -> Option<usize> {
        self.state.lock().l2_cache_limit
    }

    /// Number of L2 tables currently cached in memory.
    pub fn l2_cache_len(&self) -> usize {
        self.state.lock().l2_cache.len()
    }

    /// Toggle extent coalescing (on by default). The scalar per-cluster path
    /// is bit-identical in guest data and byte counters; it just issues one
    /// device op per cluster instead of one per contiguous run.
    pub fn set_coalescing(&self, on: bool) {
        self.coalesce.store(on, Ordering::Release);
    }

    /// Whether extent coalescing is enabled.
    pub fn coalescing(&self) -> bool {
        self.coalesce.load(Ordering::Acquire)
    }

    fn l2_touch(st: &mut MutState, l1_idx: usize) {
        st.l2_clock += 1;
        let clock = st.l2_clock;
        st.l2_ticks.insert(l1_idx, clock);
    }

    fn l2_cache_put(&self, st: &mut MutState, l1_idx: usize, table: Vec<u64>) {
        st.l2_cache.insert(l1_idx, table);
        Self::l2_touch(st, l1_idx);
        self.l2_evict_to_limit(st);
    }

    fn l2_evict_to_limit(&self, st: &mut MutState) {
        let Some(limit) = st.l2_cache_limit else {
            return;
        };
        while st.l2_cache.len() > limit {
            // Evict the least-recently-used table. Tables are write-through:
            // dropping one loses nothing.
            let Some(victim) = st.l2_ticks.iter().min_by_key(|&(_, &t)| t).map(|(&k, _)| k) else {
                break;
            };
            st.l2_cache.remove(&victim);
            st.l2_ticks.remove(&victim);
            self.obs.count(met::L2_EVICTIONS, 1);
        }
    }

    fn read_l2_table(&self, l2_off: u64) -> Result<Vec<u64>> {
        let mut raw = vec![0u8; self.geom.cluster_size() as usize];
        self.dev.read_at(&mut raw, l2_off)?;
        Ok(raw.chunks_exact(8).map(be_u64).collect())
    }

    /// Look up the container offset of the data cluster holding `vba`.
    /// Returns `None` when unallocated in this layer.
    fn lookup(&self, st: &mut MutState, vba: u64) -> Result<Option<u64>> {
        let l1_idx = self.geom.l1_index(vba);
        let l2_off = st.l1[l1_idx];
        if l2_off == UNALLOCATED {
            return Ok(None);
        }
        if !st.l2_cache.contains_key(&l1_idx) {
            let table = self.read_l2_table(l2_off)?;
            self.l2_cache_put(st, l1_idx, table);
        } else {
            Self::l2_touch(st, l1_idx);
        }
        let l2 = &st.l2_cache[&l1_idx];
        let entry = l2[self.geom.l2_index(vba)];
        Ok((entry != UNALLOCATED).then_some(entry))
    }

    /// Longest physically contiguous mapped extent starting at `vba`.
    ///
    /// Returns `(container_off, run_bytes, clusters)` where `container_off`
    /// already includes the intra-cluster offset of `vba` and `run_bytes <=
    /// max_bytes`. The run extends while consecutive virtual clusters map to
    /// physically consecutive container clusters (scanning cached L2
    /// entries, faulting tables in as needed). `Ok(None)` when `vba`'s own
    /// cluster is unmapped in this layer.
    ///
    /// `stop_at_frozen` excludes snapshot-shared clusters from the run (the
    /// in-place write path must copy those one at a time).
    fn lookup_run(
        &self,
        st: &mut MutState,
        vba: u64,
        max_bytes: u64,
        stop_at_frozen: bool,
    ) -> Result<Option<(u64, u64, u64)>> {
        let Some(first_off) = self.lookup(st, vba)? else {
            return Ok(None);
        };
        if stop_at_frozen && st.frozen.contains(&first_off) {
            return Ok(None);
        }
        let cs = self.geom.cluster_size();
        let in_cluster = self.geom.in_cluster(vba);
        let mut run_bytes = cs - in_cluster;
        let mut clusters = 1u64;
        let mut prev = first_off;
        let mut next_vba = self.geom.cluster_start(vba) + cs;
        while run_bytes < max_bytes && next_vba < self.geom.virtual_size {
            match self.lookup(st, next_vba)? {
                Some(off) if off == prev + cs && !(stop_at_frozen && st.frozen.contains(&off)) => {
                    run_bytes += cs;
                    clusters += 1;
                    prev = off;
                    next_vba += cs;
                }
                _ => break,
            }
        }
        Ok(Some((
            first_off + in_cluster,
            run_bytes.min(max_bytes),
            clusters,
        )))
    }

    /// Record a multi-cluster extent issued as one device op.
    fn note_coalesced(&self, op: &'static str, clusters: u64, bytes: u64) {
        self.obs.count(met::COALESCED_RUNS, 1);
        self.obs.count(met::COALESCED_BYTES, bytes);
        self.obs.emit(|| Event::RunCoalesced {
            op: op.to_string(),
            clusters,
            bytes,
        });
    }

    /// Allocate one cluster at end of file. Honours the cache quota when
    /// `self` is a cache image: this is the §4.3 `write` rule ("If there is
    /// enough space, we write the data … If not, we return with a space
    /// error").
    fn alloc_cluster(&self, st: &mut MutState, extra_needed: u64) -> Result<u64> {
        let cs = self.geom.cluster_size();
        if let Some(c) = &self.header.cache {
            if st.cache_used + cs + extra_needed > c.quota {
                return Err(BlockError::no_space(format!(
                    "cache quota {} exhausted (used {})",
                    c.quota, st.cache_used
                )));
            }
        }
        // Reuse discarded clusters before growing the file.
        let off = match st.free_clusters.pop() {
            Some(off) => off,
            None => {
                let off = st.eof;
                st.eof += cs;
                off
            }
        };
        st.cache_used += cs;
        Ok(off)
    }

    /// Write barrier: durably order every prior container write before any
    /// subsequent one. This is the ONLY place `vmi-qcow` may flush its
    /// container (enforced by the `qcow-barrier` source lint), and it is
    /// what makes every crash prefix recoverable:
    ///
    /// * a data cluster is barriered before the L2 entry that publishes it,
    /// * a new L2 table's contents are barriered before the L1 entry that
    ///   publishes the table,
    /// * everything is barriered before the used-size header write at close.
    ///
    /// So a durable table entry always implies durable referenced data, and
    /// any torn tail is by construction unpublished (repairable by zeroing —
    /// see `recover`). On memory-backed containers `flush` is a no-op, so
    /// the barriers cost nothing in simulation.
    fn barrier(&self) -> Result<()> {
        self.dev.flush() // lint:allow(qcow-barrier)
    }

    /// Ensure an L2 table exists for `vba`; returns (l1_idx, l2_offset).
    fn ensure_l2(&self, st: &mut MutState, vba: u64) -> Result<(usize, u64)> {
        let l1_idx = self.geom.l1_index(vba);
        let existing = st.l1[l1_idx];
        if existing != UNALLOCATED {
            return Ok((l1_idx, existing));
        }
        // Need a data cluster too in the caller; reserve room for both so a
        // cache image doesn't strand a metadata cluster it can't use.
        let l2_off = self.alloc_cluster(st, self.geom.cluster_size())?;
        // Materialize an all-zero L2 table on the container, then point L1
        // at it (write-through).
        let zeros = vec![0u8; self.geom.cluster_size() as usize];
        self.dev.write_at(&zeros, l2_off)?;
        // Table contents durable before L1 publishes the table.
        self.barrier()?;
        self.dev.write_at(
            &l2_off.to_be_bytes(),
            self.header.l1_table_offset + (l1_idx as u64) * 8,
        )?;
        st.l1[l1_idx] = l2_off;
        self.l2_cache_put(
            st,
            l1_idx,
            vec![UNALLOCATED; self.geom.l2_entries() as usize],
        );
        Ok((l1_idx, l2_off))
    }

    /// Allocate up to `want` physically contiguous clusters, honouring the
    /// cache quota. Returns `(start_offset, got)`; `got == 0` means the
    /// quota has no room for even one cluster. Always grows the file —
    /// single clusters from the free list could not be contiguous — so the
    /// scalar path's free-list reuse is the one allocation behaviour the
    /// coalesced path intentionally trades away for contiguity.
    fn alloc_cluster_run(&self, st: &mut MutState, want: u64) -> (u64, u64) {
        let cs = self.geom.cluster_size();
        let got = match &self.header.cache {
            Some(c) => want.min(c.quota.saturating_sub(st.cache_used) / cs),
            None => want,
        };
        let off = st.eof;
        st.eof += got * cs;
        st.cache_used += got * cs;
        (off, got)
    }

    /// Point the L2 entry for `vba` at `data_off` (write-through). If the
    /// L2 table is frozen (shared with a snapshot), it is copied first.
    fn set_l2_entry(
        &self,
        st: &mut MutState,
        l1_idx: usize,
        vba: u64,
        data_off: u64,
    ) -> Result<()> {
        let mut l2_off = st.l1[l1_idx];
        debug_assert_ne!(l2_off, UNALLOCATED, "caller must ensure_l2 first");
        if st.frozen.contains(&l2_off) {
            l2_off = self.cow_l2_table(st, l1_idx, l2_off)?;
        }
        let l2_idx = self.geom.l2_index(vba);
        self.dev
            .write_at(&data_off.to_be_bytes(), l2_off + (l2_idx as u64) * 8)?;
        if let Some(l2) = st.l2_cache.get_mut(&l1_idx) {
            l2[l2_idx] = data_off;
        }
        Ok(())
    }

    /// Point `count` consecutive L2 entries (starting at `first_vba`'s slot)
    /// at physically consecutive data clusters from `data_off`, with one
    /// write-through container write. The caller guarantees the slots lie
    /// within a single L2 table (runs are chunked at table boundaries).
    fn set_l2_entries_run(
        &self,
        st: &mut MutState,
        l1_idx: usize,
        first_vba: u64,
        data_off: u64,
        count: u64,
    ) -> Result<()> {
        let mut l2_off = st.l1[l1_idx];
        debug_assert_ne!(l2_off, UNALLOCATED, "caller must ensure_l2 first");
        if st.frozen.contains(&l2_off) {
            l2_off = self.cow_l2_table(st, l1_idx, l2_off)?;
        }
        let l2_idx = self.geom.l2_index(first_vba);
        debug_assert!(
            l2_idx as u64 + count <= self.geom.l2_entries(),
            "entry run crosses an L2 table boundary"
        );
        let cs = self.geom.cluster_size();
        let mut raw = vec![0u8; count as usize * 8];
        for i in 0..count as usize {
            raw[i * 8..i * 8 + 8].copy_from_slice(&(data_off + i as u64 * cs).to_be_bytes());
        }
        self.dev.write_run_at(&raw, l2_off + (l2_idx as u64) * 8)?;
        if let Some(l2) = st.l2_cache.get_mut(&l1_idx) {
            for i in 0..count as usize {
                l2[l2_idx + i] = data_off + i as u64 * cs;
            }
        }
        Ok(())
    }

    /// Copy a frozen L2 table into a private cluster and point L1 at the
    /// copy. The frozen original stays in place for its snapshot(s).
    fn cow_l2_table(&self, st: &mut MutState, l1_idx: usize, old_off: u64) -> Result<u64> {
        // Materialize the table contents (cache or container).
        let table = match st.l2_cache.get(&l1_idx) {
            Some(t) => t.clone(),
            None => self.read_l2_table(old_off)?,
        };
        let new_off = self.alloc_cluster(st, 0)?;
        let mut raw = vec![0u8; self.geom.cluster_size() as usize];
        for (i, &e) in table.iter().enumerate() {
            raw[i * 8..i * 8 + 8].copy_from_slice(&e.to_be_bytes());
        }
        self.dev.write_at(&raw, new_off)?;
        // Copied table durable before L1 repoints at it.
        self.barrier()?;
        self.dev.write_at(
            &new_off.to_be_bytes(),
            self.header.l1_table_offset + (l1_idx as u64) * 8,
        )?;
        st.l1[l1_idx] = new_off;
        self.l2_cache_put(st, l1_idx, table);
        Ok(new_off)
    }

    // ------------------------------------------------------------------
    // read path (§4.3 `read`)
    // ------------------------------------------------------------------

    /// Read a run `[vba, vba + buf.len())` of *unmapped* clusters.
    ///
    /// Non-cache behaviour: pass the whole run down to the backing chain in
    /// one request (or zero-fill without one). Cache behaviour: fetch the
    /// cluster-aligned span covering the run from the backing chain in a
    /// single request — "small writes to the cache need to fetch more data
    /// from the base image to meet the cluster granularity" (§5.1) — fill
    /// every covered cluster (copy-on-read, Fig. 5), then serve the run.
    /// On a quota space error, fills latch off mid-span (§4.3: "we stop
    /// writing to the cache for the future cold reads") while the guest
    /// still gets its data.
    ///
    /// Batching the fetch keeps the cold cache's request pattern toward the
    /// storage node identical to plain QCOW2's, as the paper observes
    /// (Fig. 11: cold ≈ QCOW2).
    fn read_unmapped_run(
        &self,
        st: &mut MutState,
        buf: &mut [u8],
        vba: u64,
        parent: Option<SpanId>,
    ) -> Result<()> {
        let Some(backing) = &self.backing else {
            buf.fill(0);
            return Ok(());
        };
        let want_fill =
            self.header.is_cache() && !self.read_only && self.fill_enabled() && !self.is_degraded();
        if !want_fill {
            let bsp = self
                .obs
                .span_in(parent, "backing.fetch", || format!("bytes={}", buf.len()));
            backing.read_at_zero_pad_in(buf, vba, bsp.id())?;
            drop(bsp);
            self.miss_bytes
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
            if self.header.is_cache() {
                self.obs.count(met::CACHE_MISS_BYTES, buf.len() as u64);
                self.obs.emit(|| Event::CacheMiss {
                    bytes: buf.len() as u64,
                });
            }
            return Ok(());
        }
        let (span_start, span_end) = self.geom.cluster_span(vba, buf.len() as u64);
        let mut span_buf = vec![0u8; (span_end - span_start) as usize];
        let bsp = self.obs.span_in(parent, "backing.fetch", || {
            format!("bytes={}", span_buf.len())
        });
        backing.read_at_zero_pad_in(&mut span_buf, span_start, bsp.id())?;
        drop(bsp);
        self.miss_bytes
            .fetch_add(span_buf.len() as u64, Ordering::Relaxed);
        self.obs.count(met::CACHE_MISS_BYTES, span_buf.len() as u64);
        self.obs.emit(|| Event::CacheMiss {
            bytes: span_buf.len() as u64,
        });

        let fsp = self
            .obs
            .span_in(parent, "cor.fill", || format!("bytes={}", span_buf.len()));
        if self.coalescing() {
            self.fill_span_coalesced(st, &span_buf, span_start, span_end, fsp.id());
        } else {
            self.fill_span_scalar(st, &span_buf, span_start, span_end, fsp.id());
        }
        drop(fsp);
        self.obs.gauge(met::CACHE_USED_BYTES, st.cache_used);
        let in_span = (vba - span_start) as usize;
        buf.copy_from_slice(&span_buf[in_span..in_span + buf.len()]);
        Ok(())
    }

    /// Scalar copy-on-read fill: one `fill_cluster` (and hence one container
    /// data write plus one 8-byte entry write) per covered cluster.
    fn fill_span_scalar(
        &self,
        st: &mut MutState,
        span_buf: &[u8],
        span_start: u64,
        span_end: u64,
        parent: Option<SpanId>,
    ) {
        let cs = self.geom.cluster_size();
        let mut cluster_vba = span_start;
        while cluster_vba < span_end {
            let chunk_start = (cluster_vba - span_start) as usize;
            let chunk_len = cs.min(span_end - cluster_vba) as usize;
            // The final cluster of an unaligned virtual size is stored
            // zero-padded to full cluster length, like every other cluster.
            let mut tail_pad;
            let chunk: &[u8] = if chunk_len == cs as usize {
                &span_buf[chunk_start..chunk_start + chunk_len]
            } else {
                tail_pad = vec![0u8; cs as usize];
                tail_pad[..chunk_len]
                    .copy_from_slice(&span_buf[chunk_start..chunk_start + chunk_len]);
                &tail_pad
            };
            let dsp = self
                .obs
                .span_in(parent, "dev.fill", || format!("bytes={chunk_len}"));
            let filled = self.fill_cluster(st, cluster_vba, chunk, dsp.id());
            drop(dsp);
            match filled {
                Ok(()) => self.note_filled(chunk_len as u64),
                Err(e) if e.is_no_space() => {
                    self.latch_space_error(st);
                    break;
                }
                Err(_) => {
                    // A failed fill must never fail the guest read: the data
                    // is already in `span_buf`. Latch degraded (stops all
                    // future fills) and serve from what we fetched.
                    self.fill_rejects.fetch_add(1, Ordering::Relaxed);
                    self.latch_degraded(st.cache_used, "fill_failed");
                    break;
                }
            }
            cluster_vba += cs;
        }
    }

    /// Coalesced copy-on-read fill: carve the span into extents bounded by
    /// L2-table coverage, allocate each extent's clusters contiguously at
    /// end-of-file, and land the data with ONE container write plus ONE
    /// batched entry write per extent. Identical byte counters, latch
    /// transitions, and (on a bump-only allocator) container layout to the
    /// scalar path — the per-cluster op overhead of 512-byte clusters
    /// (Fig. 9's read amplification) is what disappears.
    fn fill_span_coalesced(
        &self,
        st: &mut MutState,
        span_buf: &[u8],
        span_start: u64,
        span_end: u64,
        parent: Option<SpanId>,
    ) {
        let cs = self.geom.cluster_size();
        let table_span = cs * self.geom.l2_entries();
        let mut cluster_vba = span_start;
        while cluster_vba < span_end {
            let table_end = (cluster_vba / table_span + 1) * table_span;
            let chunk_end = span_end.min(table_end);
            let want = (chunk_end - cluster_vba).div_ceil(cs);
            let l1_idx = match self.ensure_l2(st, cluster_vba) {
                Ok((l1_idx, _)) => l1_idx,
                Err(e) if e.is_no_space() => {
                    self.latch_space_error(st);
                    break;
                }
                Err(_) => {
                    self.fill_rejects.fetch_add(1, Ordering::Relaxed);
                    self.latch_degraded(st.cache_used, "fill_failed");
                    break;
                }
            };
            let (data_off, got) = self.alloc_cluster_run(st, want);
            if got == 0 {
                self.latch_space_error(st);
                break;
            }
            // Bytes of backing data landing in the extent; the write itself
            // is zero-padded to whole clusters like the scalar path.
            let chunk_start = (cluster_vba - span_start) as usize;
            let avail = ((span_end - cluster_vba) as usize).min((got * cs) as usize);
            let dsp = self.obs.span_in(parent, "dev.fill", || {
                format!("bytes={avail} clusters={got}")
            });
            let write_res = if avail == (got * cs) as usize {
                self.dev.write_run_at_in(
                    &span_buf[chunk_start..chunk_start + avail],
                    data_off,
                    dsp.id(),
                )
            } else {
                let mut padded = vec![0u8; (got * cs) as usize];
                padded[..avail].copy_from_slice(&span_buf[chunk_start..chunk_start + avail]);
                self.dev.write_run_at_in(&padded, data_off, dsp.id())
            };
            drop(dsp);
            let res = write_res.and_then(|()| {
                // Extent data durable before the batched entries publish it.
                self.barrier()?;
                if got == 1 {
                    self.set_l2_entry(st, l1_idx, cluster_vba, data_off)
                } else {
                    self.set_l2_entries_run(st, l1_idx, cluster_vba, data_off, got)
                }
            });
            match res {
                Ok(()) => {
                    self.note_filled(avail as u64);
                    if got >= 2 {
                        self.note_coalesced("fill", got, avail as u64);
                    }
                }
                Err(_) => {
                    self.fill_rejects.fetch_add(1, Ordering::Relaxed);
                    self.latch_degraded(st.cache_used, "fill_failed");
                    break;
                }
            }
            if got < want {
                // The quota truncated the extent: same terminal state as the
                // scalar path rejecting the next cluster's allocation.
                self.latch_space_error(st);
                break;
            }
            cluster_vba += got * cs;
        }
    }

    /// Account one successful fill of `bytes` backing bytes.
    fn note_filled(&self, bytes: u64) {
        self.fill_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.obs.count(met::COR_FILL_BYTES, bytes);
        self.obs.emit(|| Event::CorFill { bytes });
    }

    /// Reject a fill for lack of quota and latch fills off (§4.3: "we stop
    /// writing to the cache for the future cold reads").
    fn latch_space_error(&self, st: &MutState) {
        self.fill_rejects.fetch_add(1, Ordering::Relaxed);
        // swap: emit the latch transition exactly once even if racing
        // readers hit the quota wall together.
        if self.fill_enabled.swap(false, Ordering::Release) {
            self.obs.count(met::SPACE_ERRORS, 1);
            let used = st.cache_used;
            let quota = self.header.cache.map(|c| c.quota).unwrap_or(0);
            self.obs.emit(|| Event::SpaceErrorLatched { used, quota });
        }
    }

    /// Write one full cluster of backing data into this cache layer.
    fn fill_cluster(
        &self,
        st: &mut MutState,
        cluster_vba: u64,
        data: &[u8],
        parent: Option<SpanId>,
    ) -> Result<()> {
        let (l1_idx, _l2_off) = self.ensure_l2(st, cluster_vba)?;
        let data_off = self.alloc_cluster(st, 0)?;
        self.dev.write_at_in(data, data_off, parent)?;
        // Data durable before the L2 entry publishes it.
        self.barrier()?;
        self.set_l2_entry(st, l1_idx, cluster_vba, data_off)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // write path (guest writes; CoW)
    // ------------------------------------------------------------------

    fn write_segment(
        &self,
        st: &mut MutState,
        data: &[u8],
        vba: u64,
        parent: Option<SpanId>,
    ) -> Result<()> {
        if let Some(off) = self.lookup(st, vba)? {
            if !st.frozen.contains(&off) {
                let in_cluster = self.geom.in_cluster(vba);
                let dsp = self
                    .obs
                    .span_in(parent, "dev.write", || format!("bytes={}", data.len()));
                return self.dev.write_at_in(data, off + in_cluster, dsp.id());
            }
            // Shared with a snapshot: copy the cluster, merge, remap.
            let cs = self.geom.cluster_size() as usize;
            let cluster_vba = self.geom.cluster_start(vba);
            let mut cluster_buf = vec![0u8; cs];
            self.dev.read_at(&mut cluster_buf, off)?;
            let in_cluster = (vba - cluster_vba) as usize;
            cluster_buf[in_cluster..in_cluster + data.len()].copy_from_slice(data);
            let l1_idx = self.geom.l1_index(vba);
            let new_off = self.alloc_cluster(st, 0)?;
            let dsp = self
                .obs
                .span_in(parent, "dev.write", || format!("bytes={cs} cow=frozen"));
            self.dev.write_at_in(&cluster_buf, new_off, dsp.id())?;
            drop(dsp);
            // Merged copy durable before the L2 entry remaps to it.
            self.barrier()?;
            self.set_l2_entry(st, l1_idx, vba, new_off)?;
            return Ok(());
        }
        // Unallocated: classic copy-on-write. Bring in the full cluster from
        // the backing chain (zeroes without one), merge, write.
        let cs = self.geom.cluster_size() as usize;
        let cluster_vba = self.geom.cluster_start(vba);
        let mut cluster_buf = vec![0u8; cs];
        let whole_cluster = data.len() == cs;
        if !whole_cluster {
            if let Some(backing) = &self.backing {
                let bsp = self
                    .obs
                    .span_in(parent, "backing.fetch", || format!("bytes={cs}"));
                backing.read_at_zero_pad_in(&mut cluster_buf, cluster_vba, bsp.id())?;
                drop(bsp);
                self.miss_bytes.fetch_add(cs as u64, Ordering::Relaxed);
            }
        }
        let in_cluster = (vba - cluster_vba) as usize;
        cluster_buf[in_cluster..in_cluster + data.len()].copy_from_slice(data);
        let (l1_idx, _l2_off) = self.ensure_l2(st, cluster_vba)?;
        let data_off = self.alloc_cluster(st, 0)?;
        let dsp = self
            .obs
            .span_in(parent, "dev.write", || format!("bytes={cs} cow=unmapped"));
        self.dev.write_at_in(&cluster_buf, data_off, dsp.id())?;
        drop(dsp);
        // CoW data durable before the L2 entry publishes it.
        self.barrier()?;
        self.set_l2_entry(st, l1_idx, cluster_vba, data_off)?;
        Ok(())
    }

    /// Extent-coalesced guest write. Three extent kinds, longest-first:
    ///
    /// * mapped, unfrozen, physically contiguous — one in-place
    ///   `write_run_at` covering the whole extent (byte-granular; may start
    ///   and end mid-cluster);
    /// * unmapped, cluster-aligned, whole clusters — contiguous allocation,
    ///   one data write, one batched entry write (no backing merge needed);
    /// * everything else (frozen clusters, partial edge clusters) — the
    ///   scalar [`QcowImage::write_segment`], one cluster at a time.
    ///
    /// Errors mid-request leave the same partially-applied state the scalar
    /// loop would: clusters before the failure are written, the rest are
    /// not, and the error propagates.
    fn write_at_coalesced(
        &self,
        st: &mut MutState,
        buf: &[u8],
        off: u64,
        parent: Option<SpanId>,
    ) -> Result<()> {
        let cs = self.geom.cluster_size();
        let table_span = cs * self.geom.l2_entries();
        let end = off + buf.len() as u64;
        let mut pos = off;
        while pos < end {
            let remaining = end - pos;
            let lsp = self.obs.span_in(parent, "l2.lookup", String::new);
            let run = self.lookup_run(st, pos, remaining, true)?;
            drop(lsp);
            if let Some((data_off, run_bytes, clusters)) = run {
                let data = &buf[(pos - off) as usize..][..run_bytes as usize];
                let dsp = self.obs.span_in(parent, "dev.write", || {
                    format!("bytes={run_bytes} clusters={clusters}")
                });
                if clusters >= 2 {
                    self.dev.write_run_at_in(data, data_off, dsp.id())?;
                    drop(dsp);
                    self.note_coalesced("write", clusters, run_bytes);
                } else {
                    self.dev.write_at_in(data, data_off, dsp.id())?;
                    drop(dsp);
                }
                pos += run_bytes;
                continue;
            }
            let in_cluster = self.geom.in_cluster(pos);
            if self.lookup(st, pos)?.is_some() || in_cluster != 0 || remaining < cs {
                // Frozen cluster (mapped but excluded from the run above) or
                // a partial cluster: scalar copy-on-write merge.
                let n = (cs - in_cluster).min(remaining);
                let data = &buf[(pos - off) as usize..][..n as usize];
                self.write_segment(st, data, pos, parent)?;
                pos += n;
                continue;
            }
            // Unmapped, aligned, at least one whole cluster: count how many
            // consecutive unmapped whole clusters fit under one L2 table.
            let table_end = (pos / table_span + 1) * table_span;
            let max_clusters = (remaining / cs).min((table_end - pos) / cs);
            let mut k = 1u64;
            while k < max_clusters && self.lookup(st, pos + k * cs)?.is_none() {
                k += 1;
            }
            if k == 1 {
                // Single cluster: keep the scalar path (free-list reuse).
                let data = &buf[(pos - off) as usize..][..cs as usize];
                self.write_segment(st, data, pos, parent)?;
                pos += cs;
                continue;
            }
            let (l1_idx, _l2_off) = self.ensure_l2(st, pos)?;
            let (data_off, got) = self.alloc_cluster_run(st, k);
            if got == 0 {
                return Err(BlockError::no_space(format!(
                    "cache quota {} exhausted (used {})",
                    self.header.cache.map(|c| c.quota).unwrap_or(0),
                    st.cache_used
                )));
            }
            let data = &buf[(pos - off) as usize..][..(got * cs) as usize];
            self.dev.write_run_at(data, data_off)?;
            // Run data durable before the batched entries publish it.
            self.barrier()?;
            if got == 1 {
                self.set_l2_entry(st, l1_idx, pos, data_off)?;
            } else {
                self.set_l2_entries_run(st, l1_idx, pos, data_off, got)?;
                self.note_coalesced("write", got, got * cs);
            }
            // got < k: the next loop iteration re-attempts the shortfall and
            // surfaces the quota error exactly where the scalar loop would.
            pos += got * cs;
        }
        Ok(())
    }
}

impl QcowImage {
    /// This image's position in a chain, for trace/diagnostic labels.
    fn layer_kind(&self) -> &'static str {
        if self.is_cache() {
            "cache"
        } else if self.backing.is_some() {
            "cow"
        } else {
            "base"
        }
    }

    /// [`BlockDev::read_at`] body, parented under `parent` when tracing.
    ///
    /// Opens one `qcow.read` span per request; each L2 walk and each device
    /// serve gets its own child span, and unmapped runs descend into
    /// `backing.fetch`/`cor.fill` via [`Self::read_unmapped_run`].
    fn read_at_traced(&self, buf: &mut [u8], off: u64, parent: Option<SpanId>) -> Result<()> {
        let end = off + buf.len() as u64;
        if end > self.geom.virtual_size {
            return Err(BlockError::out_of_bounds(
                off,
                buf.len(),
                self.geom.virtual_size,
            ));
        }
        let total = buf.len();
        let root = self.obs.span_in(parent, "qcow.read", || {
            format!("layer={} bytes={total}", self.layer_kind())
        });
        let me = root.id();
        let cs = self.geom.cluster_size();
        let coalesce = self.coalescing();
        let mut st = self.state.lock();
        let mut pos = off;
        while pos < end {
            // Scalar mode clamps every mapped extent to a single cluster, so
            // both modes share one serve path below.
            let lsp = self.obs.span_in(me, "l2.lookup", String::new);
            let mapped = if coalesce {
                self.lookup_run(&mut st, pos, end - pos, false)?
            } else {
                self.lookup(&mut st, pos)?.map(|cluster_off| {
                    let in_cluster = self.geom.in_cluster(pos);
                    (
                        cluster_off + in_cluster,
                        (cs - in_cluster).min(end - pos),
                        1,
                    )
                })
            };
            drop(lsp);
            match mapped {
                Some((data_off, run_bytes, clusters)) => {
                    // Serve the whole physically contiguous extent locally,
                    // in one device op.
                    let n = run_bytes as usize;
                    let out = &mut buf[(pos - off) as usize..][..n];
                    let dsp = self
                        .obs
                        .span_in(me, "dev.read", || format!("bytes={n} clusters={clusters}"));
                    let served = if clusters >= 2 {
                        self.dev.read_run_at_in(out, data_off, dsp.id())
                    } else {
                        self.dev.read_at_in(out, data_off, dsp.id())
                    };
                    drop(dsp);
                    match served {
                        Ok(()) => {
                            self.hit_bytes.fetch_add(n as u64, Ordering::Relaxed);
                            if self.header.is_cache() {
                                self.obs.count(met::CACHE_HIT_BYTES, n as u64);
                                self.obs.emit(|| Event::CacheHit { bytes: n as u64 });
                            }
                            if clusters >= 2 {
                                self.note_coalesced("read", clusters, n as u64);
                            }
                        }
                        Err(e) => {
                            // A cache that cannot read its own cluster is not
                            // fatal as long as the backing chain still has the
                            // block: every cached cluster is a copy of backing
                            // data (CoW images have no backing copy to lean
                            // on, so they must propagate).
                            let backing = match (self.header.is_cache(), &self.backing) {
                                (true, Some(b)) => b,
                                _ => return Err(e),
                            };
                            backing.read_at_zero_pad_in(out, pos, me)?;
                            self.latch_degraded(st.cache_used, "read_failed");
                            self.degraded_read_bytes
                                .fetch_add(n as u64, Ordering::Relaxed);
                            self.obs.count(met::DEGRADED_READ_BYTES, n as u64);
                        }
                    }
                    pos += n as u64;
                }
                None => {
                    // Extend across every consecutive unmapped cluster so
                    // the backing chain sees one batched request.
                    let mut run_end = (self.geom.cluster_start(pos) + cs).min(end);
                    while run_end < end && self.lookup(&mut st, run_end)?.is_none() {
                        run_end = (run_end + cs).min(end);
                    }
                    let out = &mut buf[(pos - off) as usize..(run_end - off) as usize];
                    self.read_unmapped_run(&mut st, out, pos, me)?;
                    pos = run_end;
                }
            }
        }
        Ok(())
    }

    /// [`BlockDev::write_at`] body, parented under `parent` when tracing.
    fn write_at_traced(&self, buf: &[u8], off: u64, parent: Option<SpanId>) -> Result<()> {
        if self.read_only {
            return Err(BlockError::read_only("write to read-only image"));
        }
        if off + buf.len() as u64 > self.geom.virtual_size {
            return Err(BlockError::out_of_bounds(
                off,
                buf.len(),
                self.geom.virtual_size,
            ));
        }
        let total = buf.len();
        let root = self.obs.span_in(parent, "qcow.write", || {
            format!("layer={} bytes={total}", self.layer_kind())
        });
        let me = root.id();
        let mut st = self.state.lock();
        if self.coalescing() {
            self.write_at_coalesced(&mut st, buf, off, me)?;
        } else {
            let mut done = 0usize;
            for seg in self.geom.segments(off, buf.len()) {
                self.write_segment(&mut st, &buf[done..done + seg.len], seg.vba, me)?;
                done += seg.len;
            }
        }
        self.paranoid_audit(&st, "write_at");
        Ok(())
    }
}

impl BlockDev for QcowImage {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.read_at_traced(buf, off, None)
    }

    fn write_at(&self, buf: &[u8], off: u64) -> Result<()> {
        self.write_at_traced(buf, off, None)
    }

    fn read_at_in(&self, buf: &mut [u8], off: u64, parent: Option<SpanId>) -> Result<()> {
        self.read_at_traced(buf, off, parent)
    }

    fn write_at_in(&self, buf: &[u8], off: u64, parent: Option<SpanId>) -> Result<()> {
        self.write_at_traced(buf, off, parent)
    }

    fn len(&self) -> u64 {
        self.geom.virtual_size
    }

    fn set_len(&self, _len: u64) -> Result<()> {
        Err(BlockError::unsupported("images have a fixed virtual size"))
    }

    fn flush(&self) -> Result<()> {
        if self.read_only {
            return Ok(());
        }
        // A guest flush is exactly a barrier on the container.
        self.barrier()
    }

    fn describe(&self) -> String {
        format!("qcow[{}]({})", self.layer_kind(), self.dev.describe())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl Drop for QcowImage {
    fn drop(&mut self) {
        // Best-effort close: persist the cache's used size (§4.3) — unless
        // this handle was superseded by resize/rebase.
        if !self.detached.load(Ordering::Acquire) {
            let _ = self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmi_blockdev::MemDev;

    fn mem() -> SharedDev {
        Arc::new(MemDev::new())
    }

    const MB: u64 = 1 << 20;

    #[test]
    fn create_open_roundtrip() {
        let dev = mem();
        {
            let img = QcowImage::create(dev.clone(), CreateOpts::plain(64 * MB), None).unwrap();
            img.write_at(b"hello qcow", 12345).unwrap();
            img.close().unwrap();
        }
        let img = QcowImage::open(dev, None, false).unwrap();
        let mut buf = [0u8; 10];
        img.read_at(&mut buf, 12345).unwrap();
        assert_eq!(&buf, b"hello qcow");
    }

    #[test]
    fn unwritten_regions_read_zero() {
        let img = QcowImage::create(mem(), CreateOpts::plain(4 * MB), None).unwrap();
        let mut buf = [7u8; 64];
        img.read_at(&mut buf, MB).unwrap();
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn cow_reads_fall_through_to_backing() {
        let base_dev = mem();
        let base = QcowImage::create(base_dev.clone(), CreateOpts::plain(4 * MB), None).unwrap();
        base.write_at(b"base data", 1000).unwrap();
        let cow = QcowImage::create(
            mem(),
            CreateOpts::cow(4 * MB, "base"),
            Some(base.clone() as SharedDev),
        )
        .unwrap();
        let mut buf = [0u8; 9];
        cow.read_at(&mut buf, 1000).unwrap();
        assert_eq!(&buf, b"base data");
        // Write to the CoW layer shadows the base without touching it.
        cow.write_at(b"overlay!!", 1000).unwrap();
        cow.read_at(&mut buf, 1000).unwrap();
        assert_eq!(&buf, b"overlay!!");
        base.read_at(&mut buf, 1000).unwrap();
        assert_eq!(&buf, b"base data");
    }

    #[test]
    fn cow_partial_cluster_write_merges_backing() {
        let base = QcowImage::create(mem(), CreateOpts::plain(4 * MB), None).unwrap();
        base.write_at(&[0xAA; 65536], 0).unwrap(); // a full base cluster
        let cow = QcowImage::create(mem(), CreateOpts::cow(4 * MB, "b"), Some(base as SharedDev))
            .unwrap();
        cow.write_at(&[0xBB; 16], 100).unwrap();
        let mut buf = [0u8; 200];
        cow.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf[..100], &[0xAA; 100]);
        assert_eq!(&buf[100..116], &[0xBB; 16]);
        assert_eq!(&buf[116..], &[0xAA; 84]);
    }

    #[test]
    fn read_past_virtual_size_errors() {
        let img = QcowImage::create(mem(), CreateOpts::plain(MB), None).unwrap();
        let mut buf = [0u8; 16];
        assert!(img.read_at(&mut buf, MB - 8).is_err());
        assert!(img.write_at(&buf, MB - 8).is_err());
    }

    #[test]
    fn cold_read_span_tree_is_balanced_and_causal() {
        let clock = Arc::new(vmi_obs::ManualClock::new(0));
        let sink = vmi_obs::JsonlSink::new();
        let obs = Obs::new(clock, sink.clone());
        let base = QcowImage::create_with_obs(mem(), CreateOpts::plain(4 * MB), None, obs.clone())
            .unwrap();
        base.write_at(&[0x5A; 4096], 8192).unwrap();
        let cache = QcowImage::create_with_obs(
            mem(),
            CreateOpts::cache(4 * MB, "base", 2 * MB),
            Some(base.clone() as SharedDev),
            obs.clone(),
        )
        .unwrap();
        let mut buf = [0u8; 4096];
        cache.read_at(&mut buf, 8192).unwrap();
        assert_eq!(buf, [0x5A; 4096]);

        // Single-threaded flow: spans must close strictly LIFO, and every
        // parent must still be open when its child starts.
        let mut stack: Vec<u64> = Vec::new();
        let mut starts = std::collections::HashMap::new();
        for (_, ev) in sink.events() {
            match ev {
                Event::SpanStart {
                    id,
                    parent,
                    kind,
                    detail,
                } => {
                    assert!(
                        parent == 0 || stack.contains(&parent),
                        "parent {parent} of {kind} not open"
                    );
                    stack.push(id);
                    starts.insert(id, (kind, detail, parent));
                }
                Event::SpanEnd { id } => {
                    assert_eq!(stack.pop(), Some(id), "span end out of order");
                }
                _ => {}
            }
        }
        assert!(stack.is_empty(), "unbalanced spans: {stack:?}");
        let kind_of = |id: u64| starts.get(&id).map(|(k, _, _)| k.as_str()).unwrap_or("");
        let mut base_read_under_fetch = false;
        let mut fill_under_read = false;
        for (kind, detail, parent) in starts.values() {
            if kind == "qcow.read" && detail.contains("layer=base") {
                assert_eq!(kind_of(*parent), "backing.fetch");
                base_read_under_fetch = true;
            }
            if kind == "cor.fill" {
                assert_eq!(kind_of(*parent), "qcow.read");
                fill_under_read = true;
            }
        }
        assert!(
            base_read_under_fetch,
            "base layer read must descend from backing.fetch"
        );
        assert!(
            fill_under_read,
            "copy-on-read fill must descend from qcow.read"
        );
    }

    #[test]
    fn cache_image_fills_on_cold_read() {
        let base = QcowImage::create(mem(), CreateOpts::plain(4 * MB), None).unwrap();
        base.write_at(&[0x5A; 4096], 8192).unwrap();
        let cache = QcowImage::create(
            mem(),
            CreateOpts::cache(4 * MB, "base", 2 * MB),
            Some(base.clone() as SharedDev),
        )
        .unwrap();
        assert!(cache.is_cache());
        let mut buf = [0u8; 4096];
        cache.read_at(&mut buf, 8192).unwrap();
        assert_eq!(buf, [0x5A; 4096]);
        let s1 = cache.cor_stats();
        assert!(s1.miss_bytes >= 4096);
        assert!(s1.fill_bytes >= 4096);
        // Second read is warm: no more misses.
        cache.read_at(&mut buf, 8192).unwrap();
        let s2 = cache.cor_stats();
        assert_eq!(s2.miss_bytes, s1.miss_bytes);
        assert_eq!(s2.hit_bytes, s1.hit_bytes + 4096);
    }

    #[test]
    fn cache_quota_latches_fill_off_but_keeps_serving() {
        let vsize = 4 * MB;
        let base = QcowImage::create(mem(), CreateOpts::plain(vsize), None).unwrap();
        for i in 0..64u64 {
            base.write_at(&[i as u8 + 1; 512], i * 512).unwrap();
        }
        // Tiny quota: initial metadata (512 B header cluster + L1) plus a
        // couple of clusters.
        let cache_opts = CreateOpts::cache(vsize, "base", 0); // compute below
        let g = Geometry::new(cache_opts.cluster_bits, vsize).unwrap();
        let quota = g.cluster_size() + g.l1_table_bytes() + 5 * g.cluster_size();
        let cache = QcowImage::create(
            mem(),
            CreateOpts::cache(vsize, "base", quota),
            Some(base.clone() as SharedDev),
        )
        .unwrap();
        let mut buf = [0u8; 512];
        let mut served = 0;
        for i in 0..64u64 {
            cache.read_at(&mut buf, i * 512).unwrap();
            assert_eq!(buf, [i as u8 + 1; 512], "guest data correct past quota");
            served += 1;
        }
        assert_eq!(served, 64);
        assert!(!cache.fill_enabled(), "fills must latch off");
        assert!(cache.cor_stats().fill_rejects >= 1);
        assert!(cache.cache_used() <= quota, "quota never exceeded");
    }

    #[test]
    fn cache_used_persists_on_close() {
        let base = QcowImage::create(mem(), CreateOpts::plain(4 * MB), None).unwrap();
        base.write_at(&[1; 8192], 0).unwrap();
        let cache_dev = mem();
        let used;
        {
            let cache = QcowImage::create(
                cache_dev.clone(),
                CreateOpts::cache(4 * MB, "base", 2 * MB),
                Some(base.clone() as SharedDev),
            )
            .unwrap();
            let mut buf = [0u8; 8192];
            cache.read_at(&mut buf, 0).unwrap();
            used = cache.cache_used();
            cache.close().unwrap();
        }
        let reopened = QcowImage::open(cache_dev, Some(base as SharedDev), false).unwrap();
        assert_eq!(reopened.cache_used(), used);
        assert_eq!(reopened.header().cache.unwrap().used, used);
        // Warm read — no misses.
        let mut buf = [0u8; 8192];
        reopened.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [1; 8192]);
        assert_eq!(reopened.cor_stats().miss_bytes, 0);
    }

    #[test]
    fn read_only_image_does_not_fill() {
        let base = QcowImage::create(mem(), CreateOpts::plain(4 * MB), None).unwrap();
        base.write_at(&[9; 1024], 0).unwrap();
        let cache_dev = mem();
        {
            let c = QcowImage::create(
                cache_dev.clone(),
                CreateOpts::cache(4 * MB, "base", 2 * MB),
                Some(base.clone() as SharedDev),
            )
            .unwrap();
            c.close().unwrap();
        }
        let cache = QcowImage::open(cache_dev.clone(), Some(base as SharedDev), true).unwrap();
        let before = cache_dev.len();
        let mut buf = [0u8; 1024];
        cache.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [9; 1024]);
        assert_eq!(cache_dev.len(), before, "read-only cache must not grow");
        assert_eq!(cache.cor_stats().fill_bytes, 0);
        assert!(cache.write_at(&[0; 16], 0).is_err());
    }

    #[test]
    fn three_layer_chain_reads_through() {
        // Base <- Cache <- CoW, the paper's Fig. 4 arrangement.
        let base = QcowImage::create(mem(), CreateOpts::plain(4 * MB), None).unwrap();
        base.write_at(&[3; 2048], 4096).unwrap();
        let cache = QcowImage::create(
            mem(),
            CreateOpts::cache(4 * MB, "base", 2 * MB),
            Some(base.clone() as SharedDev),
        )
        .unwrap();
        let cow = QcowImage::create(
            mem(),
            CreateOpts::cow(4 * MB, "cache"),
            Some(cache.clone() as SharedDev),
        )
        .unwrap();
        let mut buf = [0u8; 2048];
        cow.read_at(&mut buf, 4096).unwrap();
        assert_eq!(buf, [3; 2048]);
        // Guest writes land in the CoW layer only; cache remains immutable
        // w.r.t. guest data.
        cow.write_at(&[7; 2048], 4096).unwrap();
        let mut check = [0u8; 2048];
        cache.read_at(&mut check, 4096).unwrap();
        assert_eq!(check, [3; 2048], "cache must not see guest writes");
        cow.read_at(&mut check, 4096).unwrap();
        assert_eq!(check, [7; 2048]);
    }

    #[test]
    fn small_cluster_cache_fills_less_than_default() {
        // Fig. 9's mechanism: a 4 KiB guest read through a 64 KiB-cluster
        // cache fetches 64 KiB from the base; through a 512 B-cluster cache
        // it fetches only 4 KiB.
        let mk = |bits: u32| {
            let base = QcowImage::create(mem(), CreateOpts::plain(16 * MB), None).unwrap();
            base.write_at(&[1; 4096], 1 << 20).unwrap();
            let cache = QcowImage::create(
                mem(),
                CreateOpts::cache(16 * MB, "b", 8 * MB).with_cluster_bits(bits),
                Some(base as SharedDev),
            )
            .unwrap();
            let mut buf = [0u8; 4096];
            cache.read_at(&mut buf, 1 << 20).unwrap();
            cache.cor_stats().miss_bytes
        };
        let big = mk(16);
        let small = mk(9);
        assert_eq!(big, 65536);
        assert_eq!(small, 4096);
    }

    #[test]
    fn quota_smaller_than_metadata_serves_but_never_fills() {
        let base = QcowImage::create(mem(), CreateOpts::plain(64 * MB), None).unwrap();
        base.write_at(&[4; 1024], 0).unwrap();
        let cache = QcowImage::create(
            mem(),
            CreateOpts::cache(64 * MB, "b", 1024),
            Some(base as SharedDev),
        )
        .unwrap();
        let mut buf = [0u8; 1024];
        cache.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [4; 1024], "reads still pass through");
        assert!(!cache.fill_enabled(), "first fill attempt latches off");
        assert_eq!(cache.cor_stats().fill_bytes, 0);
    }

    #[test]
    fn backing_mismatch_rejected() {
        let dev = mem();
        QcowImage::create(dev.clone(), CreateOpts::plain(MB), None)
            .unwrap()
            .close()
            .unwrap();
        // Supplying a backing device for a standalone image is an error.
        let other = QcowImage::create(mem(), CreateOpts::plain(MB), None).unwrap();
        assert!(QcowImage::open(dev, Some(other as SharedDev), false).is_err());
    }

    #[test]
    fn zero_length_ops_are_noops() {
        let img = QcowImage::create(mem(), CreateOpts::plain(MB), None).unwrap();
        let mut buf = [0u8; 0];
        img.read_at(&mut buf, 0).unwrap();
        img.write_at(&buf, 0).unwrap();
        img.read_at(&mut buf, MB).unwrap(); // at the boundary, len 0: fine
        assert_eq!(img.mapped_bytes(), 0);
    }

    #[test]
    fn external_write_to_cache_respects_quota() {
        // §4.3's write path on a cache image used directly (not via CoR).
        let base = QcowImage::create(mem(), CreateOpts::plain(4 * MB), None).unwrap();
        let g = Geometry::new(9, 4 * MB).unwrap();
        let quota = g.cluster_size() + g.l1_table_bytes() + 10 * 512;
        let cache = QcowImage::create(
            mem(),
            CreateOpts::cache(4 * MB, "b", quota),
            Some(base as SharedDev),
        )
        .unwrap();
        // Writes land until the quota refuses with the space error.
        let mut wrote = 0;
        let err = loop {
            match cache.write_at(&[1; 512], wrote * 512) {
                Ok(()) => wrote += 1,
                Err(e) => break e,
            }
            assert!(wrote < 100, "quota must trip");
        };
        assert!(err.is_no_space());
        assert!(wrote >= 1);
        assert!(cache.cache_used() <= quota);
    }

    #[test]
    fn read_spanning_mapped_and_unmapped_clusters() {
        // One request that begins in a warm cluster and ends in a cold one.
        let base = QcowImage::create(mem(), CreateOpts::plain(4 * MB), None).unwrap();
        base.write_at(&[0xAB; 8192], 0).unwrap();
        let cache = QcowImage::create(
            mem(),
            CreateOpts::cache(4 * MB, "b", 2 * MB),
            Some(base as SharedDev),
        )
        .unwrap();
        let mut buf = [0u8; 512];
        cache.read_at(&mut buf, 0).unwrap(); // warm exactly cluster 0
        let mut big = [0u8; 4096];
        cache.read_at(&mut big, 0).unwrap(); // spans warm + cold
        assert_eq!(big, [0xAB; 4096]);
        let s = cache.cor_stats();
        assert!(
            s.hit_bytes >= 512,
            "first cluster of the big read served warm"
        );
        // The cold tail was fetched without re-fetching the warm cluster.
        assert_eq!(
            s.miss_bytes,
            512 + (4096 - 512),
            "span excludes the mapped cluster"
        );
    }

    #[test]
    fn file_size_tracks_growth() {
        let base = QcowImage::create(mem(), CreateOpts::plain(16 * MB), None).unwrap();
        base.write_at(&[1; 1 << 20], 0).unwrap();
        let cache = QcowImage::create(
            mem(),
            CreateOpts::cache(16 * MB, "b", 8 * MB),
            Some(base as SharedDev),
        )
        .unwrap();
        let before = cache.file_size();
        let mut buf = vec![0u8; 1 << 20];
        cache.read_at(&mut buf, 0).unwrap();
        let after = cache.file_size();
        assert!(
            after >= before + (1 << 20),
            "fills must grow the container file"
        );
        // Used size accounting matches the file tail (bump allocator).
        assert_eq!(cache.cache_used(), after);
    }

    #[test]
    fn lookup_run_spans_contiguous_fills() {
        let base = QcowImage::create(mem(), CreateOpts::plain(4 * MB), None).unwrap();
        base.write_at(&[3u8; 64 << 10], 0).unwrap();
        let cache = QcowImage::create(
            mem(),
            CreateOpts::cache(4 * MB, "b", 2 * MB),
            Some(base as SharedDev),
        )
        .unwrap();
        let cs = cache.geom.cluster_size();
        let mut buf = vec![0u8; 16 * cs as usize];
        cache.read_at(&mut buf, 0).unwrap(); // coalesced fill: contiguous clusters
        let mut st = cache.state.lock();
        let (_, run_bytes, clusters) = cache
            .lookup_run(&mut st, 0, 16 * cs, false)
            .unwrap()
            .expect("filled clusters are mapped");
        assert_eq!(run_bytes, 16 * cs, "fill landed physically contiguous");
        assert_eq!(clusters, 16);
        // A mid-cluster start still resolves, clamped to the request.
        let (off_mid, mid_bytes, _) = cache
            .lookup_run(&mut st, cs / 2, cs, false)
            .unwrap()
            .unwrap();
        assert_eq!(mid_bytes, cs);
        let (off_start, _, _) = cache.lookup_run(&mut st, 0, cs, false).unwrap().unwrap();
        assert_eq!(off_mid, off_start + cs / 2);
    }

    #[test]
    fn coalesced_and_scalar_caches_are_bit_identical() {
        // Same workload against two caches over identical bases, one with
        // coalescing disabled: guest data, CoR counters, and the entire
        // container byte-for-byte must agree (fresh images allocate with the
        // same bump sequence in both modes).
        let mut content = vec![0u8; 2 * MB as usize];
        for (i, b) in content.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let run = |coalesce: bool| -> (Vec<u8>, Vec<u8>, CorStats, u64) {
            let base = QcowImage::create(mem(), CreateOpts::plain(4 * MB), None).unwrap();
            base.write_at(&content, 0).unwrap();
            let cache_mem = Arc::new(MemDev::new());
            let cache = QcowImage::create(
                cache_mem.clone() as SharedDev,
                CreateOpts::cache(4 * MB, "b", 3 * MB),
                Some(base as SharedDev),
            )
            .unwrap();
            cache.set_coalescing(coalesce);
            let mut out = vec![0u8; MB as usize];
            cache.read_at(&mut out, 4096).unwrap(); // cold: fills
            let mut warm = vec![0u8; MB as usize];
            cache.read_at(&mut warm, 4096).unwrap(); // warm: run reads
            assert_eq!(out, warm);
            let mut tail = vec![0u8; 8192];
            cache.read_at(&mut tail, 2 * MB - 4096).unwrap(); // cold + zero tail
            out.extend_from_slice(&tail);
            let stats = cache.cor_stats();
            let used = cache.cache_used();
            cache.close().unwrap();
            (out, cache_mem.to_vec(), stats, used)
        };
        let (data_c, raw_c, stats_c, used_c) = run(true);
        let (data_s, raw_s, stats_s, used_s) = run(false);
        assert_eq!(data_c, data_s, "guest data identical");
        assert_eq!(stats_c, stats_s, "CoR byte counters identical");
        assert_eq!(used_c, used_s, "quota accounting identical");
        assert_eq!(raw_c, raw_s, "container bytes identical");
    }

    #[test]
    fn l2_cache_is_bounded_by_default() {
        let img = QcowImage::create(mem(), CreateOpts::plain(64 * MB), None).unwrap();
        let expect =
            ((DEFAULT_L2_CACHE_BYTES / img.geom.cluster_size()) as usize).max(MIN_L2_CACHE_TABLES);
        assert_eq!(img.l2_cache_limit(), Some(expect));
        // 512 B clusters: the same byte budget holds many more (small) tables.
        let small = QcowImage::create(
            mem(),
            CreateOpts::plain(4 * MB).with_cluster_bits(crate::layout::MIN_CLUSTER_BITS),
            None,
        )
        .unwrap();
        assert_eq!(
            small.l2_cache_limit(),
            Some((DEFAULT_L2_CACHE_BYTES / small.geom.cluster_size()) as usize)
        );
        // Unbounded remains opt-in.
        small.set_l2_cache_limit(None);
        assert_eq!(small.l2_cache_limit(), None);
    }

    #[test]
    fn l2_eviction_is_counted() {
        let clock = Arc::new(vmi_obs::ManualClock::new(0));
        let obs = Obs::new(clock, Arc::new(vmi_obs::NullRecorder));
        let img = QcowImage::create_with_obs(
            mem(),
            CreateOpts::plain(16 * MB).with_cluster_bits(crate::layout::MIN_CLUSTER_BITS),
            None,
            obs.clone(),
        )
        .unwrap();
        img.set_l2_cache_limit(Some(2));
        let table_span = img.geom.cluster_size() * img.geom.l2_entries();
        for i in 0..4u64 {
            img.write_at(&[1u8; 16], i * table_span).unwrap();
        }
        assert!(img.l2_cache_len() <= 2, "limit enforced");
        assert!(
            obs.counter_value(met::L2_EVICTIONS) >= 2,
            "evictions surface in metrics"
        );
    }
}
