//! Property tests for the simulation substrate: conservation laws and
//! ordering invariants that every resource model must uphold.

use proptest::prelude::*;
use vmi_sim::{CacheOutcome, Disk, DiskSpec, EventQueue, Link, NetSpec, PageCache};

fn arb_disk_spec() -> impl Strategy<Value = DiskSpec> {
    (
        1_000_000u64..1_000_000_000,
        0u64..20_000_000,
        0u64..10_000_000,
        0u64..(1 << 30),
        0u64..(1 << 21),
    )
        .prop_map(|(bw, seek, short, window, adj)| DiskSpec {
            seq_bw_bps: bw,
            seek_ns: seek.max(short),
            short_seek_ns: short,
            short_seek_window: window,
            per_op_ns: 50_000,
            adjacency_window: adj,
        })
}

proptest! {
    /// Disk completions never go backwards and never precede submission;
    /// busy time is conserved.
    #[test]
    fn disk_completions_monotone(
        spec in arb_disk_spec(),
        ops in proptest::collection::vec((0u64..(1 << 34), 512u64..(1 << 20), any::<bool>()), 1..100),
    ) {
        let mut d = Disk::new(spec);
        let mut last_done = 0u64;
        let mut now = 0u64;
        for &(off, bytes, w) in &ops {
            let done = d.access(now, off, bytes, w);
            prop_assert!(done >= now, "completion before submission");
            prop_assert!(done >= last_done, "FIFO order violated");
            last_done = done;
            now += 1000; // arrivals move forward
        }
        let s = d.stats();
        prop_assert_eq!(s.read_ops + s.write_ops, ops.len() as u64);
        prop_assert!(s.busy_ns <= last_done, "busy time cannot exceed makespan");
    }

    /// Link: the pipe is conserved — total occupancy equals busy time and
    /// deliveries are FIFO.
    #[test]
    fn link_fifo_and_conservation(
        bw in 1_000_000u64..1_000_000_000,
        sizes in proptest::collection::vec(1u64..(1 << 22), 1..100),
    ) {
        let mut l = Link::new(NetSpec { bw_bps: bw, latency_ns: 10_000, per_msg_ns: 500, discipline: Default::default() });
        let mut last = 0;
        for (i, &s) in sizes.iter().enumerate() {
            let done = l.transfer(i as u64, s);
            prop_assert!(done >= last);
            last = done;
        }
        let st = l.stats();
        prop_assert_eq!(st.messages, sizes.len() as u64);
        prop_assert_eq!(st.bytes, sizes.iter().sum::<u64>());
    }

    /// Event queue: output is time-sorted with FIFO tie-breaking.
    #[test]
    fn event_queue_sorted_stable(times in proptest::collection::vec(0u64..1000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut prev: Option<(u64, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((pt, pid)) = prev {
                prop_assert!(t > pt || (t == pt && id > pid), "unstable: {pt},{pid} then {t},{id}");
            }
            prev = Some((t, id));
        }
    }

    /// Page cache: capacity is respected (modulo pinned entries) and a hit
    /// is always preceded by an insert of the same key.
    #[test]
    fn page_cache_capacity_and_hits(
        keys in proptest::collection::vec((0u64..4, 0u64..64), 1..400),
        cap_pages in 1u64..32,
    ) {
        let mut pc = PageCache::new(cap_pages * 4096, 4096);
        let mut inserted = std::collections::HashSet::new();
        for (i, &(f, p)) in keys.iter().enumerate() {
            match pc.probe((f, p), i as u64) {
                CacheOutcome::Hit { .. } => {
                    prop_assert!(inserted.contains(&(f, p)), "hit without insert");
                }
                CacheOutcome::Miss => {
                    pc.insert((f, p), i as u64);
                    inserted.insert((f, p));
                }
            }
            prop_assert!(pc.resident_pages() as u64 <= cap_pages, "capacity exceeded");
        }
    }

    /// Determinism: replaying the same access sequence gives the identical
    /// timeline.
    #[test]
    fn disk_replay_is_deterministic(
        spec in arb_disk_spec(),
        ops in proptest::collection::vec((0u64..(1 << 30), 512u64..(1 << 18)), 1..60),
    ) {
        let run = || {
            let mut d = Disk::new(spec);
            ops.iter().map(|&(off, b)| d.access(0, off, b, false)).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
