//! Deterministic event queue: a binary heap with stable FIFO tie-breaking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Ns;

/// A time-ordered queue of events. Events at equal times pop in insertion
/// order, making simulations bit-for-bit reproducible.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(Ns, u64, WrappedPayload<T>)>>,
    seq: u64,
}

/// Payload wrapper that never participates in ordering (the (time, seq)
/// prefix is always unique).
#[derive(Debug)]
struct WrappedPayload<T>(T);

impl<T> PartialEq for WrappedPayload<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for WrappedPayload<T> {}
impl<T> PartialOrd for WrappedPayload<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for WrappedPayload<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` at time `at`.
    pub fn push(&mut self, at: Ns, payload: T) {
        self.seq += 1;
        self.heap
            .push(Reverse((at, self.seq, WrappedPayload(payload))));
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Ns, T)> {
        self.heap.pop().map(|Reverse((at, _, p))| (at, p.0))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Ns> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(42, ());
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
