//! Network link model: a shared bandwidth pipe with propagation latency.
//!
//! The storage node's NIC is the shared resource behind Fig. 2's linear
//! slowdown on 1 GbE: once aggregate demand exceeds link capacity, transfer
//! completion times grow with the number of concurrent booters. Latency is
//! propagation only and does not occupy the pipe.
//!
//! Two queueing disciplines are provided. [`LinkDiscipline::Fifo`] (the
//! default) serializes messages in arrival order — exact conservation, mild
//! unfairness at message granularity. [`LinkDiscipline::FairShare`]
//! approximates processor sharing: a message's service time is stretched by
//! the number of transfers in flight at its arrival. The model-sensitivity
//! ablation (`abl-discipline`) shows the paper's conclusions hold under
//! either assumption.

use serde::{Deserialize, Serialize};

use crate::time::{transfer_ns, Ns};

/// Queueing discipline of a shared link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LinkDiscipline {
    /// Messages occupy the pipe one at a time, in arrival order.
    #[default]
    Fifo,
    /// Approximate processor sharing: concurrent transfers stretch each
    /// other proportionally to the in-flight count.
    FairShare,
}

/// Link performance parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Usable bandwidth in bytes/second (after protocol overhead).
    pub bw_bps: u64,
    /// One-way propagation + stack latency per message.
    pub latency_ns: Ns,
    /// Fixed per-message processing cost that *does* occupy the pipe
    /// (interrupts, RPC handling at the server).
    pub per_msg_ns: Ns,
    /// Queueing discipline.
    pub discipline: LinkDiscipline,
}

impl NetSpec {
    /// The same link under the other discipline (model-sensitivity runs).
    pub fn with_discipline(mut self, discipline: LinkDiscipline) -> Self {
        self.discipline = discipline;
        self
    }
}

impl NetSpec {
    /// Commodity 1 Gb/s Ethernet: ~90 MB/s effective for NFS-style traffic
    /// (protocol + small-RPC overhead), ~120 µs RPC latency.
    pub fn gbe_1() -> Self {
        Self {
            bw_bps: 90_000_000,
            latency_ns: 120_000,
            per_msg_ns: 15_000,
            discipline: LinkDiscipline::Fifo,
        }
    }

    /// QDR 4× InfiniBand (32 Gb/s signalling): ~3.2 GB/s effective over
    /// IPoIB, ~25 µs latency.
    pub fn ib_32g() -> Self {
        Self {
            bw_bps: 3_200_000_000,
            latency_ns: 25_000,
            per_msg_ns: 4_000,
            discipline: LinkDiscipline::Fifo,
        }
    }

    /// A top-of-rack switch port as seen by one rack's compute nodes:
    /// 25 GbE-class, ~3 GB/s effective, short intra-rack latency. Used for
    /// the rack tier and compute-to-compute peer fetch of the hierarchical
    /// topologies (DESIGN.md §16).
    pub fn tor_25g() -> Self {
        Self {
            bw_bps: 3_000_000_000,
            latency_ns: 5_000,
            per_msg_ns: 1_000,
            discipline: LinkDiscipline::Fifo,
        }
    }

    /// A zone aggregation uplink: 100 GbE-class shared by a zone's racks,
    /// ~12 GB/s effective.
    pub fn agg_100g() -> Self {
        Self {
            bw_bps: 12_000_000_000,
            latency_ns: 10_000,
            per_msg_ns: 2_000,
            discipline: LinkDiscipline::Fifo,
        }
    }

    /// An effectively unconstrained hop (used to flatten tiers out of a
    /// topology without special-casing the fill path): huge bandwidth,
    /// minimal — but nonzero — latency so the conservative scheduler's
    /// lookahead stays positive.
    pub fn passthrough() -> Self {
        Self {
            bw_bps: u64::MAX / 4,
            latency_ns: 1_000,
            per_msg_ns: 0,
            discipline: LinkDiscipline::Fifo,
        }
    }

    /// Human-readable label used in figure output.
    pub fn label(&self) -> &'static str {
        if self.bw_bps >= 1_000_000_000 {
            "32GbIB"
        } else {
            "1GbE"
        }
    }
}

/// Transfer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages carried.
    pub messages: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Time the pipe was occupied.
    pub busy_ns: Ns,
}

/// A shared link.
#[derive(Debug, Clone)]
pub struct Link {
    spec: NetSpec,
    next_free: Ns,
    /// Completion times of in-flight transfers (FairShare only).
    in_flight: Vec<Ns>,
    stats: LinkStats,
}

impl Link {
    /// A new idle link.
    pub fn new(spec: NetSpec) -> Self {
        Self {
            spec,
            next_free: 0,
            in_flight: Vec::new(),
            stats: LinkStats::default(),
        }
    }

    /// Submit a `bytes`-sized message at `now`; returns its delivery time.
    pub fn transfer(&mut self, now: Ns, bytes: u64) -> Ns {
        let service = self.spec.per_msg_ns + transfer_ns(bytes, self.spec.bw_bps);
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        match self.spec.discipline {
            LinkDiscipline::Fifo => {
                let start = self.next_free.max(now);
                self.next_free = start + service;
                self.stats.busy_ns += service;
                // Delivery = pipe exit + propagation.
                self.next_free + self.spec.latency_ns
            }
            LinkDiscipline::FairShare => {
                // Approximate processor sharing: service stretches by the
                // number of transfers still in flight at arrival.
                self.in_flight.retain(|&done| done > now);
                let k = (self.in_flight.len() + 1) as u64;
                let stretched = service * k;
                let done = now + stretched;
                self.in_flight.push(done);
                self.stats.busy_ns += service;
                done + self.spec.latency_ns
            }
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// The spec this link was built with.
    pub fn spec(&self) -> NetSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SEC;

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let mut l = Link::new(NetSpec {
            bw_bps: 100_000_000,
            latency_ns: 0,
            per_msg_ns: 0,
            discipline: Default::default(),
        });
        let done = l.transfer(0, 100_000_000);
        assert_eq!(done, SEC);
    }

    #[test]
    fn latency_added_after_pipe_exit() {
        let mut l = Link::new(NetSpec {
            bw_bps: 1_000_000_000,
            latency_ns: 100_000,
            per_msg_ns: 0,
            discipline: Default::default(),
        });
        let done = l.transfer(0, 1000);
        assert_eq!(done, 1_000 + 100_000);
    }

    #[test]
    fn fifo_contention_serializes_pipe_occupancy() {
        let mut l = Link::new(NetSpec {
            bw_bps: 100_000_000,
            latency_ns: 50_000,
            per_msg_ns: 0,
            discipline: Default::default(),
        });
        let a = l.transfer(0, 50_000_000); // 0.5 s pipe
        let b = l.transfer(0, 50_000_000);
        assert_eq!(a, SEC / 2 + 50_000);
        assert_eq!(
            b,
            SEC + 50_000,
            "second message waits for the pipe, latency once"
        );
    }

    #[test]
    fn presets_sane() {
        assert_eq!(NetSpec::gbe_1().label(), "1GbE");
        assert_eq!(NetSpec::ib_32g().label(), "32GbIB");
        assert!(NetSpec::ib_32g().bw_bps > 20 * NetSpec::gbe_1().bw_bps);
    }

    #[test]
    fn fair_share_stretches_under_concurrency() {
        let spec = NetSpec {
            bw_bps: 100_000_000,
            latency_ns: 0,
            per_msg_ns: 0,
            discipline: LinkDiscipline::FairShare,
        };
        let mut l = Link::new(spec);
        // A lone transfer runs at full speed.
        let solo = l.transfer(0, 10_000_000); // 0.1 s
        assert_eq!(solo, 100_000_000);
        // Two overlapping transfers each take ~2× as long.
        let mut l = Link::new(spec);
        let a = l.transfer(0, 10_000_000);
        let b = l.transfer(0, 10_000_000);
        assert_eq!(a, 100_000_000, "first arrival sees an empty pipe");
        assert_eq!(b, 200_000_000, "second arrival shares with the first");
    }

    #[test]
    fn fair_share_recovers_when_idle() {
        let spec = NetSpec {
            bw_bps: 100_000_000,
            latency_ns: 0,
            per_msg_ns: 0,
            discipline: LinkDiscipline::FairShare,
        };
        let mut l = Link::new(spec);
        l.transfer(0, 10_000_000); // done at 0.1 s
                                   // A transfer arriving after the first completes is unstretched.
        let t = l.transfer(200_000_000, 10_000_000);
        assert_eq!(t, 300_000_000);
    }

    #[test]
    fn disciplines_agree_on_aggregate_throughput() {
        // Saturating either pipe with the same demand drains in comparable
        // total time — the paper's orderings don't hinge on the discipline.
        let mk = |d| NetSpec {
            bw_bps: 100_000_000,
            latency_ns: 0,
            per_msg_ns: 0,
            discipline: d,
        };
        let mut fifo = Link::new(mk(LinkDiscipline::Fifo));
        let mut fair = Link::new(mk(LinkDiscipline::FairShare));
        let mut last_fifo = 0;
        let mut last_fair = 0;
        for _ in 0..64 {
            last_fifo = last_fifo.max(fifo.transfer(0, 10_000_000));
            last_fair = last_fair.max(fair.transfer(0, 10_000_000));
        }
        let ratio = last_fair as f64 / last_fifo as f64;
        assert!((0.5..2.0).contains(&ratio), "makespans comparable: {ratio}");
    }

    #[test]
    fn stats_accumulate() {
        let mut l = Link::new(NetSpec::gbe_1());
        l.transfer(0, 1000);
        l.transfer(0, 2000);
        assert_eq!(l.stats().messages, 2);
        assert_eq!(l.stats().bytes, 3000);
    }
}
