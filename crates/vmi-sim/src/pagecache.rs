//! Storage-node page cache: LRU over `(file, page)` with readiness times.
//!
//! This models the OS page cache on the storage node's 24 GB of RAM — the
//! reason single-VMI boots scale flat on InfiniBand (Fig. 2): the first
//! requester pulls each block off the disk, every later requester hits
//! memory. It also backs the `tmpfs` placement of VMI caches in storage
//! memory (§3.3, Fig. 13): pinned entries never age out.
//!
//! Each cached page carries a `ready_at` time: a hit on a page that is
//! still being faulted in waits for the in-flight disk read.

use std::collections::HashMap;

use crate::time::Ns;

/// Cache lookup outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Page present; data available at `ready_at` (≤ now for settled pages).
    Hit {
        /// When the page's content is available.
        ready_at: Ns,
    },
    /// Page absent; caller must fetch from disk and then [`PageCache::insert`].
    Miss,
}

/// Key: (file identifier, page index within file).
pub type PageKey = (u64, u64);

#[derive(Debug, Clone)]
struct Entry {
    ready_at: Ns,
    tick: u64,
    pinned: bool,
}

/// An LRU page cache with byte capacity.
#[derive(Debug, Clone)]
pub struct PageCache {
    page_size: u64,
    capacity_pages: usize,
    map: HashMap<PageKey, Entry>,
    /// LRU order: tick → key (ticks are unique).
    order: std::collections::BTreeMap<u64, PageKey>,
    next_tick: u64,
    hits: u64,
    misses: u64,
    pinned_pages: usize,
}

impl PageCache {
    /// A cache of `capacity_bytes` with pages of `page_size` bytes.
    pub fn new(capacity_bytes: u64, page_size: u64) -> Self {
        assert!(page_size.is_power_of_two());
        Self {
            page_size,
            capacity_pages: (capacity_bytes / page_size) as usize,
            map: HashMap::new(),
            order: std::collections::BTreeMap::new(),
            next_tick: 0,
            hits: 0,
            misses: 0,
            pinned_pages: 0,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Page index containing byte `off`.
    pub fn page_of(&self, off: u64) -> u64 {
        off / self.page_size
    }

    /// Probe the cache at simulated time `now`, updating recency on hit.
    pub fn probe(&mut self, key: PageKey, _now: Ns) -> CacheOutcome {
        self.next_tick += 1;
        let tick = self.next_tick;
        match self.map.get_mut(&key) {
            Some(e) => {
                self.hits += 1;
                let old = e.tick;
                e.tick = tick;
                let ready = e.ready_at;
                self.order.remove(&old);
                self.order.insert(tick, key);
                CacheOutcome::Hit { ready_at: ready }
            }
            None => {
                self.misses += 1;
                CacheOutcome::Miss
            }
        }
    }

    /// Non-mutating presence check: no recency update, no hit/miss stats.
    /// Used by prefetchers deciding what still needs fetching.
    pub fn contains(&self, key: PageKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Insert a page whose content becomes available at `ready_at`
    /// (the disk fetch's completion time), evicting LRU pages as needed.
    pub fn insert(&mut self, key: PageKey, ready_at: Ns) {
        self.insert_inner(key, ready_at, false)
    }

    /// Insert a *pinned* page (tmpfs-resident cache images): never evicted.
    pub fn insert_pinned(&mut self, key: PageKey, ready_at: Ns) {
        self.insert_inner(key, ready_at, true)
    }

    fn insert_inner(&mut self, key: PageKey, ready_at: Ns, pinned: bool) {
        self.next_tick += 1;
        let tick = self.next_tick;
        if let Some(old) = self.map.insert(
            key,
            Entry {
                ready_at,
                tick,
                pinned,
            },
        ) {
            self.order.remove(&old.tick);
            if old.pinned {
                self.pinned_pages -= 1;
            }
        }
        self.order.insert(tick, key);
        if pinned {
            self.pinned_pages += 1;
        }
        // Evict unpinned LRU pages past capacity.
        while self.map.len() > self.capacity_pages {
            let Some((&t, &k)) = self.order.iter().next() else {
                break;
            };
            // Skip pinned entries by refreshing them to the back.
            if self.map[&k].pinned {
                self.order.remove(&t);
                self.next_tick += 1;
                let nt = self.next_tick;
                self.order.insert(nt, k);
                if let Some(e) = self.map.get_mut(&k) {
                    e.tick = nt;
                }
                // If everything left is pinned, stop evicting.
                if self.pinned_pages >= self.map.len() {
                    break;
                }
                continue;
            }
            self.order.remove(&t);
            self.map.remove(&k);
        }
    }

    /// Drop every page of file `file_id` (file deleted / replaced).
    pub fn invalidate_file(&mut self, file_id: u64) {
        let keys: Vec<PageKey> = self
            .map
            .keys()
            .filter(|(f, _)| *f == file_id)
            .copied()
            .collect();
        for k in keys {
            if let Some(e) = self.map.remove(&k) {
                self.order.remove(&e.tick);
                if e.pinned {
                    self.pinned_pages -= 1;
                }
            }
        }
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc(cap_pages: u64) -> PageCache {
        PageCache::new(cap_pages * 4096, 4096)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = pc(16);
        assert_eq!(c.probe((1, 0), 0), CacheOutcome::Miss);
        c.insert((1, 0), 500);
        assert_eq!(c.probe((1, 0), 600), CacheOutcome::Hit { ready_at: 500 });
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = pc(2);
        c.insert((1, 0), 0);
        c.insert((1, 1), 0);
        // Touch page 0 so page 1 is LRU.
        c.probe((1, 0), 0);
        c.insert((1, 2), 0); // evicts (1,1)
        assert_eq!(c.probe((1, 1), 0), CacheOutcome::Miss);
        assert!(matches!(c.probe((1, 0), 0), CacheOutcome::Hit { .. }));
        assert!(matches!(c.probe((1, 2), 0), CacheOutcome::Hit { .. }));
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let mut c = pc(2);
        c.insert_pinned((9, 0), 0);
        for i in 0..10 {
            c.insert((1, i), 0);
        }
        assert!(matches!(c.probe((9, 0), 0), CacheOutcome::Hit { .. }));
        assert!(c.resident_pages() <= 3, "capacity roughly respected");
    }

    #[test]
    fn invalidate_file_clears_only_that_file() {
        let mut c = pc(16);
        c.insert((1, 0), 0);
        c.insert((2, 0), 0);
        c.invalidate_file(1);
        assert_eq!(c.probe((1, 0), 0), CacheOutcome::Miss);
        assert!(matches!(c.probe((2, 0), 0), CacheOutcome::Hit { .. }));
    }

    #[test]
    fn reinsert_updates_ready_time() {
        let mut c = pc(4);
        c.insert((1, 0), 100);
        c.insert((1, 0), 900);
        assert_eq!(c.probe((1, 0), 1000), CacheOutcome::Hit { ready_at: 900 });
        assert_eq!(c.resident_pages(), 1);
    }

    #[test]
    fn all_pinned_does_not_livelock() {
        let mut c = pc(1);
        c.insert_pinned((1, 0), 0);
        c.insert_pinned((1, 1), 0);
        c.insert_pinned((1, 2), 0);
        // Over capacity but all pinned: nothing evictable, all present.
        assert_eq!(c.resident_pages(), 3);
    }

    #[test]
    fn page_of_math() {
        let c = pc(4);
        assert_eq!(c.page_of(0), 0);
        assert_eq!(c.page_of(4095), 0);
        assert_eq!(c.page_of(4096), 1);
    }
}
