//! Rotational-disk model with seek penalties and FIFO queueing.
//!
//! This is the substrate behind the paper's storage-node bottleneck: "the
//! read requests coming from different VMs are mostly random in nature and
//! rotational disks do not handle this well" (§3.3), producing the linear
//! boot-time growth with the number of VMIs (Fig. 3, §2.2: "disk queueing
//! delay at the storage node").
//!
//! The model is a single FIFO server: each access pays a seek penalty when
//! it is not sequential with the previously serviced request, plus a
//! per-operation overhead, plus transfer time at the sequential bandwidth.
//! RAID-0 striping is folded into the spec's bandwidth/seek numbers.

use serde::{Deserialize, Serialize};

use crate::time::{transfer_ns, Ns};

/// Performance parameters of a disk (or RAID array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Sequential bandwidth, bytes/second.
    pub seq_bw_bps: u64,
    /// Full seek + rotational latency for a long-distance access.
    pub seek_ns: Ns,
    /// Short-stroke seek cost for jumps within [`DiskSpec::short_seek_window`]
    /// (head movement inside one file's extent).
    pub short_seek_ns: Ns,
    /// Jumps at or below this distance pay the short seek instead of the
    /// full one.
    pub short_seek_window: u64,
    /// Fixed per-request overhead (controller, kernel path), paid on
    /// non-adjacent accesses.
    pub per_op_ns: Ns,
    /// Accesses within this many bytes of the previous request's end are
    /// considered sequential (track buffer / readahead window).
    pub adjacency_window: u64,
}

impl DiskSpec {
    /// The DAS-4 storage node: two 7200-RPM SATA disks in software RAID-0.
    /// Striping doubles streaming bandwidth; long seeks stay disk-bound but
    /// the pair services them mostly in parallel, halving the effective cost
    /// under interleaved streams.
    pub fn das4_storage_raid0() -> Self {
        Self {
            seq_bw_bps: 220_000_000,
            seek_ns: 4_000_000,
            short_seek_ns: 1_500_000,
            short_seek_window: 1 << 30,
            per_op_ns: 100_000,
            adjacency_window: 1 << 20,
        }
    }

    /// A single compute-node SATA disk.
    pub fn das4_compute_disk() -> Self {
        Self {
            seq_bw_bps: 110_000_000,
            seek_ns: 8_500_000,
            short_seek_ns: 2_000_000,
            short_seek_window: 1 << 30,
            per_op_ns: 150_000,
            adjacency_window: 1 << 20,
        }
    }
}

/// Counters exposed after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Read operations serviced.
    pub read_ops: u64,
    /// Write operations serviced.
    pub write_ops: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Operations that paid the seek penalty.
    pub seeks: u64,
    /// Total time the server was busy.
    pub busy_ns: Ns,
}

/// A FIFO disk server.
#[derive(Debug, Clone)]
pub struct Disk {
    spec: DiskSpec,
    /// Completion time of the last queued request.
    next_free: Ns,
    /// Device offset right after the last serviced request.
    head_pos: u64,
    stats: DiskStats,
}

impl Disk {
    /// A new idle disk.
    pub fn new(spec: DiskSpec) -> Self {
        Self {
            spec,
            next_free: 0,
            head_pos: 0,
            stats: DiskStats::default(),
        }
    }

    /// Submit an access at simulated time `now`; returns its completion
    /// time. Requests are serviced strictly in submission order.
    pub fn access(&mut self, now: Ns, offset: u64, bytes: u64, is_write: bool) -> Ns {
        let start = self.next_free.max(now);
        let gap = offset.abs_diff(self.head_pos);
        // Adjacent accesses ride the track buffer / readahead: transfer time
        // only. Non-adjacent ones pay a (short or full) seek plus
        // per-request overhead.
        let mut service = transfer_ns(bytes, self.spec.seq_bw_bps);
        if gap > self.spec.adjacency_window {
            let seek = if gap <= self.spec.short_seek_window {
                self.spec.short_seek_ns
            } else {
                self.spec.seek_ns
            };
            service += seek + self.spec.per_op_ns;
            self.stats.seeks += 1;
        }
        let done = start + service;
        self.next_free = done;
        self.head_pos = offset + bytes;
        self.stats.busy_ns += service;
        if is_write {
            self.stats.write_ops += 1;
            self.stats.write_bytes += bytes;
        } else {
            self.stats.read_ops += 1;
            self.stats.read_bytes += bytes;
        }
        done
    }

    /// Earliest time a new request could start service.
    pub fn next_free(&self) -> Ns {
        self.next_free
    }

    /// Counters so far.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// The spec this disk was built with.
    pub fn spec(&self) -> DiskSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MSEC, SEC};

    fn fast_spec() -> DiskSpec {
        DiskSpec {
            seq_bw_bps: 100_000_000,
            seek_ns: 5 * MSEC,
            short_seek_ns: 5 * MSEC,
            short_seek_window: 0,
            per_op_ns: 0,
            adjacency_window: 4096,
        }
    }

    #[test]
    fn sequential_stream_avoids_seeks() {
        let mut d = Disk::new(fast_spec());
        let mut t = 0;
        for i in 0..10u64 {
            t = d.access(t, i * 65536, 65536, false);
        }
        // First access seeks (head at 0, request at 0 → gap 0, no seek).
        assert_eq!(d.stats().seeks, 0);
        // 10 × 64 KiB at 100 MB/s ≈ 6.55 ms.
        assert!((t as i64 - 6_553_600).abs() < 1000, "{t}");
    }

    #[test]
    fn random_stream_pays_seeks() {
        let mut d = Disk::new(fast_spec());
        let mut t = 0;
        for i in 0..10u64 {
            t = d.access(t, (10 - i) * (100 << 20), 4096, false);
        }
        assert_eq!(d.stats().seeks, 10);
        assert!(t >= 50 * MSEC);
    }

    #[test]
    fn fifo_queueing_delays_later_arrivals() {
        let mut d = Disk::new(fast_spec());
        // Two requests arrive at t=0; the second waits for the first.
        let a = d.access(0, 0, 50_000_000, false); // 0.5 s transfer
        let b = d.access(0, 50_000_000, 50_000_000, false);
        assert_eq!(a, SEC / 2);
        assert_eq!(b, SEC);
    }

    #[test]
    fn idle_gap_resets_start_time() {
        let mut d = Disk::new(fast_spec());
        d.access(0, 0, 1000, false);
        let done = d.access(10 * SEC, 1000, 1000, false);
        assert!(
            done >= 10 * SEC,
            "request cannot complete before submission"
        );
    }

    #[test]
    fn stats_track_both_directions() {
        let mut d = Disk::new(fast_spec());
        d.access(0, 0, 100, false);
        d.access(0, 100, 200, true);
        let s = d.stats();
        assert_eq!(s.read_ops, 1);
        assert_eq!(s.write_ops, 1);
        assert_eq!(s.read_bytes, 100);
        assert_eq!(s.write_bytes, 200);
        assert!(s.busy_ns > 0);
    }

    #[test]
    fn das4_specs_have_sane_magnitudes() {
        let st = DiskSpec::das4_storage_raid0();
        // Random 64 KiB reads: ~ (seek + transfer) → ~128 reads/s → ~8 MB/s.
        let per_read = st.seek_ns + st.per_op_ns + transfer_ns(65536, st.seq_bw_bps);
        let mbps = 65536.0 * (SEC as f64 / per_read as f64) / 1e6;
        assert!(
            (5.0..20.0).contains(&mbps),
            "random-read throughput {mbps} MB/s"
        );
    }
}
