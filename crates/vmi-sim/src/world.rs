//! The simulation world: a registry of shared resources plus the
//! *operation clock* that prices one guest I/O as it flows through real
//! image-format code.
//!
//! ## How real I/O gets priced
//!
//! The experiments replay real boot traces through real `vmi-qcow` chains.
//! Data moves synchronously through in-memory devices; *time* is charged on
//! the side: before a guest op is executed, the driver calls
//! [`SimWorld::begin_op`] with the VM's current simulated time; every
//! simulated medium the op touches (NFS mount, local disk, memory) advances
//! the op clock through [`SimWorld::charge_disk`] /
//! [`SimWorld::charge_link`] / [`SimWorld::charge_mem`]; afterwards
//! [`SimWorld::end_op`] yields the op's completion time. Because the event
//! loop executes ops in global simulated-time order, shared-resource
//! queueing (disk FIFO, NIC pipe) and page-cache warmth are observed in the
//! right order across VMs.

use parking_lot::Mutex;
use std::sync::Arc;

use crate::disk::{Disk, DiskSpec, DiskStats};
use crate::net::{Link, LinkStats, NetSpec};
use crate::pagecache::{CacheOutcome, PageCache};
use crate::time::{transfer_ns, Ns};

/// Handle to a registered disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiskId(usize);

/// Handle to a registered network link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(usize);

/// Handle to a registered page cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheId(usize);

/// Memory bandwidth used for tmpfs / page-cache copies (bytes/s).
pub const MEM_BW_BPS: u64 = 8_000_000_000;

#[derive(Debug, Default)]
struct WorldInner {
    disks: Vec<Disk>,
    links: Vec<Link>,
    caches: Vec<PageCache>,
    /// Current op clock (valid between begin_op/end_op).
    op_now: Ns,
    /// Detects misuse of the op clock.
    op_active: bool,
}

/// Shared, internally synchronized simulation world.
///
/// Clone the `Arc` freely; one world is single-experiment scoped and its
/// methods are called from a single driving thread at a time (the mutex
/// makes cross-thread handoff safe, not concurrent pricing meaningful).
#[derive(Debug, Clone)]
pub struct SimWorld {
    inner: Arc<Mutex<WorldInner>>,
}

impl Default for SimWorld {
    fn default() -> Self {
        let inner = Arc::new(Mutex::new(WorldInner::default()));
        inner.set_rank(parking_lot::lockrank::SIM_WORLD);
        Self { inner }
    }
}

impl SimWorld {
    /// An empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a disk.
    pub fn add_disk(&self, spec: DiskSpec) -> DiskId {
        let mut w = self.inner.lock();
        w.disks.push(Disk::new(spec));
        DiskId(w.disks.len() - 1)
    }

    /// Register a link.
    pub fn add_link(&self, spec: NetSpec) -> LinkId {
        let mut w = self.inner.lock();
        w.links.push(Link::new(spec));
        LinkId(w.links.len() - 1)
    }

    /// Register a page cache.
    pub fn add_cache(&self, capacity_bytes: u64, page_size: u64) -> CacheId {
        let mut w = self.inner.lock();
        w.caches.push(PageCache::new(capacity_bytes, page_size));
        CacheId(w.caches.len() - 1)
    }

    // ------------------------------------------------------------------
    // op clock
    // ------------------------------------------------------------------

    /// Start pricing one guest operation issued at `now`.
    pub fn begin_op(&self, now: Ns) {
        let mut w = self.inner.lock();
        debug_assert!(!w.op_active, "nested begin_op");
        w.op_now = now;
        w.op_active = true;
    }

    /// Finish pricing; returns the operation's completion time.
    pub fn end_op(&self) -> Ns {
        let mut w = self.inner.lock();
        debug_assert!(w.op_active, "end_op without begin_op");
        w.op_active = false;
        w.op_now
    }

    /// Current value of the op clock (between begin/end).
    pub fn op_now(&self) -> Ns {
        self.inner.lock().op_now
    }

    /// An [`vmi_obs::Clock`] view of this world's op clock, for stamping
    /// observability events with simulated time.
    pub fn obs_clock(&self) -> std::sync::Arc<dyn vmi_obs::Clock> {
        std::sync::Arc::new(self.clone())
    }

    /// Run `f` inside a `begin_op(now)`/`end_op()` window, so any
    /// observability events it emits (span starts/ends, counters) are
    /// stamped with simulated time `now` rather than whatever the op clock
    /// last held. For bookkeeping that happens *outside* a priced operation —
    /// e.g. closing a boot-level span at its completion event.
    pub fn with_time<T>(&self, now: Ns, f: impl FnOnce() -> T) -> T {
        self.begin_op(now);
        let out = f();
        self.end_op();
        out
    }

    /// Charge a disk access on the op clock.
    pub fn charge_disk(&self, id: DiskId, offset: u64, bytes: u64, is_write: bool) {
        let mut w = self.inner.lock();
        let now = w.op_now;
        let done = w.disks[id.0].access(now, offset, bytes, is_write);
        w.op_now = done;
    }

    /// Charge a network message on the op clock.
    pub fn charge_link(&self, id: LinkId, bytes: u64) {
        let mut w = self.inner.lock();
        let now = w.op_now;
        let done = w.links[id.0].transfer(now, bytes);
        w.op_now = done;
    }

    /// Charge an uncontended memory copy on the op clock.
    pub fn charge_mem(&self, bytes: u64) {
        let mut w = self.inner.lock();
        w.op_now += transfer_ns(bytes, MEM_BW_BPS);
    }

    /// Advance the op clock to at least `t` (waiting on an in-flight page).
    pub fn wait_until(&self, t: Ns) {
        let mut w = self.inner.lock();
        if w.op_now < t {
            w.op_now = t;
        }
    }

    /// Probe page cache `id` for `(file, page)` at the op clock; on hit the
    /// op clock waits for the page's readiness.
    pub fn cache_probe(&self, id: CacheId, file: u64, page: u64) -> CacheOutcome {
        let mut w = self.inner.lock();
        let now = w.op_now;
        let out = w.caches[id.0].probe((file, page), now);
        if let CacheOutcome::Hit { ready_at } = out {
            if w.op_now < ready_at {
                w.op_now = ready_at;
            }
        }
        out
    }

    /// Non-blocking presence check on cache `id` (no LRU/stat side effects,
    /// never advances the op clock).
    pub fn cache_contains(&self, id: CacheId, file: u64, page: u64) -> bool {
        self.inner.lock().caches[id.0].contains((file, page))
    }

    /// Insert into page cache `id` a page that becomes ready at `ready_at`.
    pub fn cache_insert(&self, id: CacheId, file: u64, page: u64, ready_at: Ns, pinned: bool) {
        let mut w = self.inner.lock();
        if pinned {
            w.caches[id.0].insert_pinned((file, page), ready_at);
        } else {
            w.caches[id.0].insert((file, page), ready_at);
        }
    }

    /// Page size of cache `id`.
    pub fn cache_page_size(&self, id: CacheId) -> u64 {
        self.inner.lock().caches[id.0].page_size()
    }

    /// Drop all pages of `file` from cache `id`.
    pub fn cache_invalidate_file(&self, id: CacheId, file: u64) {
        self.inner.lock().caches[id.0].invalidate_file(file);
    }

    // ------------------------------------------------------------------
    // out-of-band (bulk) pricing, used for cache transfers (Fig. 13)
    // ------------------------------------------------------------------

    /// Price a bulk transfer of `bytes` over `link` starting at `now`
    /// without the op clock; returns completion time.
    pub fn bulk_transfer(&self, link: LinkId, now: Ns, bytes: u64) -> Ns {
        self.inner.lock().links[link.0].transfer(now, bytes)
    }

    /// Price a bulk disk access starting at `now`; returns completion time.
    pub fn bulk_disk(&self, disk: DiskId, now: Ns, offset: u64, bytes: u64, is_write: bool) -> Ns {
        self.inner.lock().disks[disk.0].access(now, offset, bytes, is_write)
    }

    // ------------------------------------------------------------------
    // stats
    // ------------------------------------------------------------------

    /// Counters of disk `id`.
    pub fn disk_stats(&self, id: DiskId) -> DiskStats {
        self.inner.lock().disks[id.0].stats()
    }

    /// Counters of link `id`.
    pub fn link_stats(&self, id: LinkId) -> LinkStats {
        self.inner.lock().links[id.0].stats()
    }

    /// (hits, misses) of cache `id`.
    pub fn cache_stats(&self, id: CacheId) -> (u64, u64) {
        self.inner.lock().caches[id.0].stats()
    }
}

impl vmi_obs::Clock for SimWorld {
    fn now_ns(&self) -> u64 {
        self.op_now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MSEC, SEC};

    #[test]
    fn op_clock_chains_resources() {
        let w = SimWorld::new();
        let disk = w.add_disk(DiskSpec {
            seq_bw_bps: 100_000_000,
            seek_ns: 0,
            short_seek_ns: 0,
            short_seek_window: 0,
            per_op_ns: 0,
            adjacency_window: 0,
        });
        let link = w.add_link(NetSpec {
            bw_bps: 100_000_000,
            latency_ns: 0,
            per_msg_ns: 0,
            discipline: Default::default(),
        });
        w.begin_op(SEC);
        w.charge_disk(disk, 0, 50_000_000, false); // +0.5 s
        w.charge_link(link, 100_000_000); // +1 s
        let done = w.end_op();
        assert_eq!(done, SEC + SEC / 2 + SEC);
    }

    #[test]
    fn contention_visible_across_ops() {
        let w = SimWorld::new();
        let link = w.add_link(NetSpec {
            bw_bps: 100_000_000,
            latency_ns: 0,
            per_msg_ns: 0,
            discipline: Default::default(),
        });
        // VM A occupies the pipe for 1 s starting at t=0.
        w.begin_op(0);
        w.charge_link(link, 100_000_000);
        assert_eq!(w.end_op(), SEC);
        // VM B issues at t=0.1 s but must queue behind A.
        w.begin_op(100 * MSEC);
        w.charge_link(link, 100_000_000);
        assert_eq!(w.end_op(), 2 * SEC);
    }

    #[test]
    fn cache_hit_waits_for_inflight_page() {
        let w = SimWorld::new();
        let c = w.add_cache(1 << 20, 4096);
        w.begin_op(0);
        assert_eq!(w.cache_probe(c, 1, 0), CacheOutcome::Miss);
        w.cache_insert(c, 1, 0, 700, false);
        assert_eq!(w.end_op(), 0);
        // Second VM probes at t=100 and must wait until 700.
        w.begin_op(100);
        assert!(matches!(
            w.cache_probe(c, 1, 0),
            CacheOutcome::Hit { ready_at: 700 }
        ));
        assert_eq!(w.end_op(), 700);
    }

    #[test]
    fn mem_charge_is_cheap_but_nonzero() {
        let w = SimWorld::new();
        w.begin_op(0);
        w.charge_mem(8_000_000); // 1 ms at 8 GB/s
        assert_eq!(w.end_op(), MSEC);
    }

    #[test]
    fn bulk_ops_share_resource_state_with_op_clock() {
        let w = SimWorld::new();
        let link = w.add_link(NetSpec {
            bw_bps: 100_000_000,
            latency_ns: 0,
            per_msg_ns: 0,
            discipline: Default::default(),
        });
        let done = w.bulk_transfer(link, 0, 100_000_000);
        assert_eq!(done, SEC);
        // An op issued at t=0 queues behind the bulk transfer.
        w.begin_op(0);
        w.charge_link(link, 1_000_000);
        assert!(w.end_op() > SEC);
    }
}
