//! # vmi-sim — deterministic cluster-resource simulation
//!
//! The paper evaluates on a 65-node DAS-4 cluster; this crate is the
//! substituted hardware substrate (DESIGN.md §2): models of the resources
//! whose contention produces every scaling effect in the evaluation —
//!
//! * [`disk::Disk`] — FIFO rotational disk with seek penalties (the
//!   storage-node bottleneck of Fig. 3 / §2.2);
//! * [`net::Link`] — FIFO bandwidth pipe (the 1 GbE bottleneck of Fig. 2),
//!   with presets [`net::NetSpec::gbe_1`] and [`net::NetSpec::ib_32g`];
//! * [`pagecache::PageCache`] — the storage node's RAM (why single-VMI
//!   boots scale flat over InfiniBand), with pinning for tmpfs-resident
//!   cache images (§3.3);
//! * [`world::SimWorld`] — the resource registry plus the *op clock* that
//!   prices real `vmi-qcow` I/O on simulated time;
//! * [`queue::EventQueue`] — a deterministic event heap for the boot
//!   drivers in `vmi-cluster`.
//!
//! Everything is deterministic: same inputs → identical timelines.

//! ```
//! use vmi_sim::{Disk, DiskSpec, SEC};
//! // Random 64 KiB reads on the DAS-4 RAID-0 are seek-bound: ~a few MB/s.
//! let mut disk = Disk::new(DiskSpec::das4_storage_raid0());
//! let mut t = 0;
//! for i in 0..100u64 {
//!     t = disk.access(t, (99 - i) * (1 << 30), 65536, false);
//! }
//! let mbps = 100.0 * 65536.0 / (t as f64 / SEC as f64) / 1e6;
//! assert!(mbps < 40.0, "random reads must be far below streaming speed");
//! ```

#![forbid(unsafe_code)]

pub mod disk;
pub mod net;
pub mod pagecache;
pub mod queue;
pub mod shard;
pub mod time;
pub mod world;

pub use disk::{Disk, DiskSpec, DiskStats};
pub use net::{Link, LinkDiscipline, LinkStats, NetSpec};
pub use pagecache::{CacheOutcome, PageCache, PageKey};
pub use queue::EventQueue;
pub use shard::{EventKey, Shard, ShardedEventQueue};
pub use time::{fmt_secs, transfer_ns, Ns, MSEC, SEC, USEC};
pub use world::{CacheId, DiskId, LinkId, SimWorld, MEM_BW_BPS};
